"""One-time MAC and the bootstrap/refresh channel."""

import numpy as np
import pytest

from repro.auth.bootstrap import AuthenticatedChannel, BootstrapError
from repro.auth.mac import MAC_KEY_BYTES, TAG_SYMBOLS, OneTimeMac, forgery_bound
from repro.core.secret import GroupSecret


class TestOneTimeMac:
    def test_tag_verify_roundtrip(self, rng):
        key = bytes(rng.integers(0, 256, MAC_KEY_BYTES, dtype=np.uint8))
        mac = OneTimeMac(key)
        msg = b"hello group"
        assert mac.verify(msg, mac.tag(msg))

    def test_modified_message_rejected(self, rng):
        key = bytes(rng.integers(0, 256, MAC_KEY_BYTES, dtype=np.uint8))
        mac = OneTimeMac(key)
        tag = mac.tag(b"hello group")
        assert not mac.verify(b"hello grouq", tag)

    def test_truncated_tag_rejected(self, rng):
        key = bytes(rng.integers(0, 256, MAC_KEY_BYTES, dtype=np.uint8))
        mac = OneTimeMac(key)
        tag = mac.tag(b"x")
        assert not mac.verify(b"x", tag[:-1])

    def test_length_extension_rejected(self, rng):
        key = bytes(rng.integers(0, 256, MAC_KEY_BYTES, dtype=np.uint8))
        mac = OneTimeMac(key)
        tag = mac.tag(b"ab")
        assert not mac.verify(b"ab\x00", tag)

    def test_empty_message_supported(self, rng):
        key = bytes(rng.integers(0, 256, MAC_KEY_BYTES, dtype=np.uint8))
        mac = OneTimeMac(key)
        assert mac.verify(b"", mac.tag(b""))

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            OneTimeMac(b"short")

    def test_different_keys_different_tags(self, rng):
        msg = b"same message"
        tags = set()
        for _ in range(16):
            key = bytes(rng.integers(0, 256, MAC_KEY_BYTES, dtype=np.uint8))
            tags.add(OneTimeMac(key).tag(msg))
        assert len(tags) > 12  # overwhelmingly distinct

    def test_forgery_bound_formula(self):
        assert forgery_bound(1) == pytest.approx((1 / 256) ** TAG_SYMBOLS)
        assert forgery_bound(256) == 1.0 ** TAG_SYMBOLS
        with pytest.raises(ValueError):
            forgery_bound(-1)

    def test_empirical_forgery_rate_below_bound(self, rng):
        """Random forgeries against random keys must succeed at most at
        the analytical rate (here: essentially never for 4-symbol tags)."""
        successes = 0
        trials = 3000
        msg = b"m1"
        forged = b"m2"
        for _ in range(trials):
            key = bytes(rng.integers(0, 256, MAC_KEY_BYTES, dtype=np.uint8))
            mac = OneTimeMac(key)
            tag = mac.tag(msg)
            if mac.verify(forged, tag):
                successes += 1
        assert successes == 0


class TestAuthenticatedChannel:
    def test_bootstrap_handshake(self):
        boot = bytes(range(32))
        a = AuthenticatedChannel.from_bootstrap(boot)
        b = AuthenticatedChannel.from_bootstrap(boot)
        msg = b"round 0 start"
        assert b.verify_next(msg, a.authenticate(msg))

    def test_bootstrap_too_short(self):
        with pytest.raises(BootstrapError):
            AuthenticatedChannel.from_bootstrap(b"tiny")

    def test_keys_are_single_use(self):
        boot = bytes(range(32))
        a = AuthenticatedChannel.from_bootstrap(boot)
        b = AuthenticatedChannel.from_bootstrap(boot)
        m1, m2 = b"first", b"second"
        t1 = a.authenticate(m1)
        t2 = a.authenticate(m2)
        assert b.verify_next(m1, t1)
        assert b.verify_next(m2, t2)
        # Replaying t1 against the next key slot fails.
        a2 = AuthenticatedChannel.from_bootstrap(boot)
        b2 = AuthenticatedChannel.from_bootstrap(boot)
        t1 = a2.authenticate(m1)
        b2.verify_next(m1, t1)
        assert not b2.verify_next(m1, t1)

    def test_forgery_burns_key(self):
        boot = bytes(range(32))
        a = AuthenticatedChannel.from_bootstrap(boot)
        b = AuthenticatedChannel.from_bootstrap(boot)
        tag = a.authenticate(b"legit")
        assert not b.verify_next(b"forged", tag)
        # The burned key means the legit message now fails too — the
        # sender must re-authenticate with the next key.
        assert not b.verify_next(b"legit", tag)

    def test_exhaustion_and_refresh(self, rng):
        boot = bytes(range(MAC_KEY_BYTES))
        a = AuthenticatedChannel.from_bootstrap(boot)
        assert a.messages_remaining == 1
        a.authenticate(b"only one")
        with pytest.raises(BootstrapError):
            a.authenticate(b"too many")
        secret = GroupSecret(
            rng.integers(0, 256, (2, 16), dtype=np.uint8)
        )
        a.refresh(secret)
        assert a.messages_remaining == 4
        a.authenticate(b"refilled")

    def test_channels_stay_synchronized_after_refresh(self, rng):
        boot = bytes(range(32))
        a = AuthenticatedChannel.from_bootstrap(boot)
        b = AuthenticatedChannel.from_bootstrap(boot)
        secret = GroupSecret(rng.integers(0, 256, (1, 32), dtype=np.uint8))
        a.refresh(secret)
        b.refresh(secret)
        for k in range(5):
            msg = f"epoch {k}".encode()
            assert b.verify_next(msg, a.authenticate(msg))


class TestTagReuse:
    """Negative paths for one-time key discipline: every way a tag can
    be presented against the wrong key must fail — and actual key
    *reuse* must demonstrably leak, which is why the channel never
    allows it."""

    def test_tag_replayed_at_later_position_rejected(self):
        boot = bytes(range(64))
        a = AuthenticatedChannel.from_bootstrap(boot)
        b = AuthenticatedChannel.from_bootstrap(boot)
        msg = b"same message every time"
        t1 = a.authenticate(msg)
        a.authenticate(msg)
        a.authenticate(msg)
        assert b.verify_next(msg, t1)
        # Positions 2 and 3 use fresh keys: the old tag is worthless
        # even for the identical message.
        assert not b.verify_next(msg, t1)
        assert not b.verify_next(msg, t1)

    def test_out_of_order_tags_desynchronise_permanently(self):
        boot = bytes(range(64))
        a = AuthenticatedChannel.from_bootstrap(boot)
        b = AuthenticatedChannel.from_bootstrap(boot)
        t1 = a.authenticate(b"first")
        t2 = a.authenticate(b"second")
        # A reordered delivery burns key 1 against message 2...
        assert not b.verify_next(b"second", t2)
        # ...and the sequence never recovers: the late frame now meets
        # key 2, failing as well.  Strict ordering is load-bearing.
        assert not b.verify_next(b"first", t1)

    def test_verify_on_exhausted_pool_raises(self):
        boot = bytes(range(MAC_KEY_BYTES))  # exactly one key
        a = AuthenticatedChannel.from_bootstrap(boot)
        b = AuthenticatedChannel.from_bootstrap(boot)
        assert b.verify_next(b"only", a.authenticate(b"only"))
        with pytest.raises(BootstrapError):
            b.verify_next(b"more", b"\x00" * TAG_SYMBOLS)

    def test_cross_pair_tag_rejected(self, rng):
        """A tag minted under one bootstrap pool means nothing to a
        channel seeded from a different pool."""
        a = AuthenticatedChannel.from_bootstrap(bytes(range(32)))
        other = AuthenticatedChannel.from_bootstrap(
            bytes(rng.integers(0, 256, 32, dtype=np.uint8))
        )
        msg = b"round 0 start"
        assert not other.verify_next(msg, a.authenticate(msg))

    def test_pad_reuse_enables_forgery(self):
        """Why keys are strictly one-time: tagging two messages with the
        same evaluation points leaks their hash difference (the pads
        cancel under XOR), which converts directly into a forgery
        against any other key sharing those points."""
        points = bytes(range(1, TAG_SYMBOLS + 1))
        pad1 = bytes(range(100, 100 + TAG_SYMBOLS))
        pad2 = bytes(range(200, 200 + TAG_SYMBOLS))
        mac_reused = OneTimeMac(points + pad1)
        mac_victim = OneTimeMac(points + pad2)
        m1, m2 = b"transfer 10 coins", b"transfer 99 coins"
        # The attacker observes both tags under the *reused* key...
        leak = bytes(
            x ^ y for x, y in zip(mac_reused.tag(m1), mac_reused.tag(m2))
        )
        # ...plus one honest tag from the victim key, and forges the
        # victim's tag for the other message without knowing any key.
        forged = bytes(x ^ y for x, y in zip(mac_victim.tag(m1), leak))
        assert mac_victim.verify(m2, forged)
