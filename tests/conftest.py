"""Shared fixtures: seeded RNGs and small network factories."""

import numpy as np
import pytest

from repro.net.medium import BroadcastMedium, IIDLossModel
from repro.net.node import Eavesdropper, Terminal


@pytest.fixture
def rng():
    """Deterministic generator; tests that need their own seed make one."""
    return np.random.default_rng(1234)


@pytest.fixture
def make_medium():
    """Factory for abstract broadcast media with n terminals + Eve."""

    def _make(n_terminals=3, loss=0.4, seed=7, with_eve=True):
        rng = np.random.default_rng(seed)
        nodes = [Terminal(name=f"T{i}") for i in range(n_terminals)]
        if with_eve:
            nodes.append(Eavesdropper(name="eve"))
        medium = BroadcastMedium(nodes, IIDLossModel(loss), rng)
        names = [f"T{i}" for i in range(n_terminals)]
        return medium, names, rng

    return _make
