"""Stats semantics, campaign runner, report rendering."""

import math

import numpy as np
import pytest

from repro.analysis.experiments import (
    CampaignConfig,
    run_campaign,
    run_placement_experiment,
)
from repro.analysis.report import (
    render_figure1_table,
    render_figure2_table,
    render_headline_table,
)
from repro.analysis.stats import (
    ReliabilitySummary,
    best_fraction_minimum,
    summarize_reliability,
)
from repro.core.estimator import FixedFractionEstimator
from repro.core.session import SessionConfig
from repro.testbed.deployment import Testbed, TestbedConfig
from repro.testbed.placements import Placement


class TestStats:
    def test_best_fraction_minimum_semantics(self):
        values = [1.0, 1.0, 0.9, 0.5, 0.0]
        # Best 100%: plain minimum.
        assert best_fraction_minimum(values, 1.0) == 0.0
        # Best 80% keeps 4 values: min of {1,1,.9,.5}.
        assert best_fraction_minimum(values, 0.8) == 0.5
        # Best 50% keeps ceil(2.5)=3: min of {1,1,.9}.
        assert best_fraction_minimum(values, 0.5) == 0.9

    def test_best_fraction_validation(self):
        with pytest.raises(ValueError):
            best_fraction_minimum([1.0], 0.0)
        with pytest.raises(ValueError):
            best_fraction_minimum([], 0.5)

    def test_summary_fields(self):
        s = summarize_reliability(5, [1.0, 0.8, 0.2, 1.0])
        assert s.n_terminals == 5
        assert s.n_experiments == 4
        assert s.minimum == 0.2
        assert s.mean == pytest.approx(0.75)
        assert s.median == 1.0  # best half = {1.0, 1.0}
        assert s.p95 == 0.2  # ceil(.95*4)=4 keeps everything

    def test_summary_ordering_invariant(self):
        s = summarize_reliability(3, [0.5, 0.9, 1.0, 0.1, 0.7])
        assert s.minimum <= s.p95 <= s.median
        assert s.minimum <= s.mean <= 1.0

    def test_summary_requires_data(self):
        with pytest.raises(ValueError):
            summarize_reliability(3, [])


class TestCampaign:
    @pytest.fixture(scope="class")
    def testbed(self):
        return Testbed(TestbedConfig(interferer_power_dbm=10.0))

    def _factory(self, testbed, placement):
        return FixedFractionEstimator(0.15)

    def test_single_experiment_record(self, testbed):
        placement = Placement(eve_cell=4, terminal_cells=(0, 2, 6))
        config = CampaignConfig(
            session=SessionConfig(n_x_packets=45, payload_bytes=16)
        )
        record = run_placement_experiment(
            testbed, placement, self._factory, config
        )
        assert record.n_terminals == 3
        assert 0.0 <= record.reliability <= 1.0
        assert record.transmitted_bits > 0
        assert record.secret_kbps_at_1mbps == pytest.approx(
            record.efficiency * 1e3
        )

    def test_campaign_runs_and_is_deterministic(self, testbed):
        config = CampaignConfig(
            session=SessionConfig(n_x_packets=36, payload_bytes=8),
            max_placements_per_n=2,
            group_sizes=(3,),
            seed=99,
        )
        a = run_campaign(testbed, self._factory, config)
        b = run_campaign(testbed, self._factory, config)
        assert len(a.records) == 2
        assert [r.efficiency for r in a.records] == [
            r.efficiency for r in b.records
        ]
        assert a.group_sizes() == [3]
        assert len(a.reliabilities(3)) == 2
        assert len(a.efficiencies(3)) == 2

    def test_progress_callback(self, testbed):
        calls = []
        config = CampaignConfig(
            session=SessionConfig(n_x_packets=36, payload_bytes=8),
            max_placements_per_n=1,
            group_sizes=(3, 4),
        )
        run_campaign(
            testbed, self._factory, config,
            progress=lambda n, pl: calls.append(n),
        )
        assert calls == [3, 4]


class TestReports:
    def test_figure1_table(self):
        text = render_figure1_table(
            [0.3, 0.5],
            {2: [0.21, 0.25], math.inf: [0.19, 0.2]},
            {2: [0.17, 0.2]},
            measured={(3, 0.5): 0.19},
        )
        assert "n=2" in text and "n=inf" in text
        assert "0.250" in text
        assert "measured 0.190" in text

    def test_figure2_table(self):
        s = summarize_reliability(8, [1.0, 1.0])
        text = render_figure2_table([s])
        assert "Figure 2" in text
        assert "  8" in text

    def test_headline_table(self):
        class Rec:
            def __init__(self, cell, eff, rel):
                self.placement = Placement(
                    eve_cell=cell, terminal_cells=tuple(c for c in range(8) if c != cell)
                )
                self.efficiency = eff
                self.reliability = rel

        text = render_headline_table([Rec(8, 0.04, 1.0), Rec(0, 0.03, 1.0)])
        assert "minimum efficiency 0.0300" in text
        assert "30.0 secret kbps" in text
        assert "paper: 0.038" in text
