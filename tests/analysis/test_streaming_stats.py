"""Streaming accumulators vs the materialised statistics they replace."""

import math

import numpy as np
import pytest

from repro.analysis.stats import (
    ReliabilityAccumulator,
    StreamingMoments,
    ValueCountAccumulator,
    best_fraction_minimum,
    summarize_reliability,
)


def populations():
    rng = np.random.default_rng(42)
    yield [1.0] * 40 + [0.7, 0.93, 0.85]  # the spike-plus-tail shape
    yield list(rng.random(257))
    yield list(np.round(rng.random(500), 2))  # heavy duplication
    yield [0.5]
    yield list(rng.choice([0.0, 0.25, 1.0], size=64))


class TestStreamingMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(7)
        values = rng.random(1000) * 3 - 1
        moments = StreamingMoments()
        moments.extend(values)
        assert moments.count == 1000
        assert moments.mean == pytest.approx(float(np.mean(values)), rel=1e-12)
        assert moments.variance == pytest.approx(float(np.var(values)), rel=1e-10)
        assert moments.std == pytest.approx(float(np.std(values)), rel=1e-10)
        assert moments.minimum == float(values.min())
        assert moments.maximum == float(values.max())

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(8)
        values = rng.random(999)
        whole = StreamingMoments()
        whole.extend(values)
        merged = StreamingMoments()
        for chunk in np.array_split(values, 7):
            part = StreamingMoments()
            part.extend(chunk)
            merged.merge(part)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, rel=1e-13)
        assert merged.m2 == pytest.approx(whole.m2, rel=1e-10)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_merge_into_empty(self):
        part = StreamingMoments()
        part.extend([1.0, 2.0, 3.0])
        empty = StreamingMoments()
        empty.merge(part)
        assert (empty.count, empty.mean) == (3, 2.0)
        part.merge(StreamingMoments())  # no-op the other way
        assert part.count == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no values"):
            StreamingMoments().variance


class TestValueCountAccumulator:
    @pytest.mark.parametrize("fraction", [0.05, 0.5, 0.95, 1.0])
    def test_rank_statistics_match_materialised(self, fraction):
        for values in populations():
            acc = ValueCountAccumulator()
            acc.extend(values)
            assert acc.total == len(values)
            assert acc.minimum == min(values)
            assert acc.maximum == max(values)
            assert acc.best_fraction_minimum(fraction) == best_fraction_minimum(
                values, fraction
            )

    def test_mean_matches_materialised(self):
        for values in populations():
            acc = ValueCountAccumulator()
            acc.extend(values)
            assert acc.mean == pytest.approx(float(np.mean(values)), rel=1e-12)

    def test_order_and_partition_invariance_is_exact(self):
        """The resume guarantee: however the observations arrive —
        shuffled, split, merged — every finalised float is *identical*,
        not just approximately equal."""
        rng = np.random.default_rng(11)
        values = list(np.round(rng.random(400), 3))
        reference = ValueCountAccumulator()
        reference.extend(values)
        for permutation_seed in (1, 2, 3):
            order = np.random.default_rng(permutation_seed).permutation(400)
            merged = ValueCountAccumulator()
            for chunk in np.array_split(order, 9):
                part = ValueCountAccumulator()
                part.extend(values[i] for i in chunk)
                merged.merge(part)
            assert merged.counts == reference.counts
            assert merged.mean == reference.mean  # exact, not approx
            assert merged.best_fraction_minimum(0.95) == (
                reference.best_fraction_minimum(0.95)
            )

    def test_validation(self):
        acc = ValueCountAccumulator()
        with pytest.raises(ValueError, match="no values"):
            acc.minimum
        with pytest.raises(ValueError, match="no values"):
            acc.mean
        with pytest.raises(ValueError, match="fraction"):
            acc.best_fraction_minimum(0.0)
        acc.add(1.0)
        with pytest.raises(ValueError, match="count must be positive"):
            acc.add(1.0, count=0)


class TestReliabilityAccumulator:
    def test_summary_matches_summarize_reliability(self):
        for values in populations():
            acc = ReliabilityAccumulator()
            acc.extend(values)
            streamed = acc.summary(5)
            materialised = summarize_reliability(5, values)
            assert streamed.n_experiments == materialised.n_experiments
            assert streamed.minimum == materialised.minimum
            assert streamed.p95 == materialised.p95
            assert streamed.median == materialised.median
            assert streamed.mean == pytest.approx(materialised.mean, rel=1e-12)

    def test_nan_exclusion_matches_campaign_rule(self):
        """Zero-secret experiments (NaN) are excluded exactly like
        CampaignResult.reliabilities does in memory."""
        values = [1.0, float("nan"), 0.8, float("nan"), 0.95]
        acc = ReliabilityAccumulator()
        acc.extend(values)
        kept = [v for v in values if not math.isnan(v)]
        assert acc.n_experiments == len(kept)
        assert acc.n_excluded == 2
        summary = acc.summary(3)
        reference = summarize_reliability(3, kept)
        assert summary.minimum == reference.minimum
        assert summary.median == reference.median

    def test_all_nan_population_is_empty(self):
        acc = ReliabilityAccumulator()
        acc.extend([float("nan")] * 5)
        assert not acc
        assert acc.n_experiments == 0
        with pytest.raises(ValueError, match="at least one experiment"):
            acc.summary(4)

    def test_merge_accumulates_exclusions(self):
        a = ReliabilityAccumulator()
        a.extend([1.0, float("nan")])
        b = ReliabilityAccumulator()
        b.extend([0.5, float("nan"), float("nan")])
        a.merge(b)
        assert a.n_experiments == 2
        assert a.n_excluded == 3
        assert a.summary(3).minimum == 0.5
