"""Streaming accumulators vs the materialised statistics they replace.

The example-based classes at the top pin concrete behaviours; the
hypothesis classes at the bottom pin the *merge algebra* the multi-host
sweep layer leans on — merge must be associative and order-independent
against the batch computation (exactly for the count-based
accumulators, within floating-point tolerance for the moments),
whatever partition of the observations each queue worker happened to
produce, NaN zero-secret sentinels included.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fractions import Fraction

from repro.analysis.stats import (
    ReliabilityAccumulator,
    SecrecyAccumulator,
    StreamingMoments,
    ValueCountAccumulator,
    best_fraction_minimum,
    summarize_reliability,
)


def populations():
    rng = np.random.default_rng(42)
    yield [1.0] * 40 + [0.7, 0.93, 0.85]  # the spike-plus-tail shape
    yield list(rng.random(257))
    yield list(np.round(rng.random(500), 2))  # heavy duplication
    yield [0.5]
    yield list(rng.choice([0.0, 0.25, 1.0], size=64))


class TestStreamingMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(7)
        values = rng.random(1000) * 3 - 1
        moments = StreamingMoments()
        moments.extend(values)
        assert moments.count == 1000
        assert moments.mean == pytest.approx(float(np.mean(values)), rel=1e-12)
        assert moments.variance == pytest.approx(float(np.var(values)), rel=1e-10)
        assert moments.std == pytest.approx(float(np.std(values)), rel=1e-10)
        assert moments.minimum == float(values.min())
        assert moments.maximum == float(values.max())

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(8)
        values = rng.random(999)
        whole = StreamingMoments()
        whole.extend(values)
        merged = StreamingMoments()
        for chunk in np.array_split(values, 7):
            part = StreamingMoments()
            part.extend(chunk)
            merged.merge(part)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, rel=1e-13)
        assert merged.m2 == pytest.approx(whole.m2, rel=1e-10)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_merge_into_empty(self):
        part = StreamingMoments()
        part.extend([1.0, 2.0, 3.0])
        empty = StreamingMoments()
        empty.merge(part)
        assert (empty.count, empty.mean) == (3, 2.0)
        part.merge(StreamingMoments())  # no-op the other way
        assert part.count == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no values"):
            StreamingMoments().variance


class TestValueCountAccumulator:
    @pytest.mark.parametrize("fraction", [0.05, 0.5, 0.95, 1.0])
    def test_rank_statistics_match_materialised(self, fraction):
        for values in populations():
            acc = ValueCountAccumulator()
            acc.extend(values)
            assert acc.total == len(values)
            assert acc.minimum == min(values)
            assert acc.maximum == max(values)
            assert acc.best_fraction_minimum(fraction) == best_fraction_minimum(
                values, fraction
            )

    def test_mean_matches_materialised(self):
        for values in populations():
            acc = ValueCountAccumulator()
            acc.extend(values)
            assert acc.mean == pytest.approx(float(np.mean(values)), rel=1e-12)

    def test_order_and_partition_invariance_is_exact(self):
        """The resume guarantee: however the observations arrive —
        shuffled, split, merged — every finalised float is *identical*,
        not just approximately equal."""
        rng = np.random.default_rng(11)
        values = list(np.round(rng.random(400), 3))
        reference = ValueCountAccumulator()
        reference.extend(values)
        for permutation_seed in (1, 2, 3):
            order = np.random.default_rng(permutation_seed).permutation(400)
            merged = ValueCountAccumulator()
            for chunk in np.array_split(order, 9):
                part = ValueCountAccumulator()
                part.extend(values[i] for i in chunk)
                merged.merge(part)
            assert merged.counts == reference.counts
            assert merged.mean == reference.mean  # exact, not approx
            assert merged.best_fraction_minimum(0.95) == (
                reference.best_fraction_minimum(0.95)
            )

    def test_validation(self):
        acc = ValueCountAccumulator()
        with pytest.raises(ValueError, match="no values"):
            acc.minimum
        with pytest.raises(ValueError, match="no values"):
            acc.mean
        with pytest.raises(ValueError, match="fraction"):
            acc.best_fraction_minimum(0.0)
        acc.add(1.0)
        with pytest.raises(ValueError, match="count must be positive"):
            acc.add(1.0, count=0)


class TestReliabilityAccumulator:
    def test_summary_matches_summarize_reliability(self):
        for values in populations():
            acc = ReliabilityAccumulator()
            acc.extend(values)
            streamed = acc.summary(5)
            materialised = summarize_reliability(5, values)
            assert streamed.n_experiments == materialised.n_experiments
            assert streamed.minimum == materialised.minimum
            assert streamed.p95 == materialised.p95
            assert streamed.median == materialised.median
            assert streamed.mean == pytest.approx(materialised.mean, rel=1e-12)

    def test_nan_exclusion_matches_campaign_rule(self):
        """Zero-secret experiments (NaN) are excluded exactly like
        CampaignResult.reliabilities does in memory."""
        values = [1.0, float("nan"), 0.8, float("nan"), 0.95]
        acc = ReliabilityAccumulator()
        acc.extend(values)
        kept = [v for v in values if not math.isnan(v)]
        assert acc.n_experiments == len(kept)
        assert acc.n_excluded == 2
        summary = acc.summary(3)
        reference = summarize_reliability(3, kept)
        assert summary.minimum == reference.minimum
        assert summary.median == reference.median

    def test_all_nan_population_summarises_to_nan_row(self):
        # 100% zero-secret experiments: a measured outcome, not an
        # error — the summary is a NaN row with every exclusion counted.
        acc = ReliabilityAccumulator()
        acc.extend([float("nan")] * 5)
        assert not acc
        assert acc.n_experiments == 0
        assert acc.n_excluded == 5
        summary = acc.summary(4)
        assert summary.n_experiments == 0
        assert math.isnan(summary.minimum)
        assert math.isnan(summary.mean)
        assert math.isnan(summary.p95)
        assert math.isnan(summary.median)

    def test_truly_empty_population_still_raises(self):
        with pytest.raises(ValueError, match="at least one experiment"):
            ReliabilityAccumulator().summary(4)

    def test_nan_row_merges_consistently(self):
        # Merging an all-NaN shard into a populated one must leave the
        # populated statistics untouched and only add exclusions.
        nan_only = ReliabilityAccumulator()
        nan_only.extend([float("nan")] * 3)
        populated = ReliabilityAccumulator()
        populated.extend([1.0, 0.5])
        reference = populated.summary(6)
        populated.merge(nan_only)
        merged = populated.summary(6)
        assert merged.n_experiments == reference.n_experiments
        assert merged.minimum == reference.minimum
        assert merged.mean == reference.mean
        assert populated.n_excluded == 3

    def test_merge_accumulates_exclusions(self):
        a = ReliabilityAccumulator()
        a.extend([1.0, float("nan")])
        b = ReliabilityAccumulator()
        b.extend([0.5, float("nan"), float("nan")])
        a.merge(b)
        assert a.n_experiments == 2
        assert a.n_excluded == 3
        assert a.summary(3).minimum == 0.5


# -- the merge algebra (hypothesis) ----------------------------------------

#: Reliability-shaped observations: mostly a spike at 1.0 with a short
#: rounded tail (heavy duplication, like real campaigns), plus raw
#: floats so the properties are not an artefact of rounding.
observations = st.lists(
    st.one_of(
        st.just(1.0),
        st.floats(min_value=0.0, max_value=1.0).map(lambda v: round(v, 2)),
        st.floats(min_value=-1e6, max_value=1e6),
    ),
    min_size=1,
    max_size=120,
)

#: The same, with NaN zero-secret sentinels sprinkled in.
observations_with_nan = st.lists(
    st.one_of(
        st.just(float("nan")),
        st.just(1.0),
        st.floats(min_value=0.0, max_value=1.0).map(lambda v: round(v, 2)),
    ),
    min_size=1,
    max_size=120,
)

partition_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def shuffled_chunks(values, seed, accumulate):
    """Partition a shuffled copy of ``values`` into random-size chunks
    and return one accumulator per chunk — one simulated queue worker's
    share of the sweep each."""
    rng = random.Random(seed)
    values = list(values)
    rng.shuffle(values)
    chunks = []
    start = 0
    while start < len(values):
        size = rng.randint(1, max(1, len(values) - start))
        chunks.append(values[start : start + size])
        start += size
    parts = []
    for chunk in chunks:
        part = accumulate()
        part.extend(chunk)
        parts.append(part)
    return parts


def merge_in_tree_order(parts, seed, accumulate):
    """Fold the parts pairwise in a random binary-tree order, so the
    associativity claim is exercised, not just left-folding."""
    rng = random.Random(seed)
    forest = list(parts)
    while len(forest) > 1:
        i = rng.randrange(len(forest) - 1)
        left = forest.pop(i)
        right = forest.pop(i)
        combined = accumulate()
        combined.merge(left)
        combined.merge(right)
        forest.insert(i, combined)
    return forest[0]


class TestMomentsMergeAlgebra:
    @given(values=observations, seed=partition_seeds)
    @settings(max_examples=150, deadline=None)
    def test_merge_matches_batch_within_tolerance(self, values, seed):
        parts = shuffled_chunks(values, seed, StreamingMoments)
        merged = merge_in_tree_order(parts, seed + 1, StreamingMoments)
        assert merged.count == len(values)
        assert merged.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(
            float(np.var(values)), rel=1e-6, abs=1e-9
        )
        assert merged.minimum == min(values)
        assert merged.maximum == max(values)

    @given(values=observations, seed=partition_seeds)
    @settings(max_examples=100, deadline=None)
    def test_two_merge_orders_agree(self, values, seed):
        parts_a = shuffled_chunks(values, seed, StreamingMoments)
        parts_b = shuffled_chunks(values, seed + 7, StreamingMoments)
        a = merge_in_tree_order(parts_a, seed + 1, StreamingMoments)
        b = merge_in_tree_order(parts_b, seed + 2, StreamingMoments)
        assert a.count == b.count
        assert a.mean == pytest.approx(b.mean, rel=1e-9, abs=1e-12)
        assert a.m2 == pytest.approx(b.m2, rel=1e-6, abs=1e-9)
        assert (a.minimum, a.maximum) == (b.minimum, b.maximum)


class TestCountMergeAlgebraIsExact:
    @given(values=observations, seed=partition_seeds)
    @settings(max_examples=150, deadline=None)
    def test_any_partition_any_order_is_bit_identical(self, values, seed):
        """The store contract, as algebra: whatever partition of the
        sweep the workers produced and whatever order the shards merge
        in, every finalised statistic is *identical* to the batch
        computation — not approximately equal."""
        reference = ValueCountAccumulator()
        reference.extend(values)
        parts = shuffled_chunks(values, seed, ValueCountAccumulator)
        merged = merge_in_tree_order(parts, seed + 1, ValueCountAccumulator)
        assert merged.counts == reference.counts
        assert merged.total == len(values)
        assert merged.mean == reference.mean  # exact float equality
        assert merged.minimum == min(values)
        assert merged.maximum == max(values)
        for fraction in (0.05, 0.5, 0.95, 1.0):
            assert merged.best_fraction_minimum(
                fraction
            ) == best_fraction_minimum(values, fraction)

    @given(values=observations_with_nan, seed=partition_seeds)
    @settings(max_examples=150, deadline=None)
    def test_reliability_merge_with_nan_sentinels_is_exact(self, values, seed):
        """NaN zero-secret sentinels ride the merge algebra too: the
        exclusion count is conserved across any partition, and the
        summary equals the batch computation over the non-NaN kept
        population."""
        kept = [v for v in values if not math.isnan(v)]
        parts = shuffled_chunks(values, seed, ReliabilityAccumulator)
        merged = merge_in_tree_order(parts, seed + 1, ReliabilityAccumulator)
        assert merged.n_excluded == len(values) - len(kept)
        assert merged.n_experiments == len(kept)
        if not kept:
            # 100% sentinels: a NaN row, never a division error.
            row = merged.summary(4)
            assert row.n_experiments == 0
            assert math.isnan(row.minimum) and math.isnan(row.mean)
            return
        reference = summarize_reliability(4, kept)
        streamed = merged.summary(4)
        assert streamed.minimum == reference.minimum
        assert streamed.p95 == reference.p95
        assert streamed.median == reference.median
        assert streamed.n_experiments == reference.n_experiments
        assert streamed.mean == pytest.approx(reference.mean, rel=1e-12)


# -- best_fraction_minimum vs a sorted oracle (hypothesis) -----------------

def _oracle_best_fraction_minimum(values, numerator, denominator):
    """Naive reference: exact rational rank over an explicit sort.

    Keep the best ceil(fraction * n) experiments (computed in exact
    arithmetic, never float) and return the worst of them.
    """
    kept = [float(v) for v in values if not math.isnan(v)]
    if not kept:
        return math.nan
    n = len(kept)
    rank = -((-Fraction(numerator, denominator) * n) // 1)  # exact ceil
    rank = max(1, min(n, int(rank)))
    return sorted(kept, reverse=True)[rank - 1]


class TestBestFractionMinimumOracle:
    """The rank arithmetic bugfix, pinned against exact rational math."""

    @given(
        values=observations_with_nan,
        hundredths=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_exact_rational_oracle(self, values, hundredths):
        fraction = hundredths / 100.0
        expected = _oracle_best_fraction_minimum(values, hundredths, 100)
        got = best_fraction_minimum(values, fraction)
        if math.isnan(expected):
            assert math.isnan(got)
        else:
            assert got == expected
        acc = ValueCountAccumulator()
        acc.extend(v for v in values if not math.isnan(v))
        if acc:
            assert acc.best_fraction_minimum(fraction) == expected

    def test_p95_of_twenty_keeps_nineteen(self):
        """Regression: 0.95 * 20 = 19.000000000000004 in float64; a bare
        ceil kept all twenty and returned the global minimum."""
        values = [float(k) for k in range(1, 21)]  # 1..20, distinct
        assert best_fraction_minimum(values, 0.95) == 2.0
        assert best_fraction_minimum(values, 1.0) == 1.0

    def test_fraction_one_is_global_minimum(self):
        values = [0.4, 0.9, 0.1, 1.0]
        assert best_fraction_minimum(values, 1.0) == 0.1

    def test_single_sample_any_fraction(self):
        for fraction in (0.01, 0.5, 0.95, 1.0):
            assert best_fraction_minimum([0.7], fraction) == 0.7

    def test_all_nan_returns_nan(self):
        assert math.isnan(best_fraction_minimum([math.nan] * 5, 0.95))

    def test_truly_empty_raises(self):
        with pytest.raises(ValueError):
            best_fraction_minimum([], 0.95)


class TestSecrecyAccumulator:
    def test_totals_match_materialised(self):
        rng = np.random.default_rng(11)
        secrets = rng.integers(1, 50, size=60) * 800.0
        entropies = secrets * rng.random(60)
        acc = SecrecyAccumulator()
        for s, h in zip(secrets, entropies):
            acc.add(s, h)
        row = acc.summary(5)
        assert row.n_terminals == 5
        assert row.n_experiments == 60
        assert row.n_excluded == 0
        assert row.secret_bits == math.fsum(sorted(map(float, secrets)))
        assert row.min_entropy_bits == pytest.approx(
            float(entropies.sum()), rel=1e-12
        )
        assert row.leaked_bits == pytest.approx(
            row.secret_bits - row.min_entropy_bits, rel=1e-12
        )
        residuals = entropies / secrets
        assert row.min_residual == float(residuals.min())
        assert row.mean_residual == pytest.approx(
            row.min_entropy_bits / row.secret_bits, rel=1e-12
        )
        assert row.p95_residual == best_fraction_minimum(list(residuals), 0.95)

    def test_zero_secret_and_nan_are_excluded(self):
        acc = SecrecyAccumulator()
        acc.add(0.0, 0.0)
        acc.add(800.0, math.nan)
        acc.add(800.0, 600.0)
        assert acc.n_experiments == 1
        row = acc.summary(3)
        assert row.n_excluded == 2
        assert row.min_residual == 0.75

    def test_all_excluded_summarises_to_nan_row(self):
        acc = SecrecyAccumulator()
        acc.add(0.0, 0.0)
        row = acc.summary(3)
        assert row.n_experiments == 0
        assert row.n_excluded == 1
        assert row.secret_bits == 0.0
        assert math.isnan(row.min_residual)
        assert math.isnan(row.mean_residual)

    def test_truly_empty_raises(self):
        with pytest.raises(ValueError, match="at least one experiment"):
            SecrecyAccumulator().summary(3)

    def test_entropy_above_secret_rejected(self):
        acc = SecrecyAccumulator()
        with pytest.raises(ValueError, match="min-entropy"):
            acc.add(800.0, 800.1)
        with pytest.raises(ValueError, match="min-entropy"):
            acc.add(800.0, -1.0)

    @given(seed=partition_seeds)
    @settings(max_examples=60, deadline=None)
    def test_merge_partition_invariance_is_exact(self, seed):
        rng = np.random.default_rng(seed % (2**31))
        n = int(rng.integers(1, 80))
        secrets = rng.integers(0, 40, size=n) * 800.0
        entropies = np.where(
            secrets > 0, secrets * np.round(rng.random(n), 3), 0.0
        )
        pairs = list(zip(secrets, entropies))
        reference = SecrecyAccumulator()
        for s, h in pairs:
            reference.add(s, h)

        def accumulate():
            return SecrecyAccumulator()

        parts = shuffled_chunks(pairs, seed, _PairAdapter)
        merged = merge_in_tree_order(
            [p.inner for p in parts], seed + 1, accumulate
        )
        assert merged.n_excluded == reference.n_excluded
        assert merged.n_experiments == reference.n_experiments
        if reference.n_experiments == 0 and reference.n_excluded == 0:
            return
        ref_row = reference.summary(4)
        got_row = merged.summary(4)
        assert got_row == ref_row  # bit-identical dataclass equality


class _PairAdapter:
    """Adapts (secret, entropy) pair streams to the chunk helpers."""

    def __init__(self):
        self.inner = SecrecyAccumulator()

    def extend(self, pairs):
        for secret, entropy in pairs:
            self.inner.add(secret, entropy)
