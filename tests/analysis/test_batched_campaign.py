"""The batched testbed-campaign path: bridging, sharding, aggregation.

scripts/run_reference_campaign.py defaults to this path, so it needs
coverage independent of the synthetic-scenario sim suite: the
slot-aware testbed-to-ScheduleLossSpec bridge (link ordering!), the
per-placement batched experiment, run_campaign's engine dispatch, the
SeedSequence experiment-seed derivation, and placement sharding.
"""

import math

import numpy as np
import pytest

from repro import SessionConfig, Testbed, TestbedConfig
from repro.analysis import (
    CampaignConfig,
    placement_loss_specs,
    run_campaign,
    run_placement_experiment_batched,
)
from repro.analysis.experiments import _experiment_seed_sequence
from repro.core import LeaveOneOutEstimator, OracleEstimator
from repro.sim import LeaveOneOutEstimatorSpec, OracleEstimatorSpec
from repro.testbed import Placement
from repro.testbed.pertable import placement_schedule_specs


@pytest.fixture(scope="module")
def testbed():
    return Testbed(TestbedConfig(interferer_power_dbm=10.0))


PLACEMENT = Placement(eve_cell=4, terminal_cells=(0, 2, 6, 8))
CONFIG = CampaignConfig(
    session=SessionConfig(n_x_packets=60, payload_bytes=40, secrecy_slack=1),
    seed=2012,
    max_placements_per_n=2,
    group_sizes=(4,),
)


def loo_factory(testbed, placement):
    return LeaveOneOutEstimator(rate_margin=0.05)


class TestExperimentSeedDerivation:
    def test_streams_pinned_across_processes(self):
        """SeedSequence(spawn_key=...) mixing is specified by numpy and
        independent of PYTHONHASHSEED: these draws must never change, or
        recorded campaigns stop being re-runnable."""
        seq = _experiment_seed_sequence(2012, PLACEMENT, PLACEMENT.n_terminals)
        draws = np.random.default_rng(seq).integers(0, 2**32, size=4)
        assert list(draws) == [1085817342, 4188240205, 1199366734, 3710999097]
        other = _experiment_seed_sequence(
            2012, Placement(eve_cell=1, terminal_cells=(0, 2, 6)), 3
        )
        draws = np.random.default_rng(other).integers(0, 2**32, size=4)
        assert list(draws) == [2468382795, 3250054976, 4225573721, 3821026753]

    def test_distinct_placements_get_distinct_streams(self):
        # The old abs(hash(...)) derivation could collide sign pairs;
        # spawn keys keep every coordinate in the mix.
        combos = [
            (eve, cells)
            for eve in (1, 3, 5)
            for cells in ((0, 2, 6), (0, 2, 7), (2, 6, 8))
            if eve not in cells
        ]
        seen = {
            tuple(
                _experiment_seed_sequence(
                    7, Placement(eve_cell=eve, terminal_cells=cells), 3
                ).generate_state(2)
            )
            for eve, cells in combos
        }
        assert len(seen) == len(combos)


class TestPlacementLossSpecs:
    def test_one_spec_per_leader_with_eve_last(self, testbed):
        rng = np.random.default_rng(3)
        specs = placement_loss_specs(testbed, PLACEMENT, rng, probe_trials=40)
        assert len(specs) == PLACEMENT.n_terminals
        for spec in specs:
            # n - 1 receiver links plus Eve's antenna, all probabilities.
            probs = spec.link_loss_probabilities(PLACEMENT.n_terminals)
            assert probs.shape == (PLACEMENT.n_terminals,)
            assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_jammed_grid_is_lossy(self, testbed):
        # With a 10 dBm interferer the mean link loss cannot be ~zero;
        # a wiring bug (wrong link order, probe of the wrong pair)
        # typically shows up as degenerate rates.
        rng = np.random.default_rng(3)
        specs = placement_loss_specs(testbed, PLACEMENT, rng, probe_trials=40)
        mean_loss = float(
            np.mean(
                [spec.link_loss_probabilities(PLACEMENT.n_terminals) for spec in specs]
            )
        )
        assert 0.05 < mean_loss < 0.95


class TestBatchedPlacementExperiment:
    def test_record_fields_sane(self, testbed):
        record = run_placement_experiment_batched(
            testbed,
            PLACEMENT,
            LeaveOneOutEstimatorSpec(rate_margin=0.05),
            CONFIG,
            rounds_per_leader=4,
        )
        assert record.n_terminals == 4
        assert record.placement == PLACEMENT
        assert 0.0 <= record.reliability <= 1.0
        assert 0.0 <= record.efficiency < 1.0
        assert record.transmitted_bits > 0
        assert record.secret_bits >= 0

    def test_deterministic_per_campaign_seed(self, testbed):
        kwargs = dict(rounds_per_leader=4)
        a = run_placement_experiment_batched(
            testbed, PLACEMENT, OracleEstimatorSpec(), CONFIG, **kwargs
        )
        b = run_placement_experiment_batched(
            testbed, PLACEMENT, OracleEstimatorSpec(), CONFIG, **kwargs
        )
        assert a.efficiency == b.efficiency
        assert a.reliability == b.reliability

    def test_zero_secret_reports_nan_not_perfect(self):
        """Regression: an experiment with no secret used to report
        reliability 1.0, flattering the campaign aggregates.  An
        all-jammed deployment (every link fully lossy) must yield NaN
        and be excluded from the Figure-2 population."""
        dead = Testbed(TestbedConfig(base_loss=1.0))
        record = run_placement_experiment_batched(
            dead,
            PLACEMENT,
            LeaveOneOutEstimatorSpec(rate_margin=0.05),
            CONFIG,
            rounds_per_leader=2,
        )
        assert record.secret_bits == 0
        assert math.isnan(record.reliability)
        result = run_campaign(
            dead,
            config=CONFIG,
            engine="batched",
            estimator_spec=LeaveOneOutEstimatorSpec(rate_margin=0.05),
            rounds_per_leader=2,
        )
        assert all(math.isnan(r.reliability) for r in result.records)
        assert result.reliabilities(4) == []


class TestEngineDispatch:
    def test_batched_campaign_runs(self, testbed):
        result = run_campaign(
            testbed,
            config=CONFIG,
            engine="batched",
            estimator_spec=LeaveOneOutEstimatorSpec(rate_margin=0.05),
            rounds_per_leader=4,
        )
        assert len(result.records) == 2
        assert result.group_sizes() == [4]
        for r in result.records:
            assert 0.0 <= r.reliability <= 1.0

    def test_unknown_engine_rejected(self, testbed):
        with pytest.raises(ValueError, match="unknown engine"):
            run_campaign(testbed, engine="warp", config=CONFIG)

    def test_missing_and_mismatched_arguments_rejected(self, testbed):
        with pytest.raises(ValueError, match="needs an estimator_spec"):
            run_campaign(testbed, engine="batched", config=CONFIG)
        with pytest.raises(ValueError, match="needs an estimator_factory"):
            run_campaign(testbed, engine="packet", config=CONFIG)
        with pytest.raises(ValueError, match="batched engine"):
            run_campaign(
                testbed,
                estimator_factory=lambda tb, pl: OracleEstimator(),
                engine="batched",
                estimator_spec=OracleEstimatorSpec(),
                config=CONFIG,
            )
        with pytest.raises(ValueError, match="packet engine"):
            run_campaign(
                testbed,
                estimator_factory=lambda tb, pl: OracleEstimator(),
                engine="packet",
                estimator_spec=OracleEstimatorSpec(),
                config=CONFIG,
            )

    def test_unknown_executor_rejected(self, testbed):
        with pytest.raises(ValueError, match="unknown executor"):
            run_campaign(
                testbed,
                engine="batched",
                estimator_spec=OracleEstimatorSpec(),
                config=CONFIG,
                max_workers=2,
                executor="fiber",
            )


class TestShardedCampaigns:
    """Placements are independent: sharding must be bit-identical."""

    def test_packet_engine_sharded_equals_serial(self, testbed):
        serial = run_campaign(
            testbed, estimator_factory=loo_factory, config=CONFIG
        )
        sharded = run_campaign(
            testbed,
            estimator_factory=loo_factory,
            config=CONFIG,
            max_workers=2,
        )
        assert serial.records == sharded.records

    def test_batched_engine_sharded_equals_serial(self, testbed):
        kwargs = dict(
            config=CONFIG,
            engine="batched",
            estimator_spec=LeaveOneOutEstimatorSpec(rate_margin=0.05),
            rounds_per_leader=4,
        )
        serial = run_campaign(testbed, **kwargs)
        sharded = run_campaign(testbed, max_workers=3, **kwargs)
        assert serial.records == sharded.records

    def test_process_executor_sharded_equals_serial(self, testbed):
        # The reference script's --executor process path: everything it
        # ships to the pool (testbed, factory, config) must pickle and
        # reproduce the serial records exactly.
        serial = run_campaign(
            testbed, estimator_factory=loo_factory, config=CONFIG
        )
        sharded = run_campaign(
            testbed,
            estimator_factory=loo_factory,
            config=CONFIG,
            max_workers=2,
            executor="process",
        )
        assert serial.records == sharded.records


class TestMultiAntennaEveBridge:
    """The §6 threat model through the analytic bridge: extra Eve
    antenna cells must reach the ScheduleLossSpec columns, the union
    accounting, and the per-packet medium identically."""

    EVE_CELLS = (3, 5)

    def multi_config(self, **overrides):
        kwargs = dict(
            session=SessionConfig(
                n_x_packets=90, payload_bytes=24, secrecy_slack=1
            ),
            seed=2012,
            max_placements_per_n=3,
            group_sizes=(4,),
            eve_extra_cells=self.EVE_CELLS,
        )
        kwargs.update(overrides)
        return CampaignConfig(**kwargs)

    def test_blocked_placements_are_skipped(self, testbed):
        # Placements whose terminals sit in an antenna cell are dropped
        # from the sweep (both engines see the same filtered work list).
        config = self.multi_config(max_placements_per_n=None)
        result = run_campaign(
            testbed,
            config=config,
            engine="batched",
            estimator_spec=OracleEstimatorSpec(),
            rounds_per_leader=1,
        )
        assert result.records  # the sweep is not empty...
        for record in result.records:  # ...and never uses a blocked cell
            assert set(self.EVE_CELLS).isdisjoint(record.placement.terminal_cells)

    def test_antenna_cells_overlapping_terminals_rejected(self, testbed):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError, match="cannot share terminal cells"):
            placement_schedule_specs(
                testbed, PLACEMENT, rng, eve_extra_cells=(PLACEMENT.terminal_cells[0],)
            )

    def test_batched_agrees_with_packet_oracle(self, testbed):
        """Acceptance: an eve_extra_cells >= 2 testbed campaign on the
        batched engine tracks the per-packet oracle within Monte-Carlo
        tolerance, and honest realised planning keeps it from sitting
        meaningfully above the oracle."""
        config = self.multi_config()
        packet = run_campaign(
            testbed, estimator_factory=loo_factory, config=config
        )
        batched = run_campaign(
            testbed,
            config=config,
            engine="batched",
            estimator_spec=LeaveOneOutEstimatorSpec(rate_margin=0.05),
            rounds_per_leader=8,
        )
        packet_rel = float(np.mean(packet.reliabilities(4)))
        batched_rel = float(np.mean(batched.reliabilities(4)))
        assert batched_rel == pytest.approx(packet_rel, abs=0.15)
        assert batched_rel <= packet_rel + 0.05

    def test_extra_antennas_shrink_the_secret(self, testbed):
        # Same placements, oracle estimator: giving Eve two more
        # vantage cells must cost secret bits on the batched bridge.
        kwargs = dict(
            engine="batched",
            estimator_spec=OracleEstimatorSpec(),
            rounds_per_leader=6,
        )
        single = run_campaign(
            testbed, config=self.multi_config(eve_extra_cells=()), **kwargs
        )
        multi = run_campaign(testbed, config=self.multi_config(), **kwargs)
        # Compare only placements present in both sweeps (the multi
        # sweep drops those whose terminals use an antenna cell).
        multi_by_placement = {r.placement: r for r in multi.records}
        pairs = [
            (r, multi_by_placement[r.placement])
            for r in single.records
            if r.placement in multi_by_placement
        ]
        assert pairs
        assert sum(m.secret_bits for _, m in pairs) < sum(
            s.secret_bits for s, _ in pairs
        )


class TestCrossValidation:
    def test_batched_reliability_within_oracle_tolerance(self, testbed):
        """Acceptance: the slot-aware batched bridge must track the
        per-packet oracle on the same placements — the campaign-scale
        comparison lives in benchmarks/test_sim_campaign.py."""
        config = CampaignConfig(
            session=SessionConfig(
                n_x_packets=90, payload_bytes=24, secrecy_slack=1
            ),
            seed=2012,
            max_placements_per_n=3,
            group_sizes=(4,),
        )
        packet = run_campaign(
            testbed, estimator_factory=loo_factory, config=config
        )
        batched = run_campaign(
            testbed,
            config=config,
            engine="batched",
            estimator_spec=LeaveOneOutEstimatorSpec(rate_margin=0.05),
            rounds_per_leader=8,
        )
        packet_rel = float(np.mean(packet.reliabilities(4)))
        batched_rel = float(np.mean(batched.reliabilities(4)))
        assert batched_rel == pytest.approx(packet_rel, abs=0.15)
        # Efficiency is not directly comparable: the packet engine's is
        # ledger-exact (headers + control traffic), the batched engine's
        # idealised x+z, so the latter strictly brackets from above.
        packet_eff = float(np.mean(packet.efficiencies(4)))
        batched_eff = float(np.mean(batched.efficiencies(4)))
        assert 0.0 < packet_eff < batched_eff < 1.0
