"""The batched testbed-campaign path: probing, bridging, aggregation.

scripts/run_reference_campaign.py defaults to this path, so it needs
coverage independent of the synthetic-scenario sim suite: the
testbed-to-MatrixLossSpec bridge (link ordering!), the per-placement
batched experiment, and run_campaign's engine dispatch.
"""

import numpy as np
import pytest

from repro import SessionConfig, Testbed, TestbedConfig
from repro.analysis import (
    CampaignConfig,
    placement_loss_specs,
    run_campaign,
    run_placement_experiment_batched,
)
from repro.core import OracleEstimator
from repro.sim import LeaveOneOutEstimatorSpec, OracleEstimatorSpec
from repro.testbed import Placement


@pytest.fixture(scope="module")
def testbed():
    return Testbed(TestbedConfig(interferer_power_dbm=10.0))


PLACEMENT = Placement(eve_cell=4, terminal_cells=(0, 2, 6, 8))
CONFIG = CampaignConfig(
    session=SessionConfig(n_x_packets=60, payload_bytes=40, secrecy_slack=1),
    seed=2012,
    max_placements_per_n=2,
    group_sizes=(4,),
)


class TestPlacementLossSpecs:
    def test_one_spec_per_leader_with_eve_last(self, testbed):
        rng = np.random.default_rng(3)
        specs = placement_loss_specs(testbed, PLACEMENT, rng, probe_trials=40)
        assert len(specs) == PLACEMENT.n_terminals
        for spec in specs:
            # n - 1 receiver links plus Eve's antenna, all probabilities.
            probs = spec.link_loss_probabilities(PLACEMENT.n_terminals)
            assert probs.shape == (PLACEMENT.n_terminals,)
            assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_jammed_grid_is_lossy(self, testbed):
        # With a 10 dBm interferer the mean link loss cannot be ~zero;
        # a wiring bug (wrong link order, probe of the wrong pair)
        # typically shows up as degenerate rates.
        rng = np.random.default_rng(3)
        specs = placement_loss_specs(testbed, PLACEMENT, rng, probe_trials=40)
        mean_loss = float(
            np.mean(
                [spec.link_loss_probabilities(PLACEMENT.n_terminals) for spec in specs]
            )
        )
        assert 0.05 < mean_loss < 0.95


class TestBatchedPlacementExperiment:
    def test_record_fields_sane(self, testbed):
        record = run_placement_experiment_batched(
            testbed,
            PLACEMENT,
            LeaveOneOutEstimatorSpec(rate_margin=0.05),
            CONFIG,
            rounds_per_leader=4,
            probe_trials=40,
        )
        assert record.n_terminals == 4
        assert record.placement == PLACEMENT
        assert 0.0 <= record.reliability <= 1.0
        assert 0.0 <= record.efficiency < 1.0
        assert record.transmitted_bits > 0
        assert record.secret_bits >= 0

    def test_deterministic_per_campaign_seed(self, testbed):
        kwargs = dict(rounds_per_leader=4, probe_trials=40)
        a = run_placement_experiment_batched(
            testbed, PLACEMENT, OracleEstimatorSpec(), CONFIG, **kwargs
        )
        b = run_placement_experiment_batched(
            testbed, PLACEMENT, OracleEstimatorSpec(), CONFIG, **kwargs
        )
        assert a.efficiency == b.efficiency
        assert a.reliability == b.reliability


class TestEngineDispatch:
    def test_batched_campaign_runs(self, testbed):
        result = run_campaign(
            testbed,
            config=CONFIG,
            engine="batched",
            estimator_spec=LeaveOneOutEstimatorSpec(rate_margin=0.05),
            rounds_per_leader=4,
            probe_trials=40,
        )
        assert len(result.records) == 2
        assert result.group_sizes() == [4]
        for r in result.records:
            assert 0.0 <= r.reliability <= 1.0

    def test_unknown_engine_rejected(self, testbed):
        with pytest.raises(ValueError, match="unknown engine"):
            run_campaign(testbed, engine="warp", config=CONFIG)

    def test_missing_and_mismatched_arguments_rejected(self, testbed):
        with pytest.raises(ValueError, match="needs an estimator_spec"):
            run_campaign(testbed, engine="batched", config=CONFIG)
        with pytest.raises(ValueError, match="needs an estimator_factory"):
            run_campaign(testbed, engine="packet", config=CONFIG)
        with pytest.raises(ValueError, match="batched engine"):
            run_campaign(
                testbed,
                estimator_factory=lambda tb, pl: OracleEstimator(),
                engine="batched",
                estimator_spec=OracleEstimatorSpec(),
                config=CONFIG,
            )
        with pytest.raises(ValueError, match="packet engine"):
            run_campaign(
                testbed,
                estimator_factory=lambda tb, pl: OracleEstimator(),
                engine="packet",
                estimator_spec=OracleEstimatorSpec(),
                config=CONFIG,
            )
