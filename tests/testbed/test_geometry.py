"""Geometry: the paper's 14 m² / 3×3 grid numbers."""

import math

import pytest

from repro.testbed.geometry import TestbedGeometry


class TestPaperNumbers:
    def test_cell_diagonal_is_papers_min_distance(self):
        g = TestbedGeometry()
        # The paper: minimum distance 1.75 m = diagonal of a logical cell.
        assert abs(g.cell_diagonal_m - 1.75) < 0.02

    def test_area_and_side(self):
        g = TestbedGeometry()
        assert g.side_m == pytest.approx(math.sqrt(14.0))
        assert g.n_cells == 9


class TestIndexing:
    def test_row_col_roundtrip(self):
        g = TestbedGeometry()
        for cell in g.all_cells():
            assert g.row_of(cell) * g.grid + g.col_of(cell) == cell

    def test_cell_centres_inside_area(self):
        g = TestbedGeometry()
        for cell in g.all_cells():
            x, y = g.cell_center(cell)
            assert 0 < x < g.side_m
            assert 0 < y < g.side_m

    def test_rows_and_cols(self):
        g = TestbedGeometry()
        assert g.cells_in_row(0) == [0, 1, 2]
        assert g.cells_in_col(2) == [2, 5, 8]
        with pytest.raises(ValueError):
            g.cells_in_row(3)
        with pytest.raises(ValueError):
            g.cells_in_col(-1)

    def test_out_of_range_cell(self):
        g = TestbedGeometry()
        with pytest.raises(ValueError):
            g.cell_center(9)
        with pytest.raises(ValueError):
            g.row_of(-1)


class TestDistances:
    def test_adjacent_distance_is_cell_size(self):
        g = TestbedGeometry()
        assert g.distance(0, 1) == pytest.approx(g.cell_size_m)

    def test_diagonal_neighbors(self):
        g = TestbedGeometry()
        assert g.distance(0, 4) == pytest.approx(g.cell_diagonal_m)

    def test_corner_to_corner(self):
        g = TestbedGeometry()
        assert g.distance(0, 8) == pytest.approx(2 * g.cell_diagonal_m)

    def test_symmetric(self):
        g = TestbedGeometry()
        assert g.distance(2, 6) == g.distance(6, 2)


class TestValidation:
    def test_bad_area(self):
        with pytest.raises(ValueError):
            TestbedGeometry(area_m2=0)

    def test_bad_grid(self):
        with pytest.raises(ValueError):
            TestbedGeometry(grid=0)

    def test_custom_grid(self):
        g = TestbedGeometry(area_m2=16.0, grid=4)
        assert g.n_cells == 16
        assert g.cell_size_m == pytest.approx(1.0)
