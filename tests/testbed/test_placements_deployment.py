"""Placements enumeration and the physical deployment."""

import math

import numpy as np
import pytest

from repro.net.node import Eavesdropper, Terminal
from repro.net.packet import Packet, PacketKind
from repro.testbed.deployment import Testbed, TestbedConfig
from repro.testbed.placements import (
    Placement,
    enumerate_placements,
    placement_count,
    sample_placements,
)


class TestPlacements:
    def test_counts_match_paper(self):
        # 9 * C(8, n) — the paper's experiment population.
        assert placement_count(8) == 9
        assert placement_count(3) == 9 * math.comb(8, 3)
        for n in range(3, 9):
            assert len(list(enumerate_placements(n))) == placement_count(n)

    def test_all_placements_valid(self):
        for placement in enumerate_placements(4):
            assert placement.eve_cell not in placement.terminal_cells
            assert len(set(placement.terminal_cells)) == 4

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(enumerate_placements(0))
        with pytest.raises(ValueError):
            list(enumerate_placements(9))

    def test_placement_validation(self):
        with pytest.raises(ValueError):
            Placement(eve_cell=0, terminal_cells=(0, 1))
        with pytest.raises(ValueError):
            Placement(eve_cell=5, terminal_cells=(1, 1))

    def test_sampling_deterministic_and_bounded(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        a = sample_placements(3, 10, rng1)
        b = sample_placements(3, 10, rng2)
        assert a == b
        assert len(a) == 10

    def test_sampling_caps_at_population(self):
        rng = np.random.default_rng(5)
        assert len(sample_placements(8, 1000, rng)) == 9


class TestDeployment:
    @pytest.fixture
    def testbed(self):
        return Testbed(TestbedConfig(interferer_power_dbm=10.0))

    def test_build_medium_node_types(self, testbed, rng):
        placement = Placement(eve_cell=4, terminal_cells=(0, 2, 6))
        medium, names = testbed.build_medium(placement, rng)
        assert len(names) == 3
        for name in names:
            assert isinstance(medium.node(name), Terminal)
        assert isinstance(medium.node("eve"), Eavesdropper)

    def test_positions_near_cell_centres(self, testbed, rng):
        placement = Placement(eve_cell=4, terminal_cells=(0, 2, 6))
        medium, names = testbed.build_medium(placement, rng)
        geometry = testbed.config.geometry
        jitter = testbed.config.position_jitter_m
        for name, cell in zip(names, placement.terminal_cells):
            cx, cy = geometry.cell_center(cell)
            x, y = medium.node(name).position
            assert abs(x - cx) <= jitter + 1e-9
            assert abs(y - cy) <= jitter + 1e-9

    def test_multi_antenna_eve(self, testbed, rng):
        placement = Placement(eve_cell=4, terminal_cells=(0, 2))
        medium, _ = testbed.build_medium(placement, rng, eve_extra_cells=(8,))
        assert len(medium.node("eve").antenna_positions()) == 2

    def test_extra_antenna_in_terminal_cell_rejected(self, testbed, rng):
        placement = Placement(eve_cell=4, terminal_cells=(0, 2))
        with pytest.raises(ValueError):
            testbed.build_medium(placement, rng, eve_extra_cells=(0,))

    def test_eve_candidate_cells(self, testbed):
        placement = Placement(eve_cell=4, terminal_cells=(0, 1, 2, 3, 5, 6, 7, 8))
        assert testbed.eve_candidate_cells(placement) == [4]
        small = Placement(eve_cell=4, terminal_cells=(0, 8))
        assert len(testbed.eve_candidate_cells(small)) == 7

    def test_jammed_links_lossier_than_clear(self, testbed, rng):
        """The engineered contrast: in-beam receivers lose much more."""
        placement = Placement(eve_cell=4, terminal_cells=(0, 2, 6, 8))
        probe = testbed.link_loss_probe(placement, rng, trials=150)
        geometry = testbed.config.geometry
        field = testbed.interference
        jam_rates, clear_rates = [], []
        # T0 is in cell 0; check its reception of T2's transmissions.
        for pattern in range(9):
            slot = pattern * testbed.config.slots_per_pattern
            jammed = field.jammed_cells(geometry, slot)
            rate = probe[("T1", "T0", pattern)]
            (jam_rates if 0 in jammed else clear_rates).append(rate)
        assert np.mean(jam_rates) > np.mean(clear_rates) + 0.3

    def test_interference_ablation_switch(self, rng):
        quiet = Testbed(TestbedConfig(interference_enabled=False))
        placement = Placement(eve_cell=4, terminal_cells=(0, 8))
        probe = quiet.link_loss_probe(placement, rng, trials=100)
        # Without interference, LOS links at 4 m are nearly lossless
        # (only the base_loss floor remains).
        base = quiet.config.base_loss
        for (src, dst, pattern), rate in probe.items():
            assert rate < base + 0.1
