"""Interference: beams, the 9 patterns, coverage guarantees."""

import math

import pytest

from repro.net.radio import RadioConfig
from repro.testbed.geometry import TestbedGeometry
from repro.testbed.interference import (
    InterfererAntenna,
    build_interference_field,
)


@pytest.fixture
def field():
    return build_interference_field(
        TestbedGeometry(), RadioConfig(), power_dbm=10.0, slots_per_pattern=10
    )


@pytest.fixture
def geometry():
    return TestbedGeometry()


class TestLayout:
    def test_twelve_antennas(self, field):
        # 3 row pairs + 3 column pairs = 12 = 6 WARP nodes x 2 antennas.
        assert len(field.antennas) == 12

    def test_nine_patterns(self, field):
        assert field.n_patterns() == 9

    def test_patterns_cover_all_row_col_combos(self, field):
        combos = {(p.row, p.col) for p in field.patterns}
        assert combos == {(r, c) for r in range(3) for c in range(3)}

    def test_four_active_antennas_per_pattern(self, field):
        for p in field.patterns:
            assert len(p.antenna_ids) == 4


class TestBeamGeometry:
    def test_boresight_full_gain(self):
        ant = InterfererAntenna(position=(0.0, 0.0), azimuth_rad=0.0, power_dbm=0.0)
        assert ant.gain_db_towards((5.0, 0.0)) == 0.0

    def test_off_axis_suppressed(self):
        ant = InterfererAntenna(position=(0.0, 0.0), azimuth_rad=0.0, power_dbm=0.0)
        assert ant.gain_db_towards((0.0, 5.0)) == -ant.sidelobe_suppression_db

    def test_beam_edge(self):
        ant = InterfererAntenna(
            position=(0.0, 0.0), azimuth_rad=0.0, power_dbm=0.0, beamwidth_deg=22.0
        )
        inside = (5.0, 5.0 * math.tan(math.radians(10.0)))
        outside = (5.0, 5.0 * math.tan(math.radians(12.0)))
        assert ant.gain_db_towards(inside) == 0.0
        assert ant.gain_db_towards(outside) < 0.0

    def test_power_decays_with_distance(self):
        ant = InterfererAntenna(position=(0.0, 0.0), azimuth_rad=0.0, power_dbm=10.0)
        cfg = RadioConfig()
        near = ant.power_at_dbm((1.0, 0.0), cfg)
        far = ant.power_at_dbm((3.0, 0.0), cfg)
        assert near > far


class TestCoverage:
    def test_jammed_cells_are_row_plus_column(self, field, geometry):
        pattern = field.patterns[0]
        slot = 0
        jammed = field.jammed_cells(geometry, slot)
        expected = set(geometry.cells_in_row(pattern.row)) | set(
            geometry.cells_in_col(pattern.col)
        )
        assert jammed == expected
        assert len(jammed) == 5  # 3 + 3 - 1 overlap

    def test_every_cell_jammed_in_exactly_five_patterns(self, field, geometry):
        for cell in geometry.all_cells():
            count = sum(
                1
                for k in range(9)
                if cell in field.jammed_cells(geometry, k * field.slots_per_pattern)
            )
            assert count == 5, cell

    def test_schedule_rotation(self, field):
        assert field.pattern_at(0) == field.patterns[0]
        assert field.pattern_at(10) == field.patterns[1]
        assert field.pattern_at(95) == field.patterns[(95 // 10) % 9]

    def test_in_beam_interference_dominates(self, field, geometry):
        """A jammed cell must see far more interference power than a
        clear cell in the same slot."""
        slot = 0
        jammed_cell = next(iter(field.jammed_cells(geometry, slot)))
        clear_cell = next(
            c for c in geometry.all_cells()
            if c not in field.jammed_cells(geometry, slot)
        )
        jam_power = sum(
            10 ** (p / 10)
            for p in field.interference_powers_dbm(
                geometry.cell_center(jammed_cell), slot
            )
        )
        clear_power = sum(
            10 ** (p / 10)
            for p in field.interference_powers_dbm(
                geometry.cell_center(clear_cell), slot
            )
        )
        assert jam_power > 30 * clear_power

    def test_disabled_field_produces_nothing(self, field, geometry):
        field.enabled = False
        assert field.interference_powers_dbm((1.0, 1.0), 0) == []
        assert field.jammed_cells(geometry, 0) == set()
