"""Analytic per-pattern PER table vs the Monte-Carlo link probe."""

import numpy as np
import pytest

from repro.sim import ScheduleLossSpec
from repro.testbed import (
    Placement,
    Testbed,
    TestbedConfig,
    pattern_mean_sinr_db,
    placement_schedule_specs,
    schedule_loss_table,
)

PLACEMENT = Placement(eve_cell=4, terminal_cells=(0, 2, 6, 8))


@pytest.fixture(scope="module")
def testbed():
    # Zero jitter so the probe's medium and the analytic table see the
    # exact same geometry (cell centres).
    return Testbed(
        TestbedConfig(interferer_power_dbm=10.0, position_jitter_m=0.0)
    )


def cell_positions(testbed, placement):
    geometry = testbed.config.geometry
    terminals = [geometry.cell_center(c) for c in placement.terminal_cells]
    return terminals, geometry.cell_center(placement.eve_cell)


class TestTableVsMonteCarloProbe:
    def test_agreement_within_mc_tolerance(self, testbed):
        """The quadrature expectation must sit inside the probe's
        Monte-Carlo band on every (link, pattern) — this is the
        correctness contract that lets the analytic path replace the
        probe in the campaign bridge."""
        rng = np.random.default_rng(3)
        probe = testbed.link_loss_probe(
            PLACEMENT, rng, packet_bytes=128, trials=600
        )
        terminals, eve = cell_positions(testbed, PLACEMENT)
        table = schedule_loss_table(
            testbed, terminals, terminals + [eve], payload_bytes=128
        )
        names = [f"T{i}" for i in range(PLACEMENT.n_terminals)]
        diffs = []
        for k in range(testbed.interference.n_patterns()):
            for i, src in enumerate(names):
                for j, dst in enumerate(names + ["eve"]):
                    if dst == src:
                        continue
                    diffs.append(abs(probe[(src, dst, k)] - table[k, i, j]))
        diffs = np.asarray(diffs)
        # 600-trial probe noise is sigma <= 0.021 per entry; the
        # quadrature itself is accurate to ~2e-3.
        assert diffs.max() < 0.09
        assert diffs.mean() < 0.02

    def test_jammed_patterns_are_lossier_than_clear_ones(self, testbed):
        terminals, eve = cell_positions(testbed, PLACEMENT)
        table = schedule_loss_table(testbed, terminals, [eve])
        geometry = testbed.config.geometry
        dwell = testbed.config.slots_per_pattern
        jammed, clear = [], []
        for k in range(testbed.interference.n_patterns()):
            cells = testbed.interference.jammed_cells(geometry, k * dwell)
            target = jammed if PLACEMENT.eve_cell in cells else clear
            target.append(table[k].mean())
        assert min(jammed) > max(clear)

    def test_base_loss_floor(self, testbed):
        config = TestbedConfig(
            interferer_power_dbm=10.0, position_jitter_m=0.0, base_loss=0.1
        )
        floored = Testbed(config)
        terminals, eve = cell_positions(floored, PLACEMENT)
        table = schedule_loss_table(floored, terminals, terminals + [eve])
        assert np.all(table >= 0.1)

    def test_interference_disabled_collapses_to_one_clear_pattern(self):
        quiet = Testbed(
            TestbedConfig(interference_enabled=False, position_jitter_m=0.0)
        )
        terminals, eve = cell_positions(quiet, PLACEMENT)
        sinr = pattern_mean_sinr_db(quiet, terminals, [eve])
        assert sinr.shape[0] == 1
        table = schedule_loss_table(quiet, terminals, terminals + [eve])
        # Short LOS links without interference are near-lossless beyond
        # the residual base loss.
        assert np.all(table < quiet.config.base_loss + 0.05)

    def test_stronger_interferers_raise_inbeam_loss(self):
        weak = Testbed(TestbedConfig(interferer_power_dbm=0.0, position_jitter_m=0.0))
        strong = Testbed(TestbedConfig(interferer_power_dbm=10.0, position_jitter_m=0.0))
        terminals, eve = cell_positions(weak, PLACEMENT)
        weak_table = schedule_loss_table(weak, terminals, [eve])
        strong_table = schedule_loss_table(strong, terminals, [eve])
        assert strong_table.max() > weak_table.max()


class TestPlacementScheduleSpecs:
    def test_one_spec_per_leader_with_schedule_shape(self, testbed):
        rng = np.random.default_rng(0)
        specs = placement_schedule_specs(testbed, PLACEMENT, rng)
        assert len(specs) == PLACEMENT.n_terminals
        for spec in specs:
            assert isinstance(spec, ScheduleLossSpec)
            assert spec.n_patterns == testbed.interference.n_patterns()
            assert spec.slots_per_pattern == testbed.config.slots_per_pattern
            probs = spec.link_loss_probabilities(PLACEMENT.n_terminals)
            assert probs.shape == (PLACEMENT.n_terminals,)
            assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_marginals_match_legacy_probe_bridge(self, testbed):
        """The slot-aware bridge must agree with the old pattern-averaged
        probe on the *marginal* per-link loss — it adds burstiness, it
        does not move the mean."""
        from repro.analysis import placement_loss_specs

        rng = np.random.default_rng(3)
        probed = placement_loss_specs(
            testbed, PLACEMENT, rng, probe_trials=400
        )
        analytic = placement_schedule_specs(
            testbed, PLACEMENT, np.random.default_rng(3), payload_bytes=128
        )
        n = PLACEMENT.n_terminals
        for probe_spec, schedule_spec in zip(probed, analytic):
            assert np.allclose(
                probe_spec.link_loss_probabilities(n),
                schedule_spec.link_loss_probabilities(n),
                atol=0.04,
            )

    def test_jitter_consumes_the_same_stream_as_build_medium(self):
        jittered = Testbed(
            TestbedConfig(interferer_power_dbm=10.0, position_jitter_m=0.3)
        )
        seed = 11
        terminals, eve = jittered.node_positions(
            PLACEMENT, np.random.default_rng(seed)
        )
        medium, names = jittered.build_medium(
            PLACEMENT, np.random.default_rng(seed)
        )
        for name, expected in zip(names, terminals):
            assert medium.node(name).position == expected
        assert medium.node("eve").position == eve
