"""The interference-aware estimator and its calibration."""

import numpy as np
import pytest

from repro.core.estimator import RoundContext
from repro.testbed.deployment import Testbed, TestbedConfig
from repro.testbed.estimator import (
    InterferenceAwareEstimator,
    calibrate_min_jam_loss,
)


@pytest.fixture(scope="module")
def testbed():
    return Testbed(TestbedConfig(interferer_power_dbm=10.0))


def make_context(n_packets=90, slots_per_packet=1):
    x_slots = {i: i * slots_per_packet for i in range(n_packets)}
    return RoundContext(
        leader="T0", reports={}, n_packets=n_packets, x_slots=x_slots
    )


class TestBudget:
    def test_scales_with_jam_share(self, testbed):
        est = InterferenceAwareEstimator(
            testbed.interference, testbed.config.geometry, min_jam_loss=0.5,
            discount=1.0,
        )
        est.begin_round(make_context(n_packets=90))
        budget = est.budget(list(range(90)))
        # Every cell is jammed 5/9 of slots: expect ~0.5 * 50 = 25.
        assert 20 <= budget <= 30

    def test_candidate_restriction_never_decreases_budget(self, testbed):
        all_cells = InterferenceAwareEstimator(
            testbed.interference, testbed.config.geometry, 0.5
        )
        one_cell = InterferenceAwareEstimator(
            testbed.interference, testbed.config.geometry, 0.5,
            candidate_cells=[4],
        )
        ctx = make_context()
        all_cells.begin_round(ctx)
        one_cell.begin_round(ctx)
        ids = list(range(40))
        assert one_cell.budget(ids) >= all_cells.budget(ids)

    def test_zero_without_slots(self, testbed):
        est = InterferenceAwareEstimator(
            testbed.interference, testbed.config.geometry, 0.5
        )
        est.begin_round(RoundContext(leader="T0", reports={}, n_packets=10))
        assert est.budget([1, 2, 3]) == 0.0

    def test_zero_floor(self, testbed):
        est = InterferenceAwareEstimator(
            testbed.interference, testbed.config.geometry, 0.0
        )
        est.begin_round(make_context())
        assert est.budget(list(range(20))) == 0.0

    def test_linear_in_discount(self, testbed):
        full = InterferenceAwareEstimator(
            testbed.interference, testbed.config.geometry, 0.5, discount=1.0
        )
        half = InterferenceAwareEstimator(
            testbed.interference, testbed.config.geometry, 0.5, discount=0.5
        )
        ctx = make_context()
        full.begin_round(ctx)
        half.begin_round(ctx)
        ids = list(range(90))
        assert half.budget(ids) == pytest.approx(0.5 * full.budget(ids))

    def test_validation(self, testbed):
        with pytest.raises(ValueError):
            InterferenceAwareEstimator(
                testbed.interference, testbed.config.geometry, 1.5
            )
        with pytest.raises(ValueError):
            InterferenceAwareEstimator(
                testbed.interference, testbed.config.geometry, 0.5, discount=0.0
            )


class TestCalibration:
    def test_floor_is_a_true_lower_bound(self, testbed):
        """The certified floor must not exceed any observed in-beam loss
        rate measured independently."""
        rng = np.random.default_rng(3)
        floor = calibrate_min_jam_loss(testbed, rng, trials=150)
        assert 0.0 < floor < 1.0
        # Spot-check one cell/pattern combination against the floor.
        from repro.net.node import Terminal
        from repro.net.packet import Packet, PacketKind
        from repro.testbed.estimator import testbed_loss_model

        geometry = testbed.config.geometry
        model = testbed_loss_model(testbed)
        packet = Packet(
            kind=PacketKind.X_DATA, src="tx",
            payload=np.zeros(100, dtype=np.uint8),
        )
        rx_pos = geometry.cell_center(4)
        dst = Terminal(name="rx", position=rx_pos)
        src = Terminal(name="tx", position=geometry.cell_center(0))
        # Find a slot jamming cell 4.
        slot = next(
            k * testbed.config.slots_per_pattern
            for k in range(9)
            if 4 in testbed.interference.jammed_cells(
                geometry, k * testbed.config.slots_per_pattern
            )
        )
        probe_rng = np.random.default_rng(9)
        losses = sum(
            1 for _ in range(400)
            if model.lost_at(src, rx_pos, dst, packet, slot, probe_rng)
        )
        assert losses / 400 >= floor - 0.1

    def test_stronger_interferers_raise_floor(self):
        weak = Testbed(TestbedConfig(interferer_power_dbm=0.0))
        strong = Testbed(TestbedConfig(interferer_power_dbm=10.0))
        rng = np.random.default_rng(4)
        weak_floor = calibrate_min_jam_loss(weak, rng, trials=100)
        strong_floor = calibrate_min_jam_loss(strong, np.random.default_rng(4), trials=100)
        assert strong_floor > weak_floor
