"""Campaign runner: grid expansion, determinism, sharding, memoization."""

import numpy as np
import pytest

from repro.sim import (
    AdversarySpec,
    CampaignRunner,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    Scenario,
    ScenarioGrid,
    run_sim_campaign,
)
from repro.sim.campaign import ShardWorkerError, shard_map
from repro.theory import clear_efficiency_cache, efficiency_cache_info

GRID = ScenarioGrid(
    group_sizes=(3, 4),
    loss_models=(IIDLossSpec(0.3), IIDLossSpec(0.5)),
    estimators=(OracleEstimatorSpec(), LeaveOneOutEstimatorSpec(0.05)),
    rounds=60,
    n_x_packets=60,
)


class TestScenarioGrid:
    def test_cartesian_expansion(self):
        cells = GRID.scenarios()
        assert len(cells) == GRID.size() == 2 * 2 * 2
        assert {c.n_terminals for c in cells} == {3, 4}
        # Every cell inherits the shared sizing.
        assert all(c.rounds == 60 and c.n_x_packets == 60 for c in cells)

    def test_axis_order_is_stable(self):
        first = GRID.scenarios()
        second = GRID.scenarios()
        assert first == second

    def test_validation(self):
        with pytest.raises(TypeError):
            ScenarioGrid(loss_models=(0.5,))
        with pytest.raises(TypeError):
            ScenarioGrid(estimators=("oracle",))
        with pytest.raises(TypeError):
            ScenarioGrid(adversaries=(1,))


class TestCampaignRunner:
    def test_runs_every_cell(self):
        result = CampaignRunner(seed=1).run(GRID)
        assert len(result.outcomes) == GRID.size()
        assert result.total_rounds == GRID.size() * 60
        assert result.group_sizes() == [3, 4]
        assert len(result.reliabilities(3)) == 4 * 60

    def test_seed_determinism(self):
        a = CampaignRunner(seed=5).run(GRID)
        b = CampaignRunner(seed=5).run(GRID)
        for oa, ob in zip(a.outcomes, b.outcomes):
            assert np.array_equal(
                oa.result.secret_packets, ob.result.secret_packets
            )
        c = CampaignRunner(seed=6).run(GRID)
        assert any(
            not np.array_equal(
                oa.result.secret_packets, oc.result.secret_packets
            )
            for oa, oc in zip(a.outcomes, c.outcomes)
        )

    def test_sharded_equals_serial(self):
        serial = CampaignRunner(seed=7, max_workers=1).run(GRID)
        sharded = CampaignRunner(seed=7, max_workers=4).run(GRID)
        for a, b in zip(serial.outcomes, sharded.outcomes):
            assert a.scenario == b.scenario
            assert np.array_equal(a.result.efficiency, b.result.efficiency)
            assert np.array_equal(a.result.reliability, b.result.reliability)

    def test_accepts_explicit_scenario_list(self):
        cells = [
            Scenario(n_terminals=3, loss=IIDLossSpec(0.4), rounds=30,
                     n_x_packets=50),
            Scenario(n_terminals=5, loss=IIDLossSpec(0.4), rounds=30,
                     n_x_packets=50,
                     adversary=AdversarySpec(antennas=2)),
        ]
        result = run_sim_campaign(cells, seed=3)
        assert [o.n_terminals for o in result.outcomes] == [3, 5]

    def test_empty_grid(self):
        assert run_sim_campaign([]).outcomes == []

    def test_progress_callback(self):
        seen = []
        CampaignRunner(seed=2).run(GRID, progress=seen.append)
        assert len(seen) == GRID.size()

    def test_reliability_summary_view(self):
        result = CampaignRunner(seed=8).run(GRID)
        summary = result.outcomes[0].reliability_summary()
        assert summary.n_experiments == 60
        assert 0.0 <= summary.minimum <= summary.median <= 1.0


class TestAllocationMemoization:
    def test_lp_solved_once_per_distinct_cell(self):
        clear_efficiency_cache()
        grid = ScenarioGrid(
            group_sizes=(4,),
            loss_models=(IIDLossSpec(0.45),),
            estimators=(OracleEstimatorSpec(), LeaveOneOutEstimatorSpec(0.05)),
            rounds=40,
            n_x_packets=50,
        )
        CampaignRunner(seed=1).run(grid)
        info = efficiency_cache_info()
        # Two distinct LP keys: the estimators differ in certifiable
        # level cap (oracle plans all levels, leave-one-out stops at
        # r - 1), but each solves exactly once.
        assert info.misses == 2
        CampaignRunner(seed=2).run(grid)
        after = efficiency_cache_info()
        assert after.misses == 2
        assert after.hits >= info.hits + 2


def _double_or_explode(item):
    """Module-level worker (process pools must pickle it)."""
    if item == 3:
        raise ValueError("boom")
    return item * 2


class TestShardMapErrors:
    """Worker failures must name the failing item, not surface as a
    bare (possibly pickled) traceback from deep inside the pool."""

    def test_serial_path_raises_raw(self):
        # max_workers=None behaves exactly like a list comprehension.
        with pytest.raises(ValueError, match="boom"):
            shard_map(_double_or_explode, [1, 3])

    def test_thread_pool_error_names_item(self):
        with pytest.raises(
            ShardWorkerError, match=r"cell-3.*ValueError: boom"
        ) as excinfo:
            shard_map(
                _double_or_explode,
                [1, 2, 3, 4],
                max_workers=2,
                label=lambda item: f"cell-{item}",
            )
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_thread_pool_default_label_is_repr(self):
        with pytest.raises(ShardWorkerError, match=r"failed on 3:"):
            shard_map(_double_or_explode, [1, 3], max_workers=2)

    def test_process_pool_error_names_item(self):
        # The regression this guards: a process worker's death used to
        # surface as an opaque pickle traceback with no scenario key.
        with pytest.raises(
            ShardWorkerError, match=r"cell-3.*ValueError: boom"
        ):
            shard_map(
                _double_or_explode,
                [1, 2, 3, 4],
                max_workers=2,
                executor="process",
                label=lambda item: f"cell-{item}",
            )

    def test_successful_map_preserves_order(self):
        items = list(range(8))
        assert shard_map(
            lambda x: x * 2, items, max_workers=3
        ) == [x * 2 for x in items]


def _double(item):
    """Module-level worker (process pools must pickle it)."""
    return item * 2


def _exploding_hook(item, result):
    if item == 3:
        raise OSError("disk full")


class TestOnResultHookErrors:
    """Satellite regression: a raising checkpoint hook must re-raise
    tagged with the failing item's label — like worker failures — on
    the serial path and both pool kinds.  (Before the fix, the hook's
    exception surfaced bare, with no clue which item's persist died.)"""

    @pytest.mark.parametrize(
        "pool_kwargs",
        [
            dict(max_workers=None),  # serial path
            dict(max_workers=2, executor="thread"),
            dict(max_workers=2, executor="process"),
        ],
        ids=["serial", "thread", "process"],
    )
    def test_hook_failure_names_item_on_every_path(self, pool_kwargs):
        with pytest.raises(
            ShardWorkerError, match=r"on_result hook failed on cell-3.*disk full"
        ) as excinfo:
            shard_map(
                _double,
                [1, 2, 3, 4],
                label=lambda item: f"cell-{item}",
                on_result=_exploding_hook,
                **pool_kwargs,
            )
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_hook_failure_default_label_is_repr(self):
        with pytest.raises(ShardWorkerError, match=r"hook failed on 3:"):
            shard_map(_double, [3], on_result=_exploding_hook)

    def test_keyboard_interrupt_in_hook_propagates_raw(self):
        """A kill landing inside the hook is a kill, not a checkpoint
        failure — the resume tests' DyingStore contract depends on it."""

        def kill_hook(item, result):
            raise KeyboardInterrupt("killed mid-checkpoint")

        for pool_kwargs in (dict(max_workers=None), dict(max_workers=2)):
            with pytest.raises(KeyboardInterrupt):
                shard_map(
                    _double, [1, 2, 3], on_result=kill_hook, **pool_kwargs
                )
