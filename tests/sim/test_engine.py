"""Batched engine unit behaviour: determinism, budgets, accounting."""

import numpy as np
import pytest

from repro.sim.engine import BatchedRoundEngine, _subset_sums, _superset_sums, run_batch
from repro.sim.spec import (
    AdversarySpec,
    CollusionEstimatorSpec,
    CombinedEstimatorSpec,
    FixedFractionEstimatorSpec,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    Scenario,
)
from repro.theory import group_efficiency


def scenario(**overrides):
    defaults = dict(
        n_terminals=3,
        loss=IIDLossSpec(0.5),
        n_x_packets=120,
        rounds=400,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestLatticeTransforms:
    def test_superset_sums_small(self):
        # r = 2 receivers: patterns {}, {0}, {1}, {0,1} with counts 1..4.
        table = np.array([[1.0, 2.0, 3.0, 4.0]])
        out = _superset_sums(table)
        assert out[0, 0b00] == 10.0  # every pattern is a superset of {}
        assert out[0, 0b01] == 2.0 + 4.0
        assert out[0, 0b10] == 3.0 + 4.0
        assert out[0, 0b11] == 4.0

    def test_subset_sums_small(self):
        table = np.array([[1.0, 2.0, 3.0, 4.0]])
        out = _subset_sums(table)
        assert out[0, 0b00] == 1.0
        assert out[0, 0b01] == 3.0
        assert out[0, 0b10] == 4.0
        assert out[0, 0b11] == 10.0

    def test_transforms_are_inverse_shapes(self):
        rng = np.random.default_rng(0)
        table = rng.random((5, 16))
        assert _superset_sums(table).shape == table.shape
        assert _subset_sums(table).shape == table.shape


class TestDeterminism:
    def test_same_seed_same_batch(self):
        a = run_batch(scenario(), seed=42)
        b = run_batch(scenario(), seed=42)
        assert np.array_equal(a.secret_packets, b.secret_packets)
        assert np.array_equal(a.efficiency, b.efficiency)
        assert np.array_equal(a.reliability, b.reliability)
        assert np.array_equal(a.eve_missed, b.eve_missed)

    def test_different_seed_differs(self):
        a = run_batch(scenario(), seed=42)
        b = run_batch(scenario(), seed=43)
        assert not np.array_equal(a.secret_packets, b.secret_packets)

    def test_shared_generator_advances(self):
        rng = np.random.default_rng(7)
        engine = BatchedRoundEngine(scenario(), rng=rng)
        a = engine.run(100)
        b = engine.run(100)
        assert not np.array_equal(a.secret_packets, b.secret_packets)


class TestOracleAccounting:
    def test_reliability_is_perfect(self):
        result = run_batch(scenario(rounds=500), seed=1)
        assert result.min_reliability == 1.0

    @pytest.mark.parametrize("n,p", [(3, 0.5), (4, 0.3), (6, 0.5)])
    def test_efficiency_tracks_theory_from_below(self, n, p):
        result = run_batch(
            scenario(n_terminals=n, loss=IIDLossSpec(p), n_x_packets=200, rounds=800),
            seed=2,
        )
        optimum = group_efficiency(n, p)
        assert result.mean_efficiency <= optimum + 0.01
        # The Figure-1 LP is a fractional bound; a realised integral
        # allocation cannot reach it (at n = 6, p = 0.5 the per-packet
        # session itself achieves ~0.72x).  The old 0.75x floor only
        # held while the engine clamped the fractional plan — the
        # optimism bug the realised planner removed.
        assert result.mean_efficiency >= 0.65 * optimum

    def test_degenerate_channels_produce_no_secret(self):
        lossless = run_batch(scenario(loss=IIDLossSpec(0.0), rounds=50), seed=3)
        assert np.all(lossless.secret_packets == 0)
        assert np.all(lossless.reliability == 1.0)  # nothing to leak
        dead = run_batch(scenario(loss=IIDLossSpec(1.0), rounds=50), seed=3)
        assert np.all(dead.secret_packets == 0)

    def test_two_terminal_group(self):
        result = run_batch(scenario(n_terminals=2, rounds=300), seed=4)
        assert result.mean_efficiency == pytest.approx(0.25, abs=0.04)
        assert result.min_reliability == 1.0


class TestEstimatorBudgets:
    def test_fixed_fraction_caps_secret(self):
        conservative = run_batch(
            scenario(estimator=FixedFractionEstimatorSpec(0.1), rounds=300), seed=5
        )
        oracle = run_batch(scenario(rounds=300), seed=5)
        assert conservative.secret_packets.mean() <= oracle.secret_packets.mean()

    def test_leave_one_out_without_candidates_certifies_nothing(self):
        # n = 2: the only receiver is inside every decodable subset, so
        # no pretend-Eve evidence exists and the secret must be empty.
        result = run_batch(
            scenario(
                n_terminals=2,
                estimator=LeaveOneOutEstimatorSpec(),
                rounds=100,
            ),
            seed=6,
        )
        assert np.all(result.secret_packets == 0)
        assert np.all(result.reliability == 1.0)

    def test_margin_is_more_conservative(self):
        loose = run_batch(
            scenario(
                n_terminals=5, estimator=LeaveOneOutEstimatorSpec(0.0), rounds=300
            ),
            seed=7,
        )
        tight = run_batch(
            scenario(
                n_terminals=5, estimator=LeaveOneOutEstimatorSpec(0.15), rounds=300
            ),
            seed=7,
        )
        assert tight.secret_packets.mean() <= loose.secret_packets.mean()
        assert tight.mean_reliability >= loose.mean_reliability - 1e-9

    def test_collusion_k1_matches_leave_one_out(self):
        sc_loo = scenario(
            n_terminals=4, estimator=LeaveOneOutEstimatorSpec(0.0), rounds=200
        )
        sc_col = scenario(
            n_terminals=4, estimator=CollusionEstimatorSpec(k=1), rounds=200
        )
        a = run_batch(sc_loo, seed=8)
        b = run_batch(sc_col, seed=8)
        assert np.allclose(a.secret_packets, b.secret_packets)
        assert np.allclose(a.reliability, b.reliability)

    def test_collusion_more_antennas_less_secret(self):
        k1 = run_batch(
            scenario(n_terminals=6, estimator=CollusionEstimatorSpec(k=1), rounds=200),
            seed=9,
        )
        k2 = run_batch(
            scenario(n_terminals=6, estimator=CollusionEstimatorSpec(k=2), rounds=200),
            seed=9,
        )
        assert k2.secret_packets.mean() <= k1.secret_packets.mean() + 1e-9

    def test_combined_takes_minimum(self):
        base = scenario(n_terminals=4, rounds=200)
        fixed = run_batch(
            scenario(
                n_terminals=4,
                estimator=FixedFractionEstimatorSpec(0.05),
                rounds=200,
            ),
            seed=10,
        )
        combined = run_batch(
            scenario(
                n_terminals=4,
                estimator=CombinedEstimatorSpec(
                    children=(
                        OracleEstimatorSpec(),
                        FixedFractionEstimatorSpec(0.05),
                    )
                ),
                rounds=200,
            ),
            seed=10,
        )
        oracle = run_batch(base, seed=10)
        assert combined.secret_packets.mean() <= oracle.secret_packets.mean() + 1e-9
        assert combined.secret_packets.mean() <= fixed.secret_packets.mean() + 1e-9

    def test_max_subset_size_caps_allocation_levels(self):
        # Mirrors SessionConfig.max_subset_size: pair-wise-only planning
        # (cap 1) still produces a secret but is strictly less efficient
        # than unrestricted group planning.
        uncapped = run_batch(scenario(n_terminals=5, rounds=300), seed=21)
        capped = run_batch(
            scenario(n_terminals=5, rounds=300, max_subset_size=1), seed=21
        )
        assert capped.secret_packets.mean() > 0
        assert capped.mean_efficiency < uncapped.mean_efficiency

    def test_overpromising_estimator_degrades_reliability(self):
        # An adversary much better positioned than the terminals makes
        # the leave-one-out evidence optimistic — reliability must drop.
        result = run_batch(
            scenario(
                n_terminals=4,
                loss=IIDLossSpec(0.5),
                adversary=AdversarySpec(loss=0.05),
                estimator=LeaveOneOutEstimatorSpec(0.0),
                rounds=400,
            ),
            seed=11,
        )
        assert result.mean_reliability < 0.7

    def test_secrecy_slack_absorbs_overpromise(self):
        kwargs = dict(
            n_terminals=4,
            loss=IIDLossSpec(0.5),
            adversary=AdversarySpec(loss=0.3),
            estimator=LeaveOneOutEstimatorSpec(0.0),
            rounds=400,
        )
        no_slack = run_batch(scenario(**kwargs), seed=12)
        slack = run_batch(scenario(secrecy_slack=2, **kwargs), seed=12)
        assert slack.mean_reliability >= no_slack.mean_reliability - 1e-9
        assert slack.secret_packets.mean() <= no_slack.secret_packets.mean()


class TestResultViews:
    def test_secret_bits_and_int_floor(self):
        result = run_batch(scenario(rounds=50, payload_bytes=10), seed=13)
        assert np.all(result.secret_packets_int <= result.secret_packets + 1e-9)
        assert result.secret_bits == int(result.secret_packets_int.sum()) * 80

    def test_shape_mismatch_rejected(self):
        engine = BatchedRoundEngine(scenario(), seed=0)
        other = scenario(n_terminals=5)
        from repro.sim.reception import sample_receptions

        batch = sample_receptions(other, 10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            engine.account(batch)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedRoundEngine(scenario(), seed=0).run(0)
        with pytest.raises(ValueError):
            BatchedRoundEngine(
                Scenario(n_terminals=20, loss=IIDLossSpec(0.5)), seed=0
            )
