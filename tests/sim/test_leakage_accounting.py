"""Measured leakage: every engine cross-validated against the oracle.

``repro.core.eve.round_leakage`` — an exact rank computation over the
coefficient matrices Eve can assemble — is the ground truth for Eve's
knowledge.  The per-packet session must *store* exactly that quantity,
the batched/stacked engines must reproduce its accounting identically
wherever the arithmetic is shared (the oracle estimator certifies zero
leakage on every path), and the Monte-Carlo engines must agree with
the per-packet population within sampling tolerance everywhere else.
The stacked==batched array identity for ``hidden_dims`` and
``eve_equations`` is pinned with the rest of the shard arrays in
tests/sim/test_stack.py.
"""

import numpy as np
import pytest

from repro.core.estimator import LeaveOneOutEstimator, OracleEstimator
from repro.core.eve import round_leakage
from repro.core.session import ProtocolSession, SessionConfig
from repro.net.medium import BroadcastMedium, IIDLossModel
from repro.net.node import Eavesdropper, Terminal
from repro.sim import (
    AdversarySpec,
    GilbertElliottLossSpec,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    Scenario,
    run_batch,
)

N_PACKETS = 100
Z_COST = 2.0  # the SessionConfig default the sessions plan with

LOSSES = [IIDLossSpec(0.5), GilbertElliottLossSpec(0.1, 0.4, 0.8)]
ADVERSARIES = [AdversarySpec(), AdversarySpec(antennas=3)]


def run_session_rounds(n, p, estimator_factory, n_rounds=6, seed=7,
                       eve_antennas=1):
    """Per-packet rounds with an over-the-air Eve; returns RoundResults."""
    results = []
    names = [f"T{i}" for i in range(n)]
    for k in range(n_rounds):
        rng = np.random.default_rng(seed + 997 * k)
        eve = Eavesdropper(
            name="eve",
            extra_antennas=[(0.0, 0.0)] * (eve_antennas - 1),
        )
        nodes = [Terminal(name=x) for x in names] + [eve]
        medium = BroadcastMedium(nodes, IIDLossModel(p), rng)
        config = SessionConfig(
            n_x_packets=N_PACKETS, payload_bytes=8, z_cost_factor=Z_COST
        )
        session = ProtocolSession(
            medium, names, estimator_factory(), rng, config=config
        )
        results.append(session.run_round(names[0]))
    return results


def run_batched(loss, adversary, estimator_spec, n=3, rounds=1500, seed=3):
    scenario = Scenario(
        n_terminals=n,
        loss=loss,
        adversary=adversary,
        estimator=estimator_spec,
        n_x_packets=N_PACKETS,
        rounds=rounds,
        z_cost_factor=Z_COST,
    )
    return run_batch(scenario, seed=seed)


class TestSessionLeakageIsTheRankOracle:
    """What the per-packet session *stores* as ``result.leakage`` must
    be exactly what the rank oracle computes from the same round's
    public coefficients and Eve's true reception set — for every
    estimator and every antenna count."""

    @pytest.mark.parametrize("eve_antennas", [1, 3])
    @pytest.mark.parametrize(
        "factory",
        [OracleEstimator, lambda: LeaveOneOutEstimator(rate_margin=0.05)],
        ids=["oracle", "leave-one-out"],
    )
    def test_stored_report_matches_recomputation(self, factory, eve_antennas):
        for result in run_session_rounds(
            3, 0.5, factory, eve_antennas=eve_antennas
        ):
            recomputed = round_leakage(
                result.allocation,
                result.plan,
                result.eve_received_ids,
                list(range(result.n_x_packets)),
            )
            assert recomputed == result.leakage
            assert result.leakage.eve_missed == result.n_x_packets - len(
                result.eve_received_ids
            )


class TestOracleCertifiesZeroLeakage:
    """Under the oracle estimator the planner knows Eve's erasures
    exactly, so the measured leakage must be *zero* — bit-identical on
    the per-packet path (rank oracle) and the batched path (deficit
    accounting), across loss processes and antenna counts."""

    @pytest.mark.parametrize(
        "adversary", ADVERSARIES, ids=["eve1", "eve3"]
    )
    @pytest.mark.parametrize("loss", LOSSES, ids=["iid", "gilbert-elliott"])
    def test_batched_engine_leaks_nothing(self, loss, adversary):
        batch = run_batched(loss, adversary, OracleEstimatorSpec())
        assert np.array_equal(batch.hidden_dims, batch.secret_packets)
        assert np.array_equal(batch.leaked_dims, np.zeros_like(batch.hidden_dims))
        assert batch.total_leaked_bits == 0.0
        assert batch.min_reliability == 1.0

    @pytest.mark.parametrize("eve_antennas", [1, 3])
    def test_per_packet_session_leaks_nothing(self, eve_antennas):
        for result in run_session_rounds(
            3, 0.5, OracleEstimator, eve_antennas=eve_antennas
        ):
            assert result.leakage.leaked_dims == 0
            assert result.leakage.hidden_dims == result.leakage.secret_dims


class TestBatchedAccountingInvariants:
    """The batched arrays obey the oracle's structural identities even
    where Monte-Carlo sampling forbids per-round equality."""

    @pytest.mark.parametrize(
        "adversary", ADVERSARIES, ids=["eve1", "eve3"]
    )
    @pytest.mark.parametrize("loss", LOSSES, ids=["iid", "gilbert-elliott"])
    def test_equation_count_and_entropy_bounds(self, loss, adversary):
        batch = run_batched(
            loss, adversary, LeaveOneOutEstimatorSpec(rate_margin=0.05), n=4
        )
        # Eve's equation count is integer-exact: captured x-packets
        # plus every public z-row of the round.
        expected = (N_PACKETS - batch.eve_missed) + batch.public_packets
        assert np.array_equal(batch.eve_equations, expected)
        # Hidden dimensions live in [0, secret] — never negative,
        # never more entropy than the secret holds.
        assert np.all(batch.hidden_dims >= 0.0)
        assert np.all(batch.hidden_dims <= batch.secret_packets + 1e-9)
        # Bit conversions are one shared expression.
        payload_bits = batch.scenario.payload_bytes * 8
        assert np.array_equal(
            batch.min_entropy_bits, batch.hidden_dims * payload_bits
        )
        assert batch.total_leaked_bits == pytest.approx(
            float(batch.leaked_dims.sum()) * payload_bits
        )


class TestMonteCarloAgreement:
    """Non-oracle estimators: the engines sample different erasure
    realisations, so the cross-check is the population residual
    ``sum(hidden) / sum(secret)`` — equal within MC tolerance."""

    def test_leave_one_out_residual_within_tolerance(self):
        rounds = run_session_rounds(
            4, 0.4, lambda: LeaveOneOutEstimator(rate_margin=0.05),
            n_rounds=8,
        )
        sess_hidden = sum(r.leakage.hidden_dims for r in rounds)
        sess_secret = sum(r.leakage.secret_dims for r in rounds)
        batch = run_batched(
            IIDLossSpec(0.4),
            AdversarySpec(),
            LeaveOneOutEstimatorSpec(rate_margin=0.05),
            n=4,
            rounds=2500,
        )
        batch_residual = float(
            batch.hidden_dims.sum() / batch.secret_packets.sum()
        )
        assert batch_residual == pytest.approx(
            sess_hidden / sess_secret, abs=0.08
        )
