"""Reception sampling: marginals must match the per-packet loss models.

Every :class:`repro.sim.spec.LossSpec` has a per-packet counterpart in
:mod:`repro.net.medium` / :mod:`repro.net.channel`; these tests pin the
statistical contract between the two — same marginal loss rate per
link, within Monte-Carlo tolerance — plus seeded determinism of the
vectorised draws.
"""

import numpy as np
import pytest

from repro.net.channel import GilbertElliottChannel
from repro.net.medium import ChannelLossModel, IIDLossModel, MatrixLossModel
from repro.net.node import Terminal
from repro.net.packet import Packet, PacketKind
from repro.sim.reception import sample_receptions
from repro.sim.spec import (
    AdversarySpec,
    GilbertElliottLossSpec,
    IIDLossSpec,
    MatrixLossSpec,
    Scenario,
)


def _probe_lost_at(model, n_samples, seed=5):
    """Empirical loss rate of a per-packet LossModel on one link."""
    rng = np.random.default_rng(seed)
    src = Terminal(name="src")
    dst = Terminal(name="dst")
    packet = Packet(
        kind=PacketKind.X_DATA, src="src", payload=np.zeros(4, dtype=np.uint8)
    )
    losses = sum(
        1
        for k in range(n_samples)
        if model.lost_at(src, (0.0, 0.0), dst, packet, k, rng)
    )
    return losses / n_samples


class TestIIDMarginals:
    @pytest.mark.parametrize("p", [0.1, 0.4, 0.7])
    def test_matches_iid_loss_model(self, p):
        spec = IIDLossSpec(p)
        lost = spec.sample_losses(200, 3, 100, np.random.default_rng(1))
        batched_rate = lost.mean()
        packet_rate = _probe_lost_at(IIDLossModel(p), 20_000)
        assert batched_rate == pytest.approx(p, abs=0.01)
        assert packet_rate == pytest.approx(p, abs=0.01)

    def test_marginal_vector(self):
        assert np.allclose(IIDLossSpec(0.3).link_loss_probabilities(4), 0.3)


class TestMatrixMarginals:
    def test_per_link_rates(self):
        probs = (0.1, 0.5, 0.8)
        spec = MatrixLossSpec(probabilities=probs)
        lost = spec.sample_losses(400, 3, 120, np.random.default_rng(2))
        per_link = lost.mean(axis=(0, 2))
        assert np.allclose(per_link, probs, atol=0.01)

    def test_matches_matrix_loss_model(self):
        model = MatrixLossModel({("src", "dst"): 0.35}, default=0.0)
        packet_rate = _probe_lost_at(model, 20_000)
        spec_rate = MatrixLossSpec(probabilities=(0.35,)).link_loss_probabilities(1)[0]
        assert packet_rate == pytest.approx(spec_rate, abs=0.01)

    def test_link_count_mismatch_raises(self):
        # Too few is obviously an error; too many must not silently
        # slice either — the trailing entry is Eve's antenna, and a
        # spec sized for another group would misassign it.
        with pytest.raises(ValueError):
            MatrixLossSpec(probabilities=(0.2,)).link_loss_probabilities(3)
        with pytest.raises(ValueError):
            MatrixLossSpec(probabilities=(0.2, 0.3, 0.4)).link_loss_probabilities(2)


class TestGilbertElliottMarginals:
    SPEC = GilbertElliottLossSpec(p_g2b=0.1, p_b2g=0.3, p_good=0.05, p_bad=0.9)

    def test_steady_state_formula(self):
        s = self.SPEC
        expected = (s.p_b2g * s.p_good + s.p_g2b * s.p_bad) / (s.p_g2b + s.p_b2g)
        assert s.steady_state_loss() == pytest.approx(expected)

    def test_batched_marginal_matches_steady_state(self):
        lost = self.SPEC.sample_losses(300, 2, 200, np.random.default_rng(3))
        assert lost.mean() == pytest.approx(self.SPEC.steady_state_loss(), abs=0.01)

    def test_matches_channel_loss_model(self):
        s = self.SPEC
        channel = GilbertElliottChannel(s.p_g2b, s.p_b2g, s.p_good, s.p_bad)
        model = ChannelLossModel({("src", "dst"): channel})
        packet_rate = _probe_lost_at(model, 30_000)
        assert packet_rate == pytest.approx(s.steady_state_loss(), abs=0.015)

    def test_burstiness_raises_consecutive_loss_rate(self):
        # P(lost | previous lost) must exceed the marginal for a bursty
        # chain — the property IID sampling would destroy.
        lost = self.SPEC.sample_losses(500, 1, 150, np.random.default_rng(4))
        seq = lost[:, 0, :]
        prev = seq[:, :-1]
        nxt = seq[:, 1:]
        conditional = nxt[prev].mean()
        assert conditional > self.SPEC.steady_state_loss() + 0.05


class TestSampleReceptions:
    def test_shapes_and_link_order(self):
        scenario = Scenario(
            n_terminals=4, loss=IIDLossSpec(0.4), n_x_packets=50, rounds=10
        )
        batch = sample_receptions(scenario, 30, np.random.default_rng(0))
        assert batch.terminals.shape == (30, 3, 50)
        assert batch.eve.shape == (30, 50)

    def test_seeded_determinism(self):
        scenario = Scenario(
            n_terminals=3, loss=IIDLossSpec(0.5), n_x_packets=40, rounds=5
        )
        a = sample_receptions(scenario, 20, np.random.default_rng(77))
        b = sample_receptions(scenario, 20, np.random.default_rng(77))
        assert np.array_equal(a.terminals, b.terminals)
        assert np.array_equal(a.eve, b.eve)
        c = sample_receptions(scenario, 20, np.random.default_rng(78))
        assert not np.array_equal(a.terminals, c.terminals)

    def test_multi_antenna_eve_receives_more(self):
        base = Scenario(n_terminals=3, loss=IIDLossSpec(0.6), n_x_packets=80)
        multi = Scenario(
            n_terminals=3,
            loss=IIDLossSpec(0.6),
            adversary=AdversarySpec(antennas=3),
            n_x_packets=80,
        )
        rng = np.random.default_rng(9)
        single_rate = sample_receptions(base, 300, rng).eve.mean()
        multi_rate = sample_receptions(multi, 300, rng).eve.mean()
        assert single_rate == pytest.approx(0.4, abs=0.02)
        assert multi_rate == pytest.approx(1 - 0.6**3, abs=0.02)

    def test_adversary_loss_override(self):
        scenario = Scenario(
            n_terminals=3,
            loss=IIDLossSpec(0.2),
            adversary=AdversarySpec(loss=0.9),
            n_x_packets=60,
        )
        batch = sample_receptions(scenario, 400, np.random.default_rng(11))
        assert batch.terminals.mean() == pytest.approx(0.8, abs=0.01)
        assert batch.eve.mean() == pytest.approx(0.1, abs=0.01)

    def test_delivery_rate_helper(self):
        scenario = Scenario(
            n_terminals=3, loss=IIDLossSpec(0.3), n_x_packets=100
        )
        batch = sample_receptions(scenario, 200, np.random.default_rng(12))
        assert np.allclose(batch.delivery_rates(), 0.7, atol=0.02)
        assert batch.eve_missed_counts().shape == (200,)
