"""Cross-cell stacking: bit-identity to the per-cell engine.

The tentpole contract of :mod:`repro.sim.stack`: grouping cells that
share a stack signature into one kernel pass is a pure throughput
optimisation.  Every array of every cell's :class:`BatchResult` — and
therefore every stored shard, resumed campaign, and streamed aggregate
— must be *bit-identical* to the historical one-engine-per-cell path,
because per-cell generators stay content-keyed and the stacked kernels
mirror the per-cell arithmetic exactly.
"""

import numpy as np
import pytest

from repro.sim import (
    AdversarySpec,
    BatchedRoundEngine,
    CampaignRunner,
    CollusionEstimatorSpec,
    CombinedEstimatorSpec,
    FixedFractionEstimatorSpec,
    GilbertElliottLossSpec,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    Scenario,
    ScenarioGrid,
    group_cells,
    run_stacked_batch,
    sample_receptions_stacked,
    stack_signature,
)
from repro.store import CampaignStore

RESULT_FIELDS = (
    "secret_packets",
    "public_packets",
    "total_rows",
    "efficiency",
    "reliability",
    "eve_missed",
    "terminal_receptions",
    "delivery_rates",
    "hidden_dims",
    "eve_equations",
)

#: Every estimator family, both adversaries, bursty and IID losses —
#: the axes that exercise the oracle/certified/budget branches of the
#: accounting the scalar kernels mirror.
ESTIMATORS = (
    OracleEstimatorSpec(),
    LeaveOneOutEstimatorSpec(rate_margin=0.05),
    FixedFractionEstimatorSpec(fraction=0.6),
    CollusionEstimatorSpec(k=2),
    CombinedEstimatorSpec(
        children=(
            FixedFractionEstimatorSpec(fraction=0.5),
            LeaveOneOutEstimatorSpec(rate_margin=0.05),
        )
    ),
)


def _rng_for(scenario, seed=11):
    return np.random.default_rng(
        np.random.SeedSequence(
            entropy=seed,
            spawn_key=CampaignRunner(seed=seed).cell_seed_sequence(
                scenario
            ).spawn_key,
        )
    )


def _cells_one_signature(loss=IIDLossSpec(0.4), adversary=AdversarySpec()):
    return [
        Scenario(
            n_terminals=4,
            loss=loss,
            adversary=adversary,
            estimator=estimator,
            rounds=25,
            n_x_packets=40,
            secrecy_slack=slack,
        )
        for estimator in ESTIMATORS
        for slack in (0, 1)
    ]


def assert_results_identical(stacked, reference):
    assert len(stacked) == len(reference)
    for got, want in zip(stacked, reference):
        assert got.scenario == want.scenario
        for name in RESULT_FIELDS:
            assert np.array_equal(
                getattr(got, name), getattr(want, name)
            ), name


class TestStackSignature:
    def test_estimator_and_slack_do_not_split_groups(self):
        cells = _cells_one_signature()
        assert len({stack_signature(c) for c in cells}) == 1
        assert group_cells(cells) == [list(range(len(cells)))]

    def test_loss_adversary_shape_split_groups(self):
        base = Scenario(n_terminals=4, loss=IIDLossSpec(0.4), rounds=10,
                        n_x_packets=40)
        different = [
            Scenario(n_terminals=5, loss=IIDLossSpec(0.4), rounds=10,
                     n_x_packets=40),
            Scenario(n_terminals=4, loss=IIDLossSpec(0.5), rounds=10,
                     n_x_packets=40),
            Scenario(n_terminals=4, loss=IIDLossSpec(0.4), rounds=10,
                     n_x_packets=40, adversary=AdversarySpec(antennas=2)),
            Scenario(n_terminals=4, loss=IIDLossSpec(0.4), rounds=10,
                     n_x_packets=60),
        ]
        for other in different:
            assert stack_signature(base) != stack_signature(other)

    def test_groups_preserve_first_occurrence_order(self):
        a = Scenario(n_terminals=3, loss=IIDLossSpec(0.3), rounds=5,
                     n_x_packets=30)
        b = Scenario(n_terminals=4, loss=IIDLossSpec(0.3), rounds=5,
                     n_x_packets=30)
        groups = group_cells([a, b, a, b, a])
        assert groups == [[0, 2, 4], [1, 3]]


class TestStackedKernelBitIdentity:
    @pytest.mark.parametrize(
        "loss",
        [IIDLossSpec(0.4), GilbertElliottLossSpec(0.1, 0.4, 0.8)],
        ids=["iid", "gilbert-elliott"],
    )
    @pytest.mark.parametrize(
        "adversary",
        [AdversarySpec(), AdversarySpec(antennas=2)],
        ids=["eve1", "eve2"],
    )
    def test_stacked_equals_per_cell_engines(self, loss, adversary):
        """One stacked pass over the full estimator x slack matrix is
        array-for-array identical to per-cell engines, for bursty and
        IID channels and both adversary strengths."""
        cells = _cells_one_signature(loss=loss, adversary=adversary)
        stacked = run_stacked_batch(
            cells, [_rng_for(c) for c in cells]
        )
        reference = [
            BatchedRoundEngine(c, rng=_rng_for(c)).run() for c in cells
        ]
        assert_results_identical(stacked, reference)

    def test_single_cell_group_matches_engine(self):
        cell = _cells_one_signature()[0]
        (stacked,) = run_stacked_batch([cell], [_rng_for(cell)])
        reference = BatchedRoundEngine(cell, rng=_rng_for(cell)).run()
        assert_results_identical([stacked], [reference])

    def test_heterogeneous_rounds_in_one_group(self):
        """Cells of different lengths stack into one ragged tensor."""
        cells = [
            Scenario(n_terminals=4, loss=IIDLossSpec(0.4), rounds=rounds,
                     n_x_packets=40)
            for rounds in (5, 40, 17)
        ]
        stacked = run_stacked_batch(cells, [_rng_for(c) for c in cells])
        reference = [
            BatchedRoundEngine(c, rng=_rng_for(c)).run() for c in cells
        ]
        assert_results_identical(stacked, reference)

    def test_mixed_signature_group_rejected(self):
        cells = [
            Scenario(n_terminals=4, loss=IIDLossSpec(0.4), rounds=5,
                     n_x_packets=40),
            Scenario(n_terminals=4, loss=IIDLossSpec(0.5), rounds=5,
                     n_x_packets=40),
        ]
        with pytest.raises(ValueError, match="group_cells"):
            run_stacked_batch(cells, [_rng_for(c) for c in cells])

    def test_rng_count_mismatch_rejected(self):
        cells = _cells_one_signature()[:2]
        with pytest.raises(ValueError, match="one generator per scenario"):
            run_stacked_batch(cells, [_rng_for(cells[0])])


class TestStackedReception:
    def test_segments_tile_the_tensor_in_cell_order(self):
        cells = [
            Scenario(n_terminals=4, loss=IIDLossSpec(0.4), rounds=rounds,
                     n_x_packets=40)
            for rounds in (3, 7, 2)
        ]
        batch, segments = sample_receptions_stacked(
            cells, [_rng_for(c) for c in cells]
        )
        assert segments == [(0, 3), (3, 10), (10, 12)]
        assert batch.terminals.shape == (12, 3, 40)

    def test_blocks_are_the_per_cell_draws(self):
        """Shared storage, not shared randomness: each cell's block is
        the exact tensor its own generator yields unstacked."""
        from repro.sim.reception import sample_receptions

        cells = _cells_one_signature()[:3]
        batch, segments = sample_receptions_stacked(
            cells, [_rng_for(c) for c in cells]
        )
        for cell, (start, stop) in zip(cells, segments):
            alone = sample_receptions(cell, cell.rounds, _rng_for(cell))
            assert np.array_equal(batch.terminals[start:stop], alone.terminals)
            assert np.array_equal(batch.eve[start:stop], alone.eve)


GRID = ScenarioGrid(
    group_sizes=(3, 4),
    loss_models=(IIDLossSpec(0.3), IIDLossSpec(0.5)),
    estimators=(OracleEstimatorSpec(), LeaveOneOutEstimatorSpec(0.05)),
    rounds=30,
    n_x_packets=50,
)


def assert_outcomes_identical(a, b):
    assert len(a.outcomes) == len(b.outcomes)
    for oa, ob in zip(a.outcomes, b.outcomes):
        assert oa.scenario == ob.scenario
        for name in RESULT_FIELDS:
            assert np.array_equal(
                getattr(oa.result, name), getattr(ob.result, name)
            ), name


class TestCampaignCellBatching:
    def test_batched_campaign_equals_per_cell_campaign(self):
        batched = CampaignRunner(seed=9).run(GRID)
        percell = CampaignRunner(seed=9, cell_batching=False).run(GRID)
        assert_outcomes_identical(batched, percell)

    def test_sharded_batched_equals_serial(self):
        serial = CampaignRunner(seed=9, max_workers=1).run(GRID)
        sharded = CampaignRunner(seed=9, max_workers=4).run(GRID)
        assert_outcomes_identical(serial, sharded)

    def test_process_pool_batched_equals_serial(self):
        cells = GRID.scenarios()[:4]
        serial = CampaignRunner(seed=4).run(cells)
        pooled = CampaignRunner(
            seed=4, max_workers=2, executor="process"
        ).run(cells)
        assert_outcomes_identical(serial, pooled)

    def test_stores_byte_identical_across_paths(self, tmp_path):
        """The acceptance clause: stacked and per-cell campaigns leave
        byte-for-byte identical shards on disk."""
        batched_store = CampaignStore(tmp_path / "batched")
        percell_store = CampaignStore(tmp_path / "percell")
        CampaignRunner(seed=9, store=batched_store).run(GRID)
        CampaignRunner(
            seed=9, store=percell_store, cell_batching=False
        ).run(GRID)
        keys = batched_store.keys()
        assert keys == percell_store.keys()
        for key in keys:
            assert (
                batched_store.shard_path(key).read_bytes()
                == percell_store.shard_path(key).read_bytes()
            )

    def test_resume_mid_grid_crosses_paths(self, tmp_path):
        """A campaign checkpointed by the per-cell path resumes under
        the stacked path (and vice versa) bit-identically: the store
        format and the cell keys are path-independent."""
        reference = CampaignRunner(seed=9).run(GRID)
        cells = GRID.scenarios()

        for first_batched in (True, False):
            store = CampaignStore(tmp_path / f"cross-{first_batched}")
            CampaignRunner(
                seed=9, store=store, cell_batching=first_batched
            ).run(cells[:3])
            computed = []
            resumed = CampaignRunner(
                seed=9, store=store, cell_batching=not first_batched
            ).run(cells, progress=computed.append)
            assert len(computed) == len(cells) - 3
            assert_outcomes_identical(reference, resumed)

    def test_group_persistence_is_batched(self, tmp_path):
        """The stacked path persists whole groups through append_batch,
        not per-record appends."""
        calls = {"append": 0, "batch": 0}

        class CountingStore(CampaignStore):
            def append(self, key, record):
                calls["append"] += 1
                super().append(key, record)

            def append_batch(self, items):
                calls["batch"] += 1
                super().append_batch(items)

        CampaignRunner(seed=9, store=CountingStore(tmp_path)).run(GRID)
        assert calls["append"] == 0
        # One flush per stacked group: the grid has 2 (n, loss) pairs
        # x 2 group sizes = 4 signatures.
        assert calls["batch"] == 4
