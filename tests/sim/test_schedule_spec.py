"""ScheduleLossSpec: slot-aware sampling, marginals, burstiness."""

import numpy as np
import pytest

from repro.sim import ScheduleLossSpec

#: Two patterns, two links: link 0 jammed in pattern 0, link 1 in pattern 1.
ALTERNATING = ScheduleLossSpec(
    pattern_probabilities=((1.0, 0.0), (0.0, 1.0)),
    slots_per_pattern=5,
    random_phase=False,
)


class TestValidation:
    def test_rejects_empty_table(self):
        with pytest.raises(ValueError, match="at least one pattern"):
            ScheduleLossSpec(pattern_probabilities=())

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="same links"):
            ScheduleLossSpec(pattern_probabilities=((0.1, 0.2), (0.3,)))

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="pattern loss probability"):
            ScheduleLossSpec(pattern_probabilities=((0.1, 1.2),))

    def test_rejects_bad_dwell(self):
        with pytest.raises(ValueError, match="slots_per_pattern"):
            ScheduleLossSpec(
                pattern_probabilities=((0.1,),), slots_per_pattern=0
            )

    def test_link_count_must_match_exactly(self):
        # Like MatrixLossSpec: slicing a wider table would hand Eve a
        # receiver's probabilities.
        with pytest.raises(ValueError, match="exactly"):
            ALTERNATING.sample_losses(2, 3, 10, np.random.default_rng(0))
        with pytest.raises(ValueError, match="exactly"):
            ALTERNATING.link_loss_probabilities(1)


class TestDeterministicTiling:
    def test_phase_zero_tiles_patterns_across_packets(self):
        # 10 packets, dwell 5, two deterministic patterns: the first
        # dwell loses everything on link 0, the second on link 1.
        lost = ALTERNATING.sample_losses(3, 2, 10, np.random.default_rng(0))
        assert lost.shape == (3, 2, 10)
        assert np.all(lost[:, 0, :5]) and not np.any(lost[:, 0, 5:])
        assert np.all(lost[:, 1, 5:]) and not np.any(lost[:, 1, :5])

    def test_schedule_wraps_around_the_period(self):
        lost = ALTERNATING.sample_losses(2, 2, 20, np.random.default_rng(0))
        # Period is 10 slots: packets 10-14 replay pattern 0.
        assert np.all(lost[:, 0, 10:15]) and not np.any(lost[:, 0, 15:20])

    def test_all_links_share_a_slots_pattern(self):
        # Jamming is simultaneous across links: wherever link 0 is in
        # its jammed dwell, link 1 must be in its clear one.
        lost = ALTERNATING.sample_losses(5, 2, 10, np.random.default_rng(1))
        assert not np.any(lost[:, 0, :] & lost[:, 1, :])


class TestMarginals:
    SPEC = ScheduleLossSpec(
        pattern_probabilities=((0.9, 0.1, 0.5), (0.2, 0.6, 0.5), (0.1, 0.2, 0.5)),
        slots_per_pattern=4,
    )

    def test_marginal_is_pattern_mean(self):
        assert np.allclose(
            self.SPEC.link_loss_probabilities(3), [0.4, 0.3, 0.5]
        )

    def test_sampled_marginals_match_link_loss_probabilities(self):
        # random_phase makes every packet position uniform over the
        # schedule, so empirical marginals converge to the pattern mean
        # for any packet count (not just multiples of the period).
        lost = self.SPEC.sample_losses(6000, 3, 17, np.random.default_rng(7))
        empirical = lost.mean(axis=(0, 2))
        assert np.allclose(
            empirical, self.SPEC.link_loss_probabilities(3), atol=0.02
        )

    def test_planning_loss_excludes_eve_column(self):
        # Planning over the first 2 (receiver) links only: Eve's 0.5
        # column must not bias the LP's symmetric erasure probability.
        assert self.SPEC.planning_loss(2) == pytest.approx(0.35)

    def test_planning_loss_rejects_too_few_links(self):
        with pytest.raises(ValueError, match="planning"):
            self.SPEC.planning_loss(4)


class TestBurstiness:
    def test_dwell_correlation_exceeds_iid(self):
        """The point of the spec: when a round is shorter than the
        schedule period, its loss count depends on which dwell it lands
        in, spreading per-round counts far wider than an IID draw at the
        same marginal — the burstiness the pattern-averaged bridge
        erased.  (A round covering the whole period would see every
        pattern its exact share of slots instead.)"""
        bursty = ScheduleLossSpec(
            pattern_probabilities=((0.95,), (0.05,)), slots_per_pattern=10
        )
        rng = np.random.default_rng(5)
        lost = bursty.sample_losses(4000, 1, 10, rng)
        per_round = lost.sum(axis=(1, 2))
        marginal = float(bursty.link_loss_probabilities(1)[0])
        iid_var = 10 * marginal * (1 - marginal)
        assert per_round.mean() == pytest.approx(10 * marginal, rel=0.05)
        assert per_round.var() > 3 * iid_var

    def test_random_phase_draws_differ_between_rounds(self):
        bursty = ScheduleLossSpec(
            pattern_probabilities=((1.0,), (0.0,)), slots_per_pattern=10
        )
        lost = bursty.sample_losses(64, 1, 10, np.random.default_rng(3))
        # With a uniformly random phase the all-lost/all-clear split
        # position varies across rounds.
        patterns = {tuple(row) for row in lost[:, 0, :]}
        assert len(patterns) > 4
