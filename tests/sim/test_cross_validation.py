"""Cross-validation: batched engine vs the per-packet ground truth.

The per-packet :class:`~repro.core.session.ProtocolSession` is the
oracle; the batched engine must agree with it on delivery statistics
and secret rates within Monte-Carlo tolerance.  These are the fast
unit-sized checks; the campaign-scale comparison (with the >= 20x
speedup assertion) lives in benchmarks/test_sim_campaign.py.
"""

import numpy as np
import pytest

from repro.core.estimator import LeaveOneOutEstimator, OracleEstimator
from repro.core.session import ProtocolSession, SessionConfig
from repro.net.medium import BroadcastMedium, IIDLossModel
from repro.net.node import Eavesdropper, Terminal
from repro.sim import (
    AdversarySpec,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    Scenario,
    run_batch,
)

N_PACKETS = 100
Z_COST = 2.0  # the SessionConfig default the sessions plan with


def run_session_rounds(
    n, p, estimator_factory, n_rounds=6, seed=7, eve_antennas=1, n_packets=N_PACKETS
):
    """Per-packet rounds; returns (mean idealised efficiency, mean
    reliability, per-receiver delivery rates)."""
    effs, rels, rates = [], [], []
    names = [f"T{i}" for i in range(n)]
    for k in range(n_rounds):
        rng = np.random.default_rng(seed + 997 * k)
        eve = Eavesdropper(
            name="eve",
            extra_antennas=[(0.0, 0.0)] * (eve_antennas - 1),
        )
        nodes = [Terminal(name=x) for x in names] + [eve]
        medium = BroadcastMedium(nodes, IIDLossModel(p), rng)
        config = SessionConfig(
            n_x_packets=n_packets, payload_bytes=8, z_cost_factor=Z_COST
        )
        session = ProtocolSession(
            medium, names, estimator_factory(), rng, config=config
        )
        result = session.run_round(names[0])
        effs.append(
            result.secret_packets / (n_packets + result.plan.total_public)
        )
        rels.append(result.leakage.reliability)
        rates.append(
            [len(result.reports[t]) / n_packets for t in names[1:]]
        )
    return float(np.mean(effs)), float(np.mean(rels)), np.mean(rates, axis=0)


def run_batched(n, p, estimator_spec, rounds=2500, seed=3, adversary=None):
    scenario = Scenario(
        n_terminals=n,
        loss=IIDLossSpec(p),
        adversary=adversary if adversary is not None else AdversarySpec(),
        estimator=estimator_spec,
        n_x_packets=N_PACKETS,
        rounds=rounds,
        z_cost_factor=Z_COST,
    )
    return run_batch(scenario, seed=seed)


class TestOracleAgreement:
    @pytest.mark.parametrize("n,p", [(3, 0.5), (4, 0.4)])
    def test_delivery_and_secret_rates(self, n, p):
        sess_eff, sess_rel, sess_rates = run_session_rounds(
            n, p, OracleEstimator
        )
        batch = run_batched(n, p, estimator_spec=OracleEstimatorSpec())
        # Delivery statistics: both sides must sit at 1 - p.
        assert np.allclose(batch.delivery_rates, 1 - p, atol=0.02)
        assert np.allclose(sess_rates, 1 - p, atol=0.06)
        # Under the oracle both engines certify a perfectly hidden secret.
        assert sess_rel == 1.0
        assert batch.min_reliability == 1.0
        # Secret rate: Monte-Carlo tolerance between the engines.
        assert batch.mean_efficiency == pytest.approx(sess_eff, abs=0.06)

    def test_secret_length_scales_with_n_packets(self):
        small = run_batched(
            3, 0.5, estimator_spec=OracleEstimatorSpec(), rounds=1500
        )
        big_scenario = Scenario(
            n_terminals=3,
            loss=IIDLossSpec(0.5),
            n_x_packets=3 * N_PACKETS,
            rounds=1500,
            z_cost_factor=Z_COST,
        )
        big = run_batch(big_scenario, seed=3)
        ratio = big.secret_packets.mean() / small.secret_packets.mean()
        assert ratio == pytest.approx(3.0, rel=0.1)


class TestLeaveOneOutAgreement:
    def test_reliability_within_tolerance(self):
        sess_eff, sess_rel, _ = run_session_rounds(
            4, 0.4, lambda: LeaveOneOutEstimator(rate_margin=0.05), n_rounds=8
        )
        batch = run_batched(
            4, 0.4, LeaveOneOutEstimatorSpec(rate_margin=0.05)
        )
        assert batch.mean_reliability == pytest.approx(sess_rel, abs=0.08)
        # The batched planner is fractional/optimistic; the session pays
        # integrality and flow-assignment costs.  Both must sit in the
        # same band.
        assert batch.mean_efficiency == pytest.approx(sess_eff, abs=0.06)

    def test_both_engines_rank_estimators_identically(self):
        # Oracle >= leave-one-out in secret rate, on both engines.
        sess_eff_oracle, _, _ = run_session_rounds(4, 0.4, OracleEstimator)
        sess_eff_loo, _, _ = run_session_rounds(
            4, 0.4, lambda: LeaveOneOutEstimator(rate_margin=0.05)
        )
        batch_oracle = run_batched(4, 0.4, OracleEstimatorSpec())
        batch_loo = run_batched(
            4, 0.4, LeaveOneOutEstimatorSpec(rate_margin=0.05)
        )
        assert sess_eff_oracle >= sess_eff_loo - 1e-9
        assert batch_oracle.mean_efficiency >= batch_loo.mean_efficiency - 1e-9


class TestNoFractionalOptimism:
    """The realised planner's acceptance contract: at small N the
    batched engine must not report better reliability than the
    per-packet oracle (the pre-realised engine clamped a fractional
    plan and sat ~+0.09 above it here)."""

    def test_small_n_reliability_not_above_oracle(self):
        n_packets = 60
        _, sess_rel, _ = run_session_rounds(
            4,
            0.4,
            lambda: LeaveOneOutEstimator(rate_margin=0.05),
            n_rounds=40,
            seed=5,
            n_packets=n_packets,
        )
        scenario = Scenario(
            n_terminals=4,
            loss=IIDLossSpec(0.4),
            estimator=LeaveOneOutEstimatorSpec(rate_margin=0.05),
            n_x_packets=n_packets,
            rounds=2000,
            z_cost_factor=Z_COST,
        )
        batch = run_batch(scenario, seed=5)
        # One-sided: honest accounting may sit below the oracle, never
        # meaningfully above it (0.04 covers the 40-round session mean's
        # Monte-Carlo noise, far below the old +0.09 optimism).
        assert batch.mean_reliability <= sess_rel + 0.04
        # And it must not be wildly pessimistic either.
        assert batch.mean_reliability >= sess_rel - 0.10


class TestMultiAntennaEveAgreement:
    """Multi-antenna Eve (union reception across antennas) on both
    engines: the abstract IID counterpart of the paper's §6 threat."""

    def test_oracle_efficiency_within_tolerance(self):
        antennas = 3
        sess_eff, sess_rel, _ = run_session_rounds(
            3, 0.5, OracleEstimator, n_rounds=8, eve_antennas=antennas
        )
        scenario = Scenario(
            n_terminals=3,
            loss=IIDLossSpec(0.5),
            adversary=AdversarySpec(antennas=antennas),
            n_x_packets=N_PACKETS,
            rounds=2500,
            z_cost_factor=Z_COST,
        )
        batch = run_batch(scenario, seed=3)
        # Oracle budgets stay sound whatever Eve's antenna count.
        assert sess_rel == 1.0
        assert batch.min_reliability == 1.0
        assert batch.mean_efficiency == pytest.approx(sess_eff, abs=0.05)

    def test_more_antennas_shrink_the_secret_on_both_engines(self):
        sess_eff_1, _, _ = run_session_rounds(
            3, 0.5, OracleEstimator, n_rounds=8, eve_antennas=1
        )
        sess_eff_3, _, _ = run_session_rounds(
            3, 0.5, OracleEstimator, n_rounds=8, eve_antennas=3
        )
        batches = {
            k: run_batched(
                3,
                0.5,
                OracleEstimatorSpec(),
                adversary=AdversarySpec(antennas=k),
            )
            for k in (1, 3)
        }
        assert sess_eff_3 < sess_eff_1
        assert (
            batches[3].mean_efficiency < batches[1].mean_efficiency
        )
        # Three antennas at p = 0.5 leave Eve missing ~1/8 of packets;
        # the secret rate must collapse accordingly on both engines.
        assert batches[3].mean_efficiency < 0.5 * batches[1].mean_efficiency
