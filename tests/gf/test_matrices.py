"""Cauchy / Vandermonde structure: the minor properties secrecy rests on."""

import itertools

import numpy as np
import pytest

from repro.gf.linalg import GFMatrix
from repro.gf.matrices import (
    MAX_CAUCHY_POINTS,
    cauchy_matrix,
    is_superregular_sample,
    vandermonde_matrix,
)


class TestCauchy:
    def test_shape(self):
        assert cauchy_matrix(3, 5).shape == (3, 5)

    def test_all_entries_nonzero(self):
        m = cauchy_matrix(6, 9)
        assert np.all(m.data != 0)

    def test_every_minor_nonsingular_exhaustive_small(self):
        m = cauchy_matrix(4, 5)
        for k in range(1, 5):
            for rows in itertools.combinations(range(4), k):
                for cols in itertools.combinations(range(5), k):
                    minor = m.take_rows(rows).take_cols(cols)
                    assert minor.is_invertible(), (rows, cols)

    def test_superregular_sampled_large(self, rng):
        m = cauchy_matrix(20, 60)
        assert is_superregular_sample(m, rng, trials=100)

    def test_offset_produces_distinct_matrices(self):
        a = cauchy_matrix(3, 4, offset=0)
        b = cauchy_matrix(3, 4, offset=10)
        assert a != b

    def test_stacked_square_cauchy_invertible(self):
        # The phase-2 construction relies on the full M x M matrix.
        for m in (2, 10, 40):
            assert cauchy_matrix(m, m).is_invertible()

    def test_size_limit_enforced(self):
        with pytest.raises(ValueError):
            cauchy_matrix(128, 129)
        # Boundary case is allowed.
        assert cauchy_matrix(1, MAX_CAUCHY_POINTS - 1).shape == (1, 255)

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            cauchy_matrix(-1, 3)

    def test_empty_dimensions(self):
        assert cauchy_matrix(0, 5).shape == (0, 5)
        assert cauchy_matrix(5, 0).shape == (5, 0)


class TestVandermonde:
    def test_shape_and_first_row_ones(self):
        m = vandermonde_matrix(3, 6)
        assert m.shape == (3, 6)
        assert np.all(m.data[0] == 1)

    def test_any_k_columns_independent(self):
        m = vandermonde_matrix(3, 8)
        for cols in itertools.combinations(range(8), 3):
            assert m.take_cols(cols).is_invertible(), cols

    def test_point_range_validation(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(2, 3, start=0)
        with pytest.raises(ValueError):
            vandermonde_matrix(2, 200, start=100)

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(2, -1)

    def test_empty(self):
        assert vandermonde_matrix(0, 4).shape == (0, 4)


class TestSuperregularSampler:
    def test_detects_singular_matrix(self, rng):
        # A rank-1 matrix (every row identical) fails any 2x2 minor.
        data = np.tile(np.arange(1, 6, dtype=np.uint8), (4, 1))
        bad = GFMatrix(data)
        assert not is_superregular_sample(bad, rng, trials=200)

    def test_accepts_empty(self, rng):
        assert is_superregular_sample(GFMatrix.zeros(0, 3), rng)
