"""Property-based tests: GF(256) field axioms and the Cauchy guarantee.

The secrecy argument rests on two algebraic facts: GF(2^8) really is a
field (so Gaussian elimination, ranks and inverses behave), and Cauchy
matrices are superregular (every square minor is invertible — the
property the z/s-map in repro.coding.privacy leans on for both
decodability and secrecy).  Hypothesis explores the input space instead
of hand-picked examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.field import (
    gf_add,
    gf_div,
    gf_inv,
    gf_matmul,
    gf_mul,
    gf_pow,
)
from repro.gf.linalg import GFMatrix
from repro.gf.matrices import cauchy_matrix

element = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def gf_array(rows, cols):
    return st.lists(
        st.lists(element, min_size=cols, max_size=cols),
        min_size=rows,
        max_size=rows,
    ).map(lambda data: np.array(data, dtype=np.uint8))


small_dim = st.integers(min_value=1, max_value=5)


class TestFieldAxioms:
    @given(element, element)
    @settings(max_examples=60, deadline=None)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(element, element, element)
    @settings(max_examples=60, deadline=None)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(element, element, element)
    @settings(max_examples=60, deadline=None)
    def test_distributivity(self, a, b, c):
        left = gf_mul(a, gf_add(b, c))
        right = gf_add(gf_mul(a, b), gf_mul(a, c))
        assert left == right

    @given(element)
    @settings(max_examples=60, deadline=None)
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    @settings(max_examples=60, deadline=None)
    def test_inverse(self, a):
        inv = gf_inv(a)
        assert 1 <= inv <= 255
        assert gf_mul(a, inv) == 1

    @given(element, nonzero)
    @settings(max_examples=60, deadline=None)
    def test_div_is_mul_by_inverse(self, a, b):
        assert gf_div(a, b) == gf_mul(a, gf_inv(b))

    @given(nonzero)
    @settings(max_examples=40, deadline=None)
    def test_pow_cycles(self, a):
        # The multiplicative group has order 255.
        assert gf_pow(a, 255) == 1
        assert gf_pow(a, 256) == a

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)


class TestVectorisedConsistency:
    """The array paths must agree with the scalar paths elementwise."""

    @given(st.lists(element, min_size=1, max_size=32), element)
    @settings(max_examples=40, deadline=None)
    def test_mul_vector_matches_scalar(self, values, b):
        arr = np.array(values, dtype=np.uint8)
        vec = gf_mul(arr, np.full(arr.shape, b, dtype=np.uint8))
        for v, out in zip(values, vec):
            assert int(out) == gf_mul(v, b)

    @given(st.lists(nonzero, min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_inv_vector_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint8)
        vec = gf_inv(arr)
        for v, out in zip(values, vec):
            assert int(out) == gf_inv(v)


class TestMatmulProperties:
    @given(small_dim, small_dim, small_dim, small_dim, st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_matmul_associative(self, r, k, m, c, rnd):
        rng = np.random.default_rng(rnd.randrange(2**32))
        a = rng.integers(0, 256, size=(r, k), dtype=np.uint8)
        b = rng.integers(0, 256, size=(k, m), dtype=np.uint8)
        d = rng.integers(0, 256, size=(m, c), dtype=np.uint8)
        left = gf_matmul(gf_matmul(a, b), d)
        right = gf_matmul(a, gf_matmul(b, d))
        assert np.array_equal(left, right)

    @given(small_dim, small_dim, small_dim, st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_matmul_distributes_over_xor(self, r, k, c, rnd):
        rng = np.random.default_rng(rnd.randrange(2**32))
        a = rng.integers(0, 256, size=(r, k), dtype=np.uint8)
        b = rng.integers(0, 256, size=(k, c), dtype=np.uint8)
        d = rng.integers(0, 256, size=(k, c), dtype=np.uint8)
        left = gf_matmul(a, np.bitwise_xor(b, d))
        right = np.bitwise_xor(gf_matmul(a, b), gf_matmul(a, d))
        assert np.array_equal(left, right)

    @given(small_dim, small_dim)
    @settings(max_examples=25, deadline=None)
    def test_identity_is_neutral(self, r, c):
        rng = np.random.default_rng(r * 31 + c)
        a = rng.integers(0, 256, size=(r, c), dtype=np.uint8)
        eye = np.eye(r, dtype=np.uint8)
        assert np.array_equal(gf_matmul(eye, a), a)

    @given(small_dim, small_dim, small_dim, st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_matmul_matches_schoolbook(self, r, k, c, rnd):
        rng = np.random.default_rng(rnd.randrange(2**32))
        a = rng.integers(0, 256, size=(r, k), dtype=np.uint8)
        b = rng.integers(0, 256, size=(k, c), dtype=np.uint8)
        out = gf_matmul(a, b)
        for i in range(r):
            for j in range(c):
                acc = 0
                for t in range(k):
                    acc = gf_add(acc, gf_mul(int(a[i, t]), int(b[t, j])))
                assert int(out[i, j]) == acc


class TestCauchySuperregularity:
    """Every square minor of a Cauchy matrix is invertible — the z/s-map
    construction of repro.coding.privacy depends on exactly this."""

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=12),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_square_minors_invertible(self, minor, cols, rnd):
        rows = max(minor, 2)
        cols = max(cols, minor)
        matrix = cauchy_matrix(rows, cols)
        rng = np.random.default_rng(rnd.randrange(2**32))
        row_pick = sorted(rng.choice(rows, size=minor, replace=False))
        col_pick = sorted(rng.choice(cols, size=minor, replace=False))
        sub = matrix.take_rows(row_pick).take_cols(col_pick)
        assert sub.is_invertible()

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_stacked_square_invertible(self, size):
        # Phase 2 stacks the z-block over the s-block of one m x m
        # Cauchy matrix; invertibility of the whole square is what keeps
        # the s-packets uniform given the z-packets.
        assert cauchy_matrix(size, size).is_invertible()

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=2, max_value=10),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_full_row_rank_on_any_support(self, rows, cols, rnd):
        # A block with rows <= cols keeps full row rank on every column
        # subset of size rows (the y-block decodability certificate).
        cols = max(cols, rows)
        matrix = cauchy_matrix(rows, cols)
        rng = np.random.default_rng(rnd.randrange(2**32))
        pick = sorted(rng.choice(cols, size=rows, replace=False))
        assert matrix.take_cols(pick).rank() == rows
