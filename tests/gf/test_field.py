"""Field axioms and vector/scalar agreement for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf.field import (
    GF_GENERATOR,
    as_gf_array,
    gf_add,
    gf_div,
    gf_inv,
    gf_matmul,
    gf_mul,
    gf_poly_eval,
    gf_pow,
)
from repro.gf.tables import EXP, LOG, build_tables, multiplicative_order

element = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_generator_is_primitive(self):
        assert multiplicative_order(GF_GENERATOR) == 255

    def test_exp_log_roundtrip(self):
        for a in range(1, 256):
            assert EXP[LOG[a]] == a

    def test_exp_is_periodic(self):
        assert np.array_equal(EXP[:255], EXP[255:510])

    def test_log_zero_is_sentinel(self):
        assert LOG[0] < -255

    def test_build_tables_deterministic(self):
        exp2, log2 = build_tables()
        assert np.array_equal(exp2, EXP)
        assert np.array_equal(log2, LOG)

    def test_multiplicative_order_rejects_zero(self):
        with pytest.raises(ValueError):
            multiplicative_order(0)


class TestScalarAxioms:
    @given(element, element)
    def test_addition_is_xor_and_commutative(self, a, b):
        assert gf_add(a, b) == (a ^ b) == gf_add(b, a)

    @given(element)
    def test_addition_self_inverse(self, a):
        assert gf_add(a, a) == 0

    @given(element, element)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(element, element, element)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(element, element, element)
    def test_distributivity(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(element)
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(element)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(element, nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a

    @given(nonzero)
    def test_fermat(self, a):
        assert gf_pow(a, 255) == 1

    @given(nonzero, st.integers(min_value=0, max_value=10))
    def test_pow_matches_repeated_multiplication(self, a, k):
        expected = 1
        for _ in range(k):
            expected = gf_mul(expected, a)
        assert gf_pow(a, k) == expected

    @given(nonzero, st.integers(min_value=1, max_value=10))
    def test_negative_pow(self, a, k):
        assert gf_mul(gf_pow(a, k), gf_pow(a, -k)) == 1

    def test_pow_zero_conventions(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)


class TestVectorisedAgreement:
    def test_mul_matches_scalar(self, rng):
        a = rng.integers(0, 256, 300, dtype=np.uint8)
        b = rng.integers(0, 256, 300, dtype=np.uint8)
        out = gf_mul(a, b)
        for i in range(300):
            assert out[i] == gf_mul(int(a[i]), int(b[i]))

    def test_div_matches_scalar(self, rng):
        a = rng.integers(0, 256, 200, dtype=np.uint8)
        b = rng.integers(1, 256, 200, dtype=np.uint8)
        out = gf_div(a, b)
        for i in range(200):
            assert out[i] == gf_div(int(a[i]), int(b[i]))

    def test_inv_matches_scalar(self, rng):
        a = rng.integers(1, 256, 200, dtype=np.uint8)
        out = gf_inv(a)
        for i in range(200):
            assert out[i] == gf_inv(int(a[i]))

    def test_pow_matches_scalar(self, rng):
        a = rng.integers(0, 256, 100, dtype=np.uint8)
        out = gf_pow(a, 3)
        for i in range(100):
            assert out[i] == gf_pow(int(a[i]), 3)

    def test_vector_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(np.array([1, 2], dtype=np.uint8), np.array([1, 0], dtype=np.uint8))

    def test_vector_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(np.array([3, 0], dtype=np.uint8))

    def test_add_arrays(self):
        a = np.array([1, 2, 255], dtype=np.uint8)
        b = np.array([1, 3, 255], dtype=np.uint8)
        assert np.array_equal(gf_add(a, b), np.array([0, 1, 0], dtype=np.uint8))


class TestMatmul:
    def test_identity(self, rng):
        x = rng.integers(0, 256, (5, 7), dtype=np.uint8)
        eye = np.eye(5, dtype=np.uint8)
        assert np.array_equal(gf_matmul(eye, x), x)

    def test_associativity(self, rng):
        a = rng.integers(0, 256, (4, 5), dtype=np.uint8)
        b = rng.integers(0, 256, (5, 6), dtype=np.uint8)
        c = rng.integers(0, 256, (6, 3), dtype=np.uint8)
        left = gf_matmul(gf_matmul(a, b), c)
        right = gf_matmul(a, gf_matmul(b, c))
        assert np.array_equal(left, right)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))

    def test_empty_dimensions(self):
        out = gf_matmul(np.zeros((0, 3), dtype=np.uint8), np.zeros((3, 2), dtype=np.uint8))
        assert out.shape == (0, 2)

    def test_zero_rows_stay_zero(self, rng):
        a = np.zeros((2, 4), dtype=np.uint8)
        b = rng.integers(0, 256, (4, 5), dtype=np.uint8)
        assert gf_matmul(a, b).max() == 0


class TestHelpers:
    def test_as_gf_array_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            as_gf_array([0, 256])
        with pytest.raises(ValueError):
            as_gf_array([-1])

    def test_as_gf_array_accepts_uint8(self):
        arr = np.array([1, 2], dtype=np.uint8)
        assert as_gf_array(arr) is arr

    def test_poly_eval_constant(self):
        assert gf_poly_eval(np.array([42], dtype=np.uint8), 17) == 42

    def test_poly_eval_horner(self):
        # p(x) = 3x^2 + 5x + 7 at x = 2
        coeffs = np.array([3, 5, 7], dtype=np.uint8)
        x = 2
        expected = gf_add(gf_add(gf_mul(3, gf_mul(x, x)), gf_mul(5, x)), 7)
        assert gf_poly_eval(coeffs, x) == expected
