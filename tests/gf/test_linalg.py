"""GFMatrix: elimination, rank, solving, inversion, null spaces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.linalg import GFMatrix


def random_invertible(n, rng):
    while True:
        m = GFMatrix.random(n, n, rng)
        if m.is_invertible():
            return m


class TestConstruction:
    def test_zeros_and_identity(self):
        z = GFMatrix.zeros(3, 4)
        assert z.shape == (3, 4) and z.data.max() == 0
        eye = GFMatrix.identity(4)
        assert eye.rank() == 4

    def test_from_rows(self):
        m = GFMatrix.from_rows([[1, 2], [3, 4]])
        assert m.shape == (2, 2)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            GFMatrix(np.zeros((2, 2, 2), dtype=np.uint8))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GFMatrix([[300]])

    def test_equality_and_hash(self, rng):
        a = GFMatrix.random(3, 3, rng)
        b = GFMatrix(a.data.copy())
        assert a == b and hash(a) == hash(b)
        assert a != GFMatrix.zeros(3, 3) or a.data.max() == 0

    def test_repr(self):
        assert "3x4" in repr(GFMatrix.zeros(3, 4))


class TestAlgebra:
    def test_addition_is_xor(self, rng):
        a = GFMatrix.random(3, 5, rng)
        b = GFMatrix.random(3, 5, rng)
        assert (a + b).data.tobytes() == np.bitwise_xor(a.data, b.data).tobytes()

    def test_addition_shape_mismatch(self):
        with pytest.raises(ValueError):
            GFMatrix.zeros(2, 2) + GFMatrix.zeros(3, 3)

    def test_matmul_identity(self, rng):
        a = GFMatrix.random(4, 4, rng)
        assert (GFMatrix.identity(4) @ a) == a

    def test_transpose_involution(self, rng):
        a = GFMatrix.random(3, 5, rng)
        assert a.transpose().transpose() == a

    def test_take_rows_cols(self, rng):
        a = GFMatrix.random(4, 6, rng)
        sub = a.take_rows([0, 2]).take_cols([1, 3, 5])
        assert sub.shape == (2, 3)
        assert sub.data[1, 2] == a.data[2, 5]

    def test_stacking(self, rng):
        a = GFMatrix.random(2, 3, rng)
        b = GFMatrix.random(4, 3, rng)
        assert a.vstack(b).shape == (6, 3)
        c = GFMatrix.random(2, 5, rng)
        assert a.hstack(c).shape == (2, 8)
        with pytest.raises(ValueError):
            a.vstack(GFMatrix.zeros(1, 4))
        with pytest.raises(ValueError):
            a.hstack(GFMatrix.zeros(3, 1))


class TestRankAndRref:
    def test_rank_identity(self):
        assert GFMatrix.identity(7).rank() == 7

    def test_rank_zero_matrix(self):
        assert GFMatrix.zeros(4, 5).rank() == 0
        assert GFMatrix.zeros(0, 5).rank() == 0

    def test_rank_duplicated_rows(self, rng):
        row = rng.integers(1, 256, (1, 6), dtype=np.uint8)
        m = GFMatrix(np.vstack([row, row, row]))
        assert m.rank() == 1

    def test_rref_pivots_are_unit_columns(self, rng):
        m = GFMatrix.random(4, 7, rng)
        r, pivots = m.rref()
        for row_idx, col in enumerate(pivots):
            column = r.data[:, col]
            assert column[row_idx] == 1
            assert np.sum(column != 0) == 1

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_rank_bounded(self, r, c):
        rng = np.random.default_rng(r * 31 + c)
        m = GFMatrix.random(r, c, rng)
        assert 0 <= m.rank() <= min(r, c)

    def test_rank_of_product_bounded(self, rng):
        a = GFMatrix.random(5, 3, rng)
        b = GFMatrix.random(3, 6, rng)
        assert (a @ b).rank() <= min(a.rank(), b.rank())


class TestSolveInverse:
    def test_inverse_roundtrip(self, rng):
        m = random_invertible(6, rng)
        assert (m @ m.inverse()) == GFMatrix.identity(6)
        assert (m.inverse() @ m) == GFMatrix.identity(6)

    def test_inverse_of_singular_raises(self, rng):
        row = rng.integers(1, 256, (1, 3), dtype=np.uint8)
        m = GFMatrix(np.vstack([row, row, rng.integers(0, 256, (1, 3), dtype=np.uint8)]))
        with pytest.raises(ValueError):
            m.inverse()

    def test_inverse_non_square_raises(self):
        with pytest.raises(ValueError):
            GFMatrix.zeros(2, 3).inverse()

    def test_solve_square(self, rng):
        m = random_invertible(5, rng)
        x = GFMatrix.random(5, 8, rng)
        assert m.solve(m @ x) == x

    def test_solve_overdetermined_consistent(self, rng):
        # 6 equations, 3 unknowns, full column rank.
        a = GFMatrix.random(6, 3, rng)
        while a.rank() < 3:
            a = GFMatrix.random(6, 3, rng)
        x = GFMatrix.random(3, 4, rng)
        assert a.solve(a @ x) == x

    def test_solve_underdetermined_raises(self, rng):
        a = GFMatrix.random(2, 5, rng)
        rhs = GFMatrix.random(2, 1, rng)
        with pytest.raises(ValueError):
            a.solve(rhs)

    def test_solve_inconsistent_raises(self, rng):
        a = GFMatrix(np.array([[1, 0], [1, 0], [0, 1]], dtype=np.uint8))
        rhs = GFMatrix(np.array([[1], [2], [3]], dtype=np.uint8))
        with pytest.raises(ValueError):
            a.solve(rhs)

    def test_solve_rhs_shape_mismatch(self, rng):
        a = GFMatrix.random(3, 3, rng)
        with pytest.raises(ValueError):
            a.solve(GFMatrix.zeros(4, 1))

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_solve_roundtrip_property(self, n):
        rng = np.random.default_rng(n * 977)
        m = random_invertible(n, rng)
        x = GFMatrix.random(n, 3, rng)
        assert m.solve(m @ x) == x


class TestNullSpace:
    def test_null_space_orthogonality(self, rng):
        m = GFMatrix.random(3, 8, rng)
        ns = m.null_space()
        assert (m @ ns.transpose()).data.max() == 0

    def test_rank_nullity(self, rng):
        for cols in (4, 7, 10):
            m = GFMatrix.random(3, cols, rng)
            assert m.rank() + m.null_space().rows == cols

    def test_full_rank_square_has_trivial_null_space(self, rng):
        m = random_invertible(4, rng)
        assert m.null_space().rows == 0

    def test_row_space_contains(self, rng):
        m = GFMatrix.random(3, 6, rng)
        # Any row of m is in its own row space.
        assert m.row_space_contains(m.data[0])
        # A vector outside (generically) is not: extend rank check.
        probe = rng.integers(0, 256, 6, dtype=np.uint8)
        expected = GFMatrix(np.vstack([m.data, probe])).rank() == m.rank()
        assert m.row_space_contains(probe) == expected

    def test_row_space_contains_length_mismatch(self, rng):
        m = GFMatrix.random(2, 4, rng)
        with pytest.raises(ValueError):
            m.row_space_contains([1, 2, 3])
