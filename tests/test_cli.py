"""CLI subcommands print the expected tables."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure2_options(self):
        args = build_parser().parse_args(["figure2", "--per-n", "3"])
        assert args.command == "figure2"
        assert args.per_n == 3
        assert not args.full

    def test_seed_option(self):
        args = build_parser().parse_args(["--seed", "7", "quickstart"])
        assert args.seed == 7


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "n=inf" in out
        assert "0.250" in out  # the peak

    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "reliability 1.000" in out

    @pytest.mark.slow
    def test_figure2_small(self, capsys):
        assert main(["--seed", "3", "figure2", "--per-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
