"""Sans-io fail-closed tests: drive the engines frame by frame.

These tests pump frames between a :class:`LeaderEngine` and its
:class:`FollowerEngine` peers with plain function calls — no event
loop, no transports — so each one can tamper with, drop, or replay a
specific frame and assert the precise typed error.  The invariant under
test everywhere: **no engine ever exposes key material unless the
handshake fully confirmed**, and every abort path clears what existed.
"""

import json
from collections import deque

import pytest

from repro.service import (
    AuthenticationError,
    ConfirmationError,
    FollowerEngine,
    LeaderEngine,
    PoolExhaustedError,
    ServiceConfig,
    SessionPhase,
    reference_keys,
)
from repro.service.frames import Frame, FrameType

FAST = ServiceConfig(n_x_packets=16, payload_bytes=8)

LEADER = "leader"  # routing token for the pump, distinct from any name


def pump(leader, followers, mutate=None):
    """Deliver frames between engines until no traffic remains.

    ``mutate(src, dst, frame)`` may rewrite a frame, or return None to
    drop it — the sans-io equivalent of a hostile/faulty network.
    """
    queue = deque()
    for name, engine in followers.items():
        for frame in engine.start():
            queue.append((name, LEADER, frame))
    while queue:
        src, dst, frame = queue.popleft()
        if mutate is not None:
            frame = mutate(src, dst, frame)
            if frame is None:
                continue
        if dst == LEADER:
            for peer, out in leader.on_frame(src, frame):
                queue.append((LEADER, peer, out))
        else:
            for out in followers[dst].on_frame(frame):
                queue.append((dst, LEADER, out))


def make_engines(config, follower_names=("bob",)):
    leader = LeaderEngine(config, "alice", tuple(follower_names))
    followers = {
        name: FollowerEngine(config, name, "alice") for name in follower_names
    }
    return leader, followers


class TestSansIoHandshake:
    def test_pump_establishes_and_matches_reference(self):
        leader, followers = make_engines(FAST)
        pump(leader, followers)
        ref = reference_keys(FAST, "alice", ("bob",))
        assert leader.established and followers["bob"].established
        assert leader.derived_keys.material == ref.material
        assert followers["bob"].derived_keys.material == ref.material

    def test_snapshots_are_serialisable_and_truthful(self):
        leader, followers = make_engines(FAST)
        pump(leader, followers)
        for engine in (leader, followers["bob"]):
            snapshot = engine.snapshot()
            assert snapshot.established
            assert snapshot.phase == SessionPhase.ESTABLISHED.value
            assert snapshot.secret_rows > 0
            assert snapshot.frames_in > 0 and snapshot.frames_out > 0
            # The "small serialisable dataclass" contract.
            assert json.loads(json.dumps(snapshot.to_json())) == snapshot.to_json()

    def test_keys_gated_until_established(self):
        leader, followers = make_engines(FAST)
        seen_phases = []

        def watch(src, dst, frame):
            # Mid-handshake, neither engine may expose key material —
            # even after derivation, before confirmation completes.
            if not leader.established:
                assert leader.derived_keys is None
            if not followers["bob"].established:
                assert followers["bob"].derived_keys is None
            seen_phases.append(leader.phase)
            return frame

        pump(leader, followers, mutate=watch)
        assert SessionPhase.AWAIT_CONFIRMS in seen_phases
        assert leader.derived_keys is not None


class TestPoolExhaustion:
    def test_exhaustion_mid_handshake_aborts_typed_with_no_keys(self):
        """A 16-byte pair pool holds two one-time-MAC keys: the leader
        burns one verifying the report and one sealing the y-descriptor,
        then hits the wall sealing the phase-2 descriptor — mid-
        handshake, before any key material exists to leak."""
        config = ServiceConfig(
            n_x_packets=16, payload_bytes=8, pool_bytes_per_peer=16
        )
        leader, followers = make_engines(config)
        with pytest.raises(PoolExhaustedError):
            pump(leader, followers)
        assert leader.phase is SessionPhase.FAILED
        assert leader.derived_keys is None
        assert leader.secret_rows == 0
        assert followers["bob"].derived_keys is None

    def test_exhaustion_through_the_async_driver(self):
        import asyncio

        from repro.service import run_memory_group_outcome

        config = ServiceConfig(
            n_x_packets=16, payload_bytes=8, pool_bytes_per_peer=16
        )
        outcome = asyncio.run(run_memory_group_outcome(config))
        assert not outcome.ok
        assert outcome.keys is None
        # Whichever side's error won the race, it is one of the two
        # typed outcomes of the abort protocol.
        assert outcome.error_type in ("PoolExhaustedError", "SessionAborted")


class TestTamperedControlPlane:
    def test_tampered_report_tag_fails_authentication(self):
        leader, followers = make_engines(FAST)

        def corrupt_report(src, dst, frame):
            if frame.type is FrameType.REPORT:
                return Frame(frame.type, frame.body[:-1] + bytes([frame.body[-1] ^ 1]))
            return frame

        with pytest.raises(AuthenticationError):
            pump(leader, followers, mutate=corrupt_report)
        assert leader.phase is SessionPhase.FAILED
        assert leader.derived_keys is None

    def test_dropped_control_frame_desynchronises_the_mac_sequence(self):
        """Losing the y-descriptor shifts the follower's key sequence
        one slot: the next control frame verifies under the wrong
        one-time key and the session dies — never mis-decodes."""
        leader, followers = make_engines(FAST)
        dropped = []

        def drop_y(src, dst, frame):
            if frame.type is FrameType.Y_DESCRIPTOR and not dropped:
                dropped.append(frame)
                return None
            return frame

        with pytest.raises(AuthenticationError):
            pump(leader, followers, mutate=drop_y)
        assert dropped
        assert followers["bob"].phase is SessionPhase.FAILED
        assert followers["bob"].derived_keys is None

    def test_reflected_confirm_tag_rejected(self):
        """Confirmation tags are direction-bound: replaying the
        follower's own CONFIRM back as the leader's ack must fail."""
        leader, followers = make_engines(FAST)
        captured = {}

        def reflect(src, dst, frame):
            if frame.type is FrameType.CONFIRM:
                captured["tag"] = frame.body
            if frame.type is FrameType.CONFIRM_ACK:
                return Frame(FrameType.CONFIRM_ACK, captured["tag"])
            return frame

        with pytest.raises(ConfirmationError):
            pump(leader, followers, mutate=reflect)
        assert followers["bob"].phase is SessionPhase.FAILED
        assert followers["bob"].derived_keys is None
