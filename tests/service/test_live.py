"""Live-session integration tests: real transports, reference equivalence.

The deterministic network-test harness's core claim: a live service
session (asyncio peers over memory or loopback-TCP transports) derives
*bit-identical* keys to a :class:`repro.core.session.ProtocolSession`
run on the same seeded loss trace — and does so reproducibly across
repeated runs.  Under fault injection, sessions must agree or fail
closed; a mismatched key pair is never acceptable.

No pytest-asyncio in the environment: every test is synchronous and
drives its event loop with ``asyncio.run``.
"""

import asyncio

import pytest

from repro.service import (
    AbortCode,
    ConfigMismatchError,
    FaultSpec,
    MemoryTransport,
    ServiceConfig,
    SessionAborted,
    SessionTimeout,
    TcpLeader,
    build_reference_session,
    connect_follower_tcp,
    reference_budget,
    reference_keys,
    run_follower,
    run_leader,
    run_load,
    run_memory_group,
    run_memory_group_outcome,
)

#: Small sizing keeps a full handshake around a millisecond while still
#: exercising real losses (default loss_prob applies).
FAST = ServiceConfig(n_x_packets=16, payload_bytes=8)


class TestReferenceEquivalence:
    def test_memory_pair_matches_reference_bit_identical(self):
        ref = reference_keys(FAST, "alice", ("bob",))
        for _ in range(2):  # repeated seeded runs: identical bytes
            keys = asyncio.run(run_memory_group(FAST, "alice", ("bob",)))
            assert keys["alice"].material == keys["bob"].material
            assert keys["alice"].material == ref.material
            assert keys["alice"].fingerprint() == ref.fingerprint()

    def test_tcp_pair_matches_reference_bit_identical(self):
        """Two asyncio peers over loopback TCP == the simulator."""

        async def session():
            leader = TcpLeader(FAST, "alice", ("bob",))
            port = await leader.start()
            try:
                return await asyncio.gather(
                    leader.run(),
                    connect_follower_tcp(FAST, "bob", "alice", "127.0.0.1", port),
                )
            finally:
                await leader.aclose()

        ref = reference_keys(FAST, "alice", ("bob",))
        for _ in range(2):
            leader_keys, follower_keys = asyncio.run(session())
            assert leader_keys.material == follower_keys.material
            assert leader_keys.material == ref.material

    def test_three_peer_group_exercises_z_reconciliation(self):
        """With two followers the plan must publish z-rows (a two-party
        session never does: one follower => everything stays secret)."""
        config = ServiceConfig(n_x_packets=32, payload_bytes=8)
        session = build_reference_session(config, "alice", ("bob", "carol"))
        outcome = session.run_round("alice", 0)
        assert sum(chunk.n_public for chunk in outcome.plan.chunks) > 0

        keys = asyncio.run(run_memory_group(config, "alice", ("bob", "carol")))
        ref = reference_keys(config, "alice", ("bob", "carol"))
        assert {k.material for k in keys.values()} == {ref.material}

    def test_multi_round_session_matches_reference(self):
        config = ServiceConfig(n_x_packets=12, payload_bytes=8, n_rounds=3)
        keys = asyncio.run(run_memory_group(config, "alice", ("bob",)))
        ref = reference_keys(config, "alice", ("bob",))
        assert keys["alice"].material == keys["bob"].material == ref.material

    def test_distinct_nonces_distinct_keys(self):
        """Same group, same traces, different session => different keys
        (the nonce salts the derivation through the session id)."""
        keys0 = asyncio.run(run_memory_group(FAST, nonce=0))
        keys1 = asyncio.run(run_memory_group(FAST, nonce=1))
        assert keys0["alice"].material != keys1["alice"].material
        ref1 = reference_keys(FAST, "alice", ("bob",), nonce=1)
        assert keys1["alice"].material == ref1.material

    def test_stated_key_length_is_a_ceiling(self):
        """``key_bytes`` states the ceiling; the measured secrecy budget
        sizes the actual material.  With 32-byte payloads a single
        agreed packet already covers 48 bytes of output."""
        config = ServiceConfig(n_x_packets=32, payload_bytes=32, key_bytes=48)
        keys = asyncio.run(run_memory_group(config))
        assert len(keys["alice"].material) == 48
        assert len(keys["bob"].material) == 48

    def test_small_session_sizes_key_below_ceiling(self):
        """8-byte payloads: the same request yields only what the
        measured min-entropy supports — never stretched to 48."""
        config = ServiceConfig(n_x_packets=16, payload_bytes=8, key_bytes=48)
        keys = asyncio.run(run_memory_group(config))
        budget = reference_budget(config, "alice", ("bob",))
        expected = min(48, budget.extractable_bytes)
        assert expected < 48
        assert len(keys["alice"].material) == expected
        assert keys["alice"].material == keys["bob"].material


class TestFailClosedDrivers:
    def test_config_mismatch_aborts_both_sides(self):
        other = ServiceConfig(n_x_packets=FAST.n_x_packets + 1, payload_bytes=8)

        async def session():
            a_end, b_end = MemoryTransport.pair()
            try:
                return await asyncio.gather(
                    run_leader(FAST, "alice", {"bob": a_end}),
                    run_follower(other, "bob", "alice", b_end),
                    return_exceptions=True,
                )
            finally:
                await a_end.aclose()
                await b_end.aclose()

        leader_result, follower_result = asyncio.run(session())
        assert isinstance(leader_result, ConfigMismatchError)
        assert isinstance(follower_result, SessionAborted)
        assert follower_result.code is AbortCode.CONFIG_MISMATCH

    def test_silent_peer_times_out(self):
        config = ServiceConfig(
            n_x_packets=8, payload_bytes=8, handshake_timeout=0.2
        )

        async def session():
            a_end, b_end = MemoryTransport.pair()
            try:
                await run_follower(config, "bob", "alice", b_end)
            finally:
                await a_end.aclose()
                await b_end.aclose()

        with pytest.raises(SessionTimeout):
            asyncio.run(session())


@pytest.mark.service
class TestFaultInjection:
    def test_data_plane_faults_sessions_still_agree(self):
        """Seeded X-frame drops/duplicates ride on top of the erasure
        traces: reception sets shift, but every session still agrees.

        16-byte payloads so even a one-row secret clears the measured
        entropy floor — fault-starved sessions should shrink their keys,
        not abort."""
        spec = FaultSpec.data_plane(drop=0.2, duplicate=0.05)
        config = ServiceConfig(n_x_packets=16, payload_bytes=16)

        async def sweep():
            return await asyncio.gather(
                *(
                    run_memory_group_outcome(
                        config, nonce=n, fault_spec=spec, fault_seed=n
                    )
                    for n in range(10)
                )
            )

        outcomes = asyncio.run(sweep())
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert all(o.keys_agree for o in outcomes)

    def test_concurrent_flaky_sessions_agree_or_fail_closed(self):
        """100 concurrent sessions through all-frame FlakyTransport:
        control-plane faults may kill a session, but every survivor
        holds matching keys and no session ever mismatches."""
        spec = FaultSpec(drop=0.03, duplicate=0.03, reorder=0.03)
        config = ServiceConfig(
            n_x_packets=16, payload_bytes=8, handshake_timeout=2.0
        )

        async def sweep():
            return await asyncio.gather(
                *(
                    run_memory_group_outcome(
                        config, nonce=n, fault_spec=spec, fault_seed=n
                    )
                    for n in range(100)
                )
            )

        outcomes = asyncio.run(sweep())
        assert len(outcomes) == 100
        # The contract: agree or fail closed — never a key mismatch.
        assert not any(o.error_type == "KeyMismatch" for o in outcomes)
        assert all(o.keys_agree for o in outcomes if o.ok)
        # Sanity on the seeded fault pattern: some sessions survive,
        # and every failure carries a typed error name.
        assert any(o.ok for o in outcomes)
        assert all(o.error_type for o in outcomes if not o.ok)

    def test_load_generator_reports_throughput_and_latency(self):
        report = asyncio.run(run_load(FAST, 30, concurrency=30))
        assert report.sessions == 30
        assert report.established == 30, report.failure_types
        assert report.failed == 0
        assert report.sessions_per_sec > 0
        assert 0 < report.p50_ms <= report.p99_ms
        assert len(report.latencies_ms) == 30
        assert report.n_samples == 30
        payload = report.to_json()
        assert payload["established"] == 30
        assert payload["n_samples"] == 30

    def test_small_run_percentiles_are_observed_samples(self):
        """Regression: on n<20 the p99 used to be an interpolated value
        between the two slowest sessions — a latency nobody measured.
        Nearest-rank percentiles always quote a real sample."""
        report = asyncio.run(run_load(FAST, 3, concurrency=3))
        assert report.n_samples == 3
        assert report.p50_ms in report.latencies_ms
        assert report.p99_ms in report.latencies_ms
        assert report.p99_ms == max(report.latencies_ms)

    def test_nearest_rank_index_clamps(self):
        from repro.service.peer import nearest_rank_ms

        assert nearest_rank_ms([], 99) == 0.0
        assert nearest_rank_ms([7.0], 1) == 7.0
        assert nearest_rank_ms([7.0], 99) == 7.0
        values = [1.0, 2.0, 3.0]
        assert nearest_rank_ms(values, 50) == 2.0
        assert nearest_rank_ms(values, 99) == 3.0
        assert nearest_rank_ms(values, 0) == 1.0  # floor clamp
        # The p95-rank convention matches the analysis layer: 20
        # samples keep rank ceil(0.95*20) = 19.
        twenty = [float(i) for i in range(1, 21)]
        assert nearest_rank_ms(twenty, 95) == 19.0
