"""Measured secrecy in the live service: budgets, sized keys, typed aborts.

The tentpole claims under test:

* Both live engines account the *same* per-round leakage the reference
  simulator computes — :class:`~repro.service.derive.LeakageBudget`
  equality is exact (integer bits), across fraction and oracle modes.
* Key derivation is privacy amplification sized by measurement:
  ``key_bytes`` is a ceiling, the measured residual min-entropy (minus
  the configured safety margin) is the binding constraint, and a budget
  that cannot cover the minimum key length aborts *typed* — never a
  silently stretched key.
* Inflating Eve's observations (oracle mode, lower ``eve_loss_prob``)
  shrinks the derived key or aborts the session.
"""

from collections import deque

import pytest

from repro.service import (
    AbortCode,
    FollowerEngine,
    InsufficientEntropyError,
    LeaderEngine,
    LeakageBudget,
    NoSecretError,
    ServiceConfig,
    reference_budget,
    reference_keys,
)
from repro.service.derive import MIN_KEY_BYTES
from repro.service.errors import abort_code_for

LEADER = "leader"  # routing token, distinct from any terminal name


def make_engines(config, follower_names=("bob",)):
    leader = LeaderEngine(config, "alice", tuple(follower_names))
    followers = {
        name: FollowerEngine(config, name, "alice") for name in follower_names
    }
    return leader, followers


def pump(leader, followers):
    """Deliver frames between engines until no traffic remains (the
    sans-io driver from test_fail_closed, without fault injection)."""
    queue = deque()
    for name, engine in followers.items():
        for frame in engine.start():
            queue.append((name, LEADER, frame))
    while queue:
        src, dst, frame = queue.popleft()
        if dst == LEADER:
            for peer, out in leader.on_frame(src, frame):
                queue.append((LEADER, peer, out))
        else:
            for out in followers[dst].on_frame(frame):
                queue.append((dst, LEADER, out))


class TestBudgetAlgebra:
    def test_min_entropy_and_extractable(self):
        budget = LeakageBudget(
            secret_bits=1024, leaked_bits=256, safety_margin_bits=64
        )
        assert budget.min_entropy_bits == 768
        assert budget.extractable_bytes == (768 - 64) // 8

    def test_margin_cannot_go_negative(self):
        budget = LeakageBudget(secret_bits=64, leaked_bits=0, safety_margin_bits=256)
        assert budget.extractable_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="exceed"):
            LeakageBudget(secret_bits=100, leaked_bits=101)
        with pytest.raises(ValueError, match="non-negative"):
            LeakageBudget(secret_bits=-1, leaked_bits=0)
        with pytest.raises(ValueError, match="margin"):
            LeakageBudget(secret_bits=10, leaked_bits=0, safety_margin_bits=-1)

    def test_low_entropy_abort_code(self):
        assert abort_code_for(InsufficientEntropyError("x")) is AbortCode.LOW_ENTROPY


class TestLiveBudgetMatchesReference:
    @pytest.mark.parametrize(
        "config",
        [
            ServiceConfig(n_x_packets=16, payload_bytes=8),
            ServiceConfig(n_x_packets=32, payload_bytes=8),
            ServiceConfig(
                n_x_packets=32,
                payload_bytes=8,
                estimator_kind="oracle",
                eve_loss_prob=0.6,
            ),
            ServiceConfig(n_x_packets=16, payload_bytes=8, n_rounds=3),
        ],
        ids=["fraction-pair", "fraction-trio-sized", "oracle", "multi-round"],
    )
    def test_all_parties_account_identically(self, config):
        """Leader, every follower, and the simulator agree on the
        measured budget bit for bit — no wire traffic carries it; each
        side computes it from what it already knows."""
        followers = ("bob", "carol")
        leader, engines = make_engines(config, followers)
        pump(leader, engines)
        assert leader.established
        ref = reference_budget(config, "alice", followers)
        assert leader.leakage_budget() == ref
        for engine in engines.values():
            assert engine.leakage_budget() == ref
        # The budget really measures this session: everything agreed is
        # accounted, and the secret the engines hold matches it.
        payload_bits = config.payload_bytes * 8
        assert ref.secret_bits == leader.secret_rows * payload_bits

    def test_snapshots_carry_the_measurement(self):
        config = ServiceConfig(n_x_packets=16, payload_bytes=16)
        leader, engines = make_engines(config)
        pump(leader, engines)
        for engine in (leader, engines["bob"]):
            snapshot = engine.snapshot()
            assert snapshot.secret_bits > 0
            assert snapshot.min_entropy_bits == (
                snapshot.secret_bits - snapshot.leaked_bits
            )
            assert snapshot.key_bytes == len(engine.derived_keys.material)
            doc = snapshot.to_json()
            for key in ("secret_bits", "leaked_bits", "min_entropy_bits", "key_bytes"):
                assert doc[key] == getattr(snapshot, key)


class TestSizedDerivation:
    def test_inflating_eves_observations_shrinks_key_or_aborts(self):
        """The acceptance claim, end to end: same protocol sizing, Eve
        capturing progressively more => monotonically less key material,
        down to a typed LOW_ENTROPY abort when she saw everything."""

        def key_len(eve_loss_prob):
            config = ServiceConfig(
                n_x_packets=32,
                payload_bytes=8,
                key_bytes=64,
                estimator_kind="oracle",
                eve_loss_prob=eve_loss_prob,
            )
            leader, engines = make_engines(config)
            pump(leader, engines)
            assert leader.derived_keys.material == (
                engines["bob"].derived_keys.material
            )
            return len(leader.derived_keys.material)

        blind = key_len(1.0)  # Eve missed every x-packet
        partial = key_len(0.5)
        assert blind >= partial >= MIN_KEY_BYTES

        omniscient = ServiceConfig(
            n_x_packets=32,
            payload_bytes=8,
            key_bytes=64,
            estimator_kind="oracle",
            eve_loss_prob=0.0,  # Eve captured the entire burst
        )
        leader, engines = make_engines(omniscient)
        # Either typed fail-closed abort is acceptable: the oracle
        # estimator may already plan zero secret (NoSecretError), or the
        # budget measures the leak and refuses (InsufficientEntropyError).
        with pytest.raises((InsufficientEntropyError, NoSecretError)):
            pump(leader, engines)
        assert leader.derived_keys is None  # failed closed, keys cleared

    def test_exhausted_margin_aborts_low_entropy(self):
        """A margin larger than anything the session can agree forces
        the LOW_ENTROPY path deterministically — typed, keys cleared."""
        config = ServiceConfig(
            n_x_packets=16, payload_bytes=8, secrecy_margin_bits=100_000
        )
        leader, engines = make_engines(config)
        with pytest.raises(InsufficientEntropyError, match="measured budget"):
            pump(leader, engines)
        assert leader.derived_keys is None
        for engine in engines.values():
            assert engine.derived_keys is None

    def test_safety_margin_shrinks_key_identically_everywhere(self):
        base = ServiceConfig(n_x_packets=24, payload_bytes=16, key_bytes=64)
        cut = ServiceConfig(
            n_x_packets=24,
            payload_bytes=16,
            key_bytes=64,
            secrecy_margin_bits=128,
        )
        assert base.digest() != cut.digest()  # wire-relevant: must match

        lengths = {}
        for config in (base, cut):
            leader, engines = make_engines(config)
            pump(leader, engines)
            ref = reference_keys(config, "alice", ("bob",))
            assert leader.derived_keys.material == ref.material
            assert engines["bob"].derived_keys.material == ref.material
            lengths[config.secrecy_margin_bits] = len(ref.material)
        budget = reference_budget(base, "alice", ("bob",))
        if budget.extractable_bytes < 64:  # below the ceiling: margin bites
            assert lengths[128] == lengths[0] - 128 // 8
        else:
            assert lengths[128] <= lengths[0]
