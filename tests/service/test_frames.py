"""Property tests for the length-prefixed frame codec.

The codec is the service's trust boundary with the network: every byte
a peer sends passes through :class:`repro.service.frames.FrameDecoder`
before any protocol logic sees it.  Hypothesis drives the invariants a
stream codec must hold unconditionally: encode/decode round-trips,
reassembly across arbitrary chunk boundaries, and terminal rejection of
oversized, truncated, and corrupted frames.
"""

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import ReceptionReport
from repro.service.frames import (
    MAX_FRAME_BYTES,
    Frame,
    FrameCorrupt,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    FrameType,
    WireBlockDescriptor,
    WireHello,
    WirePhase2Descriptor,
    WireXPacket,
    WireZContent,
    encode_frame,
    pack_report,
    unpack_report,
)

frames_st = st.builds(
    Frame,
    type=st.sampled_from(sorted(FrameType)),
    body=st.binary(max_size=1024),
)


class TestRoundTrip:
    @given(frame=frames_st)
    def test_single_frame_roundtrip(self, frame):
        decoder = FrameDecoder()
        decoded = decoder.feed(encode_frame(frame))
        assert decoded == [frame]
        assert decoder.pending_bytes == 0
        decoder.eof()  # clean stream end

    @given(
        frames=st.lists(frames_st, min_size=1, max_size=8),
        chunk_sizes=st.lists(
            st.integers(min_value=1, max_value=37), min_size=1, max_size=64
        ),
    )
    def test_reassembly_across_arbitrary_chunks(self, frames, chunk_sizes):
        """Any chunking of the byte stream yields the same frame sequence.

        This is the TCP reality check: reads return arbitrary slices,
        including mid-length-prefix and mid-CRC cuts.
        """
        stream = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        decoded = []
        pos = 0
        step = 0
        while pos < len(stream):
            size = chunk_sizes[step % len(chunk_sizes)]
            decoded.extend(decoder.feed(stream[pos : pos + size]))
            pos += size
            step += 1
        decoder.eof()
        assert decoded == frames

    @given(frames=st.lists(frames_st, min_size=1, max_size=4))
    def test_byte_at_a_time(self, frames):
        stream = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        decoded = []
        for i in range(len(stream)):
            decoded.extend(decoder.feed(stream[i : i + 1]))
        assert decoded == frames


class TestRejection:
    @given(extra=st.integers(min_value=1, max_value=4096))
    def test_oversized_frame_refused_at_encode(self, extra):
        cap = 256
        frame = Frame(FrameType.X_PACKET, b"\x00" * (cap + extra))
        with pytest.raises(FrameTooLarge):
            encode_frame(frame, max_frame_bytes=cap)

    @given(declared=st.integers(min_value=1, max_value=2**32 - 1 - 512))
    def test_oversized_declared_length_rejected_before_buffering(self, declared):
        """A hostile length prefix can never balloon memory: the decoder
        rejects it from the 4-byte header alone."""
        cap = 512
        decoder = FrameDecoder(max_frame_bytes=cap)
        header = struct.pack(">I", cap + declared)
        with pytest.raises(FrameTooLarge):
            decoder.feed(header)
        # The decoder is poisoned: even valid input is now refused.
        with pytest.raises(FrameError):
            decoder.feed(encode_frame(Frame(FrameType.HELLO, b"")))

    @given(length=st.integers(min_value=0, max_value=4))
    def test_impossible_length_rejected(self, length):
        decoder = FrameDecoder()
        with pytest.raises(FrameCorrupt):
            decoder.feed(struct.pack(">I", length) + b"\x00" * length)

    @given(frame=frames_st, cut=st.integers(min_value=0, max_value=2**32))
    def test_truncated_stream_raises_at_eof(self, frame, cut):
        encoded = encode_frame(frame)
        cut = 1 + cut % (len(encoded) - 1)  # 1 <= cut < len: torn frame
        decoder = FrameDecoder()
        assert decoder.feed(encoded[:cut]) == []
        with pytest.raises(FrameTruncated):
            decoder.eof()

    @given(
        frame=frames_st,
        pos=st.integers(min_value=0, max_value=2**32),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_corrupted_byte_rejected_and_terminal(self, frame, pos, flip):
        """Flipping any bit after the length prefix trips the CRC; the
        corrupt frame never reaches the caller and the stream is dead."""
        encoded = bytearray(encode_frame(frame))
        pos = 4 + pos % (len(encoded) - 4)  # leave the length prefix intact
        encoded[pos] ^= flip
        decoder = FrameDecoder()
        with pytest.raises(FrameCorrupt):
            decoder.feed(bytes(encoded))
        with pytest.raises(FrameError):
            decoder.feed(b"")

    @given(body=st.binary(max_size=64), bad_type=st.integers(min_value=11, max_value=255))
    def test_unknown_frame_type_rejected(self, body, bad_type):
        blob = bytes([bad_type]) + body
        payload = blob + struct.pack(">I", zlib.crc32(blob) & 0xFFFFFFFF)
        decoder = FrameDecoder()
        with pytest.raises(FrameCorrupt):
            decoder.feed(struct.pack(">I", len(payload)) + payload)

    def test_default_cap_is_the_module_constant(self):
        assert FrameDecoder().max_frame_bytes == MAX_FRAME_BYTES


@st.composite
def reports_st(draw):
    n_packets = draw(st.integers(min_value=1, max_value=300))
    received = draw(st.sets(st.integers(min_value=0, max_value=n_packets - 1)))
    return ReceptionReport(
        round_id=draw(st.integers(min_value=0, max_value=65535)),
        terminal="bob",
        received_ids=frozenset(received),
        n_packets=n_packets,
    )


class TestMessageBodies:
    @given(report=reports_st())
    def test_report_bitmap_roundtrip(self, report):
        assert unpack_report(pack_report(report), "bob") == report

    @given(
        role=st.sampled_from([0, 1]),
        session_id=st.binary(min_size=16, max_size=16),
        digest=st.binary(min_size=16, max_size=16),
        name=st.text(max_size=40),
    )
    def test_hello_roundtrip(self, role, session_id, digest, name):
        hello = WireHello(role, session_id, digest, name)
        assert WireHello.unpack(hello.pack()) == hello

    @given(
        round_id=st.integers(min_value=0, max_value=65535),
        x_id=st.integers(min_value=0, max_value=65535),
        payload=st.binary(max_size=256),
    )
    def test_x_packet_roundtrip(self, round_id, x_id, payload):
        pkt = WireXPacket(round_id, x_id, payload)
        assert WireXPacket.unpack(pkt.pack()) == pkt

    @given(
        round_id=st.integers(min_value=0, max_value=65535),
        blocks=st.lists(
            st.tuples(
                st.lists(
                    st.integers(min_value=0, max_value=511),
                    min_size=1,
                    max_size=12,
                    unique=True,
                ),
                st.integers(min_value=0, max_value=255),
            ),
            max_size=6,
        ),
    )
    def test_block_descriptor_roundtrip(self, round_id, blocks):
        descriptor = WireBlockDescriptor(
            round_id=round_id,
            supports=tuple(tuple(support) for support, _ in blocks),
            rows=tuple(rows for _, rows in blocks),
        )
        assert WireBlockDescriptor.unpack(descriptor.pack()) == descriptor

    @given(
        round_id=st.integers(min_value=0, max_value=65535),
        chunks=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=255),
                st.integers(min_value=0, max_value=255),
            ),
            max_size=6,
        ),
    )
    def test_phase2_descriptor_roundtrip(self, round_id, chunks):
        sizes = tuple(size for size, _ in chunks)
        secrets = tuple(min(split, size) for size, split in chunks)
        publics = tuple(size - secret for size, secret in zip(sizes, secrets))
        descriptor = WirePhase2Descriptor(round_id, sizes, secrets, publics)
        assert WirePhase2Descriptor.unpack(descriptor.pack()) == descriptor

    @given(
        round_id=st.integers(min_value=0, max_value=65535),
        chunk=st.integers(min_value=0, max_value=65535),
        row=st.integers(min_value=0, max_value=65535),
        payload=st.binary(max_size=128),
    )
    def test_z_content_roundtrip(self, round_id, chunk, row, payload):
        content = WireZContent(round_id, chunk, row, payload)
        assert WireZContent.unpack(content.pack()) == content

    def test_report_rejects_truncated_bitmap(self):
        report = ReceptionReport(
            round_id=0, terminal="bob", received_ids=frozenset({0}), n_packets=16
        )
        body = pack_report(report)
        with pytest.raises(FrameCorrupt):
            unpack_report(body[:-1], "bob")
