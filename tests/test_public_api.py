"""Public-API surface: everything advertised imports and is documented."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.gf",
    "repro.coding",
    "repro.net",
    "repro.testbed",
    "repro.core",
    "repro.theory",
    "repro.analysis",
    "repro.sim",
    "repro.auth",
    "repro.cli",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "name",
        ["repro.gf", "repro.coding", "repro.net", "repro.testbed",
         "repro.core", "repro.theory", "repro.analysis", "repro.sim",
         "repro.auth"],
    )
    def test_subpackage_all_resolves(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol}"


class TestDocstrings:
    def test_exported_callables_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, undocumented

    def test_version(self):
        assert repro.__version__ == "1.0.0"
