"""End-to-end runs: testbed experiments, bursty channels, multi-antenna
Eve, and cross-cutting invariants."""

import numpy as np
import pytest

from repro.core.estimator import (
    CollusionEstimator,
    CombinedEstimator,
    LeaveOneOutEstimator,
    OracleEstimator,
)
from repro.core.rotation import run_experiment
from repro.core.session import ProtocolSession, SessionConfig
from repro.net.channel import GilbertElliottChannel
from repro.net.medium import BroadcastMedium, ChannelLossModel
from repro.net.node import Eavesdropper, Terminal
from repro.testbed.deployment import Testbed, TestbedConfig
from repro.testbed.estimator import InterferenceAwareEstimator
from repro.testbed.placements import Placement


@pytest.fixture(scope="module")
def testbed():
    return Testbed(TestbedConfig(interferer_power_dbm=10.0))


class TestTestbedEndToEnd:
    def test_oracle_on_testbed_is_perfect(self, testbed):
        rng = np.random.default_rng(5)
        placement = Placement(eve_cell=4, terminal_cells=(0, 2, 6, 8))
        medium, names = testbed.build_medium(placement, rng)
        result = run_experiment(
            medium, names, OracleEstimator(), rng,
            config=SessionConfig(n_x_packets=90, payload_bytes=32),
        )
        assert result.reliability == 1.0
        assert result.secret_bits > 0
        assert 0 < result.efficiency < 1

    def test_interference_aware_estimator_high_reliability(self, testbed):
        rng = np.random.default_rng(6)
        placement = Placement(
            eve_cell=4, terminal_cells=(0, 1, 2, 3, 5, 6, 7, 8)
        )
        medium, names = testbed.build_medium(placement, rng)
        estimator = InterferenceAwareEstimator(
            testbed.interference,
            testbed.config.geometry,
            min_jam_loss=0.6,
            candidate_cells=testbed.eve_candidate_cells(placement),
        )
        result = run_experiment(
            medium, names, estimator, rng,
            config=SessionConfig(n_x_packets=90, payload_bytes=32,
                                 secrecy_slack=1),
        )
        assert result.reliability >= 0.9
        assert result.secret_bits > 0

    def test_no_interference_starves_the_protocol(self):
        """Ablation: without artificial interference Eve hears nearly
        everything (LOS links), so oracle-budgeted secrets are tiny."""
        quiet = Testbed(
            TestbedConfig(interference_enabled=False, base_loss=0.02)
        )
        rng = np.random.default_rng(7)
        placement = Placement(eve_cell=4, terminal_cells=(0, 2, 6))
        medium, names = quiet.build_medium(placement, rng)
        result = run_experiment(
            medium, names, OracleEstimator(), rng,
            config=SessionConfig(n_x_packets=90, payload_bytes=32),
        )
        noisy = Testbed(TestbedConfig(interferer_power_dbm=10.0))
        rng2 = np.random.default_rng(7)
        medium2, names2 = noisy.build_medium(placement, rng2)
        loud = run_experiment(
            medium2, names2, OracleEstimator(), rng2,
            config=SessionConfig(n_x_packets=90, payload_bytes=32),
        )
        assert loud.secret_bits > 3 * max(result.secret_bits, 1)

    def test_multi_antenna_eve_reduces_secret(self, testbed):
        placement = Placement(eve_cell=4, terminal_cells=(0, 2, 6))
        single = np.random.default_rng(8)
        medium1, names = testbed.build_medium(placement, single)
        r1 = run_experiment(
            medium1, names, OracleEstimator(), single,
            config=SessionConfig(n_x_packets=90, payload_bytes=32),
        )
        multi = np.random.default_rng(8)
        medium2, names2 = testbed.build_medium(
            placement, multi, eve_extra_cells=(1, 8)
        )
        r2 = run_experiment(
            medium2, names2, OracleEstimator(), multi,
            config=SessionConfig(n_x_packets=90, payload_bytes=32),
        )
        # More antennas -> fewer Eve misses -> smaller (still perfect) secret.
        assert r2.secret_bits < r1.secret_bits
        assert r2.reliability == 1.0

    def test_collusion_estimator_defends_multi_antenna(self, testbed):
        placement = Placement(eve_cell=4, terminal_cells=(0, 1, 2, 5, 6, 7))
        rng = np.random.default_rng(9)
        medium, names = testbed.build_medium(
            placement, rng, eve_extra_cells=(8,)
        )
        loo = run_experiment(
            medium, names,
            LeaveOneOutEstimator(rate_margin=0.05), rng,
            config=SessionConfig(n_x_packets=90, payload_bytes=16,
                                 secrecy_slack=1),
        )
        rng2 = np.random.default_rng(9)
        medium2, names2 = testbed.build_medium(
            placement, rng2, eve_extra_cells=(8,)
        )
        collusion = run_experiment(
            medium2, names2,
            CollusionEstimator(k=2, rate_margin=0.05), rng2,
            config=SessionConfig(n_x_packets=90, payload_bytes=16,
                                 secrecy_slack=1),
        )
        assert collusion.reliability >= loo.reliability - 0.05


class TestBurstyChannels:
    def test_protocol_survives_gilbert_elliott(self):
        """Bursty erasures change rates, never correctness: terminals
        still agree and oracle secrecy still holds exactly."""
        rng = np.random.default_rng(11)
        names = ["T0", "T1", "T2"]
        nodes = [Terminal(name=n) for n in names] + [Eavesdropper(name="eve")]
        model = ChannelLossModel(
            {},
            default_factory=lambda: GilbertElliottChannel(
                p_g2b=0.08, p_b2g=0.25
            ),
        )
        medium = BroadcastMedium(nodes, model, rng)
        result = run_experiment(
            medium, names, OracleEstimator(), rng,
            config=SessionConfig(n_x_packets=120, payload_bytes=16),
        )
        assert result.reliability == 1.0


class TestCombinedEstimatorEndToEnd:
    def test_combined_never_less_reliable_than_loosest(self, testbed):
        placement = Placement(eve_cell=0, terminal_cells=(1, 2, 3, 4, 5, 6, 7, 8))
        cfg = SessionConfig(n_x_packets=90, payload_bytes=16, secrecy_slack=1)

        def run_with(estimator, seed=13):
            rng = np.random.default_rng(seed)
            medium, names = testbed.build_medium(placement, rng)
            return run_experiment(medium, names, estimator, rng, config=cfg)

        ia = InterferenceAwareEstimator(
            testbed.interference, testbed.config.geometry, 0.6,
            candidate_cells=testbed.eve_candidate_cells(placement),
        )
        loo = LeaveOneOutEstimator()
        combined = run_with(CombinedEstimator([ia, loo]))
        loo_only = run_with(LeaveOneOutEstimator())
        assert combined.reliability >= loo_only.reliability - 1e-9
