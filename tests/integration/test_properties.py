"""Property-based end-to-end invariants.

Hypothesis drives the protocol across random group sizes, loss rates,
payload sizes and estimator choices; these invariants must hold on
every draw:

1. **Agreement** — every terminal derives the identical secret (the
   session raises ProtocolError otherwise, so completing a round *is*
   the assertion).
2. **Conservation** — the secret is never longer than min_i M_i, and
   phase 2 publishes exactly M − L_cap z-packets.
3. **Oracle soundness** — ground-truth budgets never leak.
4. **Accounting** — efficiency equals secret bits over ledger bits.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.estimator import FixedFractionEstimator, OracleEstimator
from repro.core.session import ProtocolSession, SessionConfig
from repro.net.medium import BroadcastMedium, IIDLossModel
from repro.net.node import Eavesdropper, Terminal

SET = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build(seed, n_terminals, loss):
    rng = np.random.default_rng(seed)
    names = [f"T{i}" for i in range(n_terminals)]
    nodes = [Terminal(name=x) for x in names] + [Eavesdropper(name="eve")]
    medium = BroadcastMedium(nodes, IIDLossModel(loss), rng)
    return medium, names, rng


class TestEndToEndProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n_terminals=st.integers(min_value=2, max_value=5),
        loss=st.floats(min_value=0.05, max_value=0.6),
        payload=st.integers(min_value=1, max_value=64),
    )
    @SET
    def test_oracle_rounds_agree_and_never_leak(
        self, seed, n_terminals, loss, payload
    ):
        medium, names, rng = build(seed, n_terminals, loss)
        cfg = SessionConfig(n_x_packets=36, payload_bytes=payload)
        session = ProtocolSession(
            medium, names, OracleEstimator(), rng, config=cfg
        )
        result = session.run_round(names[0])  # agreement asserted inside
        assert result.leakage.perfect
        assert result.secret_packets <= result.allocation.min_m_i()
        if result.secret.size:
            assert result.secret.shape[1] == payload

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        fraction=st.floats(min_value=0.0, max_value=0.6),
        slack=st.integers(min_value=0, max_value=3),
    )
    @SET
    def test_fixed_fraction_rounds_always_complete(self, seed, fraction, slack):
        """Even badly calibrated estimators must never break agreement
        or accounting — only secrecy (measured, not assumed)."""
        medium, names, rng = build(seed, 3, 0.3)
        cfg = SessionConfig(
            n_x_packets=30, payload_bytes=8, secrecy_slack=slack
        )
        session = ProtocolSession(
            medium, names, FixedFractionEstimator(fraction), rng, config=cfg
        )
        result = session.run_round(names[0])
        assert 0.0 <= result.leakage.reliability <= 1.0
        l_cap = result.allocation.min_m_i()
        assert result.secret_packets <= max(0, l_cap - slack) or l_cap == 0
        assert result.plan.total_public == result.allocation.total_rows - l_cap

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @SET
    def test_efficiency_accounting_exact(self, seed):
        medium, names, rng = build(seed, 3, 0.35)
        cfg = SessionConfig(n_x_packets=30, payload_bytes=16)
        session = ProtocolSession(
            medium, names, OracleEstimator(), rng, config=cfg
        )
        result = session.run_round(names[0])
        from repro.core.metrics import efficiency

        eff = efficiency(result.secret_bits, medium.ledger.total_bits)
        assert eff == result.secret_bits / medium.ledger.total_bits
        assert 0.0 <= eff < 1.0

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        loss=st.floats(min_value=0.05, max_value=0.5),
    )
    @SET
    def test_secret_bits_capped_by_eve_misses(self, seed, loss):
        """Information-theoretic sanity: the round's secret cannot
        exceed what Eve physically missed."""
        medium, names, rng = build(seed, 3, loss)
        cfg = SessionConfig(n_x_packets=40, payload_bytes=8)
        session = ProtocolSession(
            medium, names, OracleEstimator(), rng, config=cfg
        )
        result = session.run_round(names[0])
        eve_missed = cfg.n_x_packets - len(result.eve_received_ids)
        assert result.secret_packets <= eve_missed
