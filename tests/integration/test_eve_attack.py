"""Constructive Eve: the leakage metric means what it claims.

``round_leakage`` reports how many secret dimensions Eve can determine.
These tests play Eve for real: build her linear system (known x-symbols,
public z-contents, all combination identities), *solve it*, and verify

* every dimension the metric calls "leaked" is reconstructed exactly,
* every dimension it calls "hidden" cannot be predicted better than
  chance (checked by perturbing the unknowns).

This closes the loop between the accounting (`repro.core.eve`) and an
actual attack implementation.
"""

import numpy as np
import pytest

from repro.coding.privacy import build_phase2_matrices, plan_y_allocation
from repro.core.eve import round_leakage, stacked_secret_maps
from repro.gf.linalg import GFMatrix


def build_round(seed, budget_fraction):
    """One round over iid erasures with a fixed-fraction budget."""
    rng = np.random.default_rng(seed)
    n = 36
    payloads = rng.integers(0, 256, (n, 4), dtype=np.uint8)
    reports = {
        t: frozenset(i for i in range(n) if rng.random() > 0.4) for t in (1, 2)
    }
    eve_received = frozenset(i for i in range(n) if rng.random() > 0.5)

    def budget(ids, exclude=frozenset()):
        return budget_fraction * len(ids)

    alloc = plan_y_allocation(reports, budget, n)
    plan = build_phase2_matrices(alloc)
    return n, payloads, alloc, plan, eve_received


class EveSolver:
    """Everything Eve knows, as one linear system over GF(256)."""

    def __init__(self, n, payloads, alloc, plan, eve_received):
        self.n = n
        self.payloads = payloads
        z_map, s_map = stacked_secret_maps(alloc, plan, list(range(n)))
        self.s_map = s_map
        # Knowledge rows: units for received x-ids, then the z-maps.
        unit = np.zeros((len(eve_received), n), dtype=np.uint8)
        self.known_values = []
        for r, xid in enumerate(sorted(eve_received)):
            unit[r, xid] = 1
            self.known_values.append(payloads[xid])
        self.k_matrix = GFMatrix(unit).vstack(z_map)
        z_values = (z_map @ GFMatrix(payloads)).data
        self.k_values = np.vstack(
            [np.vstack(self.known_values), z_values]
        ) if self.known_values else z_values
        self.s_true = (s_map @ GFMatrix(payloads)).data

    def predictable_rows(self):
        """Coefficient vectors c with c^T S in rowspace(K): the leaked
        functionals of the secret."""
        # Solve c^T S = w^T K  <=>  [S^T | K^T] [c; -w] = 0.
        stacked = self.s_map.transpose().hstack(self.k_matrix.transpose())
        null = stacked.null_space()
        combos = []
        s_rows = self.s_map.rows
        for row in null.data:
            c = row[:s_rows]
            w = row[s_rows:]
            if np.any(c):
                combos.append((c, w))
        return combos

    def leaked_dimension_count(self):
        combos = self.predictable_rows()
        if not combos:
            return 0
        c_matrix = GFMatrix(np.vstack([c for c, _ in combos]))
        return c_matrix.rank()


class TestConstructiveAttack:
    @pytest.mark.parametrize("seed", [1, 4, 7, 11])
    def test_leaked_functionals_reconstruct_exactly(self, seed):
        n, payloads, alloc, plan, eve_received = build_round(seed, 0.8)
        if plan.total_secret == 0:
            pytest.skip("no secret this draw")
        solver = EveSolver(n, payloads, alloc, plan, eve_received)
        for c, w in solver.predictable_rows():
            predicted = (GFMatrix(c.reshape(1, -1)) @ GFMatrix(solver.s_true)).data
            via_knowledge = (
                GFMatrix(w.reshape(1, -1)) @ GFMatrix(solver.k_values)
            ).data
            assert np.array_equal(predicted, via_knowledge), (
                "Eve's derived functional must equal her computed value"
            )

    @pytest.mark.parametrize("seed", [1, 4, 7, 11])
    def test_attack_dimension_matches_metric(self, seed):
        n, payloads, alloc, plan, eve_received = build_round(seed, 0.8)
        if plan.total_secret == 0:
            pytest.skip("no secret this draw")
        solver = EveSolver(n, payloads, alloc, plan, eve_received)
        leakage = round_leakage(alloc, plan, eve_received, list(range(n)))
        assert solver.leaked_dimension_count() == leakage.leaked_dims

    @pytest.mark.parametrize("seed", [2, 5, 9])
    def test_hidden_dimensions_vary_with_unknowns(self, seed):
        """Re-randomising the x-symbols Eve missed must change the
        hidden part of the secret while fixing her entire view."""
        n, payloads, alloc, plan, eve_received = build_round(seed, 0.8)
        leakage = round_leakage(alloc, plan, eve_received, list(range(n)))
        if leakage.hidden_dims == 0:
            pytest.skip("fully leaked this draw")
        _, s_map = stacked_secret_maps(alloc, plan, list(range(n)))
        rng = np.random.default_rng(seed + 100)
        missed = [i for i in range(n) if i not in eve_received]
        seen = set()
        for _ in range(48):
            alt = payloads.copy()
            for i in missed:
                alt[i] = rng.integers(0, 256, payloads.shape[1], dtype=np.uint8)
            seen.add((s_map @ GFMatrix(alt)).data.tobytes())
        assert len(seen) > 24, "hidden dims must leave the secret variable"

    def test_perfect_round_defeats_the_solver(self):
        """When the metric says perfect, the solver finds no functional."""
        rng = np.random.default_rng(3)
        n = 30
        payloads = rng.integers(0, 256, (n, 4), dtype=np.uint8)
        reports = {1: frozenset(range(20)), 2: frozenset(range(10, 30))}
        eve_received = frozenset(range(0, 10))
        eve_missed = set(range(n)) - eve_received

        def oracle(ids, exclude=frozenset()):
            return float(sum(1 for i in ids if i in eve_missed))

        alloc = plan_y_allocation(reports, oracle, n)
        plan = build_phase2_matrices(alloc)
        leakage = round_leakage(alloc, plan, eve_received, list(range(n)))
        assert leakage.perfect
        solver = EveSolver(n, payloads, alloc, plan, eve_received)
        assert solver.leaked_dimension_count() == 0
