"""The paper's §3.1 worked example, reproduced exactly.

"Alice transmits N = 10 x-packets.  Bob correctly receives 5 of them,
x1, x3, x5, x7, x9 [1-indexed], and tells Alice which ones.  Suppose Eve
correctly receives 6 of the transmitted packets, x1, x3, x5, x6, x8,
x10, and completely misses the rest.  At this point, Alice and Bob share
the contents of x1, x3, x5, x7, x9; of these, Eve misses x7, x9" —
so the pair-wise secret has exactly M1 = 2 packets and Eve must know
nothing about it.

The paper also shows the *wrong* construction (y'1 = x1+x3+x5,
y'2 = x7+x9) leaking half the secret; we verify our leakage engine
flags exactly that.
"""

import numpy as np
import pytest

from repro.coding.privacy import build_phase2_matrices, plan_y_allocation
from repro.coding.reconcile import assemble_secret, decode_y_from_x, recover_missing_y
from repro.core.eve import round_leakage
from repro.gf.linalg import GFMatrix

# 0-indexed translations of the paper's 1-indexed packet names.
BOB_RECEIVED = frozenset({0, 2, 4, 6, 8})  # x1 x3 x5 x7 x9
EVE_RECEIVED = frozenset({0, 2, 4, 5, 7, 9})  # x1 x3 x5 x6 x8 x10
N = 10


def oracle(ids, exclude=frozenset()):
    return float(sum(1 for i in ids if i not in EVE_RECEIVED))


class TestPairwiseExample:
    def test_secret_size_is_two(self):
        alloc = plan_y_allocation({"bob": BOB_RECEIVED}, oracle, N)
        # Eve misses exactly x7, x9 of the shared packets -> M1 = 2.
        assert alloc.m_i("bob") == 2

    def test_secret_is_perfect(self):
        alloc = plan_y_allocation({"bob": BOB_RECEIVED}, oracle, N)
        plan = build_phase2_matrices(alloc)
        assert plan.total_secret == 2
        leakage = round_leakage(alloc, plan, EVE_RECEIVED, list(range(N)))
        assert leakage.perfect
        assert leakage.eve_missed == 4  # x2 x4 x7 x9

    def test_bob_reconstructs_from_identities_only(self, rng):
        payloads = rng.integers(0, 256, (N, 100), dtype=np.uint8)
        alloc = plan_y_allocation({"bob": BOB_RECEIVED}, oracle, N)
        plan = build_phase2_matrices(alloc)
        bob_known = decode_y_from_x(
            alloc, "bob", {i: payloads[i] for i in BOB_RECEIVED}
        )
        full = {}
        g = alloc.global_matrix(list(range(N)))
        y_true = (g @ GFMatrix(payloads)).data
        for chunk in plan.chunks:
            z_vals = (chunk.z_matrix @ GFMatrix(y_true[list(chunk.y_rows)])).data
            full.update(recover_missing_y(chunk, bob_known, z_vals))
        bob_secret = assemble_secret(plan, full)
        alice_secret = assemble_secret(
            plan, {i: y_true[i] for i in range(alloc.total_rows)}
        )
        assert np.array_equal(bob_secret, alice_secret)
        assert bob_secret.shape == (2, 100)


class TestBadConstructionLeaks:
    def test_papers_counterexample_leaks_half(self):
        """y'1 = x1+x3+x5 is fully known to Eve (she has all three);
        y'2 = x7+x9 is fully hidden.  Reliability must be exactly 0.5."""
        from repro.coding.privacy import CombinationBlock, Phase2Chunk, GroupCodingPlan, YAllocation

        bad_rows = np.zeros((2, N), dtype=np.uint8)
        for col in (0, 2, 4):  # x1 + x3 + x5
            bad_rows[0, col] = 1
        for col in (6, 8):  # x7 + x9
            bad_rows[1, col] = 1
        alloc = YAllocation(
            blocks=[
                CombinationBlock(
                    subset=frozenset({"bob"}),
                    support=(0, 2, 4),
                    matrix=GFMatrix(bad_rows[0:1, [0, 2, 4]]),
                    certified_budget=1,
                ),
                CombinationBlock(
                    subset=frozenset({"bob"}),
                    support=(6, 8),
                    matrix=GFMatrix(bad_rows[1:2, [6, 8]]),
                    certified_budget=1,
                ),
            ],
            receivers=("bob",),
        )
        # Both y-rows become the secret directly (no z needed for n=2).
        chunk = Phase2Chunk(
            y_rows=(0, 1),
            z_matrix=GFMatrix(np.zeros((0, 2), dtype=np.uint8)),
            s_matrix=GFMatrix(np.eye(2, dtype=np.uint8)),
        )
        plan = GroupCodingPlan(chunks=[chunk])
        leakage = round_leakage(alloc, plan, EVE_RECEIVED, list(range(N)))
        assert leakage.secret_dims == 2
        assert leakage.hidden_dims == 1
        assert leakage.reliability == pytest.approx(0.5)


class TestGroupExampleShape:
    """§3.2's three-terminal example: phase 2 redistributes without
    increasing what Eve knows."""

    def test_three_terminals_redistribution(self, rng):
        # Alice/Bob/Calvin with overlapping receptions; Eve misses a lot.
        reports = {
            "bob": frozenset({0, 1, 2, 3, 4, 6, 8}),
            "calvin": frozenset({0, 1, 2, 5, 7, 9}),
        }
        eve_received = frozenset({3, 5})

        def oracle3(ids, exclude=frozenset()):
            return float(sum(1 for i in ids if i not in eve_received))

        alloc = plan_y_allocation(reports, oracle3, N)
        plan = build_phase2_matrices(alloc)
        assert plan.total_secret == min(alloc.m_i("bob"), alloc.m_i("calvin"))
        leakage = round_leakage(alloc, plan, eve_received, list(range(N)))
        assert leakage.perfect
        # Phase 2 published M - L combinations; Eve saw them all and
        # still knows nothing — the redistribution property.
        assert plan.total_public == alloc.total_rows - plan.total_secret
