"""The central secrecy property, exercised as a randomised theorem.

Whenever the budget oracle tells the truth (it reports exactly what Eve
missed), the construction must yield *perfect* secrecy: Eve's rank-
accounted knowledge of the s-packets is zero, for every random reception
pattern, group size and payload.  This is the paper's "Eve knows
nothing" claim and our block-diagonal certificate, tested end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.privacy import build_phase2_matrices, plan_y_allocation
from repro.core.eve import round_leakage, stacked_secret_maps
from repro.gf.linalg import GFMatrix


def run_instance(seed, n_receivers, n_packets, loss, eve_loss):
    rng = np.random.default_rng(seed)
    reports = {
        t: frozenset(i for i in range(n_packets) if rng.random() > loss)
        for t in range(1, n_receivers + 1)
    }
    eve_received = frozenset(
        i for i in range(n_packets) if rng.random() > eve_loss
    )
    eve_missed = set(range(n_packets)) - eve_received

    def oracle(ids, exclude=frozenset()):
        return float(sum(1 for i in ids if i in eve_missed))

    alloc = plan_y_allocation(reports, oracle, n_packets)
    plan = build_phase2_matrices(alloc)
    leakage = round_leakage(alloc, plan, eve_received, list(range(n_packets)))
    return alloc, plan, leakage


class TestPerfectSecrecyUnderOracle:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_receivers=st.integers(min_value=1, max_value=5),
        loss=st.floats(min_value=0.1, max_value=0.7),
        eve_loss=st.floats(min_value=0.1, max_value=0.7),
    )
    @settings(max_examples=40, deadline=None)
    def test_oracle_budgets_never_leak(self, seed, n_receivers, loss, eve_loss):
        _, _, leakage = run_instance(seed, n_receivers, 40, loss, eve_loss)
        assert leakage.perfect, (
            f"leaked {leakage.leaked_dims}/{leakage.secret_dims} "
            f"(seed={seed}, n={n_receivers})"
        )

    def test_eve_receives_everything_zero_secret(self):
        _, plan, leakage = run_instance(3, 3, 40, 0.4, 0.0)
        # Oracle certifies no misses -> no secret should be built.
        assert plan.total_secret == 0

    def test_eve_receives_nothing_full_secret(self):
        alloc, plan, leakage = run_instance(4, 3, 40, 0.4, 1.0)
        assert plan.total_secret > 0
        assert leakage.perfect


class TestLeakageAccountingAgainstBruteForce:
    """Cross-check the rank shortcut against a first-principles count."""

    def brute_force_hidden(self, alloc, plan, eve_received, n_packets):
        g = alloc.global_matrix(list(range(n_packets)))
        unit_rows = np.zeros((len(eve_received), n_packets), dtype=np.uint8)
        for r, xid in enumerate(sorted(eve_received)):
            unit_rows[r, xid] = 1
        z_map, s_map = stacked_secret_maps(alloc, plan, list(range(n_packets)))
        if s_map.rows == 0:
            return 0
        knowledge = GFMatrix(unit_rows).vstack(z_map)
        return knowledge.vstack(s_map).rank() - knowledge.rank()

    @pytest.mark.parametrize("seed", [1, 2, 5, 9, 13])
    def test_column_restriction_equals_unit_row_stacking(self, seed):
        rng = np.random.default_rng(seed)
        n_packets = 30
        reports = {
            t: frozenset(i for i in range(n_packets) if rng.random() > 0.4)
            for t in (1, 2)
        }
        eve_received = frozenset(
            i for i in range(n_packets) if rng.random() > 0.5
        )

        # Use a deliberately unreliable budget so leakage is nonzero and
        # the two accounting methods are compared on interesting cases.
        def sloppy(ids, exclude=frozenset()):
            return 0.7 * len(ids)

        alloc = plan_y_allocation(reports, sloppy, n_packets)
        plan = build_phase2_matrices(alloc)
        leakage = round_leakage(alloc, plan, eve_received, list(range(n_packets)))
        brute = self.brute_force_hidden(alloc, plan, eve_received, n_packets)
        assert leakage.hidden_dims == brute

    def test_monte_carlo_guessing_matches_entropy(self):
        """Empirical check of the metric's meaning: if hidden == secret
        dims, Eve's best affine-solver guesses no better than chance."""
        rng = np.random.default_rng(42)
        n_packets = 24
        payloads = rng.integers(0, 256, (n_packets, 1), dtype=np.uint8)
        reports = {1: frozenset(range(0, 16)), 2: frozenset(range(8, 24))}
        eve_received = frozenset(range(0, 12))
        eve_missed = set(range(n_packets)) - eve_received

        def oracle(ids, exclude=frozenset()):
            return float(sum(1 for i in ids if i in eve_missed))

        alloc = plan_y_allocation(reports, oracle, n_packets)
        plan = build_phase2_matrices(alloc)
        leakage = round_leakage(alloc, plan, eve_received, list(range(n_packets)))
        if plan.total_secret == 0:
            pytest.skip("no secret for this pattern")
        assert leakage.perfect

        # Eve enumerates consistent completions: every secret value must
        # appear equally often across completions of her unknowns (we
        # sample completions and check the secret varies).
        g = alloc.global_matrix(list(range(n_packets)))
        z_map, s_map = stacked_secret_maps(alloc, plan, list(range(n_packets)))
        seen = set()
        for _ in range(64):
            x = payloads.copy()
            for i in eve_missed:
                x[i, 0] = rng.integers(0, 256)
            s_val = (s_map @ GFMatrix(x)).data.tobytes()
            seen.add(s_val)
        # With >= 1 hidden dimension, completions must produce many
        # distinct secrets (collisions allowed, constancy is failure).
        assert len(seen) > 32
