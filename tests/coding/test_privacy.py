"""Allocation invariants: disjoint supports, decodability, budgets,
trimming, phase-2 structure and the secrecy slack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.privacy import (
    CombinationBlock,
    MAX_PHASE2_ROWS,
    YAllocation,
    _scatter_order,
    build_phase2_matrices,
    plan_y_allocation,
)
from repro.gf.matrices import cauchy_matrix


def make_reports(rng, n_receivers=3, n_packets=60, loss=0.4):
    return {
        t: {i for i in range(n_packets) if rng.random() > loss}
        for t in range(1, n_receivers + 1)
    }


def oracle_for(eve_missed):
    def budget(ids, exclude=frozenset()):
        return float(sum(1 for i in ids if i in eve_missed))

    return budget


def fraction_budget(fraction):
    def budget(ids, exclude=frozenset()):
        return fraction * len(ids)

    return budget


class TestCombinationBlock:
    def test_rejects_mismatched_columns(self):
        with pytest.raises(ValueError):
            CombinationBlock(
                subset=frozenset({1}),
                support=(1, 2, 3),
                matrix=cauchy_matrix(2, 2),
                certified_budget=2,
            )

    def test_rejects_more_rows_than_support(self):
        with pytest.raises(ValueError):
            CombinationBlock(
                subset=frozenset({1}),
                support=(1, 2),
                matrix=cauchy_matrix(3, 2),
                certified_budget=3,
            )


class TestAllocationInvariants:
    def test_supports_disjoint(self, rng):
        reports = make_reports(rng)
        eve_missed = {i for i in range(60) if rng.random() < 0.5}
        alloc = plan_y_allocation(reports, oracle_for(eve_missed), 60)
        seen = set()
        for b in alloc.blocks:
            assert not (seen & set(b.support))
            seen |= set(b.support)

    def test_decodability_support_within_reports(self, rng):
        reports = make_reports(rng)
        eve_missed = {i for i in range(60) if rng.random() < 0.5}
        alloc = plan_y_allocation(reports, oracle_for(eve_missed), 60)
        for b in alloc.blocks:
            for t in b.subset:
                assert set(b.support) <= reports[t], (t, b.support)

    def test_rows_within_certified_budget(self, rng):
        reports = make_reports(rng)
        eve_missed = {i for i in range(60) if rng.random() < 0.5}
        budget = oracle_for(eve_missed)
        alloc = plan_y_allocation(reports, budget, 60)
        for b in alloc.blocks:
            assert b.rows <= budget(b.support, b.subset)

    def test_empty_reports_give_empty_allocation(self):
        alloc = plan_y_allocation({1: set(), 2: set()}, fraction_budget(0.5), 10)
        assert alloc.total_rows == 0

    def test_zero_budget_gives_empty_allocation(self, rng):
        reports = make_reports(rng)
        alloc = plan_y_allocation(reports, fraction_budget(0.0), 60)
        assert alloc.total_rows == 0

    def test_max_subset_size_respected(self, rng):
        reports = make_reports(rng, n_receivers=4)
        alloc = plan_y_allocation(
            reports, fraction_budget(0.4), 60, max_subset_size=2
        )
        assert all(len(b.subset) <= 2 for b in alloc.blocks)

    def test_m_i_consistency(self, rng):
        reports = make_reports(rng)
        eve_missed = {i for i in range(60) if rng.random() < 0.5}
        alloc = plan_y_allocation(reports, oracle_for(eve_missed), 60)
        for t in reports:
            assert alloc.m_i(t) == len(alloc.rows_for_terminal(t))
        assert alloc.min_m_i() == min(alloc.m_i(t) for t in reports)

    def test_trimming_balances_coverage(self, rng):
        # After trimming, no single-terminal block should exceed the
        # group minimum by much: rows above min_m_i serve nobody.
        reports = make_reports(rng, n_receivers=4, n_packets=100)
        eve_missed = {i for i in range(100) if rng.random() < 0.5}
        alloc = plan_y_allocation(reports, oracle_for(eve_missed), 100)
        floor = alloc.min_m_i()
        for b in alloc.blocks:
            if len(b.subset) == 1:
                (t,) = b.subset
                # Removing any row of this block would drop t to >= floor.
                assert alloc.m_i(t) - 0 >= floor

    def test_global_matrix_matches_blocks(self, rng):
        reports = make_reports(rng)
        eve_missed = {i for i in range(60) if rng.random() < 0.5}
        alloc = plan_y_allocation(reports, oracle_for(eve_missed), 60)
        g = alloc.global_matrix(list(range(60)))
        assert g.shape == (alloc.total_rows, 60)
        offset = 0
        for b in alloc.blocks:
            for r in range(b.rows):
                row = g.data[offset + r]
                nz_cols = set(np.nonzero(row)[0].tolist())
                assert nz_cols <= set(b.support)
            offset += b.rows

    def test_block_row_offsets(self, rng):
        reports = make_reports(rng)
        alloc = plan_y_allocation(reports, fraction_budget(0.3), 60)
        offsets = alloc.block_row_offsets()
        assert len(offsets) == len(alloc.blocks)
        acc = 0
        for off, b in zip(offsets, alloc.blocks):
            assert off == acc
            acc += b.rows

    @given(st.floats(min_value=0.05, max_value=0.95), st.integers(min_value=2, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_invariants_hold_across_rates(self, fraction, n_receivers):
        rng = np.random.default_rng(int(fraction * 1000) + n_receivers)
        reports = make_reports(rng, n_receivers=n_receivers, n_packets=50)
        alloc = plan_y_allocation(reports, fraction_budget(fraction), 50)
        seen = set()
        for b in alloc.blocks:
            assert not (seen & set(b.support))
            seen |= set(b.support)
            for t in b.subset:
                assert set(b.support) <= reports[t]


class TestScatterOrder:
    def test_is_permutation(self):
        ids = list(range(37))
        scattered = _scatter_order(ids)
        assert sorted(scattered) == ids

    def test_prefixes_spread_over_range(self):
        ids = list(range(100))
        prefix = _scatter_order(ids)[:20]
        # A time-clustered prefix would span < 25 slots; scattered must
        # cover most of the round.
        assert max(prefix) - min(prefix) > 60

    def test_deterministic(self):
        assert _scatter_order(range(50)) == _scatter_order(range(50))


class TestPhase2:
    def _alloc(self, rng, n_receivers=3, n_packets=60):
        reports = make_reports(rng, n_receivers=n_receivers, n_packets=n_packets)
        eve_missed = {i for i in range(n_packets) if rng.random() < 0.5}
        return plan_y_allocation(reports, oracle_for(eve_missed), n_packets), reports

    def test_chunk_rows_partition_global_rows(self, rng):
        alloc, _ = self._alloc(rng)
        plan = build_phase2_matrices(alloc)
        covered = [r for c in plan.chunks for r in c.y_rows]
        assert sorted(covered) == list(range(alloc.total_rows))

    def test_z_plus_slack_plus_s_counts(self, rng):
        alloc, reports = self._alloc(rng)
        plan = build_phase2_matrices(alloc)
        assert plan.total_secret <= alloc.min_m_i()
        for chunk in plan.chunks:
            assert chunk.n_public + chunk.n_secret <= chunk.size

    def test_secrecy_slack_reduces_secret_only(self, rng):
        alloc, _ = self._alloc(rng)
        base = build_phase2_matrices(alloc, secrecy_slack=0)
        slacked = build_phase2_matrices(alloc, secrecy_slack=2)
        assert slacked.total_public == base.total_public
        assert slacked.total_secret == max(
            0, sum(max(0, c.n_secret - 2) for c in base.chunks)
        )

    def test_negative_slack_rejected(self, rng):
        alloc, _ = self._alloc(rng)
        with pytest.raises(ValueError):
            build_phase2_matrices(alloc, secrecy_slack=-1)

    def test_stacked_zs_matrix_full_rank(self, rng):
        alloc, _ = self._alloc(rng)
        plan = build_phase2_matrices(alloc)
        for chunk in plan.chunks:
            stacked = chunk.z_matrix.vstack(chunk.s_matrix)
            assert stacked.rank() == stacked.rows

    def test_z_minor_solvability(self, rng):
        # Every subset of <= n_public columns must be solvable — the
        # terminal-side decode relies on it.
        alloc, _ = self._alloc(rng)
        plan = build_phase2_matrices(alloc)
        for chunk in plan.chunks:
            if chunk.n_public == 0:
                continue
            k = min(chunk.n_public, 3)
            sub = chunk.z_matrix.take_cols(list(range(k)))
            assert sub.rank() == k

    def test_empty_allocation(self):
        plan = build_phase2_matrices(YAllocation(blocks=[], receivers=(1, 2)))
        assert plan.total_secret == 0 and plan.total_public == 0

    def test_chunking_respects_limit(self, rng):
        # Build an allocation with enough rows to force chunking.
        reports = {
            t: set(range(240)) for t in (1, 2)
        }
        alloc = plan_y_allocation(reports, fraction_budget(0.9), 240)
        if alloc.total_rows > MAX_PHASE2_ROWS:
            plan = build_phase2_matrices(alloc)
            assert len(plan.chunks) >= 2
            assert all(c.size <= MAX_PHASE2_ROWS for c in plan.chunks)
