"""Terminal-side decoding paths and their failure modes."""

import numpy as np
import pytest

from repro.coding.privacy import (
    Phase2Chunk,
    build_phase2_matrices,
    plan_y_allocation,
)
from repro.coding.reconcile import (
    assemble_secret,
    decodable_y_indices,
    decode_y_from_x,
    recover_missing_y,
)
from repro.gf.linalg import GFMatrix
from repro.gf.matrices import cauchy_matrix


@pytest.fixture
def scenario(rng):
    n = 50
    payloads = rng.integers(0, 256, (n, 12), dtype=np.uint8)
    reports = {
        t: {i for i in range(n) if rng.random() > 0.4} for t in (1, 2, 3)
    }
    eve_missed = {i for i in range(n) if rng.random() < 0.5}

    def budget(ids, exclude=frozenset()):
        return float(sum(1 for i in ids if i in eve_missed))

    alloc = plan_y_allocation(reports, budget, n)
    plan = build_phase2_matrices(alloc)
    g = alloc.global_matrix(list(range(n)))
    y_true = (g @ GFMatrix(payloads)).data
    return n, payloads, reports, alloc, plan, y_true


class TestDecodeYFromX:
    def test_values_match_leader(self, scenario):
        n, payloads, reports, alloc, plan, y_true = scenario
        for t in reports:
            known = decode_y_from_x(alloc, t, {i: payloads[i] for i in reports[t]})
            assert set(known) == set(decodable_y_indices(alloc, t))
            for g_idx, val in known.items():
                assert np.array_equal(val, y_true[g_idx])

    def test_missing_support_packet_raises(self, scenario):
        n, payloads, reports, alloc, plan, y_true = scenario
        target = None
        for b in alloc.blocks:
            if b.subset:
                target = (next(iter(b.subset)), b.support[0])
                break
        if target is None:
            pytest.skip("no blocks allocated")
        t, xid = target
        received = {i: payloads[i] for i in reports[t] if i != xid}
        with pytest.raises(KeyError):
            decode_y_from_x(alloc, t, received)

    def test_unknown_terminal_decodes_nothing(self, scenario):
        n, payloads, reports, alloc, plan, y_true = scenario
        assert decode_y_from_x(alloc, "stranger", {}) == {}


class TestRecoverMissingY:
    def test_full_recovery(self, scenario):
        n, payloads, reports, alloc, plan, y_true = scenario
        for t in reports:
            known = decode_y_from_x(alloc, t, {i: payloads[i] for i in reports[t]})
            for chunk in plan.chunks:
                z_vals = (chunk.z_matrix @ GFMatrix(y_true[list(chunk.y_rows)])).data
                full = recover_missing_y(chunk, known, z_vals)
                for g_idx in chunk.y_rows:
                    assert np.array_equal(full[g_idx], y_true[g_idx])

    def test_no_missing_shortcut(self, scenario):
        n, payloads, reports, alloc, plan, y_true = scenario
        if not plan.chunks:
            pytest.skip("no chunks")
        chunk = plan.chunks[0]
        known = {g: y_true[g] for g in chunk.y_rows}
        z_vals = np.zeros((chunk.n_public, y_true.shape[1]), dtype=np.uint8)
        full = recover_missing_y(chunk, known, z_vals)
        assert set(full) == set(chunk.y_rows)

    def test_too_many_missing_raises(self, rng):
        # Hand-built chunk: 3 rows, only 1 z-packet.
        square = cauchy_matrix(3, 3)
        chunk = Phase2Chunk(
            y_rows=(0, 1, 2),
            z_matrix=square.take_rows([0]),
            s_matrix=square.take_rows([1, 2]),
        )
        with pytest.raises(ValueError):
            recover_missing_y(chunk, {}, np.zeros((1, 4), dtype=np.uint8))

    def test_z_count_mismatch_raises(self, rng):
        square = cauchy_matrix(3, 3)
        chunk = Phase2Chunk(
            y_rows=(0, 1, 2),
            z_matrix=square.take_rows([0, 1]),
            s_matrix=square.take_rows([2]),
        )
        known = {0: np.zeros(4, dtype=np.uint8)}
        with pytest.raises(ValueError):
            recover_missing_y(chunk, known, np.zeros((1, 4), dtype=np.uint8))


class TestAssembleSecret:
    def test_matches_direct_computation(self, scenario):
        n, payloads, reports, alloc, plan, y_true = scenario
        full = {g: y_true[g] for g in range(alloc.total_rows)}
        secret = assemble_secret(plan, full)
        expected = []
        for chunk in plan.chunks:
            if chunk.n_secret:
                expected.append(
                    (chunk.s_matrix @ GFMatrix(y_true[list(chunk.y_rows)])).data
                )
        if expected:
            assert np.array_equal(secret, np.vstack(expected))
        else:
            assert secret.size == 0

    def test_empty_plan(self):
        from repro.coding.privacy import GroupCodingPlan

        secret = assemble_secret(GroupCodingPlan(chunks=[]), {})
        assert secret.shape == (0, 0)
