"""White-box tests for the allocation machinery: flow assignment, support
growth, trimming, and the allocation LP."""

import numpy as np
import pytest

from repro.coding.privacy import (
    CombinationBlock,
    _assign_ids_by_flow,
    _candidate_subsets,
    _grow_support,
    _interleaved_pool,
    _pattern_cells,
    _trim_excess_rows,
    plan_y_allocation,
)
from repro.gf.matrices import cauchy_matrix


class TestPatternCells:
    def test_partition_by_reception(self):
        reports = {1: {0, 1, 2}, 2: {1, 2, 3}}
        cells = _pattern_cells(reports)
        assert cells[frozenset({1})] == [0]
        assert cells[frozenset({1, 2})] == [1, 2]
        assert cells[frozenset({2})] == [3]

    def test_unreceived_packets_dropped(self):
        cells = _pattern_cells({1: {5}})
        assert sum(len(v) for v in cells.values()) == 1

    def test_empty(self):
        assert _pattern_cells({1: set(), 2: set()}) == {}


class TestCandidateSubsets:
    def test_all_subsets_of_patterns(self):
        cells = {frozenset({1, 2}): [0]}
        subsets = _candidate_subsets((1, 2), cells)
        assert frozenset({1}) in subsets
        assert frozenset({2}) in subsets
        assert frozenset({1, 2}) in subsets

    def test_size_cap(self):
        cells = {frozenset({1, 2, 3}): [0]}
        subsets = _candidate_subsets((1, 2, 3), cells, max_subset_size=1)
        assert all(len(s) == 1 for s in subsets)

    def test_large_receiver_fallback(self):
        receivers = tuple(range(12))
        cells = {frozenset(range(12)): [0], frozenset(range(6)): [1]}
        subsets = _candidate_subsets(receivers, cells)
        # Heuristic keeps the patterns, the full set, and one-removed sets.
        assert frozenset(range(12)) in subsets
        assert frozenset(range(6)) in subsets
        assert len(subsets) < 200


class TestFlowAssignment:
    def test_respects_demands_when_feasible(self):
        cells = {
            frozenset({1}): [0, 1, 2],
            frozenset({2}): [3, 4, 5],
            frozenset({1, 2}): [6, 7],
        }
        demand = {frozenset({1}): 3, frozenset({2}): 3, frozenset({1, 2}): 2}
        assignment = _assign_ids_by_flow(cells, demand)
        for T, want in demand.items():
            assert len(assignment[T]) == want
        # Disjointness across subsets.
        used = [i for ids in assignment.values() for i in ids]
        assert len(used) == len(set(used))

    def test_contention_resolved_without_starvation(self):
        """Two singletons competing for one shared cell must split it
        rather than letting the first take everything."""
        cells = {frozenset({1, 2}): list(range(10))}
        demand = {frozenset({1}): 5, frozenset({2}): 5}
        assignment = _assign_ids_by_flow(cells, demand)
        assert len(assignment[frozenset({1})]) == 5
        assert len(assignment[frozenset({2})]) == 5

    def test_infeasible_demands_partially_served(self):
        cells = {frozenset({1}): [0, 1]}
        demand = {frozenset({1}): 10}
        assignment = _assign_ids_by_flow(cells, demand)
        assert len(assignment[frozenset({1})]) == 2

    def test_subset_only_draws_from_eligible_cells(self):
        cells = {frozenset({1}): [0], frozenset({2}): [1]}
        demand = {frozenset({1}): 1, frozenset({2}): 1}
        assignment = _assign_ids_by_flow(cells, demand)
        assert assignment[frozenset({1})] == [0]
        assert assignment[frozenset({2})] == [1]

    def test_empty_demand(self):
        assert _assign_ids_by_flow({frozenset({1}): [0]}, {}) == {}

    def test_assignment_independent_of_hash_seed(self):
        """Regression: the flow graph once keyed nodes on frozensets of
        terminal-name *strings*; the solver's set-based worklists then
        iterated in PYTHONHASHSEED order and picked a different optimal
        flow per process, making campaigns irreproducible (the old
        flaky estimator-ablation benchmark).  Plans must now be
        bit-identical across interpreter hash seeds."""
        import os
        import subprocess
        import sys

        script = (
            "import numpy as np\n"
            "from repro.coding.privacy import plan_y_allocation\n"
            "rng = np.random.default_rng(4)\n"
            "n = 60\n"
            "reports = {f'T{t}': {i for i in range(n) if rng.random() > 0.4}\n"
            "           for t in range(1, 5)}\n"
            "alloc = plan_y_allocation(reports, lambda ids, e=frozenset():"
            " 0.3 * len(ids), n)\n"
            "print([(sorted(b.subset), list(b.support), b.rows)"
            " for b in alloc.blocks])\n"
        )
        outputs = set()
        for hash_seed in ("0", "1", "271828"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={
                    **os.environ,
                    "PYTHONHASHSEED": hash_seed,
                    "PYTHONPATH": ":".join(sys.path),
                },
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1


class TestGrowSupport:
    def budget(self, ids, exclude=frozenset()):
        return 0.5 * len(ids)

    def test_minimal_prefix(self):
        pool = list(range(20))
        support, rows = _grow_support(pool, 3, frozenset(), self.budget)
        # 0.5 rate: 6 ids certify exactly 3.
        assert rows == 3
        assert len(support) == 6

    def test_insufficient_pool_returns_what_it_can(self):
        pool = list(range(4))
        support, rows = _grow_support(pool, 10, frozenset(), self.budget)
        assert rows == 2
        assert support == pool

    def test_zero_target(self):
        assert _grow_support([1, 2], 0, frozenset(), self.budget) == ([], 0)

    def test_empty_pool(self):
        assert _grow_support([], 3, frozenset(), self.budget) == ([], 0)


class TestTrimming:
    def _block(self, subset, rows, offset=0):
        support = tuple(range(offset, offset + rows + 2))
        return CombinationBlock(
            subset=frozenset(subset),
            support=support,
            matrix=cauchy_matrix(rows, len(support)),
            certified_budget=rows,
        )

    def budget(self, ids, exclude=frozenset()):
        return float(len(ids))

    def test_trims_rows_above_group_minimum(self):
        blocks = [self._block({1}, 10, 0), self._block({2}, 3, 20)]
        trimmed = _trim_excess_rows(blocks, (1, 2), self.budget)
        m1 = sum(b.rows for b in trimmed if 1 in b.subset)
        m2 = sum(b.rows for b in trimmed if 2 in b.subset)
        assert m2 == 3
        assert m1 == 3  # excess rows served nobody

    def test_shared_blocks_not_overtrimmed(self):
        blocks = [self._block({1, 2}, 4, 0), self._block({1}, 2, 20)]
        trimmed = _trim_excess_rows(blocks, (1, 2), self.budget)
        m1 = sum(b.rows for b in trimmed if 1 in b.subset)
        m2 = sum(b.rows for b in trimmed if 2 in b.subset)
        assert m2 == 4  # the shared block is the minimum holder
        assert m1 == 4  # the singleton surplus got trimmed

    def test_balanced_input_untouched(self):
        blocks = [self._block({1}, 3, 0), self._block({2}, 3, 20)]
        trimmed = _trim_excess_rows(blocks, (1, 2), self.budget)
        assert sum(b.rows for b in trimmed) == 6

    def test_empty_inputs(self):
        assert _trim_excess_rows([], (1,), self.budget) == []
        blocks = [self._block({1}, 2, 0)]
        assert _trim_excess_rows(blocks, (), self.budget) == blocks


class TestZCostFactor:
    def test_higher_z_cost_never_increases_z_share(self, rng):
        reports = {
            t: {i for i in range(80) if rng.random() > 0.4} for t in (1, 2, 3, 4)
        }

        def budget(ids, exclude=frozenset()):
            return 0.35 * len(ids)

        cheap = plan_y_allocation(reports, budget, 80, z_cost_factor=1.0)
        dear = plan_y_allocation(reports, budget, 80, z_cost_factor=6.0)

        def z_share(alloc):
            if alloc.total_rows == 0:
                return 0.0
            return (alloc.total_rows - alloc.min_m_i()) / alloc.total_rows

        assert z_share(dear) <= z_share(cheap) + 0.15


class TestInterleavedPool:
    def test_consumed_ids_excluded(self):
        cells = {frozenset({1}): [0, 1, 2]}
        remaining = {frozenset({1}): [1, 2]}
        pool = _interleaved_pool(cells, remaining, frozenset({1}))
        assert set(pool) == {1, 2}

    def test_only_superset_patterns(self):
        cells = {frozenset({1}): [0], frozenset({2}): [1]}
        remaining = {k: list(v) for k, v in cells.items()}
        pool = _interleaved_pool(cells, remaining, frozenset({1}))
        assert pool == [0]
