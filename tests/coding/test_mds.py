"""Systematic MDS code: any-k decodability."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.mds import SystematicMDSCode


class TestConstruction:
    def test_generator_shape(self):
        code = SystematicMDSCode(k=3, n=7)
        assert code.generator.shape == (3, 7)

    def test_systematic_prefix_is_identity(self):
        code = SystematicMDSCode(k=4, n=9)
        assert np.array_equal(code.generator.data[:, :4], np.eye(4, dtype=np.uint8))

    def test_erasure_tolerance(self):
        assert SystematicMDSCode(k=3, n=8).erasure_tolerance() == 5

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SystematicMDSCode(k=0, n=3)
        with pytest.raises(ValueError):
            SystematicMDSCode(k=5, n=4)
        with pytest.raises(ValueError):
            SystematicMDSCode(k=200, n=300)

    def test_rate_one_code(self):
        code = SystematicMDSCode(k=3, n=3)
        data = np.arange(9, dtype=np.uint8).reshape(3, 3)
        assert np.array_equal(code.encode(data), data)

    def test_repr(self):
        assert "k=2" in repr(SystematicMDSCode(k=2, n=5))


class TestEncodeDecode:
    def test_systematic_rows_verbatim(self, rng):
        code = SystematicMDSCode(k=3, n=6)
        data = rng.integers(0, 256, (3, 10), dtype=np.uint8)
        coded = code.encode(data)
        assert np.array_equal(coded[:3], data)

    def test_decode_from_any_k_subset(self, rng):
        code = SystematicMDSCode(k=3, n=6)
        data = rng.integers(0, 256, (3, 5), dtype=np.uint8)
        coded = code.encode(data)
        for subset in itertools.combinations(range(6), 3):
            received = {i: coded[i] for i in subset}
            assert np.array_equal(code.decode(received), data), subset

    def test_decode_ignores_extras_deterministically(self, rng):
        code = SystematicMDSCode(k=2, n=5)
        data = rng.integers(0, 256, (2, 4), dtype=np.uint8)
        coded = code.encode(data)
        received = {i: coded[i] for i in range(5)}
        assert np.array_equal(code.decode(received), data)

    def test_decode_insufficient_raises(self, rng):
        code = SystematicMDSCode(k=3, n=6)
        data = rng.integers(0, 256, (3, 4), dtype=np.uint8)
        coded = code.encode(data)
        with pytest.raises(ValueError):
            code.decode({0: coded[0], 1: coded[1]})

    def test_decode_bad_index_raises(self, rng):
        code = SystematicMDSCode(k=2, n=4)
        data = rng.integers(0, 256, (2, 4), dtype=np.uint8)
        coded = code.encode(data)
        with pytest.raises(ValueError):
            code.decode({0: coded[0], 9: coded[1]})

    def test_encode_wrong_row_count_raises(self, rng):
        code = SystematicMDSCode(k=3, n=5)
        with pytest.raises(ValueError):
            code.encode(rng.integers(0, 256, (2, 4), dtype=np.uint8))

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, k, extra, payload):
        n = k + extra
        rng = np.random.default_rng(k * 100 + extra * 10 + payload)
        code = SystematicMDSCode(k=k, n=n)
        data = rng.integers(0, 256, (k, payload), dtype=np.uint8)
        coded = code.encode(data)
        # Random k-subset survives.
        subset = rng.choice(n, size=k, replace=False)
        received = {int(i): coded[int(i)] for i in subset}
        assert np.array_equal(code.decode(received), data)
