"""Regression tests for the ``sweep-status`` subcommand.

``sweep-status`` is a read-only reporting command: it must not create
the store directory as a side effect, must treat an empty or missing
store as a clean zero summary (exit 0), and must keep reporting the
healthy manifests when one file is torn or foreign.
"""

import importlib.util
import os

import pytest

from repro.store import CampaignStore, ManifestEntry, SweepManifest

@pytest.fixture(scope="module")
def campaign_script():
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    path = os.path.join(repo_root, "scripts", "run_reference_campaign.py")
    spec = importlib.util.spec_from_file_location("run_reference_campaign", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSweepStatus:
    def test_missing_store_dir_is_clean_zero_summary(
        self, campaign_script, tmp_path, capsys
    ):
        target = tmp_path / "never-created"
        rc = campaign_script.sweep_status(["--store", str(target)])
        assert rc == 0
        assert "0 manifests" in capsys.readouterr().out
        # Read-only command: the directory must NOT appear as a side
        # effect of asking about it.
        assert not target.exists()

    def test_empty_store_dir_is_clean_zero_summary(
        self, campaign_script, tmp_path, capsys
    ):
        target = tmp_path / "empty"
        target.mkdir()
        rc = campaign_script.sweep_status(["--store", str(target)])
        assert rc == 0
        assert "0 manifests" in capsys.readouterr().out
        assert list(target.iterdir()) == []

    def test_reports_existing_manifest_counts(
        self, campaign_script, tmp_path, capsys
    ):
        store = CampaignStore(tmp_path / "store")
        manifest = SweepManifest(
            name="demo-sweep",
            entries=tuple(
                ManifestEntry(key=f"{i:02d}" * 5, spec={"i": i}, label=f"item-{i}")
                for i in range(3)
            ),
        )
        manifest.save(store)
        rc = campaign_script.sweep_status(["--store", str(store.root)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "demo-sweep" in out
        assert "0/3 done" in out
        assert "3 pending" in out

    def test_unreadable_manifest_does_not_break_the_report(
        self, campaign_script, tmp_path, capsys
    ):
        store = CampaignStore(tmp_path / "store")
        manifest = SweepManifest(
            name="healthy",
            entries=(ManifestEntry(key="ab" * 5, spec={"i": 0}),),
        )
        manifest.save(store)
        # A torn write / foreign file alongside the healthy manifest.
        (store.root / "broken.manifest.json").write_text("{not json", encoding="utf-8")
        rc = campaign_script.sweep_status(["--store", str(store.root)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "broken: unreadable manifest" in out
        assert "healthy" in out and "0/1 done" in out

    def test_prefix_filter_with_no_match_is_clean(
        self, campaign_script, tmp_path, capsys
    ):
        store = CampaignStore(tmp_path / "store")
        SweepManifest(
            name="alpha", entries=(ManifestEntry(key="cd" * 5, spec=None),)
        ).save(store)
        rc = campaign_script.sweep_status(
            ["--store", str(store.root), "--manifest", "zeta"]
        )
        assert rc == 0
        assert "0 manifests" in capsys.readouterr().out


class TestSweepStatusUri:
    """The subcommand speaks store URIs, not just directory paths."""

    def test_sqlite_uri_reports_counts(self, campaign_script, tmp_path, capsys):
        from repro.store import open_store

        store = open_store(f"sqlite:{tmp_path}/sweep.db")
        SweepManifest(
            name="demo",
            entries=tuple(
                ManifestEntry(key=f"{i:02d}" * 5, spec={"i": i})
                for i in range(2)
            ),
        ).save(store)
        rc = campaign_script.sweep_status(
            ["--store", f"sqlite:{tmp_path}/sweep.db"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "demo" in out and "0/2 done" in out

    def test_missing_sqlite_uri_is_clean_zero_summary(
        self, campaign_script, tmp_path, capsys
    ):
        target = tmp_path / "never.db"
        rc = campaign_script.sweep_status(["--store", f"sqlite:{target}"])
        assert rc == 0
        assert "0 manifests" in capsys.readouterr().out
        assert not target.exists()
