"""Checkpoint/resume: kill a campaign mid-grid, resume, compare.

The acceptance contract of the store layer: a campaign killed partway
through and restarted against the same store must end **bit-identical**
to an uninterrupted run — for the sim-grid runner and for both testbed
campaign engines (per-packet oracle and batched).  "Killed" here means
a real mid-run abort: a worker dying mid-grid, or the process stopping
between (and even during) shard appends.
"""

import math

import numpy as np
import pytest

from repro import SessionConfig, Testbed, TestbedConfig
from repro.analysis import CampaignConfig, ReliabilityAccumulator, run_campaign
from repro.core import LeaveOneOutEstimator
from repro.sim import (
    CampaignRunner,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    Scenario,
    ScenarioGrid,
)
from repro.sim.campaign import (
    PROCESS_POOL_ITEM_THRESHOLD,
    ShardWorkerError,
    _resolve_executor,
)
from repro.store import CampaignStore
from repro.store.aggregate import stream_aggregates

GRID = ScenarioGrid(
    group_sizes=(3, 4),
    loss_models=(IIDLossSpec(0.3), IIDLossSpec(0.5)),
    estimators=(OracleEstimatorSpec(), LeaveOneOutEstimatorSpec(0.05)),
    rounds=30,
    n_x_packets=50,
)

#: The engine rejects n_receivers > 16 at construction, so this cell is
#: a deterministic mid-grid worker death.
POISON = Scenario(n_terminals=19, loss=IIDLossSpec(0.5), rounds=5, n_x_packets=20)


class DyingStore(CampaignStore):
    """A store whose process 'dies' after ``budget`` persisted results.

    Raising ``KeyboardInterrupt`` from ``append`` models a hard stop
    between checkpoint writes — the tightest place a kill can land
    short of a torn line (covered separately by truncating a shard).
    """

    def __init__(self, root, budget: int) -> None:
        super().__init__(root)
        self.budget = budget

    def append(self, key, record):
        if self.budget <= 0:
            raise KeyboardInterrupt("killed mid-campaign")
        self.budget -= 1
        super().append(key, record)

    def append_batch(self, items):
        # The batched checkpoint path dies between records too: a
        # torn batch is covered separately by truncating a shard.
        for key, record in items:
            self.append(key, record)


def assert_outcomes_identical(a, b):
    assert len(a.outcomes) == len(b.outcomes)
    for oa, ob in zip(a.outcomes, b.outcomes):
        assert oa.scenario == ob.scenario
        for name in (
            "secret_packets",
            "public_packets",
            "total_rows",
            "efficiency",
            "reliability",
            "eve_missed",
            "terminal_receptions",
            "delivery_rates",
        ):
            assert np.array_equal(
                getattr(oa.result, name), getattr(ob.result, name)
            ), name


class TestSimCampaignResume:
    def test_worker_death_mid_sharded_grid_then_resume(self, tmp_path):
        """A poison cell kills the sharded grid partway; resuming the
        clean grid from the store must match the uninterrupted run
        array for array."""
        cells = GRID.scenarios()
        reference = CampaignRunner(seed=9, max_workers=2).run(cells)
        store = CampaignStore(tmp_path)
        poisoned = cells[:5] + [POISON] + cells[5:]
        with pytest.raises(ShardWorkerError, match="n <= 17"):
            CampaignRunner(seed=9, max_workers=2, store=store).run(poisoned)
        resumed = CampaignRunner(seed=9, max_workers=2, store=store).run(cells)
        assert_outcomes_identical(reference, resumed)

    def test_kill_between_checkpoints_then_resume(self, tmp_path):
        """Serial kill after 5 persisted cells: the resume must load
        those 5 (no recomputation) and compute only the remainder."""
        cells = GRID.scenarios()
        reference = CampaignRunner(seed=9).run(cells)
        dying = DyingStore(tmp_path, budget=5)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(seed=9, store=dying).run(cells)
        store = CampaignStore(tmp_path)
        assert len(store) == 5
        computed = []
        resumed = CampaignRunner(seed=9, store=store).run(
            cells, progress=computed.append
        )
        # Progress fires only for cells actually run: exactly the rest.
        assert len(computed) == len(cells) - 5
        assert_outcomes_identical(reference, resumed)
        # The loaded shards kept their single record — nothing was
        # recomputed and superseded behind the resume's back.
        assert all(len(store.records(key)) == 1 for key in store.keys())

    def test_torn_final_line_recomputes_that_cell(self, tmp_path):
        """Kill *during* the checkpoint write: the torn shard reads as
        incomplete, the resume recomputes just that cell, and the final
        result is still bit-identical."""
        cells = GRID.scenarios()
        reference = CampaignRunner(seed=9).run(cells)
        store = CampaignStore(tmp_path)
        CampaignRunner(seed=9, store=store).run(cells)
        victim = store.keys()[0]
        path = store.shard_path(victim)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        resumed = CampaignRunner(seed=9, store=store).run(cells)
        assert_outcomes_identical(reference, resumed)

    def test_grid_growth_reuses_finished_cells(self, tmp_path):
        """Content-keyed shards outlive the grid that wrote them: a
        grown grid resumes its old cells and computes only new ones."""
        small = ScenarioGrid(
            group_sizes=(3,),
            loss_models=(IIDLossSpec(0.5),),
            estimators=(OracleEstimatorSpec(),),
            rounds=20,
            n_x_packets=40,
        )
        grown = ScenarioGrid(
            group_sizes=(3, 4),
            loss_models=(IIDLossSpec(0.5),),
            estimators=(OracleEstimatorSpec(),),
            rounds=20,
            n_x_packets=40,
        )
        store = CampaignStore(tmp_path)
        CampaignRunner(seed=3, store=store).run(small)
        assert len(store) == 1
        computed = []
        result = CampaignRunner(seed=3, store=store).run(
            grown, progress=computed.append
        )
        assert [s.n_terminals for s in computed] == [4]  # only the new cell
        reference = CampaignRunner(seed=3).run(grown)
        assert_outcomes_identical(reference, result)

    def test_resume_false_supersedes(self, tmp_path):
        store = CampaignStore(tmp_path)
        cells = GRID.scenarios()[:2]
        CampaignRunner(seed=9, store=store).run(cells)
        CampaignRunner(seed=9, store=store, resume=False).run(cells)
        # Every shard now holds two records; the reader dedupes.
        assert all(len(store.records(key)) == 2 for key in store.keys())
        assert len(list(store.stream())) == len(cells)


TESTBED = Testbed(TestbedConfig(interferer_power_dbm=10.0))
CONFIG = CampaignConfig(
    session=SessionConfig(n_x_packets=60, payload_bytes=40, secrecy_slack=1),
    seed=2012,
    max_placements_per_n=4,
    group_sizes=(4,),
)


def loo_factory(testbed, placement):
    return LeaveOneOutEstimator(rate_margin=0.05)


def engine_kwargs(engine):
    if engine == "packet":
        return dict(engine="packet", estimator_factory=loo_factory)
    return dict(
        engine="batched",
        estimator_spec=LeaveOneOutEstimatorSpec(rate_margin=0.05),
        rounds_per_leader=4,
    )


class TestTestbedCampaignResume:
    """The satellite contract: kill a sharded campaign mid-grid, resume
    it, and the final aggregates are bit-identical to an uninterrupted
    serial run — on both engines."""

    @pytest.mark.parametrize("engine", ["packet", "batched"])
    def test_kill_sharded_then_resume_matches_serial(self, tmp_path, engine):
        kwargs = engine_kwargs(engine)
        reference = run_campaign(TESTBED, config=CONFIG, **kwargs)  # serial

        dying = DyingStore(tmp_path, budget=2)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                TESTBED, config=CONFIG, max_workers=2, store=dying, **kwargs
            )
        store = CampaignStore(tmp_path)
        assert len(store) == 2  # checkpointed exactly up to the kill

        resumed = run_campaign(
            TESTBED, config=CONFIG, max_workers=2, store=store, **kwargs
        )
        assert resumed.records == reference.records

        # Aggregates streamed from the store are bit-identical to the
        # accumulator fed from the uninterrupted in-memory records.
        groups = stream_aggregates(store)
        expected = ReliabilityAccumulator()
        expected.extend(r.reliability for r in reference.records)
        got = groups[4].reliability
        assert got.summary(4) == expected.summary(4)
        assert got.n_excluded == expected.n_excluded

    @pytest.mark.parametrize("engine", ["packet", "batched"])
    def test_full_store_resume_runs_nothing(self, tmp_path, engine):
        kwargs = engine_kwargs(engine)
        store = CampaignStore(tmp_path)
        first = run_campaign(TESTBED, config=CONFIG, store=store, **kwargs)
        fired = []
        second = run_campaign(
            TESTBED,
            config=CONFIG,
            store=store,
            progress=lambda n, pl: fired.append(pl),
            **kwargs,
        )
        assert fired == []  # everything came from the store
        assert second.records == first.records

    def test_engines_do_not_share_shards(self, tmp_path):
        """Engine and estimator identity are in the fingerprint: a
        batched sweep must never 'resume' from packet-oracle records."""
        store = CampaignStore(tmp_path)
        run_campaign(TESTBED, config=CONFIG, store=store, **engine_kwargs("packet"))
        n_packet = len(store)
        run_campaign(TESTBED, config=CONFIG, store=store, **engine_kwargs("batched"))
        assert len(store) == 2 * n_packet


class TestZeroSecretNaNThroughStore:
    """Satellite bugfix: stored zero-secret experiments round-trip NaN
    reliability through JSONL without poisoning merged aggregates."""

    def test_nan_records_roundtrip_and_stay_excluded(self, tmp_path):
        dead = Testbed(TestbedConfig(base_loss=1.0))
        kwargs = dict(
            engine="batched",
            estimator_spec=LeaveOneOutEstimatorSpec(rate_margin=0.05),
            rounds_per_leader=2,
        )
        store = CampaignStore(tmp_path)
        first = run_campaign(dead, config=CONFIG, store=store, **kwargs)
        assert all(math.isnan(r.reliability) for r in first.records)

        resumed = run_campaign(dead, config=CONFIG, store=store, **kwargs)
        assert all(math.isnan(r.reliability) for r in resumed.records)
        assert resumed.reliabilities(4) == []  # in-memory exclusion rule

        groups = stream_aggregates(store)
        agg = groups[4].reliability
        assert agg.n_experiments == 0  # nothing entered the population
        assert agg.n_excluded == len(first.records)
        # 100%-NaN population: a measured outcome, not an error — the
        # summary is a NaN row carrying the exclusion count.
        row = agg.summary(4)
        assert row.n_experiments == 0
        assert math.isnan(row.minimum) and math.isnan(row.mean)

        # Merging the all-NaN group into a live population must leave
        # the live statistics untouched.
        live = ReliabilityAccumulator()
        live.extend([0.9, 1.0, 1.0])
        before = live.summary(4)
        live.merge(agg)
        assert live.summary(4) == before
        assert live.n_excluded == len(first.records)


class TestAutoExecutor:
    def test_threshold(self):
        assert _resolve_executor("auto", PROCESS_POOL_ITEM_THRESHOLD - 1) == "thread"
        assert _resolve_executor("auto", PROCESS_POOL_ITEM_THRESHOLD) == "process"
        assert _resolve_executor("thread", 10**6) == "thread"
        with pytest.raises(ValueError, match="unknown executor"):
            _resolve_executor("fiber", 1)

    def test_process_pool_campaign_runner_matches_serial(self):
        cells = GRID.scenarios()[:3]
        serial = CampaignRunner(seed=4).run(cells)
        pooled = CampaignRunner(
            seed=4, max_workers=2, executor="process"
        ).run(cells)
        assert_outcomes_identical(serial, pooled)
