"""Property tests for the content fingerprint (hypothesis).

The fingerprint is the store's identity function: every shard key,
every manifest entry, and every content-keyed RNG stream hangs off it.
Three properties must hold over arbitrary spec-shaped data:

* **Spelling invariance** — the digest sees *content*, not syntax:
  dict key insertion order, tuple-vs-list sequence spelling, and numpy
  scalar dtypes (``np.int64(3)`` vs ``3``, ``np.float64(.5)`` vs
  ``.5``, ``np.bool_``) must all fingerprint identically, or a worker
  that rebuilt a spec slightly differently would silently re-run (or
  worse, re-seed) finished work.
* **Distinctness** — specs with different content must not collide on
  the sampled corpus (a canonicalisation that collapses two different
  specs onto one key would make campaigns silently share shards).
* **Spawn-key agreement** — ``fingerprint_spawn_key`` derives from the
  same canonical bytes, so spelling invariance carries over to the RNG
  streams.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import IIDLossSpec, Scenario
from repro.store import canonical_json, fingerprint, fingerprint_spawn_key

# -- spec-shaped data ------------------------------------------------------

_INT64 = 2**62  # keep ints wrappable as np.int64 spellings

leaves = st.one_of(
    st.integers(min_value=-_INT64, max_value=_INT64),
    st.floats(allow_nan=True, allow_infinity=True),
    st.booleans(),
    st.text(max_size=8),
    st.none(),
)

trees = st.recursive(
    leaves,
    lambda child: st.one_of(
        st.lists(child, max_size=4),
        st.dictionaries(st.text(max_size=6), child, max_size=4),
    ),
    max_leaves=16,
)

finite_leaves = st.one_of(
    st.integers(min_value=-_INT64, max_value=_INT64),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(max_size=8),
    st.none(),
)

finite_trees = st.recursive(
    finite_leaves,
    lambda child: st.one_of(
        st.lists(child, max_size=4),
        st.dictionaries(st.text(max_size=6), child, max_size=4),
    ),
    max_leaves=16,
)


def reorder(tree, rng: random.Random):
    """Deep copy with every dict's key *insertion order* shuffled."""
    if isinstance(tree, dict):
        keys = list(tree)
        rng.shuffle(keys)
        return {k: reorder(tree[k], rng) for k in keys}
    if isinstance(tree, (list, tuple)):
        return [reorder(v, rng) for v in tree]
    return tree


def tupleize(tree):
    """Deep copy with every list respelled as a tuple."""
    if isinstance(tree, dict):
        return {k: tupleize(v) for k, v in tree.items()}
    if isinstance(tree, (list, tuple)):
        return tuple(tupleize(v) for v in tree)
    return tree


def numpify(tree, rng: random.Random):
    """Deep copy with scalars respelled as numpy dtypes where legal."""
    if isinstance(tree, dict):
        return {k: numpify(v, rng) for k, v in tree.items()}
    if isinstance(tree, (list, tuple)):
        return [numpify(v, rng) for v in tree]
    if isinstance(tree, bool):
        return np.bool_(tree)
    if isinstance(tree, int):
        if -(2**31) <= tree < 2**31 and rng.random() < 0.5:
            return np.int32(tree)
        return np.int64(tree)
    if isinstance(tree, float):
        return np.float64(tree)
    return tree


def normal_form(tree):
    """Implementation-independent content: tuples as lists, plain
    scalars — the yardstick the distinctness property compares by."""
    if isinstance(tree, dict):
        return {k: normal_form(v) for k, v in tree.items()}
    if isinstance(tree, (list, tuple)):
        return [normal_form(v) for v in tree]
    return tree


# -- spelling invariance ---------------------------------------------------


class TestSpellingInvariance:
    @given(tree=trees, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_dict_key_order_is_irrelevant(self, tree, seed):
        shuffled = reorder(tree, random.Random(seed))
        assert canonical_json(shuffled) == canonical_json(tree)
        assert fingerprint(shuffled) == fingerprint(tree)

    @given(tree=trees)
    @settings(max_examples=200, deadline=None)
    def test_tuple_and_list_spellings_agree(self, tree):
        assert fingerprint(tupleize(tree)) == fingerprint(tree)
        assert fingerprint_spawn_key(tupleize(tree)) == fingerprint_spawn_key(
            tree
        )

    @given(tree=trees, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_numpy_scalar_spellings_agree(self, tree, seed):
        respelled = numpify(tree, random.Random(seed))
        assert canonical_json(respelled) == canonical_json(tree)
        assert fingerprint(respelled) == fingerprint(tree)
        assert fingerprint_spawn_key(respelled) == fingerprint_spawn_key(tree)

    @given(tree=trees, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_all_three_respellings_compose(self, tree, seed):
        rng = random.Random(seed)
        respelled = numpify(tupleize(reorder(tree, rng)), rng)
        assert fingerprint(respelled) == fingerprint(tree)


# -- distinctness ----------------------------------------------------------


class TestDistinctness:
    @given(a=finite_trees, b=finite_trees)
    @settings(max_examples=300, deadline=None)
    def test_different_content_never_collides(self, a, b):
        """Content differing under the normal form must produce both a
        different canonical serialisation and a different digest."""
        if normal_form(a) == normal_form(b):
            return
        assert canonical_json(a) != canonical_json(b)
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint_spawn_key(a) != fingerprint_spawn_key(b)

    @given(tree=finite_trees, key=st.text(min_size=1, max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_single_leaf_perturbation_changes_the_key(self, tree, key):
        """Wrapping the spec with one extra field always re-keys it."""
        assert fingerprint({key: tree}) != fingerprint(
            {key: tree, "__extra__": 1}
        )


# -- the real spec classes -------------------------------------------------


class TestSpecDataclasses:
    def test_numpy_spelled_scenario_fingerprints_identically(self):
        plain = Scenario(
            n_terminals=3,
            loss=IIDLossSpec(0.5),
            rounds=40,
            n_x_packets=60,
        )
        respelled = Scenario(
            n_terminals=np.int64(3),
            loss=IIDLossSpec(np.float64(0.5)),
            rounds=np.int32(40),
            n_x_packets=60,
        )
        assert fingerprint(respelled) == fingerprint(plain)
        assert fingerprint_spawn_key(respelled) == fingerprint_spawn_key(plain)

    def test_float32_widening_is_a_different_spec(self):
        """np.float32(0.1) is a genuinely different number than 0.1 —
        it must stay a different key (invariance is about spelling,
        not about rounding)."""
        assert fingerprint(IIDLossSpec(float(np.float32(0.1)))) != fingerprint(
            IIDLossSpec(0.1)
        )

    def test_int_and_float_are_different_content(self):
        """1 and 1.0 are different JSON types and deliberately distinct
        keys — loss 1 (int) vs 1.0 (float) would round-trip differently
        through the record codecs."""
        assert fingerprint({"p": 1}) != fingerprint({"p": 1.0})

    def test_unfingerprintable_objects_fail_loudly(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint({"rng": np.random.default_rng(0)})
