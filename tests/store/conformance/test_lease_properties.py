"""Conformance: property-based lease state machine, per backend.

Hypothesis drives random interleavings of claim / heartbeat / release /
age / break across 2–4 simulated workers against a single key, checking
every step against a reference model.  The invariant that matters: **no
interleaving ever yields two live owners of one key** — a claim can
only succeed while the model says the key is free, and a break can only
remove a lease the model says is expired.

Ageing uses the backend's own ``age_lease`` backdate hook with a
timeout (1000 s) far above the test's real runtime, so "expired" vs
"live" is unambiguous: a lease is expired iff the *injected* age
crossed the timeout — wall-clock drift during the test (milliseconds to
seconds) can never flip a verdict.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conformance_harness import HARNESSES, selected_backends
from repro.store import open_store
from repro.store.backend_mem import MemoryStoreBackend

#: Far above real test runtime (seconds), far below the huge age step.
TIMEOUT = 1000.0
#: Small ages can never sum across a run to TIMEOUT; one huge age
#: always crosses it.  This keeps model and backend in agreement
#: whatever interleaving hypothesis draws.
SMALL_AGE = 5.0
HUGE_AGE = 10_000.0

KEY = "ab" * 10
WORKERS = ["w0", "w1", "w2", "w3"]

_ns_counter = itertools.count()

ops = st.lists(
    st.tuples(
        st.sampled_from(["claim", "heartbeat", "release", "break", "age"]),
        st.integers(min_value=0, max_value=len(WORKERS) - 1),
        st.sampled_from([SMALL_AGE, HUGE_AGE]),
    ),
    min_size=1,
    max_size=40,
)


class LeaseModel:
    """The reference state machine: one lease, one injected-age clock."""

    def __init__(self):
        self.owner = None
        self.age = 0.0

    @property
    def expired(self):
        return self.owner is not None and self.age >= TIMEOUT

    def claim(self, worker):
        if self.owner is None:
            self.owner, self.age = worker, 0.0
            return True
        if self.expired:  # break-then-reclaim in one WorkQueue.claim
            self.owner, self.age = worker, 0.0
            return True
        return False

    def heartbeat(self, worker):
        if self.owner == worker:
            self.age = 0.0
            return True
        return False

    def release(self, worker):
        if self.owner == worker:
            self.owner = None
            return True
        return False

    def break_expired(self):
        if self.expired:
            self.owner = None
            return True
        return False

    def age_lease(self, seconds):
        if self.owner is None:
            return False
        self.age += seconds
        return True


def _queues(store, namespace):
    from repro.store import ManifestEntry, SweepManifest, WorkQueue

    manifest = SweepManifest(
        name=namespace, entries=(ManifestEntry(key=KEY, spec=None),)
    ).save(store)
    return [
        WorkQueue(store, manifest, owner=w, lease_timeout=TIMEOUT)
        for w in WORKERS
    ]


def _run_machine(store, operations):
    namespace = f"prop{next(_ns_counter)}"
    queues = _queues(store, namespace)
    leases = store.backend.leases
    model = LeaseModel()
    for op, worker_idx, seconds in operations:
        queue = queues[worker_idx]
        worker = WORKERS[worker_idx]
        if op == "claim":
            got = queue.claim(KEY)
            want = model.claim(worker)
            assert got == want, (op, worker, model.owner)
        elif op == "heartbeat":
            got = queue.heartbeat(KEY)
            want = model.heartbeat(worker)
            assert got == want, (op, worker, model.owner)
        elif op == "release":
            got = queue.release(KEY)
            want = model.release(worker)
            assert got == want, (op, worker, model.owner)
        elif op == "break":
            got = leases.break_expired(namespace, KEY, TIMEOUT)
            want = model.break_expired()
            assert got == want, (op, worker, model.owner, model.age)
        elif op == "age":
            got = leases.age_lease(namespace, KEY, seconds)
            want = model.age_lease(seconds)
            assert got == want, (op, worker, model.owner)
        # After every step the backend's view must match the model's:
        # in particular there is never a live owner the model doesn't
        # know about (the "two live owners" catastrophe).
        view = leases.get(namespace, KEY)
        if model.owner is None:
            assert view is None
        else:
            assert view is not None and view.owner == model.owner


# One test function per backend (instead of a fixture param) so each
# backend gets its own hypothesis database entry and shrunk examples
# don't cross-contaminate; REPRO_CONFORMANCE_BACKENDS still filters.


def _check_selected(name):
    if name not in selected_backends():
        pytest.skip(
            f"backend {name!r} deselected via REPRO_CONFORMANCE_BACKENDS"
        )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(operations=ops)
def test_lease_state_machine_file(tmp_path, operations):
    _check_selected("file")
    _run_machine(
        open_store(HARNESSES["file"].make_uri(tmp_path)), operations
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(operations=ops)
def test_lease_state_machine_sqlite(tmp_path, operations):
    _check_selected("sqlite")
    _run_machine(
        open_store(HARNESSES["sqlite"].make_uri(tmp_path)), operations
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(operations=ops)
def test_lease_state_machine_mem(operations):
    _check_selected("mem")
    name = f"prop-machine-{next(_ns_counter)}"
    try:
        _run_machine(open_store(f"mem:{name}"), operations)
    finally:
        MemoryStoreBackend.discard(name)
