"""Fixtures of the backend conformance suite.

Every test under ``tests/store/conformance/`` runs once per store
backend (``file``, ``sqlite``, ``mem``) through the ``store`` fixture;
together they are the contract a backend must satisfy before the sweep
layer will trust it — torn-write tolerance, last-record-wins dedupe,
single-winner claims, expiry in the backend's own clock domain,
kill-mid-lease recovery, resume bit-identity.  Adding a backend means
adding one harness to ``conformance_harness.py`` and going green.

CI selects backends per matrix step with the
``REPRO_CONFORMANCE_BACKENDS`` environment variable (comma-separated
subset of ``file,sqlite,mem``); unset means all of them.
"""

import pytest

from conformance_harness import HARNESSES, selected_backends, selected_codec
from repro.store import open_store
from repro.store.backend_mem import MemoryStoreBackend


@pytest.fixture(params=sorted(HARNESSES))
def backend(request):
    """The per-backend harness; parametrizes every conformance test."""
    if request.param not in selected_backends():
        pytest.skip(
            f"backend {request.param!r} deselected via "
            "REPRO_CONFORMANCE_BACKENDS"
        )
    return HARNESSES[request.param]


@pytest.fixture
def store_uri(backend, tmp_path):
    uri = backend.make_uri(tmp_path)
    codec = selected_codec()
    if codec != "jsonl":
        uri = f"{uri}?codec={codec}"
    yield uri
    if backend.scheme == "mem":
        name = uri.split(":", 1)[1].split("?", 1)[0]
        MemoryStoreBackend.discard(name)


@pytest.fixture
def store(store_uri):
    return open_store(store_uri)
