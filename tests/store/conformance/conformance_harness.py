"""Shared pieces of the backend conformance harness.

The fixtures live in ``conftest.py`` next door; this module holds the
importable parts — the per-backend :class:`BackendHarness` table, the
recovery sweep grid, and the bit-identity assertion — so test modules
can import them without touching ``conftest`` machinery.
"""

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np
from repro.sim import IIDLossSpec, OracleEstimatorSpec, ScenarioGrid
from repro.store import ManifestEntry, SweepManifest
from repro.store.codec import check_codec, encode_frames, scan_frames

#: The sweep used by the recovery scenarios: four cells, small enough
#: to drain in seconds, large enough that a killed worker leaves real
#: work behind.
GRID = ScenarioGrid(
    group_sizes=(3, 4),
    loss_models=(IIDLossSpec(0.3), IIDLossSpec(0.5)),
    estimators=(OracleEstimatorSpec(),),
    rounds=8,
    n_x_packets=24,
)


def assert_outcomes_identical(a, b):
    """Bit-identical sim campaign results — arrays via array_equal."""
    assert len(a.outcomes) == len(b.outcomes)
    for oa, ob in zip(a.outcomes, b.outcomes):
        assert oa.scenario == ob.scenario
        for name in (
            "secret_packets",
            "public_packets",
            "total_rows",
            "efficiency",
            "reliability",
            "eve_missed",
            "terminal_receptions",
            "delivery_rates",
        ):
            assert np.array_equal(
                getattr(oa.result, name), getattr(ob.result, name)
            ), name


def toy_manifest(name="toy", n=3):
    entries = tuple(
        ManifestEntry(key=f"{i:02d}" * 5, spec={"i": i}, label=f"item-{i}")
        for i in range(n)
    )
    return SweepManifest(name=name, entries=entries, kind="sim-grid")


# -- per-backend shard tearing ---------------------------------------------
#
# "Tear" = make the shard look exactly as it would after a crash killed
# the *last* record's write mid-flight, using the backend's own failure
# vocabulary: a truncated unterminated line (jsonl) or half a frame
# (binary) on the filesystem and the object store, an uncommitted
# (absent) row on sqlite.


def _tear_jsonl_lines(lines):
    assert lines, "cannot tear an empty shard"
    return b"".join(lines[:-1]) + lines[-1].rstrip(b"\n")[
        : max(1, len(lines[-1]) // 2)
    ]


def _tear_binary_frames(data):
    # Framing is canonical (one line -> one byte string), so the prefix
    # of all-but-the-last record re-encodes to the shard's own bytes;
    # half of the final frame lands on top, exactly a mid-write kill.
    lines, consumed = scan_frames(data)
    assert lines and consumed == len(data), "cannot tear an empty shard"
    prefix = encode_frames(lines[:-1])
    last = data[len(prefix):consumed]
    return prefix + last[: max(1, len(last) // 2)]


def _tear_file(store, key):
    path = store.shard_path(key)
    data = path.read_bytes()
    if path.suffix == ".rbin":
        torn = _tear_binary_frames(data)
    else:
        torn = _tear_jsonl_lines(data.splitlines(keepends=True))
    path.write_bytes(torn)


def _tear_sqlite(store, key):
    cur = store.backend._conn().execute(
        "DELETE FROM records WHERE seq = "
        "(SELECT MAX(seq) FROM records WHERE key = ?)",
        (key,),
    )
    assert cur.rowcount == 1, "cannot tear an empty shard"


def _tear_mem(store, key):
    objects = store.backend.objects
    found = objects.get(f"records/{key}")
    assert found is not None, "cannot tear an empty shard"
    etag, payload = found
    if payload.startswith("RB"):
        torn = _tear_binary_frames(payload.encode("latin-1")).decode("latin-1")
    else:
        lines = payload.splitlines(keepends=True)
        assert lines, "cannot tear an empty shard"
        torn = "".join(lines[:-1]) + lines[-1].rstrip("\n")[
            : max(1, len(lines[-1]) // 2)
        ]
    objects.put(f"records/{key}", torn, if_match=etag)


@dataclass(frozen=True)
class BackendHarness:
    """Everything backend-specific a conformance test may need."""

    scheme: str
    #: Whether a forked process can reach the same store through the
    #: URI (the SIGKILL drills need real processes; ``mem:`` state
    #: dies with the process, so its workers are threads instead).
    supports_fork: bool
    make_uri: Callable  # tmp_path -> store URI
    tear_shard: Callable  # (store, key) -> crash-truncate the last record


HARNESSES = {
    "file": BackendHarness(
        scheme="file",
        supports_fork=True,
        make_uri=lambda tmp_path: f"file:{tmp_path}/store",
        tear_shard=_tear_file,
    ),
    "sqlite": BackendHarness(
        scheme="sqlite",
        supports_fork=True,
        make_uri=lambda tmp_path: f"sqlite:{tmp_path}/store.sqlite",
        tear_shard=_tear_sqlite,
    ),
    "mem": BackendHarness(
        scheme="mem",
        supports_fork=False,
        # tmp_path basenames are unique per test, giving each test its
        # own registry entry (discarded again by the store fixture).
        make_uri=lambda tmp_path: f"mem:conf-{tmp_path.name}",
        tear_shard=_tear_mem,
    ),
}


def selected_backends():
    raw = os.environ.get("REPRO_CONFORMANCE_BACKENDS", "").strip()
    if not raw:
        return list(HARNESSES)
    names = [n.strip() for n in raw.split(",") if n.strip()]
    unknown = sorted(set(names) - set(HARNESSES))
    if unknown:
        raise ValueError(
            f"unknown backends in REPRO_CONFORMANCE_BACKENDS: {unknown}"
        )
    return names


def selected_codec():
    """The at-rest record codec CI selected for this conformance run.

    ``REPRO_CONFORMANCE_CODEC=binary`` reruns the whole suite with
    every store opened under the length-prefixed binary codec (the
    ``store_uri`` fixture appends ``?codec=binary``); unset or
    ``jsonl`` keeps the historical text layout.
    """
    raw = os.environ.get("REPRO_CONFORMANCE_CODEC", "").strip()
    if not raw:
        return "jsonl"
    return check_codec(raw)
