"""Conformance: the lease/claim contract of the work queue.

The clauses every lease backend must satisfy: single-winner claims
(fresh and reclaimed), owner-guarded heartbeat/release, expiry judged
only in the backend's own clock domain, breaks that can never kill a
refreshed lease, and a drain that leaves no lease residue behind.

Lease ageing goes through the backend's own
:meth:`~repro.store.backend.LeaseBackend.age_lease` backdate hook — the
portable replacement for the ``os.utime`` trick the filesystem-only
tests used — so the same test text drives mtimes, sqlite rows, and
object-store payloads.
"""

import threading
import time

import pytest

from conformance_harness import toy_manifest
from repro.store import WorkQueue
from repro.store.queue import drain_manifest


def make_queue(store, manifest, owner, lease_timeout=600.0):
    return WorkQueue(store, manifest, owner=owner, lease_timeout=lease_timeout)


def age(store, manifest, key, seconds):
    assert store.backend.leases.age_lease(manifest.name, key, seconds)


class TestClaimRelease:
    def test_claim_release_cycle(self, store):
        manifest = toy_manifest().save(store)
        a = make_queue(store, manifest, "a")
        b = make_queue(store, manifest, "b")
        key = manifest.keys()[0]
        assert a.claim(key)
        assert not b.claim(key)  # test-and-set: the loser sees a live lease
        assert a.lease_info(key).owner == "a"
        assert not b.release(key)  # only the owner may release
        assert a.release(key)
        assert b.claim(key)  # released keys are claimable again

    def test_claim_refuses_done_keys(self, store):
        manifest = toy_manifest().save(store)
        key = manifest.keys()[0]
        store.append(key, {"kind": "sim-cell"})
        queue = make_queue(store, manifest, "w")
        assert queue.is_done(key)
        assert not queue.claim(key)

    def test_unknown_key_rejected(self, store):
        queue = make_queue(store, toy_manifest().save(store), "w")
        with pytest.raises(KeyError, match="not in manifest"):
            queue.claim("ff" * 5)
        with pytest.raises(KeyError, match="not in manifest"):
            queue.heartbeat("ff" * 5)


class TestExpiry:
    def test_expired_lease_is_reclaimable(self, store):
        manifest = toy_manifest().save(store)
        key = manifest.keys()[0]
        dead = make_queue(store, manifest, "dead", lease_timeout=0.2)
        assert dead.claim(key)
        age(store, manifest, key, 60.0)
        live = make_queue(store, manifest, "live", lease_timeout=0.2)
        assert live.claim(key)
        assert live.lease_info(key).owner == "live"

    def test_heartbeat_defers_expiry(self, store):
        manifest = toy_manifest().save(store)
        key = manifest.keys()[0]
        worker = make_queue(store, manifest, "w", lease_timeout=5.0)
        assert worker.claim(key)
        age(store, manifest, key, 60.0)
        assert worker.lease_info(key).expired
        assert worker.heartbeat(key)
        assert not worker.lease_info(key).expired
        # A non-owner's heartbeat is refused and changes nothing.
        other = make_queue(store, manifest, "o", lease_timeout=5.0)
        assert not other.heartbeat(key)

    def test_break_cannot_kill_a_refreshed_lease(self, store):
        """The compare-and-swap clause: a breaker that *observed* an
        expired lease must fail if the owner heartbeats before the
        break lands — expiry is re-judged atomically at removal."""
        manifest = toy_manifest().save(store)
        key = manifest.keys()[0]
        worker = make_queue(store, manifest, "w", lease_timeout=1.0)
        assert worker.claim(key)
        age(store, manifest, key, 60.0)
        assert worker.lease_info(key).expired  # the stale observation
        assert worker.heartbeat(key)  # ...but the owner was only slow
        broke = store.backend.leases.break_expired(manifest.name, key, 1.0)
        assert not broke
        assert worker.lease_info(key).owner == "w"

    def test_fresh_lease_never_expired_by_worker_clock_skew(
        self, store, monkeypatch
    ):
        """Expiry lives in the backend's clock domain: a worker whose
        wall clock runs a year fast must not see (or break) a freshly
        heartbeated lease as expired."""
        manifest = toy_manifest().save(store)
        key = manifest.keys()[0]
        worker = make_queue(store, manifest, "w", lease_timeout=60.0)
        assert worker.claim(key)
        year = 365.0 * 86400.0
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + year)
        skewed = make_queue(store, manifest, "skewed", lease_timeout=60.0)
        info = skewed.lease_info(key)
        assert info is not None and not info.expired
        assert not skewed.claim(key)
        assert worker.lease_info(key).owner == "w"


class TestStatus:
    def test_status_buckets(self, store):
        manifest = toy_manifest(n=4).save(store)
        keys = manifest.keys()
        store.append(keys[0], {"kind": "sim-cell"})  # done
        queue = make_queue(store, manifest, "w", lease_timeout=1.0)
        assert queue.claim(keys[1])  # claimed (live)
        assert queue.claim(keys[2])
        age(store, manifest, keys[2], 60.0)  # stale
        status = queue.status()
        assert (status.total, status.done) == (4, 1)
        assert (status.claimed, status.stale, status.pending) == (1, 1, 1)
        assert status.remaining == 3
        assert queue.pending() == keys[1:]
        assert set(queue.leases()) == {keys[1], keys[2]}


class TestDoubleClaim:
    """Exactly one of two racing claimants may ever hold a lease."""

    def _race(self, queue_a, queue_b, key):
        barrier = threading.Barrier(2)
        wins = []

        def attempt(queue):
            barrier.wait()
            if queue.claim(key):
                wins.append(queue.owner)

        threads = [
            threading.Thread(target=attempt, args=(q,))
            for q in (queue_a, queue_b)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return wins

    def test_fresh_key_single_winner(self, store):
        manifest = toy_manifest().save(store)
        key = manifest.keys()[0]
        for attempt in range(10):  # the race is real: run it repeatedly
            wins = self._race(
                make_queue(store, manifest, f"a{attempt}"),
                make_queue(store, manifest, f"b{attempt}"),
                key,
            )
            assert len(wins) == 1, wins
            info = make_queue(store, manifest, "observer").lease_info(key)
            assert info.owner == wins[0]
            assert make_queue(store, manifest, wins[0]).release(key)

    def test_expired_lease_single_reclaimer(self, store):
        manifest = toy_manifest().save(store)
        key = manifest.keys()[0]
        for attempt in range(10):
            dead = make_queue(store, manifest, "dead", lease_timeout=0.1)
            assert dead.claim(key)
            age(store, manifest, key, 60.0)
            wins = self._race(
                make_queue(store, manifest, f"a{attempt}", lease_timeout=0.1),
                make_queue(store, manifest, f"b{attempt}", lease_timeout=0.1),
                key,
            )
            assert len(wins) == 1, wins
            assert make_queue(store, manifest, wins[0]).release(key)


class TestDrainHygiene:
    def test_drain_leaves_no_lease_residue(self, store):
        """Satellite regression: after a fully drained manifest the
        lease area must be *empty* — no leases (released per batch),
        and on the filesystem backend no leftover clock probes,
        breaker locks, or namespace directories either."""
        manifest = toy_manifest(n=4).save(store)
        # An expiry break happens mid-drain too: pre-claim one key with
        # a long-dead owner so the drain exercises the breaker path.
        dead = make_queue(store, manifest, "dead", lease_timeout=0.1)
        assert dead.claim(manifest.keys()[2])
        age(store, manifest, manifest.keys()[2], 60.0)

        queue = make_queue(store, manifest, "w", lease_timeout=0.1)
        drain_manifest(
            queue,
            lambda keys: [
                store.append(k, {"kind": "sim-cell", "k": k}) for k in keys
            ],
            batch_size=2,
            poll_interval=0.01,
        )
        assert queue.status().done == len(manifest)
        for key in manifest.keys():
            assert queue.lease_info(key) is None
        if store.backend.scheme == "file":
            leases_root = store.root / "leases"
            residue = (
                [p for p in leases_root.rglob("*")]
                if leases_root.exists()
                else []
            )
            assert residue == [], residue
