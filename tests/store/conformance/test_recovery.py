"""Conformance: crash recovery and resume bit-identity, per backend.

The nightly-drill scenario as a conformance clause: a worker dies
mid-lease (a real SIGKILLed process on backends a forked process can
reach; an abandoning thread on ``mem:``, whose state dies with the
process), the lease expires, a replacement reclaims the cell, and the
finished sweep is **bit-identical** to an uninterrupted serial run.
Torn shards recover the same way: the mangled record reads as never
written, exactly that cell is recomputed, and the result matches.
"""

import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from conformance_harness import GRID, assert_outcomes_identical
from repro.sim import CampaignRunner
from repro.store import CampaignStore, WorkQueue, open_store

pytestmark = pytest.mark.queue

#: SIGKILL tests run real OS processes; fork keeps the targets simple
#: (no pickling) and is the production default on the Linux CI runners.
MP = multiprocessing.get_context("fork")

SEED = 9


# -- worker targets (module level: they outlive fork cleanly) --------------


def _claim_and_hang(store_uri, manifest_name, ready_path):
    """The victim: claim one lease, announce it, then hang until
    SIGKILLed — the tightest mid-lease death a worker can die."""
    store = open_store(store_uri)
    queue = WorkQueue(store, manifest_name, owner="victim", lease_timeout=3600)
    claimed = queue.claim_pending(limit=1)
    Path(ready_path).write_text("\n".join(claimed))
    time.sleep(600)  # pragma: no cover - killed long before this returns


def _drain_worker(store_uri, manifest_name, seed):
    CampaignRunner(seed=seed, store=store_uri).run_worker(
        manifest_name, lease_timeout=0.5, poll_interval=0.02
    )


def _spawn(target, *args):
    proc = MP.Process(target=target, args=args)
    proc.start()
    return proc


def _await_file(path, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if Path(path).exists() and Path(path).read_text():
            return Path(path).read_text().splitlines()
        time.sleep(0.02)
    raise AssertionError(f"worker never signalled readiness via {path}")


def _abandon_one_claim(store, manifest_name):
    """The ``mem:`` victim: claim a key and walk away without release
    or heartbeat — the observable signature of a dead worker, minus
    the process corpse."""
    queue = WorkQueue(
        store, manifest_name, owner="victim", lease_timeout=3600
    )
    claimed = queue.claim_pending(limit=1)
    assert len(claimed) == 1
    return claimed


class TestKilledMidLease:
    def test_dead_workers_lease_is_reclaimed_bit_identically(
        self, backend, store, store_uri, tmp_path
    ):
        """One worker dies holding a lease; a replacement drains the
        manifest; the assembled sweep equals the serial reference."""
        reference = CampaignRunner(seed=SEED).run(GRID)
        manifest = CampaignRunner(seed=SEED, store=store).write_manifest(
            GRID, "sweep"
        )

        if backend.supports_fork:
            ready = str(tmp_path / "victim-claimed")
            victim = _spawn(_claim_and_hang, store_uri, "sweep", ready)
            hung_keys = _await_file(ready)
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            assert victim.exitcode == -signal.SIGKILL
        else:
            hung_keys = _abandon_one_claim(store, "sweep")
        assert len(hung_keys) == 1

        # The orphaned lease survives its worker, owned by the dead one.
        queue = WorkQueue(store, manifest, lease_timeout=0.5)
        assert queue.lease_info(hung_keys[0]).owner == "victim"

        if backend.supports_fork:
            replacement = _spawn(_drain_worker, store_uri, "sweep", SEED)
            replacement.join(timeout=120)
            assert replacement.exitcode == 0
        else:
            _drain_worker(store_uri, "sweep", SEED)

        resumed = CampaignRunner(seed=SEED, store=store).run_worker("sweep")
        assert_outcomes_identical(reference, resumed)
        assert queue.status().done == len(manifest)


class TestTornShardRecovery:
    def test_torn_record_is_recomputed_bit_identically(self, backend, store):
        """Crash-truncate one cell's record: a resumed drain treats the
        cell as never finished, recomputes exactly it, and matches the
        serial run."""
        reference = CampaignRunner(seed=SEED).run(GRID)
        runner = CampaignRunner(seed=SEED, store=store)
        runner.run(GRID, manifest="sweep")
        victim = store.keys()[1]
        backend.tear_shard(store, victim)
        assert store.load(victim) is None

        recomputed = []
        resumed = CampaignRunner(seed=SEED, store=store).run_worker(
            "sweep", progress=lambda scenario: recomputed.append(scenario)
        )
        assert len(recomputed) == 1
        assert runner.cell_key(recomputed[0]) == victim
        assert_outcomes_identical(reference, resumed)


class DyingStore(CampaignStore):
    """A store whose process 'dies' after ``budget`` persisted results.

    Raising ``KeyboardInterrupt`` from ``append`` models a hard stop
    between checkpoint writes — the tightest place a kill can land
    short of a torn line (covered separately by shard tearing).
    """

    def __init__(self, backend, budget):
        super().__init__(backend)
        self.budget = budget

    def append(self, key, record):
        if self.budget <= 0:
            raise KeyboardInterrupt("killed mid-campaign")
        self.budget -= 1
        super().append(key, record)

    def append_batch(self, items):
        # Route the batched checkpoint path through the same budget:
        # the kill lands between records, exactly like a per-record
        # death (a torn batch is covered by shard tearing).
        for key, record in items:
            self.append(key, record)


class TestResumeBitIdentity:
    def test_interrupted_then_resumed_equals_serial(self, store):
        """The campaign 'dies' after two persisted cells; a fresh
        runner resumes against the same store: the two finished cells
        load without recomputation, only the missing ones run, and the
        assembled result is bit-identical to the serial reference."""
        reference = CampaignRunner(seed=SEED).run(GRID)
        dying = DyingStore(store.backend, budget=2)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(seed=SEED, store=dying).run(GRID, manifest="sweep")
        assert len(store) == 2

        recomputed = []
        resumed = CampaignRunner(seed=SEED, store=store).run_worker(
            "sweep", progress=lambda scenario: recomputed.append(scenario)
        )
        assert len(recomputed) == len(GRID.scenarios()) - 2
        assert_outcomes_identical(reference, resumed)
        # The loaded shards kept their single record — nothing was
        # recomputed and superseded behind the resume's back.
        assert all(len(store.records(key)) == 1 for key in store.keys())
