"""Conformance: the record/document storage contract.

Every backend must give :class:`~repro.store.store.CampaignStore` the
same semantics the filesystem JSONL shards pioneered: durable appends,
append-order reads, last-record-wins dedupe, torn-write tolerance, and
atomic versioned manifest documents.
"""

import pytest

from conformance_harness import toy_manifest
from repro.store import SweepManifest, list_manifests

KEY_A = "aa" * 10
KEY_B = "bb" * 10


class TestRecords:
    def test_roundtrip_and_append_order(self, store):
        store.append(KEY_A, {"kind": "sim-cell", "v": 1})
        store.append(KEY_A, {"kind": "sim-cell", "v": 2})
        assert store.records(KEY_A) == [
            {"kind": "sim-cell", "v": 1},
            {"kind": "sim-cell", "v": 2},
        ]

    def test_last_record_wins(self, store):
        """Reruns append rather than rewrite; the newest complete
        record is the shard's effective value."""
        for v in range(4):
            store.append(KEY_A, {"kind": "sim-cell", "v": v})
        assert store.load(KEY_A) == {"kind": "sim-cell", "v": 3}
        assert list(store.stream([KEY_A])) == [{"kind": "sim-cell", "v": 3}]

    def test_keys_sorted_and_len(self, store):
        store.append(KEY_B, {"kind": "sim-cell"})
        store.append(KEY_A, {"kind": "sim-cell"})
        assert store.keys() == [KEY_A, KEY_B]
        assert len(store) == 2
        assert KEY_A in store
        assert "cc" * 10 not in store

    def test_missing_shard_reads_empty(self, store):
        assert store.records(KEY_A) == []
        assert store.load(KEY_A) is None
        assert list(store.stream()) == []

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ValueError, match="malformed shard key"):
            store.append("../escape", {"kind": "sim-cell"})

    def test_torn_write_means_never_written(self, backend, store):
        """The crash signature — a record whose write never completed —
        must surface as *no* record, never a mangled one, and must not
        hide earlier complete records."""
        store.append(KEY_A, {"kind": "sim-cell", "v": 1})
        store.append(KEY_A, {"kind": "sim-cell", "v": 2})
        backend.tear_shard(store, KEY_A)
        assert store.records(KEY_A) == [{"kind": "sim-cell", "v": 1}]
        assert store.load(KEY_A) == {"kind": "sim-cell", "v": 1}

    def test_torn_only_shard_is_not_done(self, backend, store):
        store.append(KEY_A, {"kind": "sim-cell", "v": 1})
        backend.tear_shard(store, KEY_A)
        assert store.load(KEY_A) is None
        assert KEY_A not in store

    def test_append_after_tear_supersedes(self, backend, store):
        """A resumed worker re-running the torn cell appends a fresh
        record; readers see exactly it (the fragment stays dead)."""
        store.append(KEY_A, {"kind": "sim-cell", "v": 1})
        backend.tear_shard(store, KEY_A)
        store.append(KEY_A, {"kind": "sim-cell", "v": 7})
        assert store.load(KEY_A) == {"kind": "sim-cell", "v": 7}


class TestDocuments:
    def test_manifest_roundtrip_and_listing(self, store):
        saved = toy_manifest().save(store)
        assert saved.version == 1
        assert SweepManifest.load(store, "toy") == saved
        assert list_manifests(store) == ["toy"]
        # Manifest documents and lease state never pollute the shard scan.
        assert store.keys() == []
        assert len(store) == 0

    def test_save_is_idempotent_by_content(self, store):
        first = toy_manifest().save(store)
        again = toy_manifest().save(store)
        assert again.version == first.version == 1

    def test_changed_content_bumps_version(self, store):
        toy_manifest(n=2).save(store)
        revised = toy_manifest(n=3).save(store)
        assert revised.version == 2
        assert SweepManifest.load(store, "toy").version == 2

    def test_missing_manifest(self, store):
        with pytest.raises(FileNotFoundError, match="no manifest"):
            SweepManifest.load(store, "absent")
        assert SweepManifest.load(store, "absent", missing_ok=True) is None


class TestReopen:
    def test_uri_reopens_the_same_store(self, store, store_uri):
        """A second open of the store's URI sees the first one's
        writes — the property multi-worker drains are built on."""
        from repro.store import open_store

        store.append(KEY_A, {"kind": "sim-cell", "v": 1})
        toy_manifest().save(store)
        again = open_store(store_uri)
        assert again.uri == store.uri
        assert again.load(KEY_A) == {"kind": "sim-cell", "v": 1}
        assert list_manifests(again) == ["toy"]
