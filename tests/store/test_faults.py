"""Fault injection for the multi-host sweep layer.

Every test here hurts the sweep on purpose — SIGKILL a worker process
while it holds a lease, tear a shard mid-record, race two claimants at
the same key — and then asserts the **recovery contract**: a resumed or
concurrent drain of the manifest ends *bit-identical* to an
uninterrupted serial run.  Identical means identical: numpy arrays
compare with ``array_equal``, records with ``==``, aggregates by their
exact multisets — never "approximately".

The acceptance scenario from the roadmap rides at the bottom: two
worker processes concurrently draining the same testbed manifest, one
SIGKILLed mid-sweep and replaced, on both the batched and per-packet
engines.
"""

import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import SessionConfig, Testbed, TestbedConfig
from repro.analysis import (
    CampaignConfig,
    ReliabilityAccumulator,
    campaign_sweep_manifest,
    run_campaign,
)
from repro.core import LeaveOneOutEstimator
from repro.sim import (
    CampaignRunner,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    ScenarioGrid,
)
from repro.store import CampaignStore, SweepManifest, WorkQueue
from repro.store.aggregate import stream_aggregates

pytestmark = pytest.mark.queue

#: SIGKILL tests run real OS processes; fork keeps the targets simple
#: (no pickling) and is the production default on the Linux CI runners.
MP = multiprocessing.get_context("fork")

GRID = ScenarioGrid(
    group_sizes=(3, 4),
    loss_models=(IIDLossSpec(0.3), IIDLossSpec(0.5)),
    estimators=(OracleEstimatorSpec(),),
    rounds=20,
    n_x_packets=40,
)

TESTBED = Testbed(TestbedConfig(interferer_power_dbm=10.0))
CONFIG = CampaignConfig(
    session=SessionConfig(n_x_packets=60, payload_bytes=40, secrecy_slack=1),
    seed=2012,
    max_placements_per_n=4,
    group_sizes=(4,),
)


def loo_factory(testbed, placement):
    return LeaveOneOutEstimator(rate_margin=0.05)


def engine_kwargs(engine):
    if engine == "packet":
        return dict(engine="packet", estimator_factory=loo_factory)
    return dict(
        engine="batched",
        estimator_spec=LeaveOneOutEstimatorSpec(rate_margin=0.05),
        rounds_per_leader=4,
    )


def assert_outcomes_identical(a, b):
    assert len(a.outcomes) == len(b.outcomes)
    for oa, ob in zip(a.outcomes, b.outcomes):
        assert oa.scenario == ob.scenario
        for name in (
            "secret_packets",
            "public_packets",
            "total_rows",
            "efficiency",
            "reliability",
            "eve_missed",
            "terminal_receptions",
            "delivery_rates",
        ):
            assert np.array_equal(
                getattr(oa.result, name), getattr(ob.result, name)
            ), name


# -- worker process targets (module level: they outlive fork cleanly) ------


def _claim_and_hang(store_dir, manifest_name, ready_path):
    """The victim: claim one lease, announce it, then hang until
    SIGKILLed — the tightest mid-lease death a worker can die."""
    store = CampaignStore(store_dir)
    queue = WorkQueue(store, manifest_name, owner="victim", lease_timeout=3600)
    claimed = queue.claim_pending(limit=1)
    Path(ready_path).write_text("\n".join(claimed))
    time.sleep(600)  # pragma: no cover - killed long before this returns


def _drain_sim_worker(store_dir, manifest_name, seed):
    CampaignRunner(seed=seed, store=CampaignStore(store_dir)).run_worker(
        manifest_name, lease_timeout=0.5, poll_interval=0.02
    )


def _drain_testbed_worker(store_dir, manifest_name, engine):
    run_campaign(
        TESTBED,
        config=CONFIG,
        store=CampaignStore(store_dir),
        manifest=manifest_name,
        lease_timeout=0.5,
        poll_interval=0.02,
        **engine_kwargs(engine),
    )


def _spawn(target, *args):
    proc = MP.Process(target=target, args=args)
    proc.start()
    return proc


def _await_file(path, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if Path(path).exists() and Path(path).read_text():
            return Path(path).read_text().splitlines()
        time.sleep(0.02)
    raise AssertionError(f"worker never signalled readiness via {path}")


class TestDoubleClaim:
    """Exactly one of two racing claimants may ever hold a lease."""

    def _race(self, queue_a, queue_b, key):
        barrier = threading.Barrier(2)
        wins = []

        def attempt(queue):
            barrier.wait()
            if queue.claim(key):
                wins.append(queue.owner)

        threads = [
            threading.Thread(target=attempt, args=(q,))
            for q in (queue_a, queue_b)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return wins

    def test_fresh_key_single_winner(self, tmp_path):
        store = CampaignStore(tmp_path)
        manifest = CampaignRunner(seed=5, store=store).write_manifest(
            GRID, "race"
        )
        key = manifest.keys()[0]
        for attempt in range(10):  # the race is real: run it repeatedly
            wins = self._race(
                WorkQueue(store, manifest, owner=f"a{attempt}"),
                WorkQueue(store, manifest, owner=f"b{attempt}"),
                key,
            )
            assert len(wins) == 1, wins
            info = WorkQueue(store, manifest).lease_info(key)
            assert info.owner == wins[0]
            self._release_as(store, manifest, key, wins[0])

    def _release_as(self, store, manifest, key, owner):
        assert WorkQueue(store, manifest, owner=owner).release(key)

    def test_expired_lease_single_reclaimer(self, tmp_path):
        store = CampaignStore(tmp_path)
        manifest = CampaignRunner(seed=5, store=store).write_manifest(
            GRID, "race"
        )
        key = manifest.keys()[0]
        for attempt in range(10):
            dead = WorkQueue(
                store, manifest, owner="dead", lease_timeout=0.1
            )
            assert dead.claim(key)
            past = time.time() - 60.0
            os.utime(dead._lease_path(key), (past, past))
            wins = self._race(
                WorkQueue(store, manifest, owner=f"a{attempt}", lease_timeout=0.1),
                WorkQueue(store, manifest, owner=f"b{attempt}", lease_timeout=0.1),
                key,
            )
            assert len(wins) == 1, wins
            self._release_as(store, manifest, key, wins[0])


class TestTornShard:
    def test_truncated_record_is_recomputed_bit_identically(self, tmp_path):
        """Tear a shard mid-record (the disk-full / crash-mid-write
        signature): a resumed drain treats the cell as never finished,
        recomputes exactly it, and matches the serial run."""
        reference = CampaignRunner(seed=9).run(GRID)
        store = CampaignStore(tmp_path)
        runner = CampaignRunner(seed=9, store=store)
        runner.run(GRID, manifest="sweep")
        victim = store.keys()[1]
        path = store.shard_path(victim)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        recomputed = []
        resumed = CampaignRunner(seed=9, store=store).run_worker(
            "sweep", progress=lambda scenario: recomputed.append(scenario)
        )
        assert len(recomputed) == 1
        assert runner.cell_key(recomputed[0]) == victim
        assert_outcomes_identical(reference, resumed)

    def test_truncation_to_empty_file(self, tmp_path):
        reference = CampaignRunner(seed=9).run(GRID)
        store = CampaignStore(tmp_path)
        CampaignRunner(seed=9, store=store).run(GRID, manifest="sweep")
        path = store.shard_path(store.keys()[0])
        path.write_bytes(b"")
        resumed = CampaignRunner(seed=9, store=store).run_worker("sweep")
        assert_outcomes_identical(reference, resumed)


class TestSigkillSimWorker:
    def test_killed_mid_lease_then_drained(self, tmp_path):
        """SIGKILL a worker process while it holds a lease: the lease
        expires, a replacement worker reclaims the cell, and the final
        sweep is bit-identical to serial."""
        reference = CampaignRunner(seed=9).run(GRID)
        store = CampaignStore(tmp_path)
        manifest = CampaignRunner(seed=9, store=store).write_manifest(
            GRID, "sweep"
        )

        ready = tmp_path / "victim-claimed"
        victim = _spawn(_claim_and_hang, str(tmp_path), "sweep", str(ready))
        hung_keys = _await_file(ready)
        assert len(hung_keys) == 1
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        assert victim.exitcode == -signal.SIGKILL

        # The orphaned lease is still on disk, owned by the dead worker.
        queue = WorkQueue(store, manifest, lease_timeout=0.5)
        assert queue.lease_info(hung_keys[0]).owner == "victim"

        replacement = _spawn(_drain_sim_worker, str(tmp_path), "sweep", 9)
        replacement.join(timeout=120)
        assert replacement.exitcode == 0

        resumed = CampaignRunner(seed=9, store=store).run_worker("sweep")
        assert_outcomes_identical(reference, resumed)
        assert queue.status().done == len(manifest)


class TestConcurrentTestbedDrain:
    """The roadmap acceptance scenario: two concurrent worker
    processes, one SIGKILLed mid-sweep and restarted, bit-identical
    aggregates vs a serial ``run_campaign`` — on both engines."""

    @pytest.mark.parametrize("engine", ["packet", "batched"])
    def test_two_workers_one_killed_matches_serial(self, tmp_path, engine):
        kwargs = engine_kwargs(engine)
        reference = run_campaign(TESTBED, config=CONFIG, **kwargs)  # serial

        store = CampaignStore(tmp_path)
        manifest = campaign_sweep_manifest(
            TESTBED, "sweep", config=CONFIG, **kwargs
        ).save(store)

        # Worker 1 claims a lease and is SIGKILLed mid-sweep.
        ready = tmp_path / "victim-claimed"
        victim = _spawn(_claim_and_hang, str(tmp_path), "sweep", str(ready))
        hung_keys = _await_file(ready)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()

        # Its replacement and worker 2 drain the manifest concurrently;
        # one of them reclaims the dead worker's lease after expiry.
        workers = [
            _spawn(_drain_testbed_worker, str(tmp_path), "sweep", engine)
            for _ in range(2)
        ]
        for proc in workers:
            proc.join(timeout=600)
            assert proc.exitcode == 0

        # Assemble from the store via a no-op drain call: every record
        # must equal the serial run's, field for field.
        resumed = run_campaign(
            TESTBED, config=CONFIG, store=store, manifest="sweep", **kwargs
        )
        assert resumed.records == reference.records
        assert hung_keys[0] in manifest.keys()

        # And the streamed, manifest-scoped aggregates are bit-identical
        # to the accumulator fed from the serial in-memory records.
        groups = stream_aggregates(store, manifest=manifest)
        expected = ReliabilityAccumulator()
        expected.extend(r.reliability for r in reference.records)
        got = groups[4].reliability
        assert got.values.counts == expected.values.counts
        assert got.n_excluded == expected.n_excluded
        if expected:
            assert got.summary(4) == expected.summary(4)


class TestHookFailureLabelling:
    """Satellite regression: a raising ``on_result`` checkpoint hook
    must name the failing item, exactly like worker failures do (see
    ``tests/sim/test_campaign.py`` for the per-pool matrix)."""

    def test_queue_persist_failure_names_the_scenario(self, tmp_path):
        from repro.sim.campaign import ShardWorkerError

        class ExplodingStore(CampaignStore):
            def append(self, key, record):
                raise OSError("disk full")

            def append_batch(self, items):
                for key, record in items:
                    self.append(key, record)

        store = ExplodingStore(tmp_path)
        CampaignRunner(seed=9, store=CampaignStore(tmp_path)).write_manifest(
            GRID, "sweep"
        )
        runner = CampaignRunner(seed=9, store=store)
        with pytest.raises(ShardWorkerError, match=r"on_result hook failed on .*n=3"):
            runner.run_worker("sweep")
        # The failed item's lease was released on the way out: nothing
        # is left claimed, everything is still pending.
        status = WorkQueue(CampaignStore(tmp_path), "sweep").status()
        assert status.claimed == 0
        assert status.pending == status.total
