"""Backend selection by URI, the registry, and cross-backend copying.

The conformance suite (``tests/store/conformance``) pins the semantics
every backend shares; this file pins the plumbing around them — scheme
dispatch, ``create=False`` read-only opens, the ``mem:`` registry's
identity guarantee, and byte-identical :func:`repro.store.copy_store`
replication between backends.
"""

import shutil

import pytest

from repro.store import (
    CampaignStore,
    SweepManifest,
    copy_store,
    list_manifests,
    open_backend,
    open_store,
)
from repro.store.backend_fs import FilesystemStoreBackend
from repro.store.backend_mem import MemoryStoreBackend
from repro.store.backend_sqlite import SqliteStoreBackend

KEY = "ab" * 10


class TestOpenStore:
    def test_bare_path_means_filesystem(self, tmp_path):
        store = open_store(tmp_path / "s")
        assert isinstance(store.backend, FilesystemStoreBackend)
        assert store.root == tmp_path / "s"
        assert store.uri == f"file:{tmp_path / 's'}"

    def test_file_scheme(self, tmp_path):
        store = open_store(f"file:{tmp_path}/s")
        assert isinstance(store.backend, FilesystemStoreBackend)
        assert store.root == tmp_path / "s"

    def test_sqlite_scheme(self, tmp_path):
        store = open_store(f"sqlite:{tmp_path}/s.db")
        assert isinstance(store.backend, SqliteStoreBackend)
        assert (tmp_path / "s.db").is_file()
        with pytest.raises(TypeError, match="no filesystem root"):
            store.root
        with pytest.raises(TypeError, match="no shard files"):
            store.shard_path(KEY)

    def test_mem_scheme_is_a_registry(self):
        try:
            a = open_store("mem:uri-test")
            b = open_store("mem:uri-test")
            assert a.backend is b.backend
            a.append(KEY, {"kind": "sim-cell", "v": 1})
            assert b.load(KEY) == {"kind": "sim-cell", "v": 1}
        finally:
            MemoryStoreBackend.discard("uri-test")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown store scheme"):
            open_store("s3:bucket/prefix")

    def test_campaign_store_passthrough(self, tmp_path):
        backend = open_backend(tmp_path / "s")
        assert open_backend(backend) is backend
        store = CampaignStore(backend)
        assert store.backend is backend

    def test_create_false_requires_existing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_store(f"{tmp_path}/absent", create=False)
        with pytest.raises(FileNotFoundError):
            open_store(f"sqlite:{tmp_path}/absent.db", create=False)
        with pytest.raises(FileNotFoundError):
            open_store("mem:never-created", create=False)
        # ...and nothing was created as a side effect.
        assert not (tmp_path / "absent").exists()
        assert not (tmp_path / "absent.db").exists()


class TestShardDirRecreation:
    def test_append_recreates_a_deleted_store_directory(self, tmp_path):
        """Satellite regression: a shard directory pruned between
        manifest write and worker claim must be recreated by the next
        append, not crash the worker."""
        store = CampaignStore(tmp_path / "s")
        store.append(KEY, {"kind": "sim-cell", "v": 1})
        shutil.rmtree(tmp_path / "s")
        store.append(KEY, {"kind": "sim-cell", "v": 2})
        assert store.load(KEY) == {"kind": "sim-cell", "v": 2}


class TestCopyStore:
    def _populate(self, store):
        store.append(KEY, {"kind": "sim-cell", "v": 1})
        store.append(KEY, {"kind": "sim-cell", "v": 2})
        store.append("cd" * 10, {"kind": "sim-cell", "v": 3})
        SweepManifest(name="toy", entries=()).save(store)

    def test_copy_preserves_raw_lines_and_manifests(self, tmp_path):
        """The mem->durable export path: line-for-line identical shards
        (full history, not just effective records) plus manifests."""
        try:
            src = open_store("mem:copy-src")
            self._populate(src)
            dst = open_store(f"sqlite:{tmp_path}/dst.db")
            copied = copy_store(src, dst)
            assert copied == 2
            for key in src.keys():
                assert dst.backend.read_records(key) == (
                    src.backend.read_records(key)
                )
            assert dst.load(KEY) == {"kind": "sim-cell", "v": 2}
            assert list_manifests(dst) == ["toy"]
        finally:
            MemoryStoreBackend.discard("copy-src")

    def test_copy_to_filesystem_round_trips(self, tmp_path):
        src = open_store(f"{tmp_path}/src")
        self._populate(src)
        dst = open_store(f"{tmp_path}/dst")
        copy_store(src, dst)
        assert dst.keys() == src.keys()
        for key in src.keys():
            assert dst.backend.read_records(key) == (
                src.backend.read_records(key)
            )
