"""Sweep manifests and the work queue: the single-process contracts.

The multi-process fault injection lives in ``test_faults.py``; this
file pins the building blocks — atomic versioned manifest documents,
lease claim/heartbeat/release semantics, status bucketing, and the
manifest-scoped runner/aggregation entry points.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.sim import (
    CampaignRunner,
    IIDLossSpec,
    OracleEstimatorSpec,
    ScenarioGrid,
)
from repro.store import (
    CampaignStore,
    ManifestEntry,
    SweepManifest,
    WorkQueue,
    list_manifests,
)
from repro.store.aggregate import stream_aggregates

GRID = ScenarioGrid(
    group_sizes=(3, 4),
    loss_models=(IIDLossSpec(0.4),),
    estimators=(OracleEstimatorSpec(),),
    rounds=10,
    n_x_packets=30,
)


def toy_manifest(name="toy", n=3):
    entries = tuple(
        ManifestEntry(key=f"{i:02d}" * 5, spec={"i": i}, label=f"item-{i}")
        for i in range(n)
    )
    return SweepManifest(name=name, entries=entries, kind="sim-grid")


class TestSweepManifest:
    def test_roundtrip_and_listing(self, tmp_path):
        store = CampaignStore(tmp_path)
        saved = toy_manifest().save(store)
        assert saved.version == 1
        loaded = SweepManifest.load(store, "toy")
        assert loaded == saved
        assert loaded.keys() == [e.key for e in saved.entries]
        assert list_manifests(store) == ["toy"]
        # Manifest documents and lease dirs never pollute the shard scan.
        assert store.keys() == []
        assert len(store) == 0

    def test_save_is_idempotent_by_content(self, tmp_path):
        store = CampaignStore(tmp_path)
        first = toy_manifest().save(store)
        again = toy_manifest().save(store)
        assert again.version == first.version == 1

    def test_changed_content_bumps_version(self, tmp_path):
        store = CampaignStore(tmp_path)
        toy_manifest(n=2).save(store)
        revised = toy_manifest(n=3).save(store)
        assert revised.version == 2
        assert SweepManifest.load(store, "toy").version == 2

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = CampaignStore(tmp_path)
        toy_manifest().save(store)
        toy_manifest(n=5).save(store)
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_malformed_names_and_duplicate_keys_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="malformed manifest name"):
            SweepManifest(name="../escape", entries=())
        entry = ManifestEntry(key="ab" * 5, spec=None)
        with pytest.raises(ValueError, match="duplicate shard keys"):
            SweepManifest(name="dup", entries=(entry, entry))
        store = CampaignStore(tmp_path)
        with pytest.raises(FileNotFoundError, match="no manifest"):
            SweepManifest.load(store, "absent")
        assert SweepManifest.load(store, "absent", missing_ok=True) is None

    def test_wrong_format_tag_fails_loudly(self, tmp_path):
        store = CampaignStore(tmp_path)
        (tmp_path / "bogus.manifest.json").write_text(
            json.dumps({"format": "something-else/9", "name": "bogus"})
        )
        with pytest.raises(ValueError, match="not a sweep manifest"):
            SweepManifest.load(store, "bogus")


class TestWorkQueue:
    def test_claim_release_cycle(self, tmp_path):
        store = CampaignStore(tmp_path)
        manifest = toy_manifest().save(store)
        a = WorkQueue(store, manifest, owner="a")
        b = WorkQueue(store, manifest, owner="b")
        key = manifest.keys()[0]
        assert a.claim(key)
        assert not b.claim(key)  # O_EXCL: the loser sees a live lease
        assert a.lease_info(key).owner == "a"
        assert not b.release(key)  # only the owner may release
        assert a.release(key)
        assert b.claim(key)  # released keys are claimable again

    def test_claim_refuses_done_keys(self, tmp_path):
        store = CampaignStore(tmp_path)
        manifest = toy_manifest().save(store)
        key = manifest.keys()[0]
        store.append(key, {"kind": "experiment", "n_terminals": 3,
                           "placement": None, "efficiency": 0.1,
                           "reliability": 1.0, "secret_bits": 8,
                           "transmitted_bits": 80})
        queue = WorkQueue(store, manifest)
        assert queue.is_done(key)
        assert not queue.claim(key)

    def test_expired_lease_is_reclaimable(self, tmp_path):
        store = CampaignStore(tmp_path)
        manifest = toy_manifest().save(store)
        key = manifest.keys()[0]
        dead = WorkQueue(store, manifest, owner="dead", lease_timeout=0.2)
        assert dead.claim(key)
        past = time.time() - 10.0
        os.utime(dead._lease_path(key), (past, past))
        live = WorkQueue(store, manifest, owner="live", lease_timeout=0.2)
        assert live.claim(key)
        assert live.lease_info(key).owner == "live"

    def test_heartbeat_defers_expiry(self, tmp_path):
        store = CampaignStore(tmp_path)
        manifest = toy_manifest().save(store)
        key = manifest.keys()[0]
        worker = WorkQueue(store, manifest, owner="w", lease_timeout=5.0)
        assert worker.claim(key)
        past = time.time() - 60.0
        os.utime(worker._lease_path(key), (past, past))
        assert worker.lease_info(key).expired
        assert worker.heartbeat(key)
        assert not worker.lease_info(key).expired
        # A non-owner's heartbeat is refused and changes nothing.
        other = WorkQueue(store, manifest, owner="o", lease_timeout=5.0)
        assert not other.heartbeat(key)

    def test_status_buckets(self, tmp_path):
        store = CampaignStore(tmp_path)
        manifest = toy_manifest(n=4).save(store)
        keys = manifest.keys()
        store.append(keys[0], {"kind": "sim-cell"})  # done
        queue = WorkQueue(store, manifest, owner="w", lease_timeout=1.0)
        assert queue.claim(keys[1])  # claimed (live)
        assert queue.claim(keys[2])
        past = time.time() - 10.0
        os.utime(queue._lease_path(keys[2]), (past, past))  # stale
        status = queue.status()
        assert (status.total, status.done) == (4, 1)
        assert (status.claimed, status.stale, status.pending) == (1, 1, 1)
        assert status.remaining == 3
        assert queue.pending() == keys[1:]

    def test_unknown_key_rejected(self, tmp_path):
        store = CampaignStore(tmp_path)
        queue = WorkQueue(store, toy_manifest().save(store))
        with pytest.raises(KeyError, match="not in manifest"):
            queue.claim("ff" * 5)


class TestManifestRunnerEntryPoints:
    def test_write_manifest_refuses_redefinition(self, tmp_path):
        store = CampaignStore(tmp_path)
        runner = CampaignRunner(seed=5, store=store)
        runner.write_manifest(GRID, "sweep")
        runner.write_manifest(GRID, "sweep")  # same content: fine
        other = ScenarioGrid(
            group_sizes=(5,),
            loss_models=(IIDLossSpec(0.4),),
            estimators=(OracleEstimatorSpec(),),
            rounds=10,
            n_x_packets=30,
        )
        with pytest.raises(ValueError, match="different sweep"):
            runner.write_manifest(other, "sweep")

    def test_run_worker_rejects_foreign_seed(self, tmp_path):
        store = CampaignStore(tmp_path)
        CampaignRunner(seed=5, store=store).write_manifest(GRID, "sweep")
        with pytest.raises(ValueError, match="different .* seed"):
            CampaignRunner(seed=6, store=store).run_worker("sweep")

    def test_run_worker_rejects_wrong_kind(self, tmp_path):
        store = CampaignStore(tmp_path)
        manifest = SweepManifest(
            name="tb", entries=(), kind="testbed-campaign"
        ).save(store)
        with pytest.raises(ValueError, match="testbed-campaign"):
            CampaignRunner(seed=5, store=store).run_worker(manifest)

    def test_manifest_scoped_aggregates(self, tmp_path):
        """Two sweeps in one store: a manifest scopes aggregation to its
        own shards without recomputing any fingerprint."""
        store = CampaignStore(tmp_path)
        CampaignRunner(seed=5, store=store).run(GRID, manifest="five")
        CampaignRunner(seed=6, store=store).run(GRID, manifest="six")
        scoped = stream_aggregates(store, manifest="five")
        everything = stream_aggregates(store)
        assert sorted(scoped) == [3, 4]
        assert (
            scoped[3].reliability.n_experiments
            < everything[3].reliability.n_experiments
        )
        with pytest.raises(ValueError, match="not both"):
            stream_aggregates(store, keys=["ab" * 5], manifest="five")

    def test_run_with_manifest_matches_plain_run(self, tmp_path):
        reference = CampaignRunner(seed=5).run(GRID)
        store = CampaignStore(tmp_path)
        result = CampaignRunner(seed=5, store=store).run(GRID, manifest="m")
        assert len(result.outcomes) == len(reference.outcomes)
        for a, b in zip(reference.outcomes, result.outcomes):
            assert a.scenario == b.scenario
            assert np.array_equal(a.result.reliability, b.result.reliability)
            assert np.array_equal(a.result.efficiency, b.result.efficiency)
