"""The campaign store: fingerprints, shards, crash-safety, codecs."""

import json
import math

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.sim import (
    AdversarySpec,
    BatchedRoundEngine,
    CombinedEstimatorSpec,
    FixedFractionEstimatorSpec,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    Scenario,
    ScheduleLossSpec,
)
from repro.sim.campaign import ScenarioOutcome
from repro.store import (
    CampaignStore,
    canonical_json,
    fingerprint,
    fingerprint_spawn_key,
)
from repro.store.records import (
    decode_spec,
    encode_spec,
    experiment_record_from_json,
    experiment_record_to_json,
    scenario_outcome_from_json,
    scenario_outcome_to_json,
)
from repro.testbed import Placement


def module_factory(testbed, placement):
    """Module-level callable for the factory-fingerprint test."""


class StatefulFactory:
    def __init__(self, margin):
        self.margin = margin

    def __call__(self, testbed, placement):
        pass


SCENARIO = Scenario(
    n_terminals=4,
    loss=IIDLossSpec(0.4),
    adversary=AdversarySpec(antennas=2),
    estimator=LeaveOneOutEstimatorSpec(rate_margin=0.05),
    n_x_packets=50,
    rounds=12,
    payload_bytes=32,
)


class TestFingerprint:
    def test_deterministic_and_content_keyed(self):
        assert fingerprint(SCENARIO) == fingerprint(SCENARIO)
        # Any field change must change the key.
        other = Scenario(
            n_terminals=4,
            loss=IIDLossSpec(0.4),
            adversary=AdversarySpec(antennas=2),
            estimator=LeaveOneOutEstimatorSpec(rate_margin=0.05),
            n_x_packets=50,
            rounds=12,
            payload_bytes=33,
        )
        assert fingerprint(other) != fingerprint(SCENARIO)

    def test_pinned_digests(self):
        """Fingerprints are store shard names: silently changing the
        canonicalisation would orphan every existing store.  These pins
        fail loudly instead."""
        assert (
            fingerprint({"kind": "sim-cell", "seed": 7, "scenario": SCENARIO})
            == "31e0f0c4e10adf8ed285"
        )
        assert fingerprint(IIDLossSpec(0.5)) == "e3ec81692d7e34d43fff"

    def test_spawn_key_matches_digest_prefix(self):
        words = fingerprint_spawn_key(SCENARIO)
        assert len(words) == 4
        assert all(0 <= w < 2**32 for w in words)
        # Distinct scenarios get distinct streams.
        assert fingerprint_spawn_key(SCENARIO) != fingerprint_spawn_key(
            IIDLossSpec(0.5)
        )

    def test_hash_seed_independent(self):
        """The canonical form must not depend on dict/hash ordering."""
        a = canonical_json({"b": 1, "a": 2, "c": {"z": 1, "y": 2}})
        assert a == '{"a":2,"b":1,"c":{"y":2,"z":1}}'

    def test_non_finite_floats(self):
        assert '"__float__":"nan"' in canonical_json(float("nan"))
        assert canonical_json(math.inf) == '{"__float__":"inf"}'

    def test_callable_identity(self):
        key = fingerprint(module_factory)
        assert key == fingerprint(module_factory)
        # Instance state distinguishes configured factories...
        assert fingerprint(StatefulFactory(0.02)) != fingerprint(
            StatefulFactory(0.05)
        )
        # ...and equal state collapses onto one key.
        assert fingerprint(StatefulFactory(0.02)) == fingerprint(
            StatefulFactory(0.02)
        )

    def test_unfingerprintable_rejected(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint(object())


class TestCampaignStore:
    def test_append_load_roundtrip(self, tmp_path):
        store = CampaignStore(tmp_path)
        key = fingerprint(SCENARIO)
        store.append(key, {"kind": "experiment", "x": 1.25})
        assert key in store
        assert store.load(key) == {"kind": "experiment", "x": 1.25}
        assert store.keys() == [key]

    def test_last_complete_record_wins(self, tmp_path):
        """Reruns append; readers dedupe by recency, so a superseded
        result can never double-count in aggregates."""
        store = CampaignStore(tmp_path)
        key = "ab" * 10
        store.append(key, {"v": 1})
        store.append(key, {"v": 2})
        assert store.load(key) == {"v": 2}
        assert [r["v"] for r in store.records(key)] == [1, 2]
        assert len(list(store.stream())) == 1

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        """The crash signature: a kill mid-append leaves a truncated
        final line.  Readers must fall back to the last complete one."""
        store = CampaignStore(tmp_path)
        key = "cd" * 10
        store.append(key, {"v": 1})
        with open(store.shard_path(key), "a") as f:
            f.write('{"v": 2, "trunc')  # no terminator, invalid JSON
        assert store.load(key) == {"v": 1}
        # And the shard keeps accepting appends afterwards... the torn
        # fragment stays dead because the next line starts mid-text --
        # which parses as *no* record for that physical line.
        store.append(key, {"v": 3})
        assert store.load(key) == {"v": 3}

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        store = CampaignStore(tmp_path)
        key = "ef" * 10
        store.append(key, {"v": 1})
        with open(store.shard_path(key), "a") as f:
            f.write("not json at all\n")
        store.append(key, {"v": 2})
        assert [r["v"] for r in store.records(key)] == [1, 2]

    def test_missing_shard(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert store.load("0" * 20) is None
        assert "0" * 20 not in store
        assert store.records("0" * 20) == []

    def test_malformed_key_rejected(self, tmp_path):
        store = CampaignStore(tmp_path)
        with pytest.raises(ValueError, match="malformed shard key"):
            store.shard_path("../../etc/passwd")
        with pytest.raises(ValueError, match="malformed shard key"):
            store.append("UPPER-not-hex", {})

    def test_stream_scopes_to_keys(self, tmp_path):
        store = CampaignStore(tmp_path)
        for i in range(4):
            store.append(f"{i:020x}", {"v": i})
        scoped = list(store.stream([f"{i:020x}" for i in (2, 0)]))
        assert [r["v"] for r in scoped] == [2, 0]

    def test_records_are_strict_json(self, tmp_path):
        """allow_nan=False end to end: a stored shard must parse with a
        strict JSON reader (no Python-only NaN literals)."""
        store = CampaignStore(tmp_path)
        record = experiment_record_to_json(
            ExperimentRecord(
                n_terminals=3,
                placement=Placement(eve_cell=4, terminal_cells=(0, 2, 6)),
                efficiency=0.0,
                reliability=float("nan"),
                secret_bits=0,
                transmitted_bits=100,
            )
        )
        key = "12" * 10
        store.append(key, record)
        raw = store.shard_path(key).read_text()
        # parse_constant fires only on NaN/Infinity literals: loading
        # with a failing hook proves the line is strict JSON.
        json.loads(raw, parse_constant=lambda c: pytest.fail(f"non-strict {c}"))


class TestSpecCodec:
    def test_nested_spec_roundtrip(self):
        spec = Scenario(
            n_terminals=5,
            loss=ScheduleLossSpec(
                pattern_probabilities=((0.1, 0.2, 0.3, 0.4, 0.9),) * 3,
                slots_per_pattern=10,
            ),
            adversary=AdversarySpec(antennas=1, loss=0.7),
            estimator=CombinedEstimatorSpec(
                children=(
                    FixedFractionEstimatorSpec(fraction=0.3),
                    LeaveOneOutEstimatorSpec(rate_margin=0.02),
                )
            ),
            max_subset_size=3,
        )
        assert decode_spec(encode_spec(spec)) == spec

    def test_optional_none_fields_survive(self):
        # None (max_subset_size, adversary loss) must never be confused
        # with the NaN float sentinel.
        spec = Scenario(n_terminals=3, loss=IIDLossSpec(0.5))
        back = decode_spec(encode_spec(spec))
        assert back.max_subset_size is None
        assert back.adversary.loss is None

    def test_unknown_spec_class_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown spec"):
            decode_spec({"__spec__": "EvilSpec", "x": 1})
        with pytest.raises(TypeError, match="cannot encode"):
            encode_spec(np.random.default_rng(0))


class TestRecordCodecs:
    def test_experiment_record_nan_reliability_roundtrip(self):
        """The zero-secret convention: NaN reliability must survive the
        JSONL round-trip as NaN (not 1.0, not null-turned-0.0) so the
        aggregate exclusion rule keeps working on loaded records."""
        record = ExperimentRecord(
            n_terminals=4,
            placement=Placement(eve_cell=1, terminal_cells=(0, 2, 6, 8)),
            efficiency=0.0,
            reliability=float("nan"),
            secret_bits=0,
            transmitted_bits=12345,
        )
        line = json.dumps(experiment_record_to_json(record), allow_nan=False)
        back = experiment_record_from_json(json.loads(line))
        assert math.isnan(back.reliability)
        assert back.placement == record.placement
        assert back.efficiency == 0.0
        assert back.secret_bits == 0
        assert back.transmitted_bits == 12345

    def test_experiment_record_finite_bit_identical(self):
        record = ExperimentRecord(
            n_terminals=4,
            placement=Placement(eve_cell=1, terminal_cells=(0, 2, 6, 8)),
            efficiency=0.03632871028997079,  # full float64 precision
            reliability=0.9999999999999998,
            secret_bits=77,
            transmitted_bits=3,
        )
        line = json.dumps(experiment_record_to_json(record), allow_nan=False)
        assert experiment_record_from_json(json.loads(line)) == record

    def test_scenario_outcome_roundtrip_bit_identical(self):
        outcome = ScenarioOutcome(
            scenario=SCENARIO,
            result=BatchedRoundEngine(SCENARIO, seed=3).run(),
        )
        line = json.dumps(scenario_outcome_to_json(outcome), allow_nan=False)
        back = scenario_outcome_from_json(json.loads(line))
        assert back.scenario == outcome.scenario
        for name in (
            "secret_packets",
            "public_packets",
            "total_rows",
            "efficiency",
            "reliability",
            "eve_missed",
            "terminal_receptions",
            "delivery_rates",
        ):
            a = getattr(outcome.result, name)
            b = getattr(back.result, name)
            assert a.dtype == b.dtype, name
            assert np.array_equal(a, b), name
        assert back.result.secret_bits == outcome.result.secret_bits

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="not an experiment record"):
            experiment_record_from_json({"kind": "sim-cell"})
        with pytest.raises(ValueError, match="not a sim-cell record"):
            scenario_outcome_from_json({"kind": "experiment"})
