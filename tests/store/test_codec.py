"""Binary record codec: framing, roundtrips, and JSONL equivalence.

JSONL stays the interchange format; ``?codec=binary`` only changes how
record lines rest on the medium.  These tests pin the tentpole
contract: the same campaign writes the same *records* under either
codec on every backend, ``copy_store`` transcodes losslessly in both
directions, and torn or corrupt binary trailers degrade exactly like
torn JSONL lines — an incomplete write is *no* record, never a
mangled one.
"""

import json

import pytest

from repro.sim import (
    CampaignRunner,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    ScenarioGrid,
)
from repro.store import CampaignStore, copy_store, open_store
from repro.store.backend import open_backend
from repro.store.backend_mem import MemoryStoreBackend
from repro.store.codec import (
    BINARY_EXTENSION,
    check_codec,
    decode_frames,
    encode_frame,
    encode_frames,
    scan_frames,
)

LINES = [
    json.dumps({"kind": "experiment", "i": i, "x": 0.25 * i})
    for i in range(5)
]


class TestFrameCodec:
    def test_roundtrip(self):
        buf = encode_frames(LINES)
        assert decode_frames(buf) == LINES

    def test_framing_is_canonical(self):
        """One line always encodes to the same bytes, so re-framing a
        decoded shard reproduces it byte for byte (what makes binary
        shard tearing and transcode equivalence exact)."""
        buf = encode_frames(LINES)
        assert encode_frames(decode_frames(buf)) == buf

    def test_empty_buffer(self):
        assert scan_frames(b"") == ([], 0)

    def test_torn_payload_stops_scan(self):
        buf = encode_frames(LINES)
        torn = buf[:-3]
        lines, consumed = scan_frames(torn)
        assert lines == LINES[:-1]
        assert consumed == len(encode_frames(LINES[:-1]))

    def test_torn_header_stops_scan(self):
        keep = encode_frames(LINES[:2])
        lines, consumed = scan_frames(keep + b"RB\x10")
        assert lines == LINES[:2]
        assert consumed == len(keep)

    def test_bad_magic_stops_scan(self):
        keep = encode_frames(LINES[:2])
        junk = encode_frame(LINES[2]).replace(b"RB", b"XX", 1)
        assert scan_frames(keep + junk)[0] == LINES[:2]

    def test_crc_failure_stops_scan(self):
        frame = bytearray(encode_frame(LINES[0]))
        frame[-1] ^= 0x40  # flip a payload bit; length still valid
        lines, consumed = scan_frames(bytes(frame))
        assert lines == [] and consumed == 0

    def test_invalid_utf8_stops_scan(self):
        import struct
        import zlib

        payload = b"\xff\xfe"
        frame = struct.pack("<2sII", b"RB", len(payload),
                            zlib.crc32(payload)) + payload
        assert scan_frames(frame) == ([], 0)

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown record codec"):
            check_codec("msgpack")


def _uris(tmp_path, codec):
    suffix = f"?codec={codec}" if codec else ""
    return [
        f"file:{tmp_path}/fs-{codec or 'default'}{suffix}",
        f"sqlite:{tmp_path}/db-{codec or 'default'}.sqlite{suffix}",
        f"mem:codec-suite-{codec or 'default'}{suffix}",
    ]


@pytest.fixture(autouse=True)
def _drop_mem_stores():
    yield
    from repro.store.backend_mem import _REGISTRY

    for name in list(_REGISTRY):
        if name.startswith("codec-suite-"):
            MemoryStoreBackend.discard(name)


class TestBinaryStoreEquivalence:
    def test_same_records_either_codec_every_backend(self, tmp_path):
        for jsonl_uri, binary_uri in zip(
            _uris(tmp_path, None), _uris(tmp_path, "binary")
        ):
            a = open_store(jsonl_uri)
            b = open_store(binary_uri)
            for i, line in enumerate(LINES):
                record = json.loads(line)
                a.append(f"{i:020x}", record)
                b.append(f"{i:020x}", record)
            assert a.keys() == b.keys()
            for key in a.keys():
                assert a.records(key) == b.records(key), binary_uri

    def test_append_batch_equals_per_record_appends(self, tmp_path):
        for codec in (None, "binary"):
            one, batch = (
                open_store(f"file:{tmp_path}/{codec}-{tag}"
                           + (f"?codec={codec}" if codec else ""))
                for tag in ("one", "batch")
            )
            items = [(f"{i % 2:020x}", json.loads(line))
                     for i, line in enumerate(LINES)]
            for key, record in items:
                one.append(key, record)
            batch.append_batch(items)
            for key in one.keys():
                assert (
                    one.shard_path(key).read_bytes()
                    == batch.shard_path(key).read_bytes()
                )

    def test_binary_shards_use_rbin_extension(self, tmp_path):
        store = open_store(f"file:{tmp_path}?codec=binary")
        store.append("0" * 20, {"kind": "experiment"})
        (path,) = [store.shard_path(key) for key in store.keys()]
        assert path.suffix == BINARY_EXTENSION
        assert path.read_bytes().startswith(b"RB")

    def test_appends_stick_to_existing_shard_layout(self, tmp_path):
        """Reopening a JSONL store under ?codec=binary must extend the
        existing shard in its own layout, never mix framings."""
        key = "1" * 20
        open_store(f"file:{tmp_path}").append(key, {"i": 0})
        binary_view = open_store(f"file:{tmp_path}?codec=binary")
        binary_view.append(key, {"i": 1})
        (path,) = [binary_view.shard_path(k) for k in binary_view.keys()]
        assert path.suffix == ".jsonl"
        assert binary_view.records(key) == [{"i": 0}, {"i": 1}]

    def test_empty_shard_does_not_pin_layout(self, tmp_path):
        """Zero-length debris (a writer that crashed at open, an
        operator ``touch``) commits to no layout: the store codec
        decides the extension, exactly as for a fresh key."""
        key = "3" * 20
        (tmp_path / f"{key}.jsonl").touch()
        store = open_store(f"file:{tmp_path}?codec=binary")
        store.append(key, {"i": 0})
        assert store.shard_path(key).suffix == BINARY_EXTENSION
        assert store.records(key) == [{"i": 0}]

    def test_empty_shard_cannot_shadow_populated_sibling(self, tmp_path):
        """Regression: an empty ``key.jsonl`` used to win shard
        dispatch over a populated ``key.rbin``, hiding every stored
        record and routing appends into the wrong layout."""
        key = "4" * 20
        binary_store = open_store(f"file:{tmp_path}?codec=binary")
        binary_store.append(key, {"i": 0})
        (tmp_path / f"{key}.jsonl").touch()
        jsonl_view = open_store(f"file:{tmp_path}")
        assert jsonl_view.records(key) == [{"i": 0}]
        jsonl_view.append(key, {"i": 1})  # extends the populated shard
        assert jsonl_view.shard_path(key).suffix == BINARY_EXTENSION
        assert jsonl_view.records(key) == [{"i": 0}, {"i": 1}]

    def test_torn_binary_trailer_reads_clean_and_seals(self, tmp_path):
        store = open_store(f"file:{tmp_path}?codec=binary")
        key = "2" * 20
        store.append(key, {"i": 0})
        path = store.shard_path(key)
        path.write_bytes(path.read_bytes() + b"RB\x99")  # crash debris
        assert store.records(key) == [{"i": 0}]
        store.append(key, {"i": 1})  # append seals the torn trailer
        assert decode_frames(path.read_bytes()) == [
            json.dumps({"i": 0}, separators=(",", ":")),
            json.dumps({"i": 1}, separators=(",", ":")),
        ]


class TestCopyStoreTranscode:
    def test_lossless_both_directions(self, tmp_path):
        """file:A → binary → jsonl restores A's shard bytes exactly;
        the intermediate holds the same records."""
        a = open_store(f"file:{tmp_path}/a")
        for i, line in enumerate(LINES):
            a.append(f"{i:020x}", json.loads(line))
        b = open_store(f"file:{tmp_path}/b?codec=binary")
        c = open_store(f"file:{tmp_path}/c")
        assert copy_store(a, b) == len(LINES)
        assert copy_store(b, c) == len(LINES)
        for key in a.keys():
            assert b.records(key) == a.records(key)
            assert (
                c.shard_path(key).read_bytes()
                == a.shard_path(key).read_bytes()
            )

    def test_transcode_across_backends(self, tmp_path):
        src = open_store(f"sqlite:{tmp_path}/src.sqlite?codec=binary")
        for i, line in enumerate(LINES):
            src.append(f"{i:020x}", json.loads(line))
        dst = open_store("mem:codec-suite-dst")
        copy_store(src, dst)
        for key in src.keys():
            assert dst.records(key) == src.records(key)


class TestCodecUri:
    def test_unknown_codec_in_uri(self, tmp_path):
        with pytest.raises(ValueError, match="unknown record codec"):
            open_store(f"file:{tmp_path}?codec=msgpack")

    def test_unknown_query_key_in_uri(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store URI query"):
            open_store(f"file:{tmp_path}?codek=binary")

    def test_uri_roundtrips_codec(self, tmp_path):
        backend = open_backend(f"file:{tmp_path}?codec=binary")
        reopened = open_backend(backend.uri)
        assert reopened.uri == backend.uri

    def test_keyword_codec_and_uri_priority(self, tmp_path):
        backend = open_backend(f"file:{tmp_path}", codec="binary")
        assert "codec=binary" in backend.uri
        # An explicit URI query beats the keyword.
        backend = open_backend(f"file:{tmp_path}?codec=jsonl", codec="binary")
        assert "codec=" not in backend.uri

    def test_mem_codec_conflict_rejected(self, tmp_path):
        open_store("mem:codec-suite-conflict?codec=binary")
        with pytest.raises(ValueError, match="codec"):
            open_store("mem:codec-suite-conflict?codec=jsonl")
        # No explicit codec: reopening is fine, store codec sticks.
        again = open_store("mem:codec-suite-conflict")
        assert "codec=binary" in again.backend.uri


GRID = ScenarioGrid(
    group_sizes=(3, 4),
    loss_models=(IIDLossSpec(0.3), IIDLossSpec(0.5)),
    estimators=(OracleEstimatorSpec(), LeaveOneOutEstimatorSpec(0.05)),
    rounds=20,
    n_x_packets=40,
)


class TestCampaignThroughBinaryStore:
    def test_campaign_records_match_jsonl_store(self, tmp_path):
        jsonl = open_store(f"file:{tmp_path}/jsonl")
        binary = open_store(f"file:{tmp_path}/binary?codec=binary")
        CampaignRunner(seed=9, store=jsonl).run(GRID)
        CampaignRunner(seed=9, store=binary).run(GRID)
        assert jsonl.keys() == binary.keys()
        for key in jsonl.keys():
            assert jsonl.records(key) == binary.records(key)

    def test_resume_mid_grid_under_binary_codec(self, tmp_path):
        cells = GRID.scenarios()
        reference = CampaignRunner(seed=9).run(cells)
        store = open_store(f"file:{tmp_path}?codec=binary")
        CampaignRunner(seed=9, store=store).run(cells[:3])
        computed = []
        resumed = CampaignRunner(seed=9, store=store).run(
            cells, progress=computed.append
        )
        assert len(computed) == len(cells) - 3
        from tests.sim.test_stack import assert_outcomes_identical

        assert_outcomes_identical(reference, resumed)
