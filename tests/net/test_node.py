"""Nodes: reception logs, distances, multi-antenna geometry."""

import numpy as np
import pytest

from repro.net.node import Eavesdropper, Node, Terminal


class TestNode:
    def test_distance(self):
        node = Node(name="a", position=(0.0, 0.0))
        assert node.distance_to((3.0, 4.0)) == pytest.approx(5.0)

    def test_single_antenna_default(self):
        node = Node(name="a", position=(1.0, 2.0))
        assert node.antenna_positions() == [(1.0, 2.0)]


class TestTerminal:
    def test_record_and_query(self):
        t = Terminal(name="t")
        payload = np.arange(4, dtype=np.uint8)
        t.record(0, 7, payload)
        t.record(0, 9, payload)
        t.record(1, 7, payload)
        assert t.received_ids(0) == {7, 9}
        assert t.received_ids(1) == {7}
        assert t.received_ids(2) == set()

    def test_payloads_returned_per_round(self):
        t = Terminal(name="t")
        payload = np.arange(4, dtype=np.uint8)
        t.record(0, 3, payload)
        got = t.received_payloads(0)
        assert set(got) == {3}
        assert np.array_equal(got[3], payload)

    def test_clear(self):
        t = Terminal(name="t")
        t.record(0, 1, np.zeros(2, dtype=np.uint8))
        t.clear()
        assert t.received_ids(0) == set()


class TestEavesdropper:
    def test_extra_antennas_listed(self):
        eve = Eavesdropper(
            name="eve", position=(0.0, 0.0), extra_antennas=[(1.0, 1.0), (2.0, 2.0)]
        )
        assert eve.antenna_positions() == [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]

    def test_reception_log(self):
        eve = Eavesdropper(name="eve")
        eve.record(0, 5, np.zeros(3, dtype=np.uint8))
        assert eve.received_ids(0) == {5}
        eve.clear()
        assert eve.received_ids(0) == set()
