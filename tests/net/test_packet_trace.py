"""Packets and the transmission ledger."""

import numpy as np
import pytest

from repro.net.packet import DEFAULT_HEADER_BYTES, Packet, PacketKind
from repro.net.trace import PLCP_OVERHEAD_BITS, TransmissionLedger


class TestPacket:
    def test_payload_sizes(self):
        pkt = Packet(
            kind=PacketKind.X_DATA,
            src="a",
            payload=np.zeros(100, dtype=np.uint8),
        )
        assert pkt.body_bytes == 100
        assert pkt.wire_bytes == 100 + DEFAULT_HEADER_BYTES
        assert pkt.wire_bits == 8 * pkt.wire_bytes

    def test_control_sizes(self):
        pkt = Packet(kind=PacketKind.FEEDBACK, src="a", control_bytes=17)
        assert pkt.body_bytes == 17

    def test_payload_coerced_to_uint8(self):
        pkt = Packet(kind=PacketKind.X_DATA, src="a", payload=[1, 2, 3])
        assert pkt.payload.dtype == np.uint8

    def test_2d_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(
                kind=PacketKind.X_DATA,
                src="a",
                payload=np.zeros((2, 2), dtype=np.uint8),
            )

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Packet(kind=PacketKind.ACK, src="a", control_bytes=-1)

    def test_seq_monotone(self):
        a = Packet(kind=PacketKind.ACK, src="a")
        b = Packet(kind=PacketKind.ACK, src="a")
        assert b.seq > a.seq

    def test_repr(self):
        assert "kind=ack" in repr(Packet(kind=PacketKind.ACK, src="a"))


class TestLedger:
    def test_charge_includes_plcp(self):
        ledger = TransmissionLedger()
        pkt = Packet(kind=PacketKind.ACK, src="a", control_bytes=14, header_bytes=0)
        bits = ledger.charge(pkt)
        assert bits == 14 * 8 + PLCP_OVERHEAD_BITS

    def test_plcp_optional(self):
        ledger = TransmissionLedger(count_plcp=False)
        pkt = Packet(kind=PacketKind.ACK, src="a", control_bytes=14, header_bytes=0)
        assert ledger.charge(pkt) == 14 * 8

    def test_breakdowns(self):
        ledger = TransmissionLedger(count_plcp=False)
        ledger.charge(Packet(kind=PacketKind.ACK, src="a", control_bytes=10, header_bytes=0))
        ledger.charge(Packet(kind=PacketKind.ACK, src="b", control_bytes=10, header_bytes=0), round_id=1)
        ledger.charge(
            Packet(kind=PacketKind.X_DATA, src="a", payload=np.zeros(5, dtype=np.uint8), header_bytes=0),
            round_id=1,
        )
        assert ledger.total_attempts == 3
        assert ledger.bits_by_kind()[PacketKind.ACK] == 160
        assert ledger.bits_by_node()["a"] == 120
        assert ledger.bits_by_round()[1] == 120

    def test_airtime(self):
        ledger = TransmissionLedger(count_plcp=False)
        ledger.charge(Packet(kind=PacketKind.ACK, src="a", control_bytes=125, header_bytes=0))
        assert ledger.airtime_seconds(1e6) == pytest.approx(0.001)
        with pytest.raises(ValueError):
            ledger.airtime_seconds(0)

    def test_merge_and_reset(self):
        a = TransmissionLedger()
        b = TransmissionLedger()
        a.charge(Packet(kind=PacketKind.ACK, src="x", control_bytes=1))
        b.charge(Packet(kind=PacketKind.ACK, src="y", control_bytes=1))
        a.merge(b)
        assert a.total_attempts == 2
        a.reset()
        assert a.total_attempts == 0
