"""PHY model: path loss, SINR, PER curves and fading statistics."""

import math

import numpy as np
import pytest

from repro.net.radio import (
    RadioConfig,
    ber_dbpsk,
    free_space_loss_db,
    path_loss_db,
    per_from_sinr_db,
    received_power_dbm,
    sample_packet_loss,
    sinr_db,
)


class TestPathLoss:
    def test_friis_at_known_point(self):
        # 2.4 GHz at 1 m is ~40 dB.
        loss = free_space_loss_db(1.0, 2.472e9)
        assert 39.0 < loss < 41.0

    def test_monotone_in_distance(self):
        cfg = RadioConfig()
        losses = [path_loss_db(d, cfg) for d in (0.5, 1.0, 2.0, 4.0)]
        assert all(a < b for a, b in zip(losses, losses[1:]))

    def test_exponent_slope(self):
        cfg = RadioConfig(path_loss_exponent=2.0)
        # Doubling distance adds 6 dB at exponent 2.
        delta = path_loss_db(2.0, cfg) - path_loss_db(1.0, cfg)
        assert abs(delta - 6.02) < 0.1

    def test_distance_clamped(self):
        cfg = RadioConfig(min_distance_m=0.1)
        assert path_loss_db(0.0, cfg) == path_loss_db(0.1, cfg)

    def test_received_power(self):
        cfg = RadioConfig(tx_power_dbm=3.0)
        assert received_power_dbm(3.0, 1.0, cfg) == pytest.approx(
            3.0 - cfg.reference_loss_db()
        )


class TestSinr:
    def test_no_interference_equals_snr(self):
        assert sinr_db(-50.0, [], -95.0) == pytest.approx(45.0)

    def test_interference_reduces_sinr(self):
        clean = sinr_db(-50.0, [], -95.0)
        jammed = sinr_db(-50.0, [-55.0], -95.0)
        assert jammed < clean
        # Interference 40 dB above noise dominates: SINR ~ signal - interference.
        assert jammed == pytest.approx(5.0, abs=0.1)

    def test_multiple_interferers_sum(self):
        one = sinr_db(-50.0, [-60.0], -95.0)
        two = sinr_db(-50.0, [-60.0, -60.0], -95.0)
        assert two == pytest.approx(one - 3.0, abs=0.1)


class TestPer:
    def test_ber_decreasing(self):
        gammas = [0.1, 0.5, 1.0, 5.0]
        bers = [ber_dbpsk(g, 11.0) for g in gammas]
        assert all(a > b for a, b in zip(bers, bers[1:]))

    def test_per_monotone_in_sinr(self):
        pers = [per_from_sinr_db(s, 800) for s in (-10, -5, 0, 5, 10)]
        assert all(a >= b for a, b in zip(pers, pers[1:]))

    def test_per_extremes(self):
        assert per_from_sinr_db(-20, 800) == pytest.approx(1.0)
        assert per_from_sinr_db(30, 800) == pytest.approx(0.0, abs=1e-9)

    def test_per_grows_with_packet_size(self):
        assert per_from_sinr_db(0, 8000) > per_from_sinr_db(0, 80)

    def test_waterfall_position(self):
        # With PG=11, the 50% point sits around -1..0 dB for 800 bits.
        mid = per_from_sinr_db(-0.5, 800)
        assert 0.01 < mid < 0.99


class TestFadingSampler:
    def test_loss_rate_between_extremes(self):
        cfg = RadioConfig(shadowing_sigma_db=0.0)
        rng = np.random.default_rng(5)
        high = np.mean(
            [sample_packet_loss(-10.0, 800, cfg, rng) for _ in range(2000)]
        )
        low = np.mean(
            [sample_packet_loss(20.0, 800, cfg, rng) for _ in range(2000)]
        )
        assert high > 0.85
        assert low < 0.15

    def test_rayleigh_outage_approximation(self):
        """At mean SINR gamma_bar, Rayleigh outage ~ 1 - exp(-gamma_th /
        gamma_bar); the sampled loss must sit in that regime."""
        cfg = RadioConfig(shadowing_sigma_db=0.0)
        rng = np.random.default_rng(11)
        mean_sinr_db = 6.0
        samples = [
            sample_packet_loss(mean_sinr_db, 800, cfg, rng) for _ in range(4000)
        ]
        measured = np.mean(samples)
        gamma_bar = 10 ** (mean_sinr_db / 10)
        approx = 1 - math.exp(-1.0 / gamma_bar)  # threshold ~ 0 dB
        assert abs(measured - approx) < 0.12

    def test_no_fading_is_deterministic_at_extremes(self):
        cfg = RadioConfig(rayleigh_fading=False, shadowing_sigma_db=0.0)
        rng = np.random.default_rng(1)
        assert not any(
            sample_packet_loss(20.0, 800, cfg, rng) for _ in range(100)
        )
        assert all(
            sample_packet_loss(-20.0, 800, cfg, rng) for _ in range(100)
        )


class TestRadioConfig:
    def test_defaults_match_paper(self):
        cfg = RadioConfig()
        assert cfg.frequency_hz == pytest.approx(2.472e9)
        assert cfg.tx_power_dbm == 3.0
        assert cfg.bitrate_bps == 1e6
