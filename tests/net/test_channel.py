"""Erasure channel models: rates, burstiness, scripting."""

import numpy as np
import pytest

from repro.net.channel import (
    DeterministicChannel,
    GilbertElliottChannel,
    IIDErasureChannel,
    PerfectChannel,
)


class TestIID:
    def test_rate_matches_p(self, rng):
        ch = IIDErasureChannel(0.3)
        losses = ch.sample(20_000, rng)
        assert abs(losses.mean() - 0.3) < 0.02

    def test_extremes(self, rng):
        assert not IIDErasureChannel(0.0).erased(rng)
        assert IIDErasureChannel(1.0).erased(rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            IIDErasureChannel(-0.1)
        with pytest.raises(ValueError):
            IIDErasureChannel(1.1)

    def test_perfect_channel(self, rng):
        ch = PerfectChannel()
        assert not ch.sample(100, rng).any()

    def test_repr(self):
        assert "0.3" in repr(IIDErasureChannel(0.3))
        assert "Perfect" in repr(PerfectChannel())


class TestGilbertElliott:
    def test_steady_state_formula(self):
        ch = GilbertElliottChannel(p_g2b=0.1, p_b2g=0.3, p_good=0.0, p_bad=1.0)
        expected = 0.1 / (0.1 + 0.3)
        assert abs(ch.steady_state_loss() - expected) < 1e-12

    def test_empirical_rate_matches_steady_state(self, rng):
        ch = GilbertElliottChannel(p_g2b=0.05, p_b2g=0.2)
        losses = ch.sample(50_000, rng)
        assert abs(losses.mean() - ch.steady_state_loss()) < 0.02

    def test_burstiness(self, rng):
        """Losses must cluster: consecutive-loss probability well above
        the i.i.d. baseline for the same loss rate."""
        ch = GilbertElliottChannel(p_g2b=0.02, p_b2g=0.2)
        losses = ch.sample(50_000, rng)
        rate = losses.mean()
        joint = np.mean(losses[:-1] & losses[1:])
        assert joint > 2.0 * rate * rate

    def test_reset(self, rng):
        ch = GilbertElliottChannel(p_g2b=1.0, p_b2g=0.0)
        ch.erased(rng)
        assert ch._bad
        ch.reset()
        assert not ch._bad

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_g2b=0.0, p_b2g=0.0)
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_g2b=1.2, p_b2g=0.1)

    def test_repr(self):
        assert "g2b" in repr(GilbertElliottChannel(0.1, 0.2))


class TestDeterministic:
    def test_pattern_cycles(self, rng):
        ch = DeterministicChannel([True, False, False])
        observed = [ch.erased(rng) for _ in range(6)]
        assert observed == [True, False, False, True, False, False]

    def test_reset(self, rng):
        ch = DeterministicChannel([True, False])
        ch.erased(rng)
        ch.reset()
        assert ch.erased(rng) is True

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            DeterministicChannel([])

    def test_repr(self):
        assert "len=2" in repr(DeterministicChannel([True, False]))
