"""Reliable broadcast: completion, cost accounting, backoff."""

import numpy as np
import pytest

from repro.net.medium import BroadcastMedium, IIDLossModel, MatrixLossModel
from repro.net.node import Terminal
from repro.net.packet import Packet, PacketKind
from repro.net.reliable import (
    ACK_BODY_BYTES,
    ReliableBroadcastError,
    reliable_broadcast,
)


def control_packet(src="T0"):
    return Packet(kind=PacketKind.DESCRIPTOR, src=src, control_bytes=40)


class TestCompletion:
    def test_lossless_single_attempt(self, make_medium):
        medium, names, _ = make_medium(loss=0.0)
        res = reliable_broadcast(medium, "T0", control_packet(), ["T1", "T2"])
        assert res.attempts == 1
        assert res.satisfied == frozenset({"T1", "T2"})

    def test_lossy_eventually_completes(self, make_medium):
        medium, names, _ = make_medium(loss=0.6, seed=11)
        res = reliable_broadcast(medium, "T0", control_packet(), ["T1", "T2"])
        assert res.attempts >= 1
        union = set()
        for got in res.receivers_per_attempt:
            union |= got
        assert {"T1", "T2"} <= union

    def test_source_excluded_from_targets(self, make_medium):
        medium, names, _ = make_medium(loss=0.0)
        res = reliable_broadcast(medium, "T0", control_packet(), ["T0", "T1"])
        assert res.satisfied == frozenset({"T1"})

    def test_unreachable_target_raises(self, rng):
        nodes = [Terminal(name="a"), Terminal(name="b")]
        medium = BroadcastMedium(
            nodes, MatrixLossModel({("a", "b"): 1.0}, default=0.0), rng
        )
        with pytest.raises(ReliableBroadcastError):
            reliable_broadcast(
                medium, "a", control_packet("a"), ["b"], max_attempts=5
            )

    def test_empty_targets_no_transmissions(self, make_medium):
        medium, names, _ = make_medium()
        res = reliable_broadcast(medium, "T0", control_packet(), [])
        assert res.attempts == 0
        assert medium.ledger.total_attempts == 0


class TestAccounting:
    def test_every_attempt_charged(self, make_medium):
        medium, names, _ = make_medium(loss=0.5, seed=13)
        pkt = control_packet()
        res = reliable_broadcast(medium, "T0", pkt, ["T1", "T2"])
        by_kind = medium.ledger.bits_by_kind()
        attempts_bits = by_kind[PacketKind.DESCRIPTOR]
        assert attempts_bits >= res.attempts * pkt.wire_bits

    def test_ack_per_satisfied_target(self, make_medium):
        medium, names, _ = make_medium(loss=0.0)
        reliable_broadcast(medium, "T0", control_packet(), ["T1", "T2"])
        acks = [e for e in medium.ledger.entries if e.kind == PacketKind.ACK]
        assert len(acks) == 2
        for e in acks:
            assert e.bits >= ACK_BODY_BYTES * 8

    def test_eavesdropper_can_overhear_attempts(self, make_medium):
        medium, names, _ = make_medium(loss=0.3, seed=5)
        res = reliable_broadcast(medium, "T0", control_packet(), ["T1", "T2"])
        overheard = any("eve" in got for got in res.receivers_per_attempt)
        # With loss 0.3 and >= 1 attempt, Eve usually hears; the field
        # exists so the session can track her honestly either way.
        assert isinstance(overheard, bool)


class TestBackoff:
    def test_backoff_advances_clock_between_retries(self, rng):
        nodes = [Terminal(name="a"), Terminal(name="b")]

        class FailFirstN(IIDLossModel):
            def __init__(self, n):
                super().__init__(0.0)
                self.n = n
                self.calls = 0

            def lost_at(self, src, position, dst, packet, slot, rng):
                self.calls += 1
                return self.calls <= self.n

        medium = BroadcastMedium(nodes, FailFirstN(2), rng)
        res = reliable_broadcast(
            medium, "a", control_packet("a"), ["b"], backoff_slots=4
        )
        assert res.attempts == 3
        # 3 transmissions advance 3 slots; 2 backoffs add 8 more.
        assert medium.time == 3 + 8

    def test_no_backoff_by_default(self, make_medium):
        medium, names, _ = make_medium(loss=0.0)
        reliable_broadcast(medium, "T0", control_packet(), ["T1"])
        assert medium.time == 1

    def test_explicit_slot_schedule(self, make_medium):
        medium, names, _ = make_medium(loss=0.0)
        slots_used = []
        reliable_broadcast(
            medium,
            "T0",
            control_packet(),
            ["T1"],
            slot_of_attempt=lambda k: slots_used.append(k) or 42,
        )
        assert slots_used == [0]
        assert medium.time == 0  # explicit slots freeze the clock
