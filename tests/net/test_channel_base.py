"""Base-class behaviour and remaining channel paths."""

import numpy as np

from repro.net.channel import DeterministicChannel, GilbertElliottChannel


class TestSampleDefaultPath:
    def test_deterministic_sample_uses_erased_loop(self, rng):
        ch = DeterministicChannel([True, False, True])
        out = ch.sample(6, rng)
        assert out.tolist() == [True, False, True, True, False, True]

    def test_ge_sample_shape_and_dtype(self, rng):
        ch = GilbertElliottChannel(0.1, 0.3)
        out = ch.sample(100, rng)
        assert out.shape == (100,)
        assert out.dtype == bool

    def test_base_reset_noop(self, rng):
        ch = GilbertElliottChannel(0.1, 0.3)
        # reset is overridden; the base no-op is exercised through
        # DeterministicChannel's parent call path implicitly — verify
        # idempotence here.
        ch.reset()
        ch.reset()
        assert not ch._bad
