"""Broadcast medium: delivery semantics, clock, ledger, multi-antenna."""

import numpy as np
import pytest

from repro.net.channel import GilbertElliottChannel
from repro.net.medium import (
    BroadcastMedium,
    ChannelLossModel,
    IIDLossModel,
    MatrixLossModel,
)
from repro.net.node import Eavesdropper, Node, Terminal
from repro.net.packet import Packet, PacketKind


def data_packet(src="T0", nbytes=10):
    return Packet(
        kind=PacketKind.X_DATA, src=src, payload=np.zeros(nbytes, dtype=np.uint8)
    )


class TestTransmit:
    def test_source_never_receives_itself(self, make_medium):
        medium, names, _ = make_medium(loss=0.0)
        got = medium.transmit("T0", data_packet())
        assert "T0" not in got
        assert got == {"T1", "T2", "eve"}

    def test_full_loss_nobody_receives(self, make_medium):
        medium, names, _ = make_medium(loss=1.0)
        assert medium.transmit("T0", data_packet()) == set()

    def test_unknown_transmitter(self, make_medium):
        medium, _, _ = make_medium()
        with pytest.raises(KeyError):
            medium.transmit("ghost", data_packet())

    def test_duplicate_names_rejected(self, rng):
        with pytest.raises(ValueError):
            BroadcastMedium(
                [Terminal(name="a"), Terminal(name="a")], IIDLossModel(0), rng
            )

    def test_loss_rate_statistics(self, make_medium):
        medium, _, _ = make_medium(loss=0.3, seed=3)
        hits = sum(
            1 for _ in range(3000) if "T1" in medium.transmit("T0", data_packet())
        )
        assert abs(hits / 3000 - 0.7) < 0.03

    def test_per_receiver_independence(self, make_medium):
        medium, _, _ = make_medium(loss=0.5, seed=9)
        both = t1 = t2 = 0
        for _ in range(4000):
            got = medium.transmit("T0", data_packet())
            t1 += "T1" in got
            t2 += "T2" in got
            both += "T1" in got and "T2" in got
        # Independence: P(both) ~ P(T1) P(T2).
        assert abs(both / 4000 - (t1 / 4000) * (t2 / 4000)) < 0.03


class TestClock:
    def test_clock_advances_per_transmit(self, make_medium):
        medium, _, _ = make_medium()
        assert medium.time == 0
        medium.transmit("T0", data_packet())
        medium.transmit("T0", data_packet())
        assert medium.time == 2

    def test_explicit_slot_freezes_clock(self, make_medium):
        medium, _, _ = make_medium()
        medium.transmit("T0", data_packet(), slot=5)
        assert medium.time == 0

    def test_advance(self, make_medium):
        medium, _, _ = make_medium()
        medium.advance(7)
        assert medium.time == 7
        with pytest.raises(ValueError):
            medium.advance(-1)


class TestLedger:
    def test_charge_per_transmission(self, make_medium):
        medium, _, _ = make_medium()
        pkt = data_packet()
        medium.transmit("T0", pkt)
        medium.transmit("T0", pkt)
        assert medium.ledger.total_attempts == 2

    def test_no_charge_flag(self, make_medium):
        medium, _, _ = make_medium()
        medium.transmit("T0", data_packet(), charge=False)
        assert medium.ledger.total_attempts == 0


class TestLossModels:
    def test_matrix_model_per_link(self, rng):
        nodes = [Terminal(name="a"), Terminal(name="b"), Terminal(name="c")]
        model = MatrixLossModel({("a", "b"): 1.0}, default=0.0)
        medium = BroadcastMedium(nodes, model, rng)
        got = medium.transmit("a", data_packet("a"))
        assert got == {"c"}

    def test_matrix_model_validation(self):
        with pytest.raises(ValueError):
            MatrixLossModel({("a", "b"): 1.5})

    def test_channel_model_uses_stateful_channels(self, rng):
        nodes = [Terminal(name="a"), Terminal(name="b")]
        ch = GilbertElliottChannel(p_g2b=1.0, p_b2g=0.0, p_good=0.0, p_bad=1.0)
        medium = BroadcastMedium(nodes, ChannelLossModel({("a", "b"): ch}), rng)
        first = medium.transmit("a", data_packet("a"))
        second = medium.transmit("a", data_packet("a"))
        # Chain jumps to bad immediately and stays: both lost.
        assert first == set() and second == set()

    def test_channel_model_default_factory(self, rng):
        nodes = [Terminal(name="a"), Terminal(name="b")]
        medium = BroadcastMedium(
            nodes,
            ChannelLossModel({}, default_factory=lambda: GilbertElliottChannel(1.0, 0.0)),
            rng,
        )
        medium.transmit("a", data_packet("a"))
        assert ("a", "b") in medium.loss_model.channels

    def test_channel_model_no_default_delivers(self, rng):
        nodes = [Terminal(name="a"), Terminal(name="b")]
        medium = BroadcastMedium(nodes, ChannelLossModel({}), rng)
        assert medium.transmit("a", data_packet("a")) == {"b"}


class TestMultiAntenna:
    def test_any_antenna_suffices(self, rng):
        # Eve's second antenna has a perfect link while the first is dead:
        # position-keyed loss via a custom model.
        class PositionLossModel(IIDLossModel):
            def __init__(self):
                super().__init__(0.0)

            def lost_at(self, src, position, dst, packet, slot, rng):
                return position[0] < 5.0  # only the far antenna receives

        eve = Eavesdropper(name="eve", position=(0.0, 0.0), extra_antennas=[(10.0, 0.0)])
        nodes = [Terminal(name="a", position=(1.0, 1.0)), eve]
        medium = BroadcastMedium(nodes, PositionLossModel(), rng)
        assert "eve" in medium.transmit("a", data_packet("a"))

    def test_all_antennas_dead_means_loss(self, rng):
        eve = Eavesdropper(name="eve", extra_antennas=[(1.0, 1.0)])
        nodes = [Terminal(name="a"), eve]
        medium = BroadcastMedium(nodes, IIDLossModel(1.0), rng)
        assert medium.transmit("a", data_packet("a")) == set()


class TestDiagnostics:
    def test_delivery_probability_estimate(self, make_medium):
        medium, _, _ = make_medium(loss=0.25, seed=4)
        est = medium.delivery_probability_estimate(
            "T0", "T1", data_packet(), slot=0, trials=2000
        )
        assert abs(est - 0.75) < 0.05

    def test_node_lookup(self, make_medium):
        medium, _, _ = make_medium()
        assert isinstance(medium.node("T0"), Node)
        with pytest.raises(KeyError):
            medium.node("nope")
