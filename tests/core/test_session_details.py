"""Session plumbing details: estimator context, config propagation."""

import numpy as np
import pytest

from repro.core.estimator import EveErasureEstimator, OracleEstimator
from repro.core.session import ProtocolSession, SessionConfig
from repro.net.medium import BroadcastMedium, IIDLossModel
from repro.net.node import Eavesdropper, Terminal


class RecordingEstimator(EveErasureEstimator):
    """Captures the context and queries the session sends it."""

    def __init__(self):
        self.contexts = []
        self.queries = []

    def begin_round(self, context):
        super().begin_round(context)
        self.contexts.append(context)

    def budget(self, ids, exclude=frozenset()):
        self.queries.append((tuple(ids), exclude))
        return 0.3 * len(ids)


@pytest.fixture
def session_parts(make_medium):
    medium, names, rng = make_medium(3, loss=0.3, seed=50)
    estimator = RecordingEstimator()
    cfg = SessionConfig(n_x_packets=30, payload_bytes=8)
    session = ProtocolSession(medium, names, estimator, rng, config=cfg)
    return medium, names, estimator, session


class TestEstimatorContext:
    def test_context_carries_everything(self, session_parts):
        medium, names, estimator, session = session_parts
        session.run_round("T0", round_id=3)
        assert len(estimator.contexts) == 1
        ctx = estimator.contexts[0]
        assert ctx.leader == "T0"
        assert set(ctx.reports) == {"T1", "T2"}
        assert ctx.n_packets == 30
        assert ctx.eve_received is not None
        assert ctx.x_slots is not None and len(ctx.x_slots) == 30

    def test_x_slots_are_transmission_times(self, session_parts):
        medium, names, estimator, session = session_parts
        session.run_round("T0")
        slots = estimator.contexts[0].x_slots
        values = [slots[i] for i in range(30)]
        # Strictly increasing: one slot per transmission.
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_exclude_matches_block_subsets(self, session_parts):
        medium, names, estimator, session = session_parts
        result = session.run_round("T0")
        for b in result.allocation.blocks:
            # Every realised block was budgeted with its own subset
            # excluded at least once.
            assert any(b.subset <= ex for _, ex in estimator.queries)


class TestConfigPropagation:
    def test_max_subset_size_limits_blocks(self, make_medium):
        medium, names, rng = make_medium(4, loss=0.35, seed=51)
        cfg = SessionConfig(
            n_x_packets=40, payload_bytes=8, max_subset_size=1
        )
        session = ProtocolSession(
            medium, names, OracleEstimator(), rng, config=cfg
        )
        result = session.run_round("T0")
        assert all(len(b.subset) == 1 for b in result.allocation.blocks)

    def test_round_ids_isolate_state(self, make_medium):
        medium, names, rng = make_medium(3, loss=0.3, seed=52)
        session = ProtocolSession(
            medium, names, OracleEstimator(), rng,
            config=SessionConfig(n_x_packets=20, payload_bytes=8),
        )
        r0 = session.run_round("T0", round_id=0)
        r1 = session.run_round("T0", round_id=1)
        # Distinct rounds keep distinct logs on the terminals.
        t1 = medium.node("T1")
        assert t1.received_ids(0) == r0.reports["T1"]
        assert t1.received_ids(1) == r1.reports["T1"]

    def test_rerun_same_round_id_resets_log(self, make_medium):
        medium, names, rng = make_medium(3, loss=0.3, seed=53)
        session = ProtocolSession(
            medium, names, OracleEstimator(), rng,
            config=SessionConfig(n_x_packets=20, payload_bytes=8),
        )
        session.run_round("T0", round_id=0)
        result = session.run_round("T0", round_id=0)
        # The second run's reports reflect only its own transmissions.
        assert all(
            max(ids, default=0) < 20 for ids in result.reports.values()
        )
        # And the round completed (agreement verified inside).
        assert result.leakage.perfect
