"""Secret containers, the key pool, and control-message sizing."""

import numpy as np
import pytest

from repro.coding.privacy import build_phase2_matrices, plan_y_allocation
from repro.core.messages import (
    BlockDescriptorSet,
    Phase2Descriptor,
    ReceptionReport,
    z_content_overhead_bytes,
)
from repro.core.secret import GroupSecret, SecretPool


class TestGroupSecret:
    def test_sizes(self):
        s = GroupSecret(np.zeros((3, 10), dtype=np.uint8))
        assert s.n_packets == 3
        assert s.n_bits == 240
        assert len(s.to_bytes()) == 30

    def test_equality_and_hash(self, rng):
        data = rng.integers(0, 256, (2, 5), dtype=np.uint8)
        assert GroupSecret(data) == GroupSecret(data.copy())
        assert hash(GroupSecret(data)) == hash(GroupSecret(data.copy()))
        other = data.copy()
        other[0, 0] ^= 1
        assert GroupSecret(data) != GroupSecret(other)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            GroupSecret(np.zeros(5, dtype=np.uint8))


class TestSecretPool:
    def test_deposit_and_consume(self):
        pool = SecretPool()
        pool.deposit(GroupSecret(np.arange(12, dtype=np.uint8).reshape(3, 4)))
        assert pool.available_bytes == 12
        out = pool.consume(5)
        assert out == bytes(range(5))
        assert pool.available_bytes == 7
        assert pool.consumed_bytes == 5

    def test_consume_is_one_time(self):
        pool = SecretPool()
        pool.deposit_raw(b"abcdef")
        first = pool.consume(3)
        second = pool.consume(3)
        assert first == b"abc" and second == b"def"

    def test_exhaustion_raises(self):
        pool = SecretPool()
        pool.deposit_raw(b"ab")
        with pytest.raises(LookupError):
            pool.consume(3)

    def test_negative_amount(self):
        with pytest.raises(ValueError):
            SecretPool().consume(-1)

    def test_one_time_pad_roundtrip(self):
        a = SecretPool()
        b = SecretPool()
        a.deposit_raw(bytes(range(64)))
        b.deposit_raw(bytes(range(64)))
        msg = b"attack at dawn"
        ct = a.one_time_pad(msg)
        assert ct != msg
        assert b.one_time_pad(ct) == msg


class TestMessageSizes:
    def test_reception_report_bitmap(self):
        r = ReceptionReport(round_id=0, terminal="T1",
                            received_ids=frozenset({1, 2}), n_packets=90)
        # 2 + 2 + ceil(90/8) = 16
        assert r.body_bytes() == 16

    def test_block_descriptor_grows_with_support(self, rng):
        reports = {1: set(range(30)), 2: set(range(10, 40))}

        def budget(ids, exclude=frozenset()):
            return 0.4 * len(ids)

        alloc = plan_y_allocation(reports, budget, 40)
        desc = BlockDescriptorSet.from_allocation(0, alloc)
        expected = 2
        for b in alloc.blocks:
            expected += 7 + 2 * len(b.support)
        assert desc.body_bytes() == expected

    def test_phase2_descriptor(self, rng):
        reports = {1: set(range(30)), 2: set(range(10, 40))}

        def budget(ids, exclude=frozenset()):
            return 0.4 * len(ids)

        alloc = plan_y_allocation(reports, budget, 40)
        plan = build_phase2_matrices(alloc)
        desc = Phase2Descriptor.from_plan(0, plan)
        assert desc.body_bytes() == 2 + 4 * len(plan.chunks)
        assert sum(desc.chunk_sizes) == alloc.total_rows

    def test_z_overhead_constant(self):
        assert z_content_overhead_bytes() == 4
