"""RefreshingGroup: the continuous key-refresh lifecycle."""

import numpy as np
import pytest

from repro.core.estimator import FixedFractionEstimator, OracleEstimator
from repro.core.refresh import RefreshingGroup
from repro.core.session import SessionConfig
from repro.net.medium import BroadcastMedium, IIDLossModel
from repro.net.node import Eavesdropper, Terminal

CFG = SessionConfig(n_x_packets=40, payload_bytes=16)


def make_group(seed=5, estimator=None, bootstrap=None, loss=0.4,
               minimum_reliability=1.0):
    rng = np.random.default_rng(seed)
    names = ["a", "b", "c"]
    nodes = [Terminal(name=n) for n in names] + [Eavesdropper(name="eve")]
    medium = BroadcastMedium(nodes, IIDLossModel(loss), rng)
    return RefreshingGroup(
        medium=medium,
        terminal_names=names,
        estimator=estimator or OracleEstimator(),
        rng=rng,
        config=CFG,
        bootstrap=bootstrap,
        minimum_reliability=minimum_reliability,
    )


class TestEpochs:
    def test_epoch_grows_pool(self):
        group = make_group()
        before = group.pool.available_bytes
        report = group.refresh_epoch()
        assert report.secret_bits > 0
        assert group.pool.available_bytes == before + report.secret_bits // 8
        assert report.pool_bytes_after == group.pool.available_bytes

    def test_epoch_numbering_and_history(self):
        group = make_group()
        r0 = group.refresh_epoch()
        r1 = group.refresh_epoch()
        assert (r0.epoch, r1.epoch) == (0, 1)
        assert group.history == [r0, r1]

    def test_leaky_epochs_discarded(self):
        """Secrets below the reliability floor never enter the pool."""
        # Eve loses nothing: oracle certifies zero, so secrets are empty;
        # instead force leakage with an over-promising estimator.
        group = make_group(
            estimator=FixedFractionEstimator(0.9),  # wildly optimistic
            minimum_reliability=1.0,
        )
        report = group.refresh_epoch()
        if report.reliability < 1.0:
            assert report.secret_bits == 0
            assert group.pool.available_bytes == 0

    def test_ensure_bytes(self):
        group = make_group()
        group.ensure_bytes(200)
        assert group.pool.available_bytes >= 200

    def test_ensure_bytes_gives_up(self):
        group = make_group(estimator=FixedFractionEstimator(0.0))
        with pytest.raises(RuntimeError):
            group.ensure_bytes(1, max_epochs=2)


class TestConsumption:
    def test_encrypt_decrypt_roundtrip_between_peers(self):
        group = make_group()
        group.ensure_bytes(64)
        peer_pool = group.peer_view()
        message = b"rotate the meeting point"
        ciphertext = group.encrypt(message)
        assert ciphertext != message
        assert peer_pool.one_time_pad(ciphertext) == message

    def test_pads_never_reused(self):
        group = make_group()
        group.ensure_bytes(64)
        c1 = group.encrypt(b"same message")
        c2 = group.encrypt(b"same message")
        assert c1 != c2  # different pad bytes each time

    def test_authentication_lifecycle(self):
        boot = bytes(range(16))
        group = make_group(bootstrap=boot)
        verifier = make_group(bootstrap=boot, seed=5)
        tag = group.authenticate(b"hello")
        assert verifier.verify_next(b"hello", tag)
        # After a refresh both channels grow in lockstep.
        group.refresh_epoch()
        assert group.channel.messages_remaining > 1

    def test_authentication_requires_bootstrap(self):
        group = make_group()
        with pytest.raises(RuntimeError):
            group.authenticate(b"x")
        with pytest.raises(RuntimeError):
            group.verify_next(b"x", b"0000")
