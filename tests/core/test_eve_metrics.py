"""Eve's leakage accounting and the paper's two metrics."""

import numpy as np
import pytest

from repro.coding.privacy import build_phase2_matrices, plan_y_allocation
from repro.core.eve import LeakageReport, round_leakage, stacked_secret_maps
from repro.core.metrics import ExperimentMetrics, efficiency, reliability
from repro.net.packet import Packet, PacketKind
from repro.net.trace import TransmissionLedger


class TestLeakageReport:
    def test_reliability_perfect(self):
        r = LeakageReport(secret_dims=10, hidden_dims=10, eve_missed=5)
        assert r.reliability == 1.0 and r.perfect

    def test_reliability_partial(self):
        r = LeakageReport(secret_dims=5, hidden_dims=1, eve_missed=5)
        assert r.reliability == pytest.approx(0.2)
        assert r.leaked_dims == 4
        assert not r.perfect

    def test_empty_secret_convention(self):
        assert LeakageReport(0, 0, 3).reliability == 1.0


class TestRoundLeakage:
    def _setup(self, rng, eve_received):
        n = 30
        reports = {1: frozenset(range(0, 20)), 2: frozenset(range(10, 30))}
        eve_missed = set(range(n)) - set(eve_received)

        def oracle(ids, exclude=frozenset()):
            return float(sum(1 for i in ids if i in eve_missed))

        alloc = plan_y_allocation(reports, oracle, n)
        plan = build_phase2_matrices(alloc)
        return alloc, plan, n

    def test_eve_sees_all_leaks_all(self, rng):
        alloc, plan, n = self._setup(rng, range(30))
        leakage = round_leakage(alloc, plan, frozenset(range(30)), list(range(n)))
        assert leakage.hidden_dims == 0

    def test_eve_sees_nothing_perfect(self, rng):
        alloc, plan, n = self._setup(rng, [])
        leakage = round_leakage(alloc, plan, frozenset(), list(range(n)))
        if plan.total_secret:
            assert leakage.perfect

    def test_stacked_maps_shapes(self, rng):
        alloc, plan, n = self._setup(rng, range(0, 15))
        z_map, s_map = stacked_secret_maps(alloc, plan, list(range(n)))
        assert z_map.cols == n and s_map.cols == n
        assert z_map.rows == plan.total_public
        assert s_map.rows == plan.total_secret

    def test_leakage_monotone_in_eve_knowledge(self, rng):
        """Giving Eve strictly more packets can never increase hidden
        dimensions."""
        alloc, plan, n = self._setup(rng, range(0, 10))
        small = round_leakage(alloc, plan, frozenset(range(0, 10)), list(range(n)))
        big = round_leakage(alloc, plan, frozenset(range(0, 20)), list(range(n)))
        assert big.hidden_dims <= small.hidden_dims


class TestMetrics:
    def test_efficiency_basic(self):
        assert efficiency(50, 1000) == 0.05
        assert efficiency(0, 0) == 0.0
        with pytest.raises(ValueError):
            efficiency(-1, 10)

    def test_reliability_weighted_aggregation(self):
        reports = [
            LeakageReport(secret_dims=10, hidden_dims=10, eve_missed=1),
            LeakageReport(secret_dims=10, hidden_dims=0, eve_missed=1),
        ]
        assert reliability(reports) == pytest.approx(0.5)

    def test_reliability_empty(self):
        assert reliability([]) == 1.0
        assert reliability([LeakageReport(0, 0, 0)]) == 1.0

    def test_experiment_metrics_compute(self):
        ledger = TransmissionLedger(count_plcp=False)
        ledger.charge(
            Packet(kind=PacketKind.X_DATA, src="a",
                   payload=np.zeros(125, dtype=np.uint8), header_bytes=0)
        )
        reports = [LeakageReport(secret_dims=5, hidden_dims=5, eve_missed=2)]
        m = ExperimentMetrics.compute(reports, secret_bits=100, ledger=ledger)
        assert m.transmitted_bits == 1000
        assert m.efficiency == pytest.approx(0.1)
        assert m.reliability == 1.0
        assert m.secret_kbps_at == pytest.approx(100.0)
