"""Protocol sessions: agreement, accounting, worst cases, rotation."""

import numpy as np
import pytest

from repro.coding.reconcile import assemble_secret, decode_y_from_x, recover_missing_y
from repro.core.estimator import (
    FixedFractionEstimator,
    LeaveOneOutEstimator,
    OracleEstimator,
)
from repro.core.rotation import run_experiment
from repro.core.session import ProtocolSession, SessionConfig
from repro.gf.linalg import GFMatrix
from repro.net.medium import BroadcastMedium, IIDLossModel, MatrixLossModel
from repro.net.node import Eavesdropper, Terminal
from repro.net.packet import PacketKind


CFG = SessionConfig(n_x_packets=50, payload_bytes=24)


class TestSessionConstruction:
    def test_needs_two_terminals(self, make_medium):
        medium, names, rng = make_medium(1)
        with pytest.raises(ValueError):
            ProtocolSession(medium, ["T0"], OracleEstimator(), rng)

    def test_terminal_type_check(self, rng):
        nodes = [Terminal(name="a"), Eavesdropper(name="b")]
        medium = BroadcastMedium(nodes, IIDLossModel(0), rng)
        with pytest.raises(TypeError):
            ProtocolSession(medium, ["a", "b"], OracleEstimator(), rng)

    def test_eve_type_check(self, rng):
        nodes = [Terminal(name="a"), Terminal(name="b"), Terminal(name="eve")]
        medium = BroadcastMedium(nodes, IIDLossModel(0), rng)
        with pytest.raises(TypeError):
            ProtocolSession(medium, ["a", "b"], OracleEstimator(), rng)

    def test_missing_eve_is_allowed(self, make_medium):
        medium, names, rng = make_medium(3, with_eve=False)
        session = ProtocolSession(
            medium, names, FixedFractionEstimator(0.3), rng, config=CFG
        )
        assert session.eve_name is None
        result = session.run_round("T0")
        assert result.leakage.reliability == 1.0  # vacuous Eve misses all

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(n_x_packets=0)
        with pytest.raises(ValueError):
            SessionConfig(payload_bytes=0)

    def test_unknown_leader_rejected(self, make_medium):
        medium, names, rng = make_medium(3)
        session = ProtocolSession(medium, names, OracleEstimator(), rng, config=CFG)
        with pytest.raises(ValueError):
            session.run_round("nobody")


class TestRoundOutcomes:
    def test_all_terminals_derive_identical_secret(self, make_medium):
        """Re-derive each terminal's secret from its own receptions and
        the public information only — must equal the leader's."""
        medium, names, rng = make_medium(4, loss=0.4, seed=21)
        session = ProtocolSession(medium, names, OracleEstimator(), rng, config=CFG)
        result = session.run_round("T0", round_id=0)
        for name in names[1:]:
            node = medium.node(name)
            known = decode_y_from_x(
                result.allocation, name, node.received_payloads(0)
            )
            # z-payloads must be recomputed from public info: here we use
            # the leader's plan and y values implicitly via the round's
            # secret equality check inside the session; this asserts the
            # decoded rows count matches M_i.
            assert len(known) == result.allocation.m_i(name)

    def test_oracle_round_is_perfect(self, make_medium):
        medium, names, rng = make_medium(3, loss=0.4, seed=22)
        session = ProtocolSession(medium, names, OracleEstimator(), rng, config=CFG)
        result = session.run_round("T0")
        assert result.leakage.perfect
        assert result.secret.shape[1] == CFG.payload_bytes

    def test_worst_case_eve_hears_everything(self, rng):
        """The paper's worst case: Eve overhears every x-packet a
        terminal received.  With a truthful estimator the secret must
        be empty; nothing to leak means reliability 1 by convention."""
        nodes = [Terminal(name="a"), Terminal(name="b"), Terminal(name="c"),
                 Eavesdropper(name="eve")]
        model = MatrixLossModel(
            {("a", "eve"): 0.0, ("b", "eve"): 0.0, ("c", "eve"): 0.0},
            default=0.3,
        )
        medium = BroadcastMedium(nodes, model, rng)
        session = ProtocolSession(
            medium, ["a", "b", "c"], OracleEstimator(), rng, config=CFG
        )
        result = session.run_round("a")
        assert result.secret_packets == 0
        assert result.leakage.reliability == 1.0  # nothing to leak

    def test_round_reports_match_receptions(self, make_medium):
        medium, names, rng = make_medium(3, loss=0.3, seed=30)
        session = ProtocolSession(medium, names, OracleEstimator(), rng, config=CFG)
        result = session.run_round("T0")
        for name, ids in result.reports.items():
            assert ids == medium.node(name).received_ids(0)

    def test_ledger_contains_every_phase(self, make_medium):
        medium, names, rng = make_medium(3, loss=0.3, seed=31)
        session = ProtocolSession(medium, names, OracleEstimator(), rng, config=CFG)
        result = session.run_round("T0")
        kinds = set(medium.ledger.bits_by_kind())
        assert PacketKind.X_DATA in kinds
        assert PacketKind.FEEDBACK in kinds
        assert PacketKind.DESCRIPTOR in kinds
        assert PacketKind.ACK in kinds
        if result.plan.total_public:
            assert PacketKind.Z_CONTENT in kinds

    def test_secrecy_slack_respected(self, make_medium):
        cfg = SessionConfig(n_x_packets=50, payload_bytes=16, secrecy_slack=2)
        medium, names, rng = make_medium(3, loss=0.4, seed=33)
        session = ProtocolSession(medium, names, OracleEstimator(), rng, config=cfg)
        result = session.run_round("T0")
        assert result.secret_packets <= max(0, result.allocation.min_m_i() - 2)

    def test_deterministic_given_seed(self):
        outcomes = []
        for _ in range(2):
            rng = np.random.default_rng(77)
            nodes = [Terminal(name=f"T{i}") for i in range(3)] + [
                Eavesdropper(name="eve")
            ]
            medium = BroadcastMedium(nodes, IIDLossModel(0.4), rng)
            session = ProtocolSession(
                medium, ["T0", "T1", "T2"], OracleEstimator(), rng, config=CFG
            )
            outcomes.append(session.run_round("T0").secret.tobytes())
        assert outcomes[0] == outcomes[1]


class TestRotation:
    def test_each_terminal_leads_once(self, make_medium):
        medium, names, rng = make_medium(4, loss=0.4, seed=40)
        result = run_experiment(medium, names, OracleEstimator(), rng, config=CFG)
        assert [r.leader for r in result.rounds] == names

    def test_custom_leader_order(self, make_medium):
        medium, names, rng = make_medium(3, loss=0.4, seed=41)
        result = run_experiment(
            medium, names, OracleEstimator(), rng, config=CFG,
            leaders=["T2", "T2"],
        )
        assert [r.leader for r in result.rounds] == ["T2", "T2"]

    def test_group_secret_concatenates_rounds(self, make_medium):
        medium, names, rng = make_medium(3, loss=0.4, seed=42)
        result = run_experiment(medium, names, OracleEstimator(), rng, config=CFG)
        assert result.group_secret.shape[0] == sum(
            r.secret_packets for r in result.rounds
        )
        assert result.secret_bits == result.group_secret.size * 8

    def test_experiment_metrics_consistent(self, make_medium):
        medium, names, rng = make_medium(3, loss=0.4, seed=43)
        result = run_experiment(medium, names, OracleEstimator(), rng, config=CFG)
        assert result.efficiency == pytest.approx(
            result.secret_bits / medium.ledger.total_bits
        )
        assert result.reliability == 1.0

    def test_empty_rounds_give_empty_secret(self, rng):
        """Zero-budget estimator: the protocol runs but agrees nothing."""
        nodes = [Terminal(name="a"), Terminal(name="b"), Eavesdropper(name="eve")]
        medium = BroadcastMedium(nodes, IIDLossModel(0.2), rng)
        result = run_experiment(
            medium, ["a", "b"], FixedFractionEstimator(0.0), rng,
            config=SessionConfig(n_x_packets=10, payload_bytes=8),
        )
        assert result.group_secret.size == 0
        assert result.efficiency == 0.0
        assert result.reliability == 1.0
