"""Estimators: every §3.3 strategy plus the combinators."""

import pytest

from repro.core.estimator import (
    CollusionEstimator,
    CombinedEstimator,
    EveErasureEstimator,
    FixedFractionEstimator,
    LeaveOneOutEstimator,
    NaiveLeaveOneOutEstimator,
    OracleEstimator,
    RoundContext,
)


def ctx(reports, n_packets=20, eve_received=None):
    return RoundContext(
        leader="T0",
        reports=reports,
        n_packets=n_packets,
        eve_received=eve_received,
    )


class TestContext:
    def test_miss_rate(self):
        c = ctx({"T1": set(range(15))}, n_packets=20)
        assert c.miss_rate("T1") == pytest.approx(0.25)

    def test_miss_rate_requires_n_packets(self):
        c = RoundContext(leader="T0", reports={"T1": set()})
        with pytest.raises(ValueError):
            c.miss_rate("T1")

    def test_budget_before_begin_round_raises(self):
        est = OracleEstimator()
        with pytest.raises(RuntimeError):
            est.budget([1, 2])


class TestOracle:
    def test_exact_count(self):
        est = OracleEstimator()
        est.begin_round(ctx({}, eve_received=frozenset({0, 1, 2})))
        assert est.budget([0, 1, 2, 3, 4]) == 2

    def test_requires_ground_truth(self):
        est = OracleEstimator()
        est.begin_round(ctx({}))
        with pytest.raises(RuntimeError):
            est.budget([1])


class TestFixedFraction:
    def test_linear(self):
        est = FixedFractionEstimator(0.25)
        est.begin_round(ctx({}))
        assert est.budget(list(range(8))) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedFractionEstimator(1.5)


class TestLeaveOneOut:
    def test_worst_rate_times_size(self):
        reports = {"T1": set(range(10)), "T2": set(range(15))}  # rates .5, .25
        est = LeaveOneOutEstimator()
        est.begin_round(ctx(reports, n_packets=20))
        assert est.budget(list(range(8))) == pytest.approx(0.25 * 8)

    def test_exclude_removes_evidence(self):
        reports = {"T1": set(range(10)), "T2": set(range(15))}
        est = LeaveOneOutEstimator()
        est.begin_round(ctx(reports, n_packets=20))
        # Excluding the best receiver leaves T1's rate 0.5.
        assert est.budget(list(range(8)), exclude=frozenset({"T2"})) == pytest.approx(4.0)

    def test_no_candidates_certifies_nothing(self):
        est = LeaveOneOutEstimator()
        est.begin_round(ctx({"T1": set()}, n_packets=20))
        assert est.budget([1, 2], exclude=frozenset({"T1"})) == 0.0

    def test_margin_subtracts_rate(self):
        reports = {"T1": set(range(10))}  # rate 0.5
        est = LeaveOneOutEstimator(rate_margin=0.2)
        est.begin_round(ctx(reports, n_packets=20))
        assert est.budget(list(range(10))) == pytest.approx(3.0)

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            LeaveOneOutEstimator(rate_margin=2.0)


class TestNaiveLeaveOneOut:
    def test_counts_directly(self):
        reports = {"T1": {0, 1, 2}, "T2": {0}}
        est = NaiveLeaveOneOutEstimator()
        est.begin_round(ctx(reports, n_packets=5))
        # min(|{3,4}\R1|, |{3,4}\R2|) = min(2, 2) = 2
        assert est.budget([3, 4]) == 2.0
        # ids T1 received: min(0, 1) = 0
        assert est.budget([0, 1]) == 0.0

    def test_margin(self):
        est = NaiveLeaveOneOutEstimator(margin=1)
        est.begin_round(ctx({"T1": set()}, n_packets=5))
        assert est.budget([0, 1]) == 1.0
        with pytest.raises(ValueError):
            NaiveLeaveOneOutEstimator(margin=-1)


class TestCollusion:
    def test_k1_matches_leave_one_out(self):
        reports = {"T1": set(range(10)), "T2": set(range(15))}
        loo = LeaveOneOutEstimator()
        col = CollusionEstimator(k=1)
        context = ctx(reports, n_packets=20)
        loo.begin_round(context)
        col.begin_round(context)
        ids = list(range(12))
        assert col.budget(ids) == pytest.approx(loo.budget(ids))

    def test_k2_uses_unions(self):
        reports = {"T1": set(range(0, 10)), "T2": set(range(5, 15))}
        est = CollusionEstimator(k=2)
        est.begin_round(ctx(reports, n_packets=20))
        # Union covers 0..14: rate 5/20.
        assert est.budget(list(range(20))) == pytest.approx(5.0)

    def test_insufficient_candidates(self):
        est = CollusionEstimator(k=3)
        est.begin_round(ctx({"T1": set(), "T2": set()}, n_packets=10))
        assert est.budget([1, 2]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CollusionEstimator(k=0)
        with pytest.raises(ValueError):
            CollusionEstimator(k=1, rate_margin=-0.1)

    def test_collusion_more_conservative_than_loo(self):
        reports = {
            "T1": set(range(0, 12)),
            "T2": set(range(6, 18)),
            "T3": set(range(3, 9)),
        }
        context = ctx(reports, n_packets=24)
        loo = LeaveOneOutEstimator()
        col = CollusionEstimator(k=2)
        loo.begin_round(context)
        col.begin_round(context)
        ids = list(range(24))
        assert col.budget(ids) <= loo.budget(ids)


class TestCombined:
    def test_takes_minimum(self):
        a = FixedFractionEstimator(0.5)
        b = FixedFractionEstimator(0.2)
        est = CombinedEstimator([a, b])
        est.begin_round(ctx({}))
        assert est.budget(list(range(10))) == pytest.approx(2.0)

    def test_propagates_context(self):
        inner = OracleEstimator()
        est = CombinedEstimator([inner])
        est.begin_round(ctx({}, eve_received=frozenset({1})))
        assert est.budget([1, 2]) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CombinedEstimator([])

    def test_budget_fn_adapter(self):
        est = FixedFractionEstimator(0.5)
        est.begin_round(ctx({}))
        assert est.budget_fn()([1, 2], frozenset()) == pytest.approx(1.0)
