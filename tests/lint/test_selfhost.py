"""Self-hosting: the contract holds over the repository's own tree.

``python -m repro.lint src scripts`` must be clean at HEAD — the rules
encode invariants the repo claims to satisfy *now*, and the committed
baseline is empty (violations were fixed, not grandfathered).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.lint import lint_paths, load_baseline

pytestmark = pytest.mark.lint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def test_src_and_scripts_are_clean_at_head():
    report = lint_paths(["src", "scripts"], root=REPO_ROOT)
    baseline = load_baseline(os.path.join(REPO_ROOT, "lint-baseline.json"))
    new = baseline.new_violations(report.violations)
    assert new == [], "\n".join(v.render() for v in new)
    # Shrink-only also means no stale grandfathered entries linger.
    assert baseline.stale_entries(report.violations) == []
    # Sanity: the walk actually covered the tree.
    assert report.files_checked > 50


def test_committed_baseline_is_empty():
    with open(os.path.join(REPO_ROOT, "lint-baseline.json"), encoding="utf-8") as f:
        document = json.load(f)
    assert document["entries"] == []


def test_cli_exits_zero_at_head():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", "scripts"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 new violations" in proc.stdout


def test_cli_list_rules_describes_all_six():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--list-rules"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0
    for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6"):
        assert rule_id in proc.stdout


def test_cli_reports_violations_with_nonzero_exit(tmp_path):
    tree = tmp_path / "src" / "repro" / "sim"
    tree.mkdir(parents=True)
    (tree / "bad.py").write_text("seed = hash(key)\n", encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src"],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 1
    assert "R1" in proc.stdout
