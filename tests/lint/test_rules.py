"""Fixture tests: every reprolint rule fires on bad code, stays quiet on good.

Each rule gets at least one failing snippet (proving the rule detects
the bug class that motivated it) and a matching clean snippet (proving
the sanctioned idiom passes).  Paths are synthetic but must land inside
the rule's patrol area — the same fnmatch patterns production uses.
"""

import textwrap

import pytest

from repro.lint import RULES, lint_source

pytestmark = pytest.mark.lint


def violations(source, path, rule=None):
    found = lint_source(textwrap.dedent(source), path)
    if rule is not None:
        found = [v for v in found if v.rule == rule]
    return found


def rules_fired(source, path):
    return {v.rule for v in lint_source(textwrap.dedent(source), path)}


class TestR1NoNondeterminism:
    PATH = "src/repro/sim/example.py"

    def test_hash_builtin_fires(self):
        # The PR 2 bug class: hash()-derived seeds vary per process.
        bad = "seed = abs(hash((n, p))) % 2**63\n"
        assert len(violations(bad, self.PATH, "R1")) == 1

    def test_hash_allowed_inside_dunder_hash(self):
        good = """
        class Key:
            def __hash__(self) -> int:
                return hash((self.a, self.b))
        """
        assert violations(good, self.PATH, "R1") == []

    def test_bare_random_module_call_fires(self):
        bad = "import random\nx = random.random()\n"
        assert len(violations(bad, self.PATH, "R1")) == 1

    def test_seeded_random_instance_is_clean(self):
        good = "import random\nrng = random.Random(42)\n"
        assert violations(good, self.PATH, "R1") == []

    def test_unseeded_random_instance_fires(self):
        assert len(violations("import random\nr = random.Random()\n", self.PATH, "R1")) == 1

    def test_legacy_numpy_global_state_fires(self):
        bad = """
        import numpy as np
        np.random.seed(0)
        state = np.random.RandomState(0)
        draw = np.random.random(4)
        """
        assert len(violations(bad, self.PATH, "R1")) == 3

    def test_default_rng_is_clean(self):
        good = "import numpy as np\nrng = np.random.default_rng(seed)\n"
        assert violations(good, self.PATH, "R1") == []

    def test_set_iteration_fires(self):
        # The PR 1 bug class: set order is PYTHONHASHSEED-dependent.
        bad = "out = [f(x) for x in {compute(a), compute(b)}]\n"
        assert len(violations(bad, self.PATH, "R1")) == 1

    def test_list_of_set_fires(self):
        bad = "order = list(set(items))\n"
        assert len(violations(bad, self.PATH, "R1")) == 1

    def test_sorted_set_is_clean(self):
        good = "order = sorted(set(items))\nfor x in sorted({a, b}):\n    f(x)\n"
        assert violations(good, self.PATH, "R1") == []

    def test_unpatrolled_path_is_ignored(self):
        bad = "seed = hash((n, p))\n"
        assert violations(bad, "src/repro/theory/example.py", "R1") == []


class TestR2SansIo:
    PATH = "src/repro/service/engine.py"

    @pytest.mark.parametrize(
        "stmt",
        [
            "import asyncio",
            "import socket",
            "import time",
            "import os",
            "from os import path",
            "from asyncio import sleep",
        ],
    )
    def test_io_import_fires(self, stmt):
        assert len(violations(stmt + "\n", self.PATH, "R2")) == 1

    def test_pure_imports_are_clean(self):
        good = "import hmac\nimport math\nimport numpy as np\nfrom repro.core import session\n"
        assert violations(good, self.PATH, "R2") == []

    def test_core_is_patrolled_but_drivers_are_not(self):
        bad = "import asyncio\n"
        assert len(violations(bad, "src/repro/core/session.py", "R2")) == 1
        # peer.py is a driver: asyncio is its job.
        assert violations(bad, "src/repro/service/peer.py", "R2") == []


class TestR3MonotonicClock:
    PATH = "src/repro/store/anything.py"

    def test_duration_arithmetic_fires(self):
        # The store/queue.py lease-expiry bug class this PR fixed.
        bad = "import time\nage = time.time() - mtime\n"
        assert len(violations(bad, self.PATH, "R3")) == 1

    def test_deadline_comparison_fires(self):
        bad = "import time\nwhile time.time() < deadline:\n    poll()\n"
        assert len(violations(bad, self.PATH, "R3")) == 1

    def test_timestamp_use_is_clean(self):
        good = "import time\nmeta = {'claimed_at': time.time()}\n"
        assert violations(good, self.PATH, "R3") == []

    def test_monotonic_arithmetic_is_clean(self):
        good = "import time\nelapsed = time.monotonic() - t0\nd = time.perf_counter() - t1\n"
        assert violations(good, self.PATH, "R3") == []

    def test_scripts_are_patrolled(self):
        bad = "import time\nprint(time.time() - t0)\n"
        assert len(violations(bad, "scripts/run_something.py", "R3")) == 1


class TestR4DurableWrite:
    PATH = "src/repro/store/example.py"

    def test_naked_rewrite_fires(self):
        bad = """
        def save(path, payload):
            with open(path, "w") as f:
                f.write(payload)
        """
        assert len(violations(bad, self.PATH, "R4")) == 1

    def test_append_without_fsync_fires(self):
        bad = """
        def append(path, line):
            with open(path, "ab") as f:
                f.write(line)
                f.flush()
        """
        assert len(violations(bad, self.PATH, "R4")) == 1

    def test_write_text_fires(self):
        bad = """
        def save(path, payload):
            path.write_text(payload)
        """
        assert len(violations(bad, self.PATH, "R4")) == 1

    def test_temp_fsync_rename_is_clean(self):
        good = """
        import os

        def save(path, tmp, payload):
            with open(tmp, "wb") as f:
                f.write(payload)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        """
        assert violations(good, self.PATH, "R4") == []

    def test_append_fsync_is_clean(self):
        good = """
        import os

        def append(path, line):
            with open(path, "a+b") as f:
                f.write(line)
                f.flush()
                os.fsync(f.fileno())
        """
        assert violations(good, self.PATH, "R4") == []

    def test_reads_are_clean(self):
        good = """
        def load(path):
            with open(path, "r", encoding="utf-8") as f:
                return f.read()
        """
        assert violations(good, self.PATH, "R4") == []

    def test_sqlite_connect_without_full_sync_fires(self):
        # WAL's default synchronous=NORMAL can lose acknowledged
        # COMMITs on power failure — the store promises it can't.
        bad = """
        import sqlite3

        def connect(path):
            conn = sqlite3.connect(path)
            conn.execute("PRAGMA journal_mode=WAL")
            return conn
        """
        assert len(violations(bad, self.PATH, "R4")) == 1

    def test_sqlite_connect_with_full_sync_is_clean(self):
        good = """
        import sqlite3

        def connect(path):
            conn = sqlite3.connect(path)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=FULL")
            return conn
        """
        assert violations(good, self.PATH, "R4") == []

    def test_sqlite_pragma_in_another_function_does_not_excuse(self):
        bad = """
        import sqlite3

        def harden(conn):
            conn.execute("PRAGMA synchronous=FULL")

        def connect(path):
            return sqlite3.connect(path)
        """
        assert len(violations(bad, self.PATH, "R4")) == 1

    def test_only_store_is_patrolled(self):
        bad = "def save(p, d):\n    open(p, 'w').write(d)\n"
        assert violations(bad, "src/repro/analysis/report.py", "R4") == []


class TestR5SeedProvenance:
    PATH = "src/repro/sim/example.py"

    def test_entropy_default_rng_fires(self):
        bad = "import numpy as np\nrng = np.random.default_rng()\n"
        assert len(violations(bad, self.PATH, "R5")) == 1

    def test_entropy_seed_sequence_fires(self):
        bad = "import numpy as np\nss = np.random.SeedSequence()\n"
        assert len(violations(bad, self.PATH, "R5")) == 1

    def test_untraceable_seed_value_fires(self):
        bad = "import numpy as np\nrng = np.random.default_rng(counter + offset)\n"
        assert len(violations(bad, self.PATH, "R5")) == 1

    def test_seed_sequence_spawn_is_clean(self):
        good = """
        import numpy as np
        ss = np.random.SeedSequence(entropy=7, spawn_key=(1, 2))
        rng = np.random.default_rng(ss)
        child = np.random.default_rng(ss.spawn(1)[0])
        """
        assert violations(good, self.PATH, "R5") == []

    def test_named_seed_and_literal_are_clean(self):
        good = """
        import numpy as np
        a = np.random.default_rng(0)
        b = np.random.default_rng(config.seed)
        c = np.random.default_rng([loss_seed, tag])
        """
        assert violations(good, self.PATH, "R5") == []

    def test_typing_generator_annotation_is_ignored(self):
        good = "def f(g: Generator[int, None, None]) -> None:\n    pass\n"
        assert violations(good, self.PATH, "R5") == []


class TestR6TypedErrors:
    PATH = "src/repro/service/example.py"

    def test_bare_except_fires(self):
        bad = """
        def recv():
            try:
                return decode()
            except:
                return None
        """
        assert len(violations(bad, self.PATH, "R6")) == 1

    def test_generic_raise_fires(self):
        bad = "def check(ok):\n    if not ok:\n        raise Exception('bad frame')\n"
        assert len(violations(bad, self.PATH, "R6")) == 1

    def test_runtime_error_raise_fires(self):
        # RuntimeError is ServiceError's base: raising it directly
        # reaches the peer as AbortCode.INTERNAL.
        bad = "raise RuntimeError('oops')\n"
        assert len(violations(bad, self.PATH, "R6")) == 1

    def test_taxonomy_raise_is_clean(self):
        good = """
        from repro.service.errors import ProtocolViolation

        def check(ok):
            if not ok:
                raise ProtocolViolation("unexpected frame")
        """
        assert violations(good, self.PATH, "R6") == []

    def test_narrow_except_is_clean(self):
        good = """
        def recv():
            try:
                return decode()
            except ValueError:
                return None
        """
        assert violations(good, self.PATH, "R6") == []

    def test_only_service_is_patrolled(self):
        assert violations("raise Exception('x')\n", "src/repro/sim/engine.py", "R6") == []


class TestSuppressions:
    def test_same_line_disable_suppresses_one_rule(self):
        src = "seed = hash(key)  # reprolint: disable=R1\n"
        assert violations(src, "src/repro/sim/example.py") == []

    def test_disable_all(self):
        src = "import time\nd = time.time() - t0  # reprolint: disable=all\n"
        assert violations(src, "src/repro/store/x.py") == []

    def test_disable_wrong_rule_does_not_suppress(self):
        src = "seed = hash(key)  # reprolint: disable=R3\n"
        assert len(violations(src, "src/repro/sim/example.py", "R1")) == 1

    def test_disable_governs_only_its_line(self):
        src = (
            "seed = hash(key)  # reprolint: disable=R1\n"
            "other = hash(key)\n"
        )
        found = violations(src, "src/repro/sim/example.py", "R1")
        assert [v.line for v in found] == [2]


class TestParseFailure:
    def test_syntax_error_is_a_finding_not_a_crash(self):
        found = violations("def broken(:\n", "src/repro/sim/x.py")
        assert [v.rule for v in found] == ["E0"]


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert sorted(RULES) == ["R1", "R2", "R3", "R4", "R5", "R6"]

    def test_every_rule_has_metadata(self):
        for rule in RULES.values():
            assert rule.name and rule.rationale and rule.patrols
