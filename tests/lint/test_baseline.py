"""Baseline semantics: grandfathering, shrink-only staleness, round-trip."""

import json

import pytest

from repro.lint import lint_source, load_baseline, write_baseline
from repro.lint.baseline import Baseline

pytestmark = pytest.mark.lint

BAD = "seed = hash(key)\n"
PATH = "src/repro/sim/example.py"


def test_missing_baseline_is_empty(tmp_path):
    baseline = load_baseline(tmp_path / "nope.json")
    assert baseline.entries == frozenset()


def test_round_trip(tmp_path):
    found = lint_source(BAD, PATH)
    assert len(found) == 1
    path = tmp_path / "baseline.json"
    write_baseline(path, found)
    assert load_baseline(path).entries == {found[0].fingerprint}


def test_grandfathered_violation_is_not_new(tmp_path):
    found = lint_source(BAD, PATH)
    baseline = Baseline(entries=frozenset(v.fingerprint for v in found))
    assert baseline.new_violations(found) == []
    assert baseline.stale_entries(found) == []


def test_fixed_violation_becomes_stale_entry():
    found = lint_source(BAD, PATH)
    baseline = Baseline(entries=frozenset(v.fingerprint for v in found))
    # After the fix nothing fires; the grandfathered entry must go.
    assert baseline.stale_entries([]) == sorted(baseline.entries)


def test_new_violation_is_reported_against_baseline():
    baseline = Baseline(entries=frozenset({"R1:somewhere/else.py:1"}))
    found = lint_source(BAD, PATH)
    assert baseline.new_violations(found) == found


def test_malformed_baseline_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError):
        load_baseline(path)
    path.write_text(json.dumps({"version": 1, "entries": [3]}))
    with pytest.raises(ValueError):
        load_baseline(path)
