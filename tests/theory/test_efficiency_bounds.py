"""Figure-1 theory: closed forms, LP behaviour, capacity bounds."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.bounds import group_secret_upper_bound, pairwise_secrecy_capacity
from repro.theory.efficiency import (
    group_efficiency,
    group_efficiency_infinite,
    group_efficiency_lp,
    unicast_efficiency,
)

probability = st.floats(min_value=0.02, max_value=0.98)


class TestUnicast:
    def test_closed_form(self):
        assert unicast_efficiency(2, 0.5) == pytest.approx(0.2)

    @given(probability)
    @settings(max_examples=25, deadline=None)
    def test_decreasing_in_n(self, p):
        values = [unicast_efficiency(n, p) for n in (2, 3, 6, 10, 50)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_vanishes_as_n_grows(self):
        assert unicast_efficiency(10_000, 0.5) < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            unicast_efficiency(1, 0.5)
        with pytest.raises(ValueError):
            unicast_efficiency(3, 1.5)


class TestGroup:
    def test_n2_closed_form(self):
        for p in (0.1, 0.5, 0.8):
            assert group_efficiency(2, p) == pytest.approx(p * (1 - p))

    def test_peak_at_half(self):
        assert group_efficiency(2, 0.5) == pytest.approx(0.25)

    def test_infinite_closed_form(self):
        assert group_efficiency_infinite(0.5) == pytest.approx(0.2)
        assert group_efficiency(math.inf, 0.5) == pytest.approx(0.2)

    @given(probability)
    @settings(max_examples=15, deadline=None)
    def test_ordering_group_decreasing_in_n(self, p):
        values = [group_efficiency(n, p) for n in (2, 3, 6, 10)]
        values.append(group_efficiency_infinite(p))
        for a, b in zip(values, values[1:]):
            assert a >= b - 1e-9

    @given(probability)
    @settings(max_examples=15, deadline=None)
    def test_group_beats_unicast(self, p):
        for n in (3, 6, 10):
            assert group_efficiency(n, p) >= unicast_efficiency(n, p) - 1e-9

    @given(probability)
    @settings(max_examples=15, deadline=None)
    def test_group_stays_above_infinite_limit(self, p):
        limit = group_efficiency_infinite(p)
        for n in (3, 6, 10):
            assert group_efficiency(n, p) >= limit - 1e-6

    def test_lp_approaches_infinite_limit(self):
        # At n = 40 the LP should be within a few percent of the limit.
        p = 0.5
        lp = group_efficiency_lp(40, p)
        assert abs(lp - group_efficiency_infinite(p)) < 0.01

    def test_extremes_are_zero(self):
        assert group_efficiency(5, 0.0) == 0.0
        assert group_efficiency(5, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            group_efficiency(1, 0.5)
        with pytest.raises(ValueError):
            group_efficiency_infinite(-0.1)


class TestCapacityBounds:
    def test_pairwise_formula(self):
        assert pairwise_secrecy_capacity(0.4, 0.5) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            pairwise_secrecy_capacity(1.2, 0.5)

    def test_group_bound_uses_weakest(self):
        bound = group_secret_upper_bound([0.2, 0.6], 0.5, 100)
        assert bound == pytest.approx(100 * 0.4 * 0.5)

    def test_group_bound_edges(self):
        assert group_secret_upper_bound([], 0.5, 10) == 0.0
        with pytest.raises(ValueError):
            group_secret_upper_bound([0.2], 0.5, -1)

    def test_protocol_never_beats_capacity(self):
        """The packet-level protocol with an oracle must stay below the
        information-theoretic ceiling."""
        from repro.core.estimator import OracleEstimator
        from repro.core.session import ProtocolSession, SessionConfig
        from repro.net.medium import BroadcastMedium, IIDLossModel
        from repro.net.node import Eavesdropper, Terminal

        p = 0.5
        rng = np.random.default_rng(123)
        names = ["T0", "T1", "T2"]
        nodes = [Terminal(name=x) for x in names] + [Eavesdropper(name="eve")]
        medium = BroadcastMedium(nodes, IIDLossModel(p), rng)
        cfg = SessionConfig(n_x_packets=200, payload_bytes=16)
        session = ProtocolSession(medium, names, OracleEstimator(), rng, config=cfg)
        result = session.run_round("T0")
        # Empirical per-terminal erasure rates from the actual run.
        bound = group_secret_upper_bound(
            [1 - len(result.reports[t]) / cfg.n_x_packets for t in names[1:]],
            1 - len(result.eve_received_ids) / cfg.n_x_packets,
            cfg.n_x_packets,
        )
        # Monte-Carlo slack: the bound uses realised rates, so allow a
        # small tolerance for integer effects.
        assert result.secret_packets <= bound + 3
