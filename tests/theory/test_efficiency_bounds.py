"""Figure-1 theory: closed forms, LP behaviour, capacity bounds."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.bounds import group_secret_upper_bound, pairwise_secrecy_capacity
from repro.theory.efficiency import (
    clear_efficiency_cache,
    efficiency_cache_info,
    group_allocation_profile,
    group_efficiency,
    group_efficiency_infinite,
    group_efficiency_lp,
    unicast_efficiency,
)

probability = st.floats(min_value=0.02, max_value=0.98)


class TestUnicast:
    def test_closed_form(self):
        assert unicast_efficiency(2, 0.5) == pytest.approx(0.2)

    @given(probability)
    @settings(max_examples=25, deadline=None)
    def test_decreasing_in_n(self, p):
        values = [unicast_efficiency(n, p) for n in (2, 3, 6, 10, 50)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_vanishes_as_n_grows(self):
        assert unicast_efficiency(10_000, 0.5) < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            unicast_efficiency(1, 0.5)
        with pytest.raises(ValueError):
            unicast_efficiency(3, 1.5)


class TestGroup:
    def test_n2_closed_form(self):
        for p in (0.1, 0.5, 0.8):
            assert group_efficiency(2, p) == pytest.approx(p * (1 - p))

    def test_peak_at_half(self):
        assert group_efficiency(2, 0.5) == pytest.approx(0.25)

    def test_infinite_closed_form(self):
        assert group_efficiency_infinite(0.5) == pytest.approx(0.2)
        assert group_efficiency(math.inf, 0.5) == pytest.approx(0.2)

    @given(probability)
    @settings(max_examples=15, deadline=None)
    def test_ordering_group_decreasing_in_n(self, p):
        values = [group_efficiency(n, p) for n in (2, 3, 6, 10)]
        values.append(group_efficiency_infinite(p))
        for a, b in zip(values, values[1:]):
            assert a >= b - 1e-9

    @given(probability)
    @settings(max_examples=15, deadline=None)
    def test_group_beats_unicast(self, p):
        for n in (3, 6, 10):
            assert group_efficiency(n, p) >= unicast_efficiency(n, p) - 1e-9

    @given(probability)
    @settings(max_examples=15, deadline=None)
    def test_group_stays_above_infinite_limit(self, p):
        limit = group_efficiency_infinite(p)
        for n in (3, 6, 10):
            assert group_efficiency(n, p) >= limit - 1e-6

    def test_lp_approaches_infinite_limit(self):
        # At n = 40 the LP should be within a few percent of the limit.
        p = 0.5
        lp = group_efficiency_lp(40, p)
        assert abs(lp - group_efficiency_infinite(p)) < 0.01

    def test_extremes_are_zero(self):
        assert group_efficiency(5, 0.0) == 0.0
        assert group_efficiency(5, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            group_efficiency(1, 0.5)
        with pytest.raises(ValueError):
            group_efficiency_infinite(-0.1)


class TestInfiniteLimitClosedForm:
    """Regression pin for the n -> inf closed form p(1-p)/(1+p^2).

    The Figure-1 seed suite once compared the limit against 0.8x the
    n=2 value with a strict `>` — which fails at p = 0.5, where the
    ratio is *exactly* 0.8.  These tests pin the closed form and that
    boundary identity so the relationship stays explicit.
    """

    @pytest.mark.parametrize("p", [0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9])
    def test_closed_form_values(self, p):
        expected = p * (1.0 - p) / (1.0 + p * p)
        assert group_efficiency_infinite(p) == pytest.approx(expected, abs=1e-15)
        assert group_efficiency(math.inf, p) == pytest.approx(expected, abs=1e-15)

    def test_boundary_identity_at_half(self):
        # p(1-p)/(1+p^2) at p=0.5 is 0.2 — exactly 80% of the n=2 peak.
        limit = group_efficiency_infinite(0.5)
        assert limit == pytest.approx(0.2, abs=1e-15)
        assert limit == pytest.approx(0.8 * group_efficiency(2, 0.5), abs=1e-15)

    def test_edges_vanish(self):
        assert group_efficiency_infinite(0.0) == 0.0
        assert group_efficiency_infinite(1.0) == 0.0

    def test_limit_peak_location(self):
        # d/dp [p(1-p)/(1+p^2)] = 0 at p = sqrt(2) - 1.
        p_star = math.sqrt(2.0) - 1.0
        grid = np.linspace(0.01, 0.99, 197)
        best = max(group_efficiency_infinite(p) for p in grid)
        assert group_efficiency_infinite(p_star) >= best - 1e-9


class TestEfficiencyCache:
    def test_cache_hits_and_unchanged_results(self):
        clear_efficiency_cache()
        first = group_efficiency(7, 0.45)
        after_first = efficiency_cache_info()
        assert after_first.misses >= 1
        second = group_efficiency(7, 0.45)
        after_second = efficiency_cache_info()
        assert second == first
        assert after_second.hits == after_first.hits + 1
        assert after_second.misses == after_first.misses

    def test_cached_matches_fresh_solve(self):
        clear_efficiency_cache()
        warm = group_efficiency_lp(6, 0.35)
        cached = group_efficiency_lp(6, 0.35)
        clear_efficiency_cache()
        fresh = group_efficiency_lp(6, 0.35)
        assert cached == warm
        assert fresh == pytest.approx(warm, abs=1e-12)

    def test_distinct_keys_do_not_collide(self):
        clear_efficiency_cache()
        a = group_efficiency_lp(5, 0.3)
        b = group_efficiency_lp(5, 0.4)
        c = group_efficiency_lp(6, 0.3)
        assert len({round(v, 12) for v in (a, b, c)}) == 3


class TestAllocationProfile:
    def test_profile_consistent_with_efficiency(self):
        for n, p in [(3, 0.5), (5, 0.3), (8, 0.6)]:
            profile = group_allocation_profile(n, p)
            assert profile.efficiency == pytest.approx(
                group_efficiency_lp(n, p), abs=1e-12
            )
            # The profile's own L and M reproduce its efficiency value.
            implied = profile.l_per_packet / (
                1.0 + profile.m_per_packet - profile.l_per_packet
            )
            assert implied == pytest.approx(profile.efficiency, rel=1e-6)

    def test_profile_respects_budget_constraints(self):
        n, p = 6, 0.4
        profile = group_allocation_profile(n, p)
        r = n - 1
        # s = 0 union bound: M <= p (1 - p^r) per packet.
        assert profile.m_per_packet <= p * (1 - p**r) + 1e-9
        # Coverage: L <= M_i per packet.
        m_i = sum(
            math.comb(r - 1, t - 1) * a
            for t, a in enumerate(profile.level_rows, start=1)
        )
        assert profile.l_per_packet <= m_i + 1e-9

    def test_z_cost_factor_shrinks_overhead(self):
        cheap = group_allocation_profile(6, 0.5, z_cost_factor=1.0)
        pricey = group_allocation_profile(6, 0.5, z_cost_factor=4.0)
        assert (
            pricey.m_per_packet - pricey.l_per_packet
            <= cheap.m_per_packet - cheap.l_per_packet + 1e-9
        )

    def test_degenerate_p(self):
        profile = group_allocation_profile(4, 0.0)
        assert profile.efficiency == 0.0
        assert profile.l_per_packet == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            group_allocation_profile(1, 0.5)
        with pytest.raises(ValueError):
            group_allocation_profile(4, 0.5, z_cost_factor=0.0)


class TestCapacityBounds:
    def test_pairwise_formula(self):
        assert pairwise_secrecy_capacity(0.4, 0.5) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            pairwise_secrecy_capacity(1.2, 0.5)

    def test_group_bound_uses_weakest(self):
        bound = group_secret_upper_bound([0.2, 0.6], 0.5, 100)
        assert bound == pytest.approx(100 * 0.4 * 0.5)

    def test_group_bound_edges(self):
        assert group_secret_upper_bound([], 0.5, 10) == 0.0
        with pytest.raises(ValueError):
            group_secret_upper_bound([0.2], 0.5, -1)

    def test_protocol_never_beats_capacity(self):
        """The packet-level protocol with an oracle must stay below the
        information-theoretic ceiling."""
        from repro.core.estimator import OracleEstimator
        from repro.core.session import ProtocolSession, SessionConfig
        from repro.net.medium import BroadcastMedium, IIDLossModel
        from repro.net.node import Eavesdropper, Terminal

        p = 0.5
        rng = np.random.default_rng(123)
        names = ["T0", "T1", "T2"]
        nodes = [Terminal(name=x) for x in names] + [Eavesdropper(name="eve")]
        medium = BroadcastMedium(nodes, IIDLossModel(p), rng)
        cfg = SessionConfig(n_x_packets=200, payload_bytes=16)
        session = ProtocolSession(medium, names, OracleEstimator(), rng, config=cfg)
        result = session.run_round("T0")
        # Empirical per-terminal erasure rates from the actual run.
        bound = group_secret_upper_bound(
            [1 - len(result.reports[t]) / cfg.n_x_packets for t in names[1:]],
            1 - len(result.eve_received_ids) / cfg.n_x_packets,
            cfg.n_x_packets,
        )
        # Monte-Carlo slack: the bound uses realised rates, so allow a
        # small tolerance for integer effects.
        assert result.secret_packets <= bound + 3
