"""Realised per-round planning: the integral support flow + its memo.

The batched engine's honesty contract rests on two properties pinned
here: the transportation flow is a correct, deterministic integral
assignment (subset ``T`` draws only from pattern cells containing it,
supports disjoint, capacities respected), and identical observed-round
keys return the *identical* cached plan object so thousands of rounds
share one solve.
"""

import numpy as np
import pytest

from repro.coding.privacy import solve_transport_counts
from repro.theory import (
    clear_realised_flow_cache,
    realised_flow_cache_info,
    realised_support_flow,
)

# A 3-receiver round histogram: pattern bitmask -> packet count.
CELLS = ((0b001, 4), (0b011, 3), (0b101, 2), (0b111, 5))
DEMANDS = ((0b001, 6), (0b011, 4), (0b111, 3))


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_realised_flow_cache()
    yield
    clear_realised_flow_cache()


class TestSolveTransportCounts:
    def test_simple_max_flow_value(self):
        flow = solve_transport_counts(
            demands=[3, 2],
            capacities=[2, 2],
            allowed=[[True, True], [False, True]],
        )
        # Only demand 0 reaches supply 0, so a maximum flow (value 4)
        # must saturate both supplies and route 2 units through (0, 0);
        # how supply 1 splits between the demands is the solver's pick.
        assert flow.sum() == 4
        assert flow[0, 0] == 2
        assert flow[:, 1].sum() == 2

    def test_respects_capacities_and_edges(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            j, k = rng.integers(1, 5, size=2)
            demands = rng.integers(0, 6, size=j)
            capacities = rng.integers(0, 6, size=k)
            allowed = rng.random((j, k)) < 0.6
            flow = solve_transport_counts(
                list(demands), list(capacities), allowed.tolist()
            )
            assert np.all(flow >= 0)
            assert np.all(flow.sum(axis=1) <= demands)
            assert np.all(flow.sum(axis=0) <= capacities)
            assert np.all(flow[~allowed] == 0)

    def test_deterministic_flow_matrix(self):
        # Not merely equally optimal: the same matrix, every time.
        args = ([2, 2, 2], [3, 3], [[True, True]] * 3)
        first = solve_transport_counts(*args)
        for _ in range(5):
            assert np.array_equal(solve_transport_counts(*args), first)

    def test_empty_inputs(self):
        assert solve_transport_counts([], [1], []).shape == (0, 1)
        assert solve_transport_counts([1], [], [[]]).shape == (1, 0)


class TestRealisedSupportFlow:
    def test_supports_disjoint_and_lattice_respecting(self):
        plan = realised_support_flow(CELLS, DEMANDS)
        counts = dict(CELLS)
        for k, cell in enumerate(plan.cells):
            assert plan.flow[:, k].sum() <= counts[cell]
        for j, subset in enumerate(plan.subsets):
            for k, cell in enumerate(plan.cells):
                if plan.flow[j, k]:
                    # Only patterns containing the subset may fund it.
                    assert subset & cell == subset

    def test_feasible_round_meets_demand_at_full_scale(self):
        plan = realised_support_flow(CELLS, DEMANDS)
        wanted = dict(DEMANDS)
        assert plan.scale == 1.0
        for j, subset in enumerate(plan.subsets):
            assert plan.assigned[j] == wanted[subset]

    def test_memo_returns_identical_object(self):
        """The acceptance contract: the same observed-pattern key must
        yield the very same plan object (``is``), not a re-solve."""
        first = realised_support_flow(CELLS, DEMANDS)
        again = realised_support_flow(CELLS, DEMANDS)
        assert again is first
        info = realised_flow_cache_info()
        assert info.misses == 1
        assert info.hits == 1
        # A different observed round is a different key.
        other = realised_support_flow(CELLS, ((0b001, 5),))
        assert other is not first
        assert realised_flow_cache_info().misses == 2

    def test_cached_flow_is_read_only(self):
        plan = realised_support_flow(CELLS, DEMANDS)
        with pytest.raises(ValueError):
            plan.flow[0, 0] = 99

    def test_infeasible_round_scales_down_without_starving(self):
        # Total demand 12 against 4 packets: the plain max flow would
        # meet the total by starving someone; the balanced scale-down
        # must leave every subset with its scaled share.
        plan = realised_support_flow(
            ((0b111, 4),), ((0b001, 4), (0b010, 4), (0b100, 4))
        )
        assert plan.scale < 1.0
        assert plan.flow.sum() <= 4
        scaled = [int(np.floor(plan.scale * 4)) for _ in plan.subsets]
        for j in range(len(plan.subsets)):
            assert plan.assigned[j] == scaled[j]

    def test_top_up_grants_leftover_capacity(self):
        key = (((0b111, 4),), ((0b001, 4), (0b010, 4), (0b100, 4)))
        plain = realised_support_flow(*key, top_up=False)
        topped = realised_support_flow(*key, top_up=True)
        # Oracle-certified rounds may consume the remainder; the scale
        # stays 1.0 because exact budgets bind instead of demand caps.
        assert topped.flow.sum() == 4
        assert topped.flow.sum() > plain.flow.sum()
        assert topped.scale == 1.0
