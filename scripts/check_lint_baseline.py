#!/usr/bin/env python
"""Enforce that the reprolint baseline only ever shrinks.

The baseline (``lint-baseline.json``) grandfathers violations that
predate a rule; new code must come in clean, so CI fails any change
that *adds* an entry.  Removing entries (paying the debt down) is the
only allowed edit.  Usage::

    python scripts/check_lint_baseline.py --against origin/main

Compares the working-tree baseline to the one at ``--against`` (the
target branch); a ref that predates the baseline file counts as an
empty baseline, so introducing the file with entries is also growth.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.lint.baseline import load_baseline  # noqa: E402


def entries_at(ref: str, path: str) -> frozenset:
    """Baseline entries at ``ref``, empty when the file does not exist."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{path}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return frozenset()
    document = json.loads(proc.stdout)
    return frozenset(document.get("entries", []))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--against",
        default="origin/main",
        help="git ref whose baseline is the ceiling (default: origin/main)",
    )
    parser.add_argument(
        "--baseline",
        default="lint-baseline.json",
        help="repo-relative baseline path (default: lint-baseline.json)",
    )
    args = parser.parse_args(argv)

    current = load_baseline(os.path.join(REPO_ROOT, args.baseline)).entries
    ceiling = entries_at(args.against, args.baseline)
    grown = sorted(current - ceiling)
    if grown:
        print(
            f"lint baseline grew by {len(grown)} entries vs {args.against} "
            "(shrink-only: fix the violation or suppress the single line "
            "with a justified `# reprolint: disable=...`):"
        )
        for entry in grown:
            print(f"  + {entry}")
        return 1
    shrunk = len(ceiling - current)
    print(
        f"baseline ok: {len(current)} entries"
        + (f" ({shrunk} paid down vs {args.against})" if shrunk else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
