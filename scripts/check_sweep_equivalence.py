#!/usr/bin/env python3
"""Assert two stores hold bit-identical results for the same sweep.

The multi-host acceptance check, used by the nightly workflow: after a
serial baseline campaign persists into one store and a concurrent
multi-worker drain of the same manifest persists into another, every
shard the manifest names must match **bit-for-bit** between the two —
and so must the streamed per-group aggregates.  Records are compared as
the raw decoded JSON payloads (floats round-trip through shortest-repr,
the NaN sentinel is a tagged dict), so equality here is bit-equality of
the stored lines' content, not approximate agreement.

Usage::

    python scripts/check_sweep_equivalence.py STORE_A STORE_B \\
        [--manifest PREFIX]

Stores are named by URI (``file:DIR``, ``sqlite:PATH.db``,
``mem:NAME``) or a bare directory path, so the nightly drills can
byte-diff a sqlite drain — or an exported ``mem:`` drill — directly
against the serial filesystem baseline.  Every manifest present in
STORE_A (optionally filtered by name prefix) is checked; exits
non-zero listing each divergent or missing shard.
"""

import argparse
import sys

from repro.store import SweepManifest, list_manifests, open_store
from repro.store.aggregate import stream_aggregates


def compare_manifest(name, store_a, store_b):
    """Every divergence for one sweep, as human-readable strings."""
    errors = []
    manifest = SweepManifest.load(store_a, name)
    other = SweepManifest.load(store_b, name, missing_ok=True)
    if other is None:
        return [f"{name}: manifest missing from second store"]
    if manifest.keys() != other.keys():
        errors.append(f"{name}: manifests list different shard keys")
    for entry in manifest:
        record_a = store_a.load(entry.key)
        record_b = store_b.load(entry.key)
        label = entry.label or entry.key
        if record_a is None or record_b is None:
            missing = "first" if record_a is None else "second"
            errors.append(f"{name}: {label}: no record in {missing} store")
        elif record_a != record_b:
            errors.append(f"{name}: {label}: records differ")
    if errors:
        return errors
    # Belt and braces: the streamed Figure-2 aggregates must finalise
    # to identical floats too (they do whenever the records match —
    # this guards the aggregation path itself).
    groups_a = stream_aggregates(store_a, manifest=manifest)
    groups_b = stream_aggregates(store_b, manifest=other)
    if sorted(groups_a) != sorted(groups_b):
        return [f"{name}: aggregates cover different group sizes"]
    for n in sorted(groups_a):
        a, b = groups_a[n], groups_b[n]
        if a.reliability.values.counts != b.reliability.values.counts:
            errors.append(f"{name}: n={n}: reliability multisets differ")
        elif a.reliability and (
            a.reliability_summary() != b.reliability_summary()
        ):
            errors.append(f"{name}: n={n}: reliability summaries differ")
        if a.efficiency.counts != b.efficiency.counts:
            errors.append(f"{name}: n={n}: efficiency multisets differ")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "store_a", metavar="STORE_A", help="store URI or directory path"
    )
    parser.add_argument(
        "store_b", metavar="STORE_B", help="store URI or directory path"
    )
    parser.add_argument(
        "--manifest",
        metavar="PREFIX",
        default=None,
        help="only manifests whose name starts with PREFIX",
    )
    args = parser.parse_args()
    try:
        store_a = open_store(args.store_a, create=False)
        store_b = open_store(args.store_b, create=False)
    except FileNotFoundError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    names = [
        name
        for name in list_manifests(store_a)
        if args.manifest is None or name.startswith(args.manifest)
    ]
    if not names:
        print(f"ERROR: no manifests in {args.store_a}", file=sys.stderr)
        return 1
    errors = []
    for name in names:
        errors.extend(compare_manifest(name, store_a, store_b))
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    print(
        f"checked {len(names)} manifest(s): "
        f"{'DIVERGED' if errors else 'bit-identical'}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
