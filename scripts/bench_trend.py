#!/usr/bin/env python3
"""Merge ``BENCH_*.json`` artifacts into a benchmark trajectory table.

Every bench run (CI uploads one per push, labelled with the commit
SHA; ``benchmarks/history/`` holds the committed milestones) is a
point on each hot path's trajectory.  This script merges any number of
those artifacts — files or directories of them — into one
chronological markdown table, one row per benchmark, one column per
run, plus each row's delta between the *newest* run and the committed
``benchmarks/baseline.json``.

Deltas are calibration-normalised exactly like the regression gate in
``scripts/run_benchmarks.py``: each run's times are scaled by its own
``calibration`` row before comparison, so runs from differently-sized
machines line up on one axis.

CI appends the output to the job summary::

    python scripts/bench_trend.py benchmarks/history benchmarks/out \\
        --baseline benchmarks/baseline.json >> "$GITHUB_STEP_SUMMARY"
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from datetime import datetime, timezone
from typing import List, Optional

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO, "benchmarks", "baseline.json")
DEFAULT_HISTORY = os.path.join(REPO, "benchmarks", "history")


def collect(paths: List[str]) -> List[dict]:
    """Load every ``BENCH_*.json`` under the given files/directories.

    Returns payloads sorted oldest-first by their ``recorded_unix``
    stamp (file mtime when a pre-stamp artifact lacks it), each with
    its source path attached for error messages.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(glob.glob(os.path.join(path, "BENCH_*.json"))))
        else:
            files.append(path)
    entries = []
    for path in files:
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"skipping unreadable {path}: {exc}", file=sys.stderr)
            continue
        if "results" not in payload:
            print(f"skipping {path}: no results mapping", file=sys.stderr)
            continue
        payload.setdefault("label", os.path.basename(path))
        payload.setdefault("recorded_unix", os.path.getmtime(path))
        payload["path"] = path
        entries.append(payload)
    entries.sort(key=lambda e: (e["recorded_unix"], e["label"]))
    return entries


def _col_label(entry: dict) -> str:
    stamp = datetime.fromtimestamp(
        entry["recorded_unix"], tz=timezone.utc
    ).strftime("%Y-%m-%d")
    label = str(entry["label"])
    if len(label) > 10:  # a full commit SHA; keep the short form
        label = label[:10]
    return f"{label}<br>{stamp}"


def _normalised(entry: dict, name: str) -> Optional[float]:
    """best_s scaled to the run's own calibration speed (or raw when
    the run has no calibration row)."""
    row = entry["results"].get(name)
    if row is None or "best_s" not in row:
        return None
    cal = entry["results"].get("calibration", {}).get("best_s")
    if not cal:
        return row["best_s"]
    return row["best_s"] / cal


def _cell(entry: dict, name: str) -> str:
    row = entry["results"].get(name)
    if row is None:
        return "—"
    if "error" in row:
        return "error"
    return f"{row['best_s'] * 1e3:.1f} ms"


def render(entries: List[dict], baseline: Optional[dict]) -> str:
    names: List[str] = []
    for entry in entries:
        for name in entry["results"]:
            if name not in names:
                names.append(name)
    if baseline:
        for name in baseline:
            if name not in names:
                names.append(name)

    newest = entries[-1]
    header = ["benchmark", *(_col_label(e) for e in entries)]
    if baseline:
        header.append("Δ newest vs baseline")
    lines = [
        "### Benchmark trajectory",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for name in names:
        cells = [f"`{name}`", *(_cell(e, name) for e in entries)]
        if baseline:
            cells.append(_delta(newest, name, baseline))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    lines.append(
        f"{len(entries)} run(s); times are each run's best wall time, "
        "deltas calibration-normalised."
    )
    return "\n".join(lines)


def _delta(newest: dict, name: str, baseline: dict) -> str:
    if name == "calibration":
        return "—"
    base_row = baseline.get(name)
    if base_row is None or "best_s" not in base_row:
        return "new"
    now = _normalised(newest, name)
    if now is None:
        row = newest["results"].get(name)
        return "error" if row and "error" in row else "not measured"
    base_cal = baseline.get("calibration", {}).get("best_s")
    base = base_row["best_s"] / base_cal if base_cal else base_row["best_s"]
    ratio = now / base
    sign = "+" if ratio >= 1.0 else ""
    return f"{sign}{(ratio - 1.0) * 100:.0f}% ({ratio:.2f}x)"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="BENCH_*.json files or directories holding them "
        f"(default: {os.path.relpath(DEFAULT_HISTORY, REPO)})",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline JSON for the per-row delta column "
        "(pass an empty string to omit the column)",
    )
    args = parser.parse_args()

    entries = collect(args.paths or [DEFAULT_HISTORY])
    if not entries:
        print("no BENCH_*.json artifacts found", file=sys.stderr)
        return 1

    baseline = None
    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        baseline = baseline.get("results", baseline)

    print(render(entries, baseline))
    return 0


if __name__ == "__main__":
    sys.exit(main())
