#!/usr/bin/env python3
"""Run one live key-agreement peer over TCP.

Two terminals, two processes (see README "Live service quickstart"):

    # terminal 1 — the leader listens and waits for its followers
    $ python scripts/run_service_peer.py serve --name alice --followers bob \
          --port 9400

    # terminal 2 — a follower connects and runs the handshake
    $ python scripts/run_service_peer.py connect --name bob --leader alice \
          --port 9400

Both print the same key fingerprint on success (never the key itself)
and exit 0; any failure prints the typed error and exits non-zero.
Both sides must be launched with identical protocol parameters — the
HELLO digest check aborts the session otherwise.

This is a demo/testing entry point: the bootstrap secret defaults to
the repo's demo constant (override with --bootstrap-hex) and the lossy
radio is simulated by seeded erasure traces, so two local processes
reproduce exactly the simulator's secret for the same seeds.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.service import (  # noqa: E402
    ServiceConfig,
    ServiceError,
    TcpLeader,
    connect_follower_tcp,
)


def build_config(args: argparse.Namespace) -> ServiceConfig:
    kwargs = dict(
        n_x_packets=args.n_x_packets,
        payload_bytes=args.payload_bytes,
        n_rounds=args.rounds,
        loss_prob=args.loss_prob,
        loss_seed=args.loss_seed,
        payload_seed=args.payload_seed,
        handshake_timeout=args.timeout,
    )
    if args.bootstrap_hex:
        kwargs["bootstrap"] = bytes.fromhex(args.bootstrap_hex)
    return ServiceConfig(**kwargs)


async def serve(args: argparse.Namespace) -> int:
    config = build_config(args)
    followers = tuple(args.followers.split(","))
    leader = TcpLeader(
        config, args.name, followers, host=args.host, port=args.port
    )
    port = await leader.start()
    print(f"[{args.name}] listening on {args.host}:{port}, "
          f"waiting for {', '.join(followers)}")
    try:
        keys = await leader.run()
    finally:
        await leader.aclose()
    print(f"[{args.name}] established; key fingerprint {keys.fingerprint()} "
          f"({len(keys.material)} bytes derived)")
    return 0


async def connect(args: argparse.Namespace) -> int:
    config = build_config(args)
    keys = await connect_follower_tcp(
        config, args.name, args.leader, args.host, args.port
    )
    print(f"[{args.name}] established; key fingerprint {keys.fingerprint()} "
          f"({len(keys.material)} bytes derived)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--name", required=True, help="this peer's name")
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=9400)
        p.add_argument("--n-x-packets", type=int, default=48)
        p.add_argument("--payload-bytes", type=int, default=32)
        p.add_argument("--rounds", type=int, default=1)
        p.add_argument("--loss-prob", type=float, default=0.3)
        p.add_argument("--loss-seed", type=int, default=11)
        p.add_argument("--payload-seed", type=int, default=7)
        p.add_argument("--timeout", type=float, default=30.0)
        p.add_argument(
            "--bootstrap-hex",
            default=None,
            help="hex-encoded shared bootstrap secret (default: demo constant)",
        )

    p_serve = sub.add_parser("serve", help="run the leader (listens)")
    common(p_serve)
    p_serve.add_argument(
        "--followers",
        required=True,
        help="comma-separated follower names the session waits for",
    )

    p_connect = sub.add_parser("connect", help="run a follower (connects)")
    common(p_connect)
    p_connect.add_argument("--leader", required=True, help="the leader's name")

    args = parser.parse_args()
    try:
        if args.command == "serve":
            return asyncio.run(serve(args))
        return asyncio.run(connect(args))
    except ServiceError as exc:
        print(f"session failed ({type(exc).__name__}): {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
