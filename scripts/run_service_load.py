#!/usr/bin/env python3
"""Load generator for the live key-agreement service.

Runs N concurrent in-process sessions (leader + follower per session,
all multiplexed on one event loop over memory transports) and reports
throughput and handshake-latency percentiles:

    $ python scripts/run_service_load.py --sessions 1000 --concurrency 128

    sessions     1000/1000 established
    elapsed      8.41 s   (118.9 sessions/s)
    latency      p50 523.1 ms   p99 1042.7 ms   (n=1000)

Percentiles are nearest-rank (exact observed samples, index clamped),
so they stay meaningful on tiny runs; ``n`` states the population size
behind them.

``--json PATH`` additionally writes the full report — including the
per-session latency list, i.e. the raw histogram — for the nightly CI
artifact.  ``--fault-drop`` enables seeded data-plane fault injection
(X-frame drops through FlakyTransport) to load-test the lossy path;
sessions must then still all agree or fail closed, which the generator
asserts.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.service import FaultSpec, ServiceConfig, run_load  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=1000, help="total sessions")
    parser.add_argument(
        "--concurrency", type=int, default=128, help="sessions in flight at once"
    )
    parser.add_argument(
        "--n-x-packets", type=int, default=24, help="x-packets per round"
    )
    parser.add_argument(
        "--payload-bytes", type=int, default=16, help="bytes per x-packet"
    )
    parser.add_argument("--rounds", type=int, default=1, help="protocol rounds")
    parser.add_argument(
        "--fault-drop",
        type=float,
        default=0.0,
        help="data-plane X-frame drop probability (seeded FlakyTransport)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-session deadline (s)"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write the full report as JSON"
    )
    args = parser.parse_args()

    config = ServiceConfig(
        n_x_packets=args.n_x_packets,
        payload_bytes=args.payload_bytes,
        n_rounds=args.rounds,
        handshake_timeout=args.timeout,
    )
    fault_spec = (
        FaultSpec.data_plane(drop=args.fault_drop) if args.fault_drop > 0 else None
    )
    report = asyncio.run(
        run_load(
            config,
            args.sessions,
            concurrency=args.concurrency,
            fault_spec=fault_spec,
        )
    )

    print(f"sessions     {report.established}/{report.sessions} established")
    print(
        f"elapsed      {report.elapsed_s:.2f} s   "
        f"({report.sessions_per_sec:.1f} sessions/s)"
    )
    print(
        f"latency      p50 {report.p50_ms:.1f} ms   "
        f"p99 {report.p99_ms:.1f} ms   (n={report.n_samples})"
    )
    if report.failure_types:
        print(f"failures     {report.failure_types}")

    if args.json:
        payload = report.to_json()
        payload["latencies_ms"] = report.latencies_ms
        payload["config"] = {
            "n_x_packets": config.n_x_packets,
            "payload_bytes": config.payload_bytes,
            "n_rounds": config.n_rounds,
            "fault_drop": args.fault_drop,
            "concurrency": args.concurrency,
        }
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=1)
        print(f"wrote {args.json}")

    # Fail-closed is part of the contract even under load: fault-free
    # runs must establish everything; faulted runs must never have
    # produced a mismatched key pair (run_load asserts agreement per
    # session), so failures there are acceptable timeouts/aborts.
    if args.fault_drop == 0 and report.failed:
        print("ERROR: fault-free load run failed sessions", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
