#!/usr/bin/env python3
"""Profile the campaign + store hot-path benchmarks under cProfile.

The CI bench job runs this after the timing pass and uploads the
reports as an artifact, so the next kernel PR starts from measured
call trees — which loop actually dominates the stacked campaign, where
the store round-trip spends its syscalls — instead of guesses.

One report per benchmark: the top ``--top`` (default 25) functions by
cumulative time, written to ``<out-dir>/<benchmark>.txt`` and echoed
to stdout.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "scripts"))

from run_benchmarks import BENCHMARKS  # noqa: E402

#: The hot paths worth a call tree: the campaign engine pair whose
#: ratio is the cross-cell speedup claim, and the store round-trips.
DEFAULT_PROFILED = (
    "batched_campaign",
    "campaign_cross_cell",
    "campaign_cross_cell_percell",
    "store_roundtrip",
    "store_roundtrip_binary",
)


def profile_one(name: str, top: int) -> str:
    fn = BENCHMARKS[name]
    cleanup = fn()  # untimed warmup, same as the timing harness
    if callable(cleanup):
        cleanup()
    profiler = cProfile.Profile()
    profiler.enable()
    cleanup = fn()
    profiler.disable()
    if callable(cleanup):
        cleanup()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "names",
        nargs="*",
        default=None,
        help=f"benchmarks to profile (default: {', '.join(DEFAULT_PROFILED)})",
    )
    parser.add_argument(
        "--out-dir",
        default=os.path.join(REPO, "benchmarks", "out", "profiles"),
        help="directory for the per-benchmark reports",
    )
    parser.add_argument(
        "--top", type=int, default=25, help="rows per report (cumulative)"
    )
    args = parser.parse_args()

    names = args.names or list(DEFAULT_PROFILED)
    unknown = sorted(set(names) - set(BENCHMARKS))
    if unknown:
        parser.error(f"unknown benchmarks: {', '.join(unknown)}")

    os.makedirs(args.out_dir, exist_ok=True)
    for name in names:
        report = profile_one(name, args.top)
        path = os.path.join(args.out_dir, f"{name}.txt")
        with open(path, "w") as f:
            f.write(report)
        print(f"== {name} -> {path}")
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
