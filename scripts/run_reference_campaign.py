#!/usr/bin/env python3
"""Reference campaign for EXPERIMENTS.md: Figure 2 + headline numbers.

Runs the testbed campaign with the deployment estimator (interference
guarantee combined with leave-one-out) and, separately, with the pure
empirical estimator, writing JSON snapshots to scripts/out/.

Engines (``--engine``):

* ``batched`` (default) — the :mod:`repro.sim` Monte-Carlo engine:
  analytic slot-aware per-pattern loss tables, then vectorised round
  batches.  Minutes of per-packet simulation become seconds.
* ``packet`` — the per-packet :class:`repro.core.session.ProtocolSession`
  ground truth (the original reference path; slow).
* ``both`` — run both and write both snapshots (cross-validation).

Sharding (``--workers N``, ``--executor thread|process|auto``):
placements are independent experiments with private
SeedSequence-derived RNG streams, so sharded runs are bit-identical to
serial ones at the same seed.  ``auto`` (the default) picks a process
pool for large placement grids and threads for small ones.

Persistence (``--store URI``, ``--resume``): every completed
experiment is appended to a content-keyed record shard the moment it
finishes (see :mod:`repro.store`); with ``--resume`` a re-run loads
finished experiments instead of recomputing them, so an interrupted
campaign restarts from the last completed placement and ends
bit-identical to an uninterrupted run.  The store target is a URI
selecting the backend — ``file:DIR`` (a bare path means the same),
``sqlite:PATH.db`` or ``mem:NAME`` — and every backend gives the same
crash-safety contract (see ``tests/store/conformance``).  With a
store, the summary tables are computed by *streaming* the stored
records through the merge-able accumulators in
:mod:`repro.analysis.stats` — the experiment population is never
materialised.  ``--export-store URI`` copies the finished store
(shards byte-for-byte, plus manifests) to a second backend at exit —
the durability hand-off for a ``mem:`` drill.

Multi-host sweeps (``--manifest NAME``, ``--worker``,
``--workers-per-host N``): with a manifest, each campaign variant is
saved as a named :class:`repro.store.SweepManifest` next to the shards
(``NAME-<engine>-<variant>``) and drained through the crash-safe
:class:`repro.store.WorkQueue` — any number of script invocations
pointed at the same store (one host sharing a directory or sqlite
file, or many hosts sharing a filesystem) drain the sweep together,
SIGKILLed workers' leases expire and are reclaimed, and the final
aggregates are bit-identical to a serial run.  ``--workers-per-host
N`` forks N-1 extra drain processes locally; ``--worker`` joins a
sweep without writing JSON snapshots (for secondary hosts).
``sweep-status`` reports per-manifest done/claimed/stale/pending
counts:

.. code-block:: text

    python scripts/run_reference_campaign.py sweep-status --store URI
"""

import argparse
import json
import multiprocessing
import os
import sys
import time

import numpy as np

from repro import SessionConfig, Testbed, TestbedConfig
from repro.analysis import (
    CampaignConfig,
    experiment_store_key,
    run_campaign,
    summarize_reliability,
)
from repro.core import CombinedEstimator, LeaveOneOutEstimator
from repro.sim import (
    CombinedEstimatorSpec,
    FixedFractionEstimatorSpec,
    LeaveOneOutEstimatorSpec,
)
from repro.store import (
    SweepManifest,
    WorkQueue,
    copy_store,
    list_manifests,
    open_store,
)
from repro.store.aggregate import stream_aggregates
from repro.testbed.estimator import (
    InterferenceAwareEstimator,
    calibrate_min_jam_loss,
)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Batched-engine batch size per leader — passed to run_campaign AND to
#: experiment_store_key, which must agree or the streamed summaries
#: would silently miss every shard.
ROUNDS_PER_LEADER = 8


class CombinedFactory:
    """Per-placement combined estimator, as a picklable callable so the
    packet engine can shard across a process pool."""

    def __init__(self, min_jam_loss):
        self.min_jam_loss = min_jam_loss

    def __call__(self, testbed, placement):
        ia = InterferenceAwareEstimator(
            testbed.interference,
            testbed.config.geometry,
            self.min_jam_loss,
            candidate_cells=testbed.eve_candidate_cells(placement),
        )
        return CombinedEstimator([ia, LeaveOneOutEstimator(rate_margin=0.02)])


def loo_factory(testbed, placement):
    return LeaveOneOutEstimator(rate_margin=0.05)


def combined_spec(min_jam_loss):
    """Declarative twin of combined_factory: the interference guarantee
    is a fixed-fraction floor at the calibrated minimum jam loss."""
    return CombinedEstimatorSpec(
        children=(
            FixedFractionEstimatorSpec(fraction=min_jam_loss),
            LeaveOneOutEstimatorSpec(rate_margin=0.02),
        )
    )


def campaign_to_json(result):
    return [
        {
            "n": r.n_terminals,
            "eve_cell": r.placement.eve_cell,
            "cells": list(r.placement.terminal_cells),
            "efficiency": r.efficiency,
            "reliability": r.reliability,
            "secret_bits": r.secret_bits,
            "transmitted_bits": r.transmitted_bits,
        }
        for r in result.records
    ]


def engine_variants(engine, pmin):
    """The two estimator variants, as run_campaign keyword arguments."""
    if engine == "packet":
        return (
            ("combined", dict(estimator_factory=CombinedFactory(pmin))),
            ("loo", dict(estimator_factory=loo_factory)),
        )
    return (
        ("combined", dict(estimator_spec=combined_spec(pmin))),
        ("loo", dict(estimator_spec=LeaveOneOutEstimatorSpec(0.05))),
    )


def build_testbed():
    return Testbed(TestbedConfig(interferer_power_dbm=10.0))


def build_config(eve_cells):
    session = SessionConfig(
        n_x_packets=270, payload_bytes=100, secrecy_slack=1, z_cost_factor=2.5
    )
    return CampaignConfig(
        session=session,
        seed=2012,
        max_placements_per_n=18,
        group_sizes=(3, 4, 5, 6, 7, 8),
        eve_extra_cells=tuple(eve_cells),
    )


def manifest_name(base, engine, label):
    """One manifest per (engine, estimator variant) of the sweep."""
    return f"{base}-{engine}-{label}"


def _drain_worker(store_uri, base_name, engine, label, pmin, eve_cells):
    """One extra drain process of a manifest sweep (module-level so it
    forks/spawns cleanly).  Errors are fatal to this worker only: its
    leases expire and surviving workers reclaim the work."""
    testbed = build_testbed()
    config = build_config(eve_cells)
    kwargs = dict(engine_variants(engine, pmin))[label]
    run_campaign(
        testbed,
        config=config,
        engine=engine,
        store=open_store(store_uri),
        manifest=manifest_name(base_name, engine, label),
        rounds_per_leader=ROUNDS_PER_LEADER,
        **kwargs,
    )


def sweep_status(argv):
    """The ``sweep-status`` subcommand: per-manifest queue progress."""
    parser = argparse.ArgumentParser(
        prog="run_reference_campaign.py sweep-status",
        description="Report done/claimed/stale/pending counts for every "
        "sweep manifest in a store directory.",
    )
    parser.add_argument("--store", metavar="URI", required=True)
    parser.add_argument(
        "--manifest",
        metavar="PREFIX",
        default=None,
        help="only manifests whose name starts with PREFIX",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="judge claimed-vs-stale with the timeout the sweep's "
        "workers actually use (default: the library default)",
    )
    args = parser.parse_args(argv)
    # Status is read-only: never create store state as a side effect,
    # and an empty (or absent) store is a clean zero summary, not an
    # error — "nothing running yet" is a normal sweep state.
    try:
        store = open_store(args.store, create=False)
    except FileNotFoundError:
        print(f"{args.store}: 0 manifests (store does not exist)", flush=True)
        return 0
    names = [
        name
        for name in list_manifests(store)
        if args.manifest is None or name.startswith(args.manifest)
    ]
    if not names:
        print(f"{args.store}: 0 manifests", flush=True)
        return 0
    for name in names:
        queue_kwargs = (
            {} if args.lease_timeout is None
            else {"lease_timeout": args.lease_timeout}
        )
        try:
            sweep = SweepManifest.load(store, name)
            status = WorkQueue(store, sweep, **queue_kwargs).status()
        except Exception as exc:  # torn write, foreign file: report and go on
            print(f"{name}: unreadable manifest ({exc})", flush=True)
            continue
        print(
            f"{name} (v{sweep.version}, {sweep.kind}): "
            f"{status.done}/{status.total} done, "
            f"{status.claimed} claimed, {status.stale} stale, "
            f"{status.pending} pending",
            flush=True,
        )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine",
        choices=("batched", "packet", "both"),
        default="batched",
        help="simulation engine (default: batched; packet = ground truth)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard placements across N workers (bit-identical to serial)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process", "auto"),
        default="auto",
        help="worker pool kind (auto: process pool for large grids; "
        "process sidesteps the GIL for --engine packet)",
    )
    parser.add_argument(
        "--store",
        metavar="URI",
        default=None,
        help="persist each completed experiment to a content-keyed shard "
        "in the store at URI — file:DIR (a bare path means the same), "
        "sqlite:PATH.db or mem:NAME (crash-safe; summaries then stream "
        "from the store)",
    )
    parser.add_argument(
        "--export-store",
        metavar="URI",
        default=None,
        help="with --store: after the campaign, copy every shard "
        "byte-for-byte (plus manifests) to a second store — the "
        "durability hand-off when the working store is mem:NAME",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --store: load already-completed experiments from the "
        "store instead of recomputing them (bit-identical to an "
        "uninterrupted run)",
    )
    parser.add_argument(
        "--eve-cells",
        type=int,
        nargs="*",
        default=(),
        metavar="CELL",
        help="extra antenna cells for a multi-antenna Eve (grid cells "
        "0-8); placements whose terminals occupy one of them are "
        "skipped, and both engines model Eve as capturing a packet "
        "when any antenna does",
    )
    parser.add_argument(
        "--manifest",
        metavar="NAME",
        default=None,
        help="with --store: save each variant's work list as a sweep "
        "manifest (NAME-<engine>-<variant>) and drain it through the "
        "crash-safe work queue — concurrent invocations against the "
        "same store share the sweep",
    )
    parser.add_argument(
        "--worker",
        action="store_true",
        help="with --manifest: act as a drain worker only (no JSON "
        "snapshots written) — the mode for secondary hosts joining a "
        "sweep",
    )
    parser.add_argument(
        "--workers-per-host",
        type=int,
        default=1,
        metavar="N",
        help="with --manifest: fork N-1 extra drain processes on this "
        "host, each a full worker of the sweep (default 1)",
    )
    args = parser.parse_args()
    engines = ("batched", "packet") if args.engine == "both" else (args.engine,)
    if args.resume and args.store is None:
        parser.error("--resume requires --store DIR")
    if args.manifest is not None and args.store is None:
        parser.error("--manifest requires --store DIR")
    if args.worker and args.manifest is None:
        parser.error("--worker requires --manifest NAME")
    if args.workers_per_host < 1:
        parser.error("--workers-per-host must be >= 1")
    if args.workers_per_host > 1 and args.manifest is None:
        parser.error("--workers-per-host requires --manifest NAME")
    if args.export_store is not None and args.store is None:
        parser.error("--export-store requires --store URI")
    store = open_store(args.store) if args.store is not None else None
    if store is not None and store.backend.scheme == "mem":
        if args.workers_per_host > 1 or args.worker:
            # A mem: store lives in this process only; a forked drain
            # worker would fill a private copy and silently diverge.
            parser.error("mem: stores cannot be shared across processes")

    os.makedirs(OUT_DIR, exist_ok=True)
    testbed = build_testbed()
    rng = np.random.default_rng(0)
    t0 = time.perf_counter()
    pmin = calibrate_min_jam_loss(testbed, rng, trials=250)
    print(f"min_jam_loss = {pmin:.3f} ({time.perf_counter()-t0:.0f}s)", flush=True)

    config = build_config(args.eve_cells)
    if args.eve_cells:
        print(f"multi-antenna Eve: extra cells {tuple(args.eve_cells)}", flush=True)

    for engine in engines:
        suffix = "" if engine == "packet" else f"_{engine}"
        if args.eve_cells:
            suffix += "_eve" + "-".join(str(c) for c in args.eve_cells)
        for label, kwargs in engine_variants(engine, pmin):
            t1 = time.perf_counter()
            sweep_name = (
                manifest_name(args.manifest, engine, label)
                if args.manifest is not None
                else None
            )
            extra_workers = []
            if sweep_name is not None and args.workers_per_host > 1:
                # Fork the extra drain processes; the parent is the
                # N-th worker, so the existing snapshot/summary path
                # below keeps working unchanged.
                for _ in range(args.workers_per_host - 1):
                    proc = multiprocessing.Process(
                        target=_drain_worker,
                        args=(
                            args.store,
                            args.manifest,
                            engine,
                            label,
                            pmin,
                            tuple(args.eve_cells),
                        ),
                    )
                    proc.start()
                    extra_workers.append(proc)
            try:
                result = run_campaign(
                    testbed,
                    config=config,
                    progress=lambda n, pl: None,
                    engine=engine,
                    max_workers=args.workers,
                    executor=args.executor,
                    store=store,
                    # Manifest mode always resumes: completion is the
                    # store's shards, which is what lets concurrent
                    # workers share the sweep.
                    resume=True if sweep_name is not None else args.resume,
                    rounds_per_leader=ROUNDS_PER_LEADER,
                    manifest=sweep_name,
                    **kwargs,
                )
            finally:
                for proc in extra_workers:
                    proc.join()
            if not args.worker:
                path = os.path.join(OUT_DIR, f"campaign_{label}{suffix}.json")
                with open(path, "w") as f:
                    json.dump(
                        {
                            "min_jam_loss": pmin,
                            "engine": engine,
                            "records": campaign_to_json(result),
                        },
                        f,
                        indent=1,
                    )
                print(
                    f"{engine}/{label}: {len(result.records)} experiments in "
                    f"{time.perf_counter()-t1:.0f}s -> {path}",
                    flush=True,
                )
            else:
                print(
                    f"{engine}/{label}: sweep {sweep_name} drained in "
                    f"{time.perf_counter()-t1:.0f}s "
                    f"({len(result.records)} experiments complete)",
                    flush=True,
                )
            groups = None
            if sweep_name is not None:
                # The manifest already lists this variant's shard keys
                # — scope the streamed summaries without recomputing a
                # single fingerprint.
                groups = stream_aggregates(store, manifest=sweep_name)
            elif store is not None:
                # Streaming path: fold this variant's stored shards
                # through the merge-able accumulators — the experiment
                # population is never materialised, however large the
                # sweep.  Keys scope the shared store to this variant.
                identity = kwargs.get("estimator_spec") or kwargs.get(
                    "estimator_factory"
                )
                keys = [
                    experiment_store_key(
                        testbed, config, engine, identity, r.placement,
                        ROUNDS_PER_LEADER,
                    )
                    for r in result.records
                ]
                groups = stream_aggregates(store, keys)
                if result.records and not groups:
                    # Keys missed every shard: the key derivation above
                    # disagrees with run_campaign's.  Fall back to the
                    # in-memory summaries rather than printing nothing.
                    print(
                        "  WARNING: no stored shards matched this "
                        "variant's keys; summarising in memory",
                        flush=True,
                    )
                    groups = None
            if groups is not None:
                for n, agg in sorted(groups.items()):
                    if not agg.reliability:
                        print(f"  n={n}: no secret produced", flush=True)
                        continue
                    s = agg.reliability_summary()
                    print(
                        f"  n={n}: rel min={s.minimum:.2f} p95={s.p95:.2f} "
                        f"mean={s.mean:.2f} med={s.median:.2f} | "
                        f"eff min={agg.efficiency.minimum:.4f} "
                        f"mean={agg.efficiency.mean:.4f}",
                        flush=True,
                    )
                continue
            for n in result.group_sizes():
                rels = result.reliabilities(n)
                if not rels:
                    # Every experiment at this n produced zero secret
                    # (NaN reliability, excluded from aggregates).
                    print(f"  n={n}: no secret produced", flush=True)
                    continue
                s = summarize_reliability(n, rels)
                effs = result.efficiencies(n)
                print(
                    f"  n={n}: rel min={s.minimum:.2f} p95={s.p95:.2f} "
                    f"mean={s.mean:.2f} med={s.median:.2f} | "
                    f"eff min={min(effs):.4f} mean={np.mean(effs):.4f}",
                    flush=True,
                )
    if args.export_store is not None:
        target = open_store(args.export_store)
        copied = copy_store(store, target)
        print(f"exported {copied} shard(s) -> {target.uri}", flush=True)


if __name__ == "__main__":
    # Subcommand dispatch: ``sweep-status`` is a read-only progress
    # report; everything else is the campaign runner's flag interface.
    if len(sys.argv) > 1 and sys.argv[1] == "sweep-status":
        sys.exit(sweep_status(sys.argv[2:]))
    main()
