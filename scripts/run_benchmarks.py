#!/usr/bin/env python3
"""Hot-path benchmark harness: the CI perf gate's measurement side.

Times the repo's campaign-scale hot paths — the batched campaign
engine, the analytic testbed PER-table bridge, the allocation LP, the
realised transportation flow, and the campaign store round-trip — and
emits a machine-readable ``BENCH_<label>.json``.  CI runs this on
every push, uploads the artifact, and fails the build when a hot path
regresses more than the threshold against the committed
``benchmarks/baseline.json``.

Modes:

* default — measure and write ``BENCH_<label>.json`` to ``--out-dir``.
* ``--check BASELINE`` — additionally compare against a baseline file
  and exit non-zero on any >``--threshold`` (default 25%) regression.
* ``--update-baseline`` — rewrite ``benchmarks/baseline.json`` from
  this run (commit the result when a deliberate change moves a hot
  path).

Comparisons use each benchmark's *best* wall time (minimum over
``--repeats`` runs — the least noise-sensitive location statistic) and
are normalised by the ``calibration`` benchmark, a fixed numpy
workload that measures the host's speed: a CI runner that is uniformly
2x slower than the baseline machine shifts every benchmark *and* the
calibration equally, so only relative regressions trip the gate.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import shutil
import sys
import tempfile
import time

import numpy as np

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.analysis.stats import StreamingMoments  # noqa: E402
from repro.core.eve import round_leakage  # noqa: E402
from repro.service import (  # noqa: E402
    ServiceConfig,
    build_reference_session,
    run_load,
    run_memory_group,
)
from repro.sim import (  # noqa: E402
    CampaignRunner,
    CollusionEstimatorSpec,
    CombinedEstimatorSpec,
    FixedFractionEstimatorSpec,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    ScenarioGrid,
)
from repro.store import open_store  # noqa: E402
from repro.store.store import CampaignStore  # noqa: E402
from repro.testbed.deployment import Testbed, TestbedConfig  # noqa: E402
from repro.testbed.pertable import placement_schedule_specs  # noqa: E402
from repro.testbed.placements import Placement  # noqa: E402
from repro.theory.allocation import (  # noqa: E402
    clear_realised_flow_cache,
    realised_support_flow,
)
from repro.theory.efficiency import (  # noqa: E402
    clear_efficiency_cache,
    group_allocation_profile,
)

DEFAULT_BASELINE = os.path.join(REPO, "benchmarks", "baseline.json")


# -- the benchmarks -------------------------------------------------------


def bench_calibration() -> None:
    """Fixed numpy workload measuring raw host speed (the normaliser).

    Deliberately elementwise-only: BLAS-free so the factor does not
    scale with the runner's thread count, and allocation-light so it
    tracks the single-core arithmetic speed the gated benchmarks
    (campaign engine, LP, flow) are actually bound by.
    """
    rng = np.random.default_rng(0)
    a = rng.random(2_000_000)
    for _ in range(8):
        a = np.tanh(a) + np.sqrt(np.abs(a) + 0.5)
        a -= a.mean()
    float(np.sort(a)[::4].sum())


def bench_batched_campaign() -> None:
    """The tentpole hot path: a multi-cell batched campaign, serial."""
    grid = ScenarioGrid(
        group_sizes=(3, 4, 5),
        loss_models=(IIDLossSpec(0.3), IIDLossSpec(0.5)),
        estimators=(LeaveOneOutEstimatorSpec(rate_margin=0.05),),
        rounds=120,
        n_x_packets=100,
    )
    CampaignRunner(seed=7).run(grid)


#: Many cells per loss model: one stack signature (same n, loss,
#: adversary, N) spanning the estimator-policy axis, the shape the
#: cross-cell kernels amortise over.  Shared by the stacked/per-cell
#: benchmark pair so their ratio isolates the kernel batching itself.
_CROSS_CELL_GRID = ScenarioGrid(
    group_sizes=(4,),
    loss_models=(IIDLossSpec(0.4),),
    estimators=(
        OracleEstimatorSpec(),
        LeaveOneOutEstimatorSpec(rate_margin=0.05),
        LeaveOneOutEstimatorSpec(rate_margin=0.1),
        FixedFractionEstimatorSpec(fraction=0.5),
        FixedFractionEstimatorSpec(fraction=0.7),
        CollusionEstimatorSpec(k=2),
        CombinedEstimatorSpec(
            children=(
                FixedFractionEstimatorSpec(fraction=0.5),
                LeaveOneOutEstimatorSpec(rate_margin=0.05),
            )
        ),
    ),
    rounds=150,
    n_x_packets=100,
)


def bench_campaign_cross_cell() -> None:
    """Seven same-signature cells through one stacked kernel pass."""
    CampaignRunner(seed=7).run(_CROSS_CELL_GRID)


def bench_campaign_cross_cell_percell() -> None:
    """The same grid on the historical one-engine-per-cell path: the
    denominator of the cross-cell speedup claim."""
    CampaignRunner(seed=7, cell_batching=False).run(_CROSS_CELL_GRID)


def bench_pertable_bridge() -> None:
    """Analytic per-(pattern, tx, rx) PER table for one placement."""
    testbed = Testbed(TestbedConfig(interferer_power_dbm=10.0))
    placement = Placement(eve_cell=4, terminal_cells=(0, 2, 6, 8))
    placement_schedule_specs(testbed, placement, np.random.default_rng(3))


def bench_allocation_lp() -> None:
    """Cold allocation-LP solves across the paper's group sizes."""
    clear_efficiency_cache()
    for n in (3, 5, 8):
        group_allocation_profile(
            n, 0.5, z_cost_factor=2.0, support_feasible=True, support_rate=0.45
        )


def bench_realised_flow() -> None:
    """Cold realised-assignment flows on representative histograms."""
    clear_realised_flow_cache()
    rng = np.random.default_rng(5)
    for _ in range(120):
        cells = tuple(
            (int(mask), int(rng.integers(1, 30))) for mask in (1, 2, 3, 5, 6, 7)
        )
        demands = tuple(
            (int(mask), int(rng.integers(0, 8))) for mask in (1, 3, 7)
        )
        realised_support_flow(cells, demands, top_up=True)


#: The store round-trip workload: 300 experiment records, one per
#: shard, persisted in 75-record batched flushes (the way a stacked
#: campaign group checkpoints) and streamed back deduped.
_STORE_RECORD = {
    "kind": "experiment",
    "n_terminals": 4,
    "placement": {"__spec__": "Placement", "eve_cell": 4,
                  "terminal_cells": [0, 2, 6, 8]},
    "efficiency": 0.0421,
    "reliability": 0.93,
    "secret_bits": 4000,
    "transmitted_bits": 95000,
}
_STORE_FLUSH = 75


def _store_roundtrip(store: CampaignStore) -> None:
    for start in range(0, 300, _STORE_FLUSH):
        store.append_batch(
            (f"{i:020x}", dict(_STORE_RECORD, secret_bits=i))
            for i in range(start, start + _STORE_FLUSH)
        )
    total = sum(1 for _ in store.stream())
    assert total == 300


def bench_store_roundtrip():
    """Append + dedupe-read 300 records in batched durable flushes.

    The 300-file teardown is as expensive as the round-trip itself and
    is not the store's work, so it is returned as an untimed cleanup.
    """
    root = tempfile.mkdtemp(prefix="bench-store-")
    _store_roundtrip(CampaignStore(root))
    return lambda: shutil.rmtree(root, ignore_errors=True)


def bench_store_roundtrip_binary():
    """The same round-trip under the length-prefixed binary codec."""
    root = tempfile.mkdtemp(prefix="bench-store-rbin-")
    _store_roundtrip(open_store(f"file:{root}?codec=binary"))
    return lambda: shutil.rmtree(root, ignore_errors=True)


#: Small protocol sizing for the service benchmarks: the gate watches
#: the *service machinery* (framing, MACs, asyncio pumping, HKDF), so
#: the per-session coding work is kept modest and constant.
_SERVICE_BENCH_CONFIG = ServiceConfig(n_x_packets=24, payload_bytes=16)


def bench_service_handshake() -> None:
    """Five sequential full handshakes over in-memory transports."""

    async def sessions() -> None:
        for nonce in range(5):
            keys = await run_memory_group(
                _SERVICE_BENCH_CONFIG, "alice", ("bob",), nonce=nonce
            )
            assert keys["alice"].material == keys["bob"].material

    asyncio.run(sessions())


def bench_leakage_accounting() -> None:
    """The measured-secrecy hot loop: rank-oracle ``round_leakage``
    over one round's coefficients, repeated across reception sets.

    Both service engines (and the per-packet simulator) pay this per
    round, so the gate watches the accounting itself — isolated from
    the handshake machinery timed by ``service_handshake``.
    """
    config = ServiceConfig(n_x_packets=64, payload_bytes=16)
    session = build_reference_session(config, "alice", ("bob", "carol"))
    outcome = session.run_round("alice", 0)
    all_ids = list(range(config.n_x_packets))
    for stride in range(2, 202):
        report = round_leakage(
            outcome.allocation,
            outcome.plan,
            frozenset(all_ids[:: stride % 5 + 2]),
            all_ids,
        )
        assert 0 <= report.hidden_dims <= report.secret_dims


def bench_service_concurrent() -> None:
    """100 concurrent sessions through the load generator (one loop)."""
    report = asyncio.run(run_load(_SERVICE_BENCH_CONFIG, 100, concurrency=50))
    assert report.established == report.sessions, report.failure_types


BENCHMARKS = {
    "calibration": bench_calibration,
    "batched_campaign": bench_batched_campaign,
    "campaign_cross_cell": bench_campaign_cross_cell,
    "campaign_cross_cell_percell": bench_campaign_cross_cell_percell,
    "pertable_bridge": bench_pertable_bridge,
    "allocation_lp": bench_allocation_lp,
    "realised_flow": bench_realised_flow,
    "store_roundtrip": bench_store_roundtrip,
    "store_roundtrip_binary": bench_store_roundtrip_binary,
    "service_handshake": bench_service_handshake,
    "service_concurrent": bench_service_concurrent,
    "leakage_accounting": bench_leakage_accounting,
}

#: Per-benchmark slowdown allowances overriding ``--threshold``.  The
#: store round-trip is fsync-bound: CI ephemeral disks legitimately
#: vary several-fold in sync latency, which the CPU calibration factor
#: cannot cancel, so it gates only against order-of-magnitude blowups
#: (an accidental O(n^2) rescan, a lost batching).
THRESHOLD_OVERRIDES = {
    "store_roundtrip": 3.0,
    "store_roundtrip_binary": 3.0,
}


# -- harness --------------------------------------------------------------


def run_benchmarks(repeats: int) -> dict:
    """Time every benchmark; a crashing one becomes an ``error`` row.

    One broken hot path must not hide the others' numbers (or their
    regressions), so the harness records the failure and keeps
    measuring; the caller turns error rows into a non-zero exit.

    A benchmark may return a callable: per-run teardown (deleting a
    scratch store, say) the clock must not charge to the hot path.  It
    runs after the timer stops.
    """
    results = {}
    for name, fn in BENCHMARKS.items():
        try:
            cleanup = fn()  # untimed warmup (imports, allocator, cache)
            if callable(cleanup):
                cleanup()
            moments = StreamingMoments()
            for _ in range(repeats):
                t0 = time.perf_counter()
                cleanup = fn()
                moments.update(time.perf_counter() - t0)
                if callable(cleanup):
                    cleanup()
        except Exception as exc:
            results[name] = {"error": f"{type(exc).__name__}: {exc}"}
            print(f"{name:28s} ERROR {type(exc).__name__}: {exc}", flush=True)
            continue
        results[name] = {
            "best_s": moments.minimum,
            "mean_s": moments.mean,
            "std_s": moments.std if moments.count > 1 else 0.0,
            "repeats": repeats,
        }
        print(
            f"{name:28s} best {moments.minimum * 1e3:8.1f} ms   "
            f"mean {moments.mean * 1e3:8.1f} ms",
            flush=True,
        )
    return results


def check_against_baseline(
    current: dict, baseline: dict, threshold: float
) -> int:
    """Compare best times, calibration-normalised; returns exit code."""
    cur_cal = current.get("calibration", {}).get("best_s")
    base_cal = baseline.get("calibration", {}).get("best_s")
    normalise = bool(cur_cal and base_cal)
    if not normalise:
        print("calibration benchmark missing: comparing raw wall times")
    failures = []
    for name, base in sorted(baseline.items()):
        if name == "calibration":
            continue
        if name not in current:
            failures.append(f"{name}: present in baseline but not measured")
            continue
        if "error" in current[name]:
            failures.append(f"{name}: crashed ({current[name]['error']})")
            print(f"{name:28s}    ERROR   {current[name]['error']}")
            continue
        ratio = current[name]["best_s"] / base["best_s"]
        if normalise:
            ratio /= cur_cal / base_cal
        allowed = THRESHOLD_OVERRIDES.get(name, threshold)
        verdict = "ok"
        if ratio > 1.0 + allowed:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {ratio:.2f}x the baseline "
                f"(threshold {1.0 + allowed:.2f}x)"
            )
        elif ratio < 1.0 - allowed:
            verdict = "faster (consider --update-baseline)"
        print(f"{name:28s} {ratio:6.2f}x baseline   {verdict}")
    for name in sorted(set(current) - set(baseline) - {"calibration"}):
        print(f"{name:28s} new benchmark (no baseline entry)")
    if failures:
        # The full list in one run: a gate that stops at the first
        # regressed row hides every row behind it.
        print(
            f"\nbenchmark regression gate FAILED ({len(failures)} "
            f"row{'s' if len(failures) != 1 else ''}):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--label",
        default="local",
        help="artifact label: the output file is BENCH_<label>.json "
        "(CI passes the commit SHA)",
    )
    parser.add_argument(
        "--out-dir",
        default=REPO,
        help="directory for BENCH_<label>.json (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per benchmark"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare against this baseline JSON and fail on regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative slowdown that fails the gate (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"rewrite {os.path.relpath(DEFAULT_BASELINE, REPO)} from this run",
    )
    args = parser.parse_args()

    results = run_benchmarks(repeats=args.repeats)
    errors = sorted(name for name, row in results.items() if "error" in row)
    payload = {
        "label": args.label,
        "recorded_unix": time.time(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    os.makedirs(args.out_dir, exist_ok=True)
    out_path = os.path.join(args.out_dir, f"BENCH_{args.label}.json")
    with open(out_path, "w") as f:
        json.dump(payload, f, indent=1)
    print(f"\nwrote {out_path}")

    if args.update_baseline:
        if errors:
            print(
                f"refusing to update the baseline: benchmarks crashed "
                f"({', '.join(errors)})",
                file=sys.stderr,
            )
            return 1
        with open(DEFAULT_BASELINE, "w") as f:
            json.dump(results, f, indent=1)
        print(f"updated {DEFAULT_BASELINE}")

    if args.check is not None:
        with open(args.check) as f:
            baseline = json.load(f)
        # Baselines store either the bare results mapping or a full
        # BENCH_<label>.json payload; accept both.
        baseline = baseline.get("results", baseline)
        print()
        return check_against_baseline(results, baseline, args.threshold)
    if errors:
        print(
            f"\n{len(errors)} benchmark(s) crashed: {', '.join(errors)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
