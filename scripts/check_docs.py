"""Docs lint: every path, module and anchor the guides reference must exist.

Scans ``README.md`` and ``docs/*.md`` for

* relative markdown links — the target file must exist;
* backticked repo paths (``src/...``, ``tests/...``, ...) — the file or
  directory must exist;
* dotted ``repro.*`` references — the module must import and any
  trailing attribute chain must resolve;
* ``path.py`` (`TestClass`) pairs — the named test class/function must
  actually appear in that file.

Run from the repo root with ``PYTHONPATH=src python scripts/check_docs.py``.
Exits non-zero listing every stale reference, so the paper map cannot
silently rot when code moves.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)]*)?\)")
BACKTICK_RE = re.compile(r"`([^`\n]+)`")
PATH_RE = re.compile(
    r"^(?:src|tests|scripts|benchmarks|docs|examples|\.github)/[\w./*-]+$|^[\w-]+\.(?:md|py|yml|toml)$"
)
MODULE_RE = re.compile(r"\brepro(?:\.[A-Za-z_]\w*)+")
ANCHOR_RE = re.compile(r"`([\w./-]+\.py)`\s*\(`([A-Za-z_]\w*)`\)")


def _resolve_dotted(name: str) -> str | None:
    """Import the longest module prefix of ``name``, getattr the rest.

    Returns an error string, or None if the reference resolves.
    """
    parts = name.split(".")
    module = None
    for cut in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        break
    if module is None:
        return f"module {name!r} does not import"
    obj = module
    for attr in parts[cut:]:
        try:
            obj = getattr(obj, attr)
        except AttributeError:
            return f"{module.__name__!r} has no attribute chain {'.'.join(parts[cut:])!r}"
    return None


def check_file(doc: Path) -> list[str]:
    errors: list[str] = []
    text = doc.read_text(encoding="utf-8")

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (doc.parent / target).exists():
            errors.append(f"{doc.name}: broken link -> {target}")

    for match in BACKTICK_RE.finditer(text):
        token = match.group(1).strip()
        if PATH_RE.match(token):
            path = REPO / token
            if "*" in token:
                if not list(path.parent.glob(path.name)):
                    errors.append(f"{doc.name}: glob matches nothing -> {token}")
            elif not path.exists():
                errors.append(f"{doc.name}: missing path -> {token}")

    for match in ANCHOR_RE.finditer(text):
        path_token, symbol = match.groups()
        path = REPO / path_token
        if path.exists() and symbol not in path.read_text(encoding="utf-8"):
            errors.append(f"{doc.name}: {path_token} does not define {symbol!r}")

    for token in sorted(set(MODULE_RE.findall(text))):
        error = _resolve_dotted(token)
        if error is not None:
            errors.append(f"{doc.name}: {error}")

    return errors


def main() -> int:
    docs = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    errors: list[str] = []
    for doc in docs:
        errors.extend(check_file(doc))
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    print(f"checked {len(docs)} docs: {len(errors)} stale reference(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
