"""Ablation: estimator choice (DESIGN.md §3, items 1 and 3).

Compares, on the same placements:

* oracle (ground truth — the construction's ceiling),
* interference-aware (schedule-based, sound),
* leave-one-out (the paper's empirical idea, rate form),
* naive count-based leave-one-out (circular on subset pools — kept to
  demonstrate *why* the rate form matters).

Claims verified: oracle is perfectly secret; the naive estimator leaks
more than the rate-based one; the sound estimator beats both empirical
variants on reliability.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import SessionConfig
from repro.core import (
    LeaveOneOutEstimator,
    NaiveLeaveOneOutEstimator,
    OracleEstimator,
    run_experiment,
)
from repro.testbed import Placement, sample_placements
from repro.testbed.estimator import InterferenceAwareEstimator

SESSION = SessionConfig(n_x_packets=180, payload_bytes=50, secrecy_slack=1)


@pytest.fixture(scope="module")
def ablation(testbed, min_jam_loss):
    placements = sample_placements(6, 6, np.random.default_rng(5))
    rows = {}
    estimators = {
        "oracle": lambda pl: OracleEstimator(),
        "interference": lambda pl: InterferenceAwareEstimator(
            testbed.interference, testbed.config.geometry, min_jam_loss,
            candidate_cells=testbed.eve_candidate_cells(pl),
        ),
        "leave-one-out": lambda pl: LeaveOneOutEstimator(rate_margin=0.05),
        "naive-loo": lambda pl: NaiveLeaveOneOutEstimator(),
    }
    for label, factory in estimators.items():
        rels, effs = [], []
        for pl in placements:
            rng = np.random.default_rng(
                abs(hash((pl.eve_cell, pl.terminal_cells))) % 2**32
            )
            medium, names = testbed.build_medium(pl, rng)
            result = run_experiment(
                medium, names, factory(pl), rng, config=SESSION
            )
            rels.append(result.reliability)
            effs.append(result.efficiency)
        rows[label] = (float(np.mean(rels)), float(np.min(rels)),
                       float(np.mean(effs)))
    return rows


def test_ablation_table(ablation, benchmark):
    benchmark(lambda: dict(ablation))
    lines = [f"{'estimator':>15s} {'rel mean':>9s} {'rel min':>8s} {'eff mean':>9s}"]
    for label, (rel_mean, rel_min, eff_mean) in ablation.items():
        lines.append(f"{label:>15s} {rel_mean:>9.3f} {rel_min:>8.3f} {eff_mean:>9.4f}")
    emit("Ablation: estimator choice (n = 6)", "\n".join(lines))


def test_oracle_is_perfect(ablation):
    assert ablation["oracle"][0] == 1.0
    assert ablation["oracle"][1] == 1.0


def test_rate_form_beats_naive_counting(ablation):
    """The naive per-pool count is circular and must leak more."""
    assert ablation["leave-one-out"][0] >= ablation["naive-loo"][0]


def test_sound_estimator_most_reliable_realisable(ablation):
    assert ablation["interference"][0] >= ablation["leave-one-out"][0] - 1e-9
    assert ablation["interference"][0] >= 0.95


def test_benchmark_estimator_query(benchmark, testbed, min_jam_loss):
    """Timed kernel: one interference-aware budget query."""
    from repro.core.estimator import RoundContext

    est = InterferenceAwareEstimator(
        testbed.interference, testbed.config.geometry, min_jam_loss
    )
    est.begin_round(
        RoundContext(
            leader="T0", reports={}, n_packets=270,
            x_slots={i: i for i in range(270)},
        )
    )
    ids = list(range(270))
    budget = benchmark(est.budget, ids)
    assert budget > 0
