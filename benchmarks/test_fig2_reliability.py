"""Figure 2: reliability vs number of terminals.

Runs the testbed campaign (sampled placements per group size; the full
9*C(8,n) population is available via examples/testbed_campaign.py
--full) with the deployment estimator — the artificial-interference
guarantee combined with leave-one-out — and prints the four series the
paper plots (min / p95 / mean / median).

Shape assertions:

* the median reliability is 1 for every n ("in at least half of the
  node placements we achieve minimum reliability 1"),
* at n = 8 (all cells occupied, full placement population) the minimum
  reliability is >= the paper-matching 0.95,
* a pure empirical estimator is strictly less reliable than the
  deployment estimator — the paper's estimation-error mechanism.

The timed kernel is one full n=4 experiment.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit

# The module-scope campaign fixture runs minutes of per-packet
# simulation; CI's fast job deselects it (-m "not campaign").
pytestmark = pytest.mark.campaign
from repro import SessionConfig
from repro.analysis import (
    CampaignConfig,
    render_figure2_table,
    run_campaign,
    run_placement_experiment,
    summarize_reliability,
)
from repro.core import CombinedEstimator, LeaveOneOutEstimator
from repro.testbed import Placement
from repro.testbed.estimator import InterferenceAwareEstimator

SESSION = SessionConfig(
    n_x_packets=180, payload_bytes=100, secrecy_slack=1, z_cost_factor=2.5
)


def deployment_factory(min_jam_loss):
    def factory(testbed, placement):
        ia = InterferenceAwareEstimator(
            testbed.interference,
            testbed.config.geometry,
            min_jam_loss,
            candidate_cells=testbed.eve_candidate_cells(placement),
        )
        return CombinedEstimator([ia, LeaveOneOutEstimator(rate_margin=0.02)])

    return factory


@pytest.fixture(scope="module")
def campaign(testbed, min_jam_loss):
    config = CampaignConfig(
        session=SESSION,
        seed=2012,
        max_placements_per_n=9,
        group_sizes=(3, 4, 5, 6, 7, 8),
    )
    return run_campaign(testbed, deployment_factory(min_jam_loss), config)


@pytest.fixture(scope="module")
def summaries(campaign):
    return [
        summarize_reliability(n, campaign.reliabilities(n))
        for n in campaign.group_sizes()
    ]


def test_figure2_regenerates(summaries, benchmark):
    table = benchmark(render_figure2_table, summaries)
    emit("Figure 2 (deployment estimator)", table)
    assert [s.n_terminals for s in summaries] == [3, 4, 5, 6, 7, 8]


def test_median_reliability_is_one_for_every_n(summaries):
    for s in summaries:
        assert s.median >= 0.999, f"n={s.n_terminals}: median {s.median}"


def test_n8_minimum_reliability(summaries):
    n8 = next(s for s in summaries if s.n_terminals == 8)
    assert n8.minimum >= 0.95


def test_reliability_series_ordering(summaries):
    for s in summaries:
        assert s.minimum <= s.p95 <= s.median
        assert s.minimum <= s.mean <= 1.0


def test_empirical_estimator_less_reliable(testbed, campaign, benchmark):
    """The paper's mechanism: estimates from terminal evidence alone
    leak; the interference guarantee is what holds reliability up."""
    config = CampaignConfig(
        session=SESSION, seed=2012, max_placements_per_n=6, group_sizes=(6, 8)
    )
    loo = benchmark.pedantic(
        lambda: run_campaign(
            testbed,
            lambda tb, pl: LeaveOneOutEstimator(rate_margin=0.05),
            config,
        ),
        iterations=1,
        rounds=1,
    )
    loo_summary = summarize_reliability(8, loo.reliabilities(8))
    emit(
        "Figure 2 (pure leave-one-out, for contrast)",
        render_figure2_table(
            [summarize_reliability(n, loo.reliabilities(n)) for n in (6, 8)]
        ),
    )
    deployed = summarize_reliability(8, campaign.reliabilities(8))
    assert loo_summary.mean <= deployed.mean + 1e-9


def test_benchmark_one_experiment(benchmark, testbed, min_jam_loss):
    placement = Placement(eve_cell=4, terminal_cells=(0, 2, 6, 8))
    config = CampaignConfig(
        session=SessionConfig(n_x_packets=90, payload_bytes=50,
                              secrecy_slack=1)
    )
    factory = deployment_factory(min_jam_loss)

    def run():
        return run_placement_experiment(testbed, placement, factory, config)

    record = benchmark.pedantic(run, iterations=1, rounds=3)
    assert 0.0 <= record.reliability <= 1.0
