"""Ablation: artificial interference on/off (DESIGN.md §3, item 4).

The paper's §3.3 argument: without engineered noise, Eve — same PHY,
line of sight — may miss (almost) nothing a terminal received, so no
secret can be distilled.  With the rotating jammers, every receiver
(Eve included) misses a guaranteed fraction and the secret rate is
substantial.

Measured with the oracle estimator so the comparison isolates *channel
physics* from estimation error.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import SessionConfig, Testbed, TestbedConfig
from repro.core import OracleEstimator, run_experiment
from repro.testbed import Placement

SESSION = SessionConfig(n_x_packets=180, payload_bytes=50)
PLACEMENT = Placement(eve_cell=4, terminal_cells=(0, 2, 6, 8))


def run_with(testbed, seed=11):
    rng = np.random.default_rng(seed)
    medium, names = testbed.build_medium(PLACEMENT, rng)
    result = run_experiment(medium, names, OracleEstimator(), rng, config=SESSION)
    return result


@pytest.fixture(scope="module")
def on_off():
    noisy = run_with(Testbed(TestbedConfig(interferer_power_dbm=10.0)))
    quiet = run_with(Testbed(TestbedConfig(interference_enabled=False)))
    return noisy, quiet


def test_ablation_table(on_off, benchmark):
    benchmark(lambda: on_off)
    noisy, quiet = on_off
    lines = [
        f"{'config':>16s} {'secret bits':>12s} {'efficiency':>11s} {'reliability':>12s}",
        f"{'interference on':>16s} {noisy.secret_bits:>12d} "
        f"{noisy.efficiency:>11.4f} {noisy.reliability:>12.2f}",
        f"{'interference off':>16s} {quiet.secret_bits:>12d} "
        f"{quiet.efficiency:>11.4f} {quiet.reliability:>12.2f}",
    ]
    emit("Ablation: interference on/off (oracle estimator)", "\n".join(lines))


def test_interference_creates_the_secret_rate(on_off):
    noisy, quiet = on_off
    # Jamming must multiply the distillable secret by a large factor.
    assert noisy.secret_bits > 3 * max(quiet.secret_bits, 1)


def test_both_remain_perfectly_secret_under_oracle(on_off):
    noisy, quiet = on_off
    assert noisy.reliability == 1.0
    assert quiet.reliability == 1.0


def test_sweep_interferer_power():
    """Secret rate grows with interferer power (until jamming saturates
    the terminals too)."""
    rates = []
    for power in (0.0, 6.0, 10.0):
        result = run_with(Testbed(TestbedConfig(interferer_power_dbm=power)))
        rates.append(result.secret_bits)
    lines = [f"{p:>6.1f} dBm -> {bits} secret bits"
             for p, bits in zip((0.0, 6.0, 10.0), rates)]
    emit("Ablation: interferer power sweep", "\n".join(lines))
    assert rates[1] > rates[0]


def test_benchmark_loss_model(benchmark):
    """Timed kernel: one physical-layer loss decision."""
    from repro.net.packet import Packet, PacketKind

    testbed = Testbed(TestbedConfig(interferer_power_dbm=10.0))
    rng = np.random.default_rng(2)
    medium, names = testbed.build_medium(PLACEMENT, rng)
    src = medium.node(names[0])
    dst = medium.node(names[1])
    packet = Packet(
        kind=PacketKind.X_DATA, src=names[0],
        payload=np.zeros(100, dtype=np.uint8),
    )

    def kernel():
        return medium.loss_model.lost(src, dst, packet, 0, rng)

    benchmark(kernel)
