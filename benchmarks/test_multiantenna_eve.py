"""The §6 challenge: multi-antenna Eve.

Sweeps Eve's antenna count on a fixed n = 6 placement, measuring (with
the oracle, i.e. ground truth) how the distillable secret shrinks, and
how the k-collusion estimator restores reliability when Eve is stronger
than the single-antenna model assumed by leave-one-out.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import SessionConfig
from repro.core import (
    CollusionEstimator,
    LeaveOneOutEstimator,
    OracleEstimator,
    run_experiment,
)
from repro.testbed import Placement

SESSION = SessionConfig(n_x_packets=180, payload_bytes=50, secrecy_slack=1)
PLACEMENT = Placement(eve_cell=4, terminal_cells=(0, 1, 2, 3, 5, 6))
SPARE_CELLS = (7, 8)


def run_with(testbed, estimator, extra_cells, seed=17):
    rng = np.random.default_rng(seed)
    medium, names = testbed.build_medium(
        PLACEMENT, rng, eve_extra_cells=tuple(extra_cells)
    )
    return run_experiment(medium, names, estimator, rng, config=SESSION)


@pytest.fixture(scope="module")
def sweep(testbed):
    rows = []
    for k in range(len(SPARE_CELLS) + 1):
        extra = SPARE_CELLS[:k]
        oracle = run_with(testbed, OracleEstimator(), extra)
        loo = run_with(testbed, LeaveOneOutEstimator(rate_margin=0.05), extra)
        collusion = run_with(
            testbed, CollusionEstimator(k=k + 1, rate_margin=0.05), extra
        )
        rows.append((k + 1, oracle, loo, collusion))
    return rows


def test_sweep_table(sweep, benchmark):
    benchmark(lambda: list(sweep))
    lines = [
        f"{'antennas':>8s} {'oracle bits':>11s} "
        f"{'loo rel':>8s} {'collusion rel':>13s} {'collusion eff':>13s}"
    ]
    for k, oracle, loo, collusion in sweep:
        lines.append(
            f"{k:>8d} {oracle.secret_bits:>11d} {loo.reliability:>8.2f} "
            f"{collusion.reliability:>13.2f} {collusion.efficiency:>13.4f}"
        )
    emit("Multi-antenna Eve (n = 6)", "\n".join(lines))


def test_more_antennas_shrink_the_oracle_secret(sweep):
    oracle_bits = [row[1].secret_bits for row in sweep]
    assert oracle_bits[-1] < oracle_bits[0]


def test_oracle_always_perfect(sweep):
    for _, oracle, _, _ in sweep:
        assert oracle.reliability == 1.0


def test_collusion_estimator_holds_reliability(sweep):
    """With k matched to Eve's antennas, the collusion estimator should
    not do worse than single-Eve leave-one-out."""
    for k, _, loo, collusion in sweep:
        assert collusion.reliability >= loo.reliability - 0.05


def test_benchmark_collusion_query(benchmark):
    from repro.core.estimator import RoundContext

    rng = np.random.default_rng(5)
    reports = {
        f"T{i}": frozenset(j for j in range(180) if rng.random() > 0.4)
        for i in range(6)
    }
    est = CollusionEstimator(k=2)
    est.begin_round(
        RoundContext(leader="T0", reports=reports, n_packets=180)
    )
    ids = list(range(90))
    result = benchmark(est.budget, ids)
    assert result >= 0
