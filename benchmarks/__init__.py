"""Benchmark harness: regenerates every figure and table of the paper.

Run with ``pytest benchmarks/ --benchmark-only``; tables print to stdout
(add -s) and persist to benchmarks/out/results.txt.
"""
