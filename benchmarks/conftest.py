"""Shared benchmark fixtures.

Benchmarks double as the figure-regeneration harness: each module
computes one of the paper's tables/figures, prints it (visible with
``pytest benchmarks/ --benchmark-only -s``) and appends it to
``benchmarks/out/results.txt`` so a plain run leaves an artefact.
"""

import os

import numpy as np
import pytest

from repro.testbed.deployment import Testbed, TestbedConfig
from repro.testbed.estimator import calibrate_min_jam_loss

OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "results.txt")


def emit(title: str, text: str) -> None:
    """Print a table and persist it to the benchmark artefact file."""
    banner = f"\n===== {title} =====\n{text}\n"
    print(banner)
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "a") as f:
        f.write(banner)


@pytest.fixture(scope="session")
def testbed():
    """The paper's deployment with the calibrated interferer power."""
    return Testbed(TestbedConfig(interferer_power_dbm=10.0))


@pytest.fixture(scope="session")
def min_jam_loss(testbed):
    rng = np.random.default_rng(0)
    return calibrate_min_jam_loss(testbed, rng, trials=150)
