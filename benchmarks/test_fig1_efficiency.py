"""Figure 1: maximum efficiency vs erasure probability.

Regenerates both curve families (group algorithm solid, unicast dashed)
for n in {2, 3, 6, 10, inf} over the p grid, validates spot points with
the packet-level protocol under an oracle estimator, and asserts the
figure's qualitative claims:

* the group family peaks at 0.25 (n = 2, p = 0.5),
* group efficiency stays bounded away from zero as n grows,
* unicast efficiency collapses with n,
* the packet-level protocol tracks the analytic optimum.

The timed kernel is one LP evaluation (the figure's inner loop).
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import (
    BroadcastMedium,
    Eavesdropper,
    IIDLossModel,
    OracleEstimator,
    ProtocolSession,
    SessionConfig,
    Terminal,
)
from repro.analysis import render_figure1_table
from repro.theory import (
    group_efficiency,
    group_efficiency_infinite,
    unicast_efficiency,
)

P_GRID = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
N_VALUES = [2, 3, 6, 10]


def measured_efficiency(n: int, p: float, seed: int = 7) -> float:
    """One oracle-budgeted round, idealised accounting (x + z packets)."""
    rng = np.random.default_rng(seed)
    names = [f"T{i}" for i in range(n)]
    nodes = [Terminal(name=x) for x in names] + [Eavesdropper(name="eve")]
    medium = BroadcastMedium(nodes, IIDLossModel(p), rng)
    config = SessionConfig(n_x_packets=240, payload_bytes=32)
    session = ProtocolSession(medium, names, OracleEstimator(), rng, config=config)
    result = session.run_round(names[0])
    assert result.leakage.perfect
    return result.secret_packets / (config.n_x_packets + result.plan.total_public)


@pytest.fixture(scope="module")
def figure1_data():
    group_curves = {n: [group_efficiency(n, p) for p in P_GRID] for n in N_VALUES}
    group_curves[math.inf] = [group_efficiency_infinite(p) for p in P_GRID]
    unicast_curves = {
        n: [unicast_efficiency(n, p) for p in P_GRID] for n in N_VALUES
    }
    measured = {
        (n, p): measured_efficiency(n, p)
        for n, p in [(2, 0.5), (3, 0.3), (3, 0.5), (6, 0.5), (6, 0.7)]
    }
    return group_curves, unicast_curves, measured


def test_figure1_regenerates(figure1_data, benchmark):
    group_curves, unicast_curves, measured = figure1_data
    table = benchmark(
        render_figure1_table, P_GRID, group_curves, unicast_curves, measured
    )
    emit("Figure 1", table)
    # Peak of the whole figure: 0.25 at (n=2, p=0.5).
    assert group_curves[2][P_GRID.index(0.5)] == pytest.approx(0.25)
    # Solid family ordering: efficiency decreases with n at every p.
    for j in range(len(P_GRID)):
        column = [group_curves[n][j] for n in N_VALUES]
        column.append(group_curves[math.inf][j])
        for a, b in zip(column, column[1:]):
            assert a >= b - 1e-9


def test_unicast_collapses_but_group_does_not(figure1_data):
    group_curves, unicast_curves, _ = figure1_data
    j = P_GRID.index(0.5)
    # Unicast at n=10 has lost > 60% of its n=2 value...
    assert unicast_curves[10][j] < 0.4 * unicast_curves[2][j]
    # ...while the group algorithm keeps >= 80% even at n = infinity.
    # At p = 0.5 the bound is *tight*: the limit p(1-p)/(1+p^2) = 0.2 is
    # exactly 0.8 of the n=2 value p(1-p) = 0.25, so the comparison must
    # admit the boundary (see tests/theory for the closed-form pin).
    assert group_curves[math.inf][j] >= 0.8 * group_curves[2][j] - 1e-12
    # And the n -> inf limit is strictly positive everywhere inside (0,1).
    assert all(v > 0 for v in group_curves[math.inf])


def test_group_dominates_unicast_everywhere(figure1_data):
    group_curves, unicast_curves, _ = figure1_data
    for n in N_VALUES:
        for g, u in zip(group_curves[n], unicast_curves[n]):
            assert g >= u - 1e-9


def test_packet_level_protocol_tracks_theory(figure1_data):
    group_curves, _, measured = figure1_data
    for (n, p), eff in measured.items():
        optimum = group_efficiency(n, p)
        assert eff <= optimum + 0.02, "protocol cannot beat the optimum"
        assert eff >= 0.55 * optimum, (
            f"protocol at n={n}, p={p} achieved {eff:.3f}, "
            f"far below the {optimum:.3f} optimum"
        )


def test_benchmark_lp_kernel(benchmark):
    """Timed kernel: one finite-n LP solve of the efficiency program."""
    result = benchmark(group_efficiency, 8, 0.5)
    assert 0.15 < result < 0.25
