"""The §4 headline: n = 8, minimum efficiency 0.038 -> 38 secret kbps.

Runs all nine n = 8 placements (the full population, exactly as the
paper did) with the deployment estimator and full bit accounting —
feedback, descriptors, z-contents, ACKs, retransmissions — and prints
the per-placement table.

Shape assertions: reliability 1.0 in every placement (the paper's
r_min = 1 at n = 8) and minimum efficiency within the paper's order of
magnitude (a few secret kbps at 1 Mbps; our simulated room differs from
the authors', DESIGN.md §2).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import SessionConfig
from repro.analysis import (
    CampaignConfig,
    render_headline_table,
    run_campaign,
)
from repro.core import CombinedEstimator, LeaveOneOutEstimator
from repro.testbed.estimator import InterferenceAwareEstimator

SESSION = SessionConfig(
    n_x_packets=270, payload_bytes=100, secrecy_slack=1, z_cost_factor=2.5
)


@pytest.fixture(scope="module")
def headline(testbed, min_jam_loss):
    def factory(tb, placement):
        ia = InterferenceAwareEstimator(
            tb.interference,
            tb.config.geometry,
            min_jam_loss,
            candidate_cells=tb.eve_candidate_cells(placement),
        )
        return CombinedEstimator([ia, LeaveOneOutEstimator(rate_margin=0.02)])

    config = CampaignConfig(
        session=SESSION, seed=2012, max_placements_per_n=None, group_sizes=(8,)
    )
    return run_campaign(testbed, factory, config)


def test_headline_table_regenerates(headline, benchmark):
    records = headline.for_n(8)
    table = benchmark(render_headline_table, records)
    emit("Headline (n = 8)", table)
    assert len(records) == 9  # the full placement population


def test_every_placement_perfectly_secret(headline, benchmark):
    benchmark(lambda: [r.reliability for r in headline.for_n(8)])
    for record in headline.for_n(8):
        assert record.reliability >= 0.99, (
            f"eve@{record.placement.eve_cell}: {record.reliability}"
        )



def test_minimum_efficiency_order_of_magnitude(headline):
    worst = min(r.efficiency for r in headline.for_n(8))
    kbps = worst * 1e3
    # Paper: 38 kbps.  Same order of magnitude on our simulated radios:
    # thousands of secret bits per second, not hundreds or tens.
    assert kbps >= 10.0, f"minimum rate {kbps:.1f} kbps"
    assert kbps <= 120.0, "implausibly above the paper's testbed"


def test_secret_bits_accounted_exactly(headline):
    for record in headline.for_n(8):
        assert record.efficiency == pytest.approx(
            record.secret_bits / record.transmitted_bits
        )


def test_benchmark_gf_rank_kernel(benchmark, rng=np.random.default_rng(3)):
    """Timed kernel: the leakage engine's rank computation at the size
    one n=8 round produces."""
    from repro.gf.linalg import GFMatrix

    z = GFMatrix.random(60, 140, rng)
    s = GFMatrix.random(25, 140, rng)

    def kernel():
        return z.vstack(s).rank() - z.rank()

    hidden = benchmark(kernel)
    assert 0 <= hidden <= 25
