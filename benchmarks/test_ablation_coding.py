"""Ablation: coding construction (DESIGN.md §3, items 1-2).

* **Cauchy vs random coefficients**: random combination matrices lose
  rank with probability ~ rows/256 per block; Cauchy blocks never do.
  We measure decode-failure and secrecy-deficit rates across many
  trials.
* **Flow-balanced vs greedy allocation**: without the max-flow
  assignment, overlapping pools starve late blocks, collapsing L and
  flooding the air with z-packets.

The timed kernel is one y-allocation planning call.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.coding.privacy import build_phase2_matrices, plan_y_allocation
from repro.core.eve import round_leakage
from repro.gf.linalg import GFMatrix
from repro.gf.matrices import cauchy_matrix


def random_matrix_rank_failures(trials=300, rows=12, cols=20, seed=3):
    """How often a random rows x cols matrix fails to reach full rank on
    a random `rows`-column subset (Cauchy never fails)."""
    rng = np.random.default_rng(seed)
    failures = 0
    for _ in range(trials):
        m = GFMatrix.random(rows, cols, rng)
        subset = sorted(rng.choice(cols, size=rows, replace=False))
        if not m.take_cols(subset).is_invertible():
            failures += 1
    return failures / trials


def cauchy_rank_failures(trials=300, rows=12, cols=20, seed=3):
    rng = np.random.default_rng(seed)
    m = cauchy_matrix(rows, cols)
    failures = 0
    for _ in range(trials):
        subset = sorted(rng.choice(cols, size=rows, replace=False))
        if not m.take_cols(subset).is_invertible():
            failures += 1
    return failures / trials


def test_cauchy_vs_random_rank(benchmark):
    random_rate = random_matrix_rank_failures()
    cauchy_rate = cauchy_rank_failures()
    emit(
        "Ablation: combination matrix family",
        f"random coefficients: {random_rate:.3%} rank failures\n"
        f"Cauchy coefficients: {cauchy_rate:.3%} rank failures "
        f"(guaranteed 0 by superregularity)",
    )
    assert cauchy_rate == 0.0
    assert random_rate > 0.0

    # Timed kernel: a single minor-invertibility check.
    m = cauchy_matrix(12, 20)
    benchmark(lambda: m.take_cols(range(12)).is_invertible())


def simulate_secrecy(budget_slop, trials=40, seed=9):
    """Mean reliability when the estimator over-promises by
    ``budget_slop`` (fraction of Eve's true misses)."""
    rng = np.random.default_rng(seed)
    rels = []
    for _ in range(trials):
        n = 40
        reports = {
            t: frozenset(i for i in range(n) if rng.random() > 0.4)
            for t in (1, 2, 3)
        }
        eve_received = frozenset(i for i in range(n) if rng.random() > 0.5)
        eve_missed = set(range(n)) - eve_received

        def budget(ids, exclude=frozenset()):
            true = sum(1 for i in ids if i in eve_missed)
            return (1.0 + budget_slop) * true

        alloc = plan_y_allocation(reports, budget, n)
        plan = build_phase2_matrices(alloc)
        leakage = round_leakage(alloc, plan, eve_received, list(range(n)))
        rels.append(leakage.reliability)
    return float(np.mean(rels))


def test_overpromising_budgets_degrade_reliability():
    """Sensitivity curve: reliability vs estimator optimism."""
    rows = []
    values = {}
    for slop in (0.0, 0.2, 0.5):
        rel = simulate_secrecy(slop)
        values[slop] = rel
        rows.append(f"budget x{1+slop:.1f}: mean reliability {rel:.3f}")
    emit("Ablation: estimator optimism sensitivity", "\n".join(rows))
    assert values[0.0] == 1.0
    assert values[0.5] < values[0.0]
    assert values[0.5] <= values[0.2] + 1e-9


def test_benchmark_allocation_planning(benchmark):
    rng = np.random.default_rng(4)
    n = 180
    reports = {
        t: {i for i in range(n) if rng.random() > 0.4} for t in range(1, 8)
    }

    def budget(ids, exclude=frozenset()):
        return 0.3 * len(ids)

    alloc = benchmark(plan_y_allocation, reports, budget, n)
    assert alloc.total_rows > 0
