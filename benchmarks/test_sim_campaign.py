"""Batched engine vs per-packet loop: agreement and speedup.

The acceptance contract of the batched engine: reproduce the Figure-2
reliability statistics within Monte-Carlo tolerance of the per-packet
:class:`~repro.core.session.ProtocolSession` oracle, and run a
100-round multi-scenario campaign at least 20x faster than the
packet-level loop.  This module measures both and emits the comparison
table alongside the other figure artefacts.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import (
    BroadcastMedium,
    Eavesdropper,
    IIDLossModel,
    LeaveOneOutEstimator,
    OracleEstimator,
    ProtocolSession,
    SessionConfig,
    Terminal,
)
from repro.analysis import summarize_reliability
from repro.sim import (
    CampaignRunner,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    Scenario,
    run_sim_campaign,
)

N_PACKETS = 100
Z_COST = 2.0
# 100 rounds/cell keeps the Monte-Carlo error of each engine's mean
# near 0.025, so the 0.08 agreement band below is ~2.3 sigma of the
# difference; at 40 rounds it was ~1.4 sigma and flipped on reseeding.
ROUNDS_PER_CELL = 100

#: The multi-scenario campaign: 4 cells x 100 rounds = 400 rounds.
CELLS = [
    Scenario(
        n_terminals=n,
        loss=IIDLossSpec(0.4),
        estimator=estimator,
        n_x_packets=N_PACKETS,
        rounds=ROUNDS_PER_CELL,
        z_cost_factor=Z_COST,
    )
    for n in (3, 5)
    for estimator in (
        OracleEstimatorSpec(),
        LeaveOneOutEstimatorSpec(rate_margin=0.05),
    )
]


def packet_estimator(spec):
    if isinstance(spec, OracleEstimatorSpec):
        return OracleEstimator()
    return LeaveOneOutEstimator(rate_margin=spec.rate_margin)


def run_cell_per_packet(cell, seed=11):
    """The packet-level loop: one fresh medium + session per round."""
    names = [f"T{i}" for i in range(cell.n_terminals)]
    effs, rels = [], []
    for k in range(cell.rounds):
        rng = np.random.default_rng(seed + 1009 * k)
        nodes = [Terminal(name=x) for x in names] + [Eavesdropper(name="eve")]
        medium = BroadcastMedium(nodes, IIDLossModel(cell.loss.p), rng)
        config = SessionConfig(
            n_x_packets=cell.n_x_packets,
            payload_bytes=8,
            z_cost_factor=cell.z_cost_factor,
        )
        session = ProtocolSession(
            medium, names, packet_estimator(cell.estimator), rng, config=config
        )
        result = session.run_round(names[0])
        effs.append(
            result.secret_packets
            / (cell.n_x_packets + result.plan.total_public)
        )
        rels.append(result.leakage.reliability)
    return effs, rels


@pytest.fixture(scope="module")
def comparison():
    """Run the same 100-round campaign on both engines, timed."""
    t0 = time.perf_counter()
    packet = {id(cell): run_cell_per_packet(cell) for cell in CELLS}
    packet_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = run_sim_campaign(CELLS, seed=11)
    batched_seconds = time.perf_counter() - t0
    return packet, batched, packet_seconds, batched_seconds


def test_campaign_speedup_at_least_20x(comparison):
    packet, batched, packet_seconds, batched_seconds = comparison
    total_rounds = sum(cell.rounds for cell in CELLS)
    speedup = packet_seconds / batched_seconds
    rows = [
        f"{total_rounds}-round campaign over {len(CELLS)} scenario cells "
        f"(n in {{3, 5}}, p = 0.4, oracle + leave-one-out)",
        f"per-packet loop : {packet_seconds * 1e3:9.1f} ms "
        f"({packet_seconds * 1e3 / total_rounds:6.2f} ms/round)",
        f"batched engine  : {batched_seconds * 1e3:9.1f} ms "
        f"({batched_seconds * 1e3 / total_rounds:6.2f} ms/round)",
        f"speedup         : {speedup:9.1f}x",
    ]
    emit("Batched engine vs per-packet loop", "\n".join(rows))
    assert speedup >= 20.0, f"batched engine only {speedup:.1f}x faster"


def test_figure2_statistics_within_tolerance(comparison):
    """The reliability populations (the Figure-2 series) must agree."""
    packet, batched, _, _ = comparison
    lines = []
    for cell, outcome in zip(CELLS, batched.outcomes):
        _, packet_rels = packet[id(cell)]
        packet_summary = summarize_reliability(cell.n_terminals, packet_rels)
        batched_summary = summarize_reliability(
            cell.n_terminals, outcome.result.reliabilities()
        )
        lines.append(
            f"n={cell.n_terminals} {type(cell.estimator).__name__:28s} "
            f"packet mean={packet_summary.mean:.3f} med={packet_summary.median:.3f} | "
            f"batched mean={batched_summary.mean:.3f} med={batched_summary.median:.3f}"
        )
        if isinstance(cell.estimator, OracleEstimatorSpec):
            # Ground truth budgets: both engines certify perfect secrecy.
            assert packet_summary.minimum == 1.0
            assert batched_summary.minimum == 1.0
        else:
            assert batched_summary.mean == pytest.approx(
                packet_summary.mean, abs=0.08
            )
            # The reliability distribution is a spike at 1.0 plus a
            # tail, so a 40-sample median is noisy when P(rel < 1) sits
            # near 0.5 (it does for n = 5 leave-one-out); hence the
            # wider band than the mean's.
            assert batched_summary.median == pytest.approx(
                packet_summary.median, abs=0.15
            )
            # The realised integral planner must not be optimistic: the
            # batched engine may sit below the per-packet oracle, never
            # meaningfully above it (the old fractional clamp reported
            # ~+0.09 here).
            assert (
                batched_summary.mean <= packet_summary.mean + 0.05
            )
    emit("Figure 2 cross-validation (packet vs batched)", "\n".join(lines))


def test_efficiency_within_tolerance(comparison):
    """Secret rates: the realised planner pays the same integrality and
    flow-assignment costs the session does, so the engines sit in one
    Monte-Carlo band (0.10 absolute covers both samples' spread)."""
    packet, batched, _, _ = comparison
    for cell, outcome in zip(CELLS, batched.outcomes):
        packet_effs, _ = packet[id(cell)]
        assert outcome.result.mean_efficiency == pytest.approx(
            float(np.mean(packet_effs)), abs=0.10
        )


def test_benchmark_batched_campaign(benchmark):
    """Timed kernel: the full 100-round multi-scenario batched campaign."""

    def run():
        return run_sim_campaign(CELLS, seed=11)

    result = benchmark(run)
    assert result.total_rounds == sum(cell.rounds for cell in CELLS)


def test_benchmark_sharded_campaign(benchmark):
    """Same campaign, sharded across 4 workers (cells are independent)."""

    def run():
        return CampaignRunner(seed=11, max_workers=4).run(CELLS)

    result = benchmark.pedantic(run, iterations=1, rounds=3)
    assert result.total_rounds == sum(cell.rounds for cell in CELLS)


@pytest.mark.campaign
def test_slot_aware_bridge_beats_link_probe():
    """The analytic per-pattern PER table must dominate the Monte-Carlo
    link probe it replaced — on top of being slot-aware rather than
    pattern-averaged.  Campaign-marked: wall-clock ratios belong to the
    nightly job, not noisy per-push runners."""
    from repro.analysis import placement_loss_specs
    from repro.testbed import (
        Placement,
        Testbed,
        TestbedConfig,
        placement_schedule_specs,
    )

    testbed = Testbed(TestbedConfig(interferer_power_dbm=10.0))
    placement = Placement(eve_cell=4, terminal_cells=(0, 2, 6, 8))
    t0 = time.perf_counter()
    for i in range(3):
        placement_schedule_specs(testbed, placement, np.random.default_rng(i))
    analytic_seconds = (time.perf_counter() - t0) / 3
    t0 = time.perf_counter()
    for i in range(3):
        placement_loss_specs(
            testbed, placement, np.random.default_rng(i), probe_trials=120
        )
    probe_seconds = (time.perf_counter() - t0) / 3
    speedup = probe_seconds / analytic_seconds
    emit(
        "Slot-aware analytic bridge vs Monte-Carlo link probe",
        f"probe (120 trials): {probe_seconds * 1e3:7.1f} ms/placement\n"
        f"analytic table    : {analytic_seconds * 1e3:7.1f} ms/placement\n"
        f"speedup           : {speedup:7.1f}x",
    )
    assert speedup >= 3.0, f"analytic bridge only {speedup:.1f}x faster"
