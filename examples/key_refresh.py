#!/usr/bin/env python3
"""Continuous key refresh: the paper's §1 motivating application.

Terminals keep running the protocol in the background, depositing each
group secret into a key pool; the pool one-time-pads application
messages and keys one-time MACs, so no long-lived key material ever
exists — stealing a device's state today reveals nothing about
yesterday's (or tomorrow's) traffic.

Run:  python examples/key_refresh.py
"""

import numpy as np

from repro import (
    BroadcastMedium,
    Eavesdropper,
    GroupSecret,
    IIDLossModel,
    OracleEstimator,
    SecretPool,
    SessionConfig,
    Terminal,
    run_experiment,
)
from repro.auth import AuthenticatedChannel


def agree_secret(seed: int) -> GroupSecret:
    """One protocol execution; returns the agreed group secret."""
    rng = np.random.default_rng(seed)
    names = ["alice", "bob", "calvin", "dora"]
    nodes = [Terminal(name=n) for n in names] + [Eavesdropper(name="eve")]
    medium = BroadcastMedium(nodes, IIDLossModel(0.4), rng)
    result = run_experiment(
        medium, names, OracleEstimator(), rng,
        config=SessionConfig(n_x_packets=90, payload_bytes=100),
    )
    assert result.reliability == 1.0
    return GroupSecret(result.group_secret)


def main() -> None:
    # Bootstrap: the one piece of out-of-band information, used once.
    bootstrap = bytes(range(32))
    alice = AuthenticatedChannel.from_bootstrap(bootstrap)
    bob = AuthenticatedChannel.from_bootstrap(bootstrap)

    # Authenticated handshake rides on the bootstrap material...
    hello = b"alice->group: start secret agreement round 0"
    tag = alice.authenticate(hello)
    assert bob.verify_next(hello, tag), "bootstrap authentication failed"
    print(f"bootstrap authenticated handshake ok (tag {tag.hex()})")

    # ...and every subsequent key comes out of thin air.
    pad_pool_alice = SecretPool()
    pad_pool_bob = SecretPool()
    for epoch in range(3):
        secret = agree_secret(seed=100 + epoch)
        alice.refresh(secret)
        bob.refresh(secret)
        pad_pool_alice.deposit(secret)
        pad_pool_bob.deposit(secret)
        print(f"epoch {epoch}: +{secret.n_bits} secret bits "
              f"(pool: {pad_pool_alice.available_bytes} pad bytes, "
              f"{alice.messages_remaining} MAC keys)")

    # One-time-pad some traffic with pool bytes (information-
    # theoretically secure, like the QKD video scenario in §1).
    message = b"video-frame-0042: the quick brown fox"
    ciphertext = pad_pool_alice.one_time_pad(message)
    recovered = pad_pool_bob.one_time_pad(ciphertext)
    assert recovered == message
    print(f"\nencrypted {len(message)} bytes with pool pads; "
          f"bob decrypted: {recovered.decode()!r}")

    # And authenticate with refreshed (non-bootstrap) keys.
    update = b"alice->group: rekey epoch 3"
    tag = alice.authenticate(update)
    assert bob.verify_next(update, tag)
    print("post-refresh authentication ok — bootstrap material retired")


if __name__ == "__main__":
    main()
