#!/usr/bin/env python3
"""The paper's §4 testbed campaign: reliability and efficiency vs n.

Places n terminals + Eve on the 3×3 cell grid (14 m², rotating
interference), runs one experiment per placement, and prints the
Figure-2 reliability series plus the headline efficiency table.

Run:  python examples/testbed_campaign.py [--full] [--n 3 8] [--per-n 12]

--full runs every placement like the paper (9·C(8,n) experiments per n;
budget ~1-2 hours); the default samples placements for a quick look.
"""

import argparse

import numpy as np

from repro import SessionConfig, TestbedConfig, Testbed
from repro.analysis import (
    CampaignConfig,
    render_figure2_table,
    render_headline_table,
    run_campaign,
    summarize_reliability,
)
from repro.core import CombinedEstimator, LeaveOneOutEstimator
from repro.testbed.estimator import (
    InterferenceAwareEstimator,
    calibrate_min_jam_loss,
)


def build_estimator_factory(min_jam_loss: float):
    """The deployment estimator: interference guarantee + empirical LOO."""

    def factory(testbed: Testbed, placement):
        interference = InterferenceAwareEstimator(
            testbed.interference,
            testbed.config.geometry,
            min_jam_loss,
            candidate_cells=testbed.eve_candidate_cells(placement),
        )
        return CombinedEstimator(
            [interference, LeaveOneOutEstimator(rate_margin=0.02)]
        )

    return factory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run every placement (the paper's design)")
    parser.add_argument("--n", nargs=2, type=int, default=(3, 8),
                        metavar=("MIN", "MAX"), help="group-size range")
    parser.add_argument("--per-n", type=int, default=12,
                        help="sampled placements per n (ignored with --full)")
    parser.add_argument("--seed", type=int, default=2012)
    args = parser.parse_args()

    testbed = Testbed(TestbedConfig(interferer_power_dbm=10.0))
    rng = np.random.default_rng(args.seed)
    print("calibrating the interference guarantee (site survey)...")
    min_jam_loss = calibrate_min_jam_loss(testbed, rng, trials=200)
    print(f"certified in-beam loss floor: {min_jam_loss:.3f}\n")

    config = CampaignConfig(
        session=SessionConfig(
            n_x_packets=270, payload_bytes=100, secrecy_slack=1,
            z_cost_factor=2.5,
        ),
        seed=args.seed,
        max_placements_per_n=None if args.full else args.per_n,
        group_sizes=tuple(range(args.n[0], args.n[1] + 1)),
    )

    done = []

    def progress(n, placement):
        done.append(1)
        if len(done) % 25 == 0:
            print(f"  ... {len(done)} experiments")

    result = run_campaign(
        testbed, build_estimator_factory(min_jam_loss), config, progress
    )

    summaries = [
        summarize_reliability(n, result.reliabilities(n))
        for n in result.group_sizes()
    ]
    print()
    print(render_figure2_table(summaries))
    print()
    if 8 in result.group_sizes():
        print(render_headline_table(result.for_n(8)))


if __name__ == "__main__":
    main()
