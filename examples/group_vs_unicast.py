#!/usr/bin/env python3
"""Figure 1: group-algorithm efficiency vs the unicast strawman.

Prints the analytic curves (theory module) for n = 2, 3, 6, 10 and the
n → ∞ limits, then validates spot points with the actual packet-level
protocol under an oracle estimator on i.i.d. erasure channels.

Run:  python examples/group_vs_unicast.py
"""

import math

import numpy as np

from repro import (
    BroadcastMedium,
    Eavesdropper,
    IIDLossModel,
    OracleEstimator,
    SessionConfig,
    Terminal,
)
from repro.analysis import render_figure1_table
from repro.core import ProtocolSession
from repro.theory import group_efficiency, unicast_efficiency


def measured_efficiency(n: int, p: float, seed: int = 7) -> float:
    """One leader round of the real protocol, idealised accounting.

    Figure 1's analysis counts x-packets and z-contents only, so this
    validation divides secret packets by (N + z-packets) rather than
    using the full ledger (headers, feedback, ACKs).
    """
    rng = np.random.default_rng(seed)
    names = [f"T{i}" for i in range(n)]
    nodes = [Terminal(name=x) for x in names] + [Eavesdropper(name="eve")]
    medium = BroadcastMedium(nodes, IIDLossModel(p), rng)
    config = SessionConfig(n_x_packets=240, payload_bytes=64)
    session = ProtocolSession(medium, names, OracleEstimator(), rng, config=config)
    result = session.run_round(names[0])
    assert result.leakage.perfect, "oracle rounds must be perfectly secret"
    denominator = config.n_x_packets + result.plan.total_public
    return result.secret_packets / denominator


def main() -> None:
    probs = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    ns = [2, 3, 6, 10, math.inf]
    group_curves = {n: [group_efficiency(n, p) for p in probs] for n in ns}
    unicast_curves = {n: [unicast_efficiency(n, p) for p in probs]
                      for n in ns if n != math.inf}
    unicast_curves[math.inf] = [0.0 for _ in probs]

    measured = {}
    for n, p in [(3, 0.3), (3, 0.5), (6, 0.5)]:
        measured[(n, p)] = measured_efficiency(n, p)

    print(render_figure1_table(probs, group_curves, unicast_curves, measured))
    print()
    print("Reading the table like the figure: the solid (group) family")
    print("stays bounded away from zero as n grows, while the dashed")
    print("(unicast) family collapses — the motivation for phase 2.")


if __name__ == "__main__":
    main()
