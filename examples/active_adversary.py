#!/usr/bin/env python3
"""Active Eve: why control messages need authentication (paper §2).

A passive Eve only listens. An *active* Eve can inject forged control
messages — most damagingly a fake reception report claiming she received
nothing, which would trick the leader into counting her as a terminal
and building "secrets" she fully knows.

The paper's defence (detailed in its tech report): terminals share a
small bootstrap secret at first contact, authenticate every control
message with information-theoretic one-time MACs, and re-key from the
protocol's own output forever after. This example stages the attack and
shows the MAC layer rejecting it.

Run:  python examples/active_adversary.py
"""

import numpy as np

from repro import (
    BroadcastMedium,
    Eavesdropper,
    GroupSecret,
    IIDLossModel,
    OracleEstimator,
    SessionConfig,
    Terminal,
    run_experiment,
)
from repro.auth import AuthenticatedChannel, forgery_bound


def serialize_report(terminal: str, round_id: int, received_ids) -> bytes:
    """A canonical byte encoding of a reception report for MACing."""
    ids = ",".join(str(i) for i in sorted(received_ids))
    return f"report|{terminal}|{round_id}|{ids}".encode()


def main() -> None:
    # Bootstrap: the only out-of-band information, used once.
    bootstrap = bytes(range(32))
    calvin_tx = AuthenticatedChannel.from_bootstrap(bootstrap)
    alice_rx = AuthenticatedChannel.from_bootstrap(bootstrap)

    # 1. A legitimate reception report flows with a valid tag.
    report = serialize_report("calvin", 0, {1, 3, 5, 7, 9})
    tag = calvin_tx.authenticate(report)
    assert alice_rx.verify_next(report, tag)
    print(f"legitimate report accepted (tag {tag.hex()}); "
          f"forgery probability bound {forgery_bound(len(report)):.2e}")

    # 2. Active Eve forges a report claiming she is a terminal that
    #    heard nothing — the report that would maximise the secret the
    #    leader builds "against" her. She replays an observed tag.
    forged = serialize_report("eve", 0, set())
    stolen_tag = calvin_tx.authenticate(serialize_report("calvin", 1, {2, 4}))
    accepted = alice_rx.verify_next(forged, stolen_tag)
    assert not accepted, "forgery must be rejected"
    print("forged reception report rejected (and its key slot burned)")

    # 3. Run the protocol; its output re-keys the channels, so the
    #    bootstrap is never reused and nothing long-lived remains.
    rng = np.random.default_rng(7)
    names = ["alice", "bob", "calvin"]
    nodes = [Terminal(name=n) for n in names] + [Eavesdropper(name="eve")]
    medium = BroadcastMedium(nodes, IIDLossModel(0.4), rng)
    result = run_experiment(
        medium, names, OracleEstimator(), rng,
        config=SessionConfig(n_x_packets=60, payload_bytes=100),
    )
    assert result.reliability == 1.0
    secret = GroupSecret(result.group_secret)
    calvin_tx.refresh(secret)
    alice_rx.refresh(secret)
    print(f"protocol produced {secret.n_bits} secret bits -> "
          f"{calvin_tx.messages_remaining} one-time MAC keys in the pool")

    # 4. Post-refresh authentication runs entirely on air-made keys.
    msg = serialize_report("calvin", 2, {0, 8})
    assert alice_rx.verify_next(msg, calvin_tx.authenticate(msg))
    print("post-refresh report authenticated with protocol-generated keys")


if __name__ == "__main__":
    main()
