#!/usr/bin/env python3
"""Quickstart: three terminals agree on a secret Eve cannot reconstruct.

The minimal end-to-end run on an abstract broadcast network with i.i.d.
erasures: Alice, Bob and Calvin (the paper's names for T0, T1, T2)
execute both protocol phases with leader rotation, then we audit
exactly what Eve learned.

Run:  python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro import (
    BroadcastMedium,
    Eavesdropper,
    IIDLossModel,
    LeaveOneOutEstimator,
    OracleEstimator,
    SessionConfig,
    Terminal,
    run_experiment,
)


def main(seed: int = 2012) -> None:
    rng = np.random.default_rng(seed)

    # A broadcast domain: every transmission is heard (or lost)
    # independently by every other node, Eve included.
    names = ["alice", "bob", "calvin"]
    nodes = [Terminal(name=n) for n in names] + [Eavesdropper(name="eve")]
    medium = BroadcastMedium(nodes, IIDLossModel(0.4), rng)

    config = SessionConfig(n_x_packets=90, payload_bytes=100)

    # Oracle estimator: ground-truth knowledge of Eve's losses isolates
    # the construction itself — the secret must be *perfectly* hidden.
    result = run_experiment(medium, names, OracleEstimator(), rng, config=config)

    secret = result.group_secret
    print(f"group secret: {secret.shape[0]} packets x {secret.shape[1]} bytes "
          f"({result.secret_bits} bits)")
    print(f"efficiency  : {result.efficiency:.4f} "
          f"({result.metrics.secret_kbps_at:.1f} secret kbps at 1 Mbps)")
    print(f"reliability : {result.reliability:.3f} "
          f"(1.0 = Eve has zero information)")
    for r in result.rounds:
        print(f"  round {r.round_id} (leader {r.leader}): "
              f"L={r.secret_packets} packets, Eve missed "
              f"{r.leakage.eve_missed}/{r.n_x_packets} x-packets, "
              f"round reliability {r.leakage.reliability:.2f}")
    assert result.reliability == 1.0, "oracle runs must be perfectly secret"

    # The realistic estimator (no oracle): pretend each terminal is Eve.
    rng2 = np.random.default_rng(seed + 1)
    nodes2 = [Terminal(name=n) for n in names] + [Eavesdropper(name="eve")]
    medium2 = BroadcastMedium(nodes2, IIDLossModel(0.4), rng2)
    empirical = run_experiment(
        medium2, names, LeaveOneOutEstimator(rate_margin=0.05), rng2,
        config=config,
    )
    print(f"\nleave-one-out estimator: efficiency {empirical.efficiency:.4f}, "
          f"reliability {empirical.reliability:.3f}")
    print("(empirical estimation can leak — that is the paper's Figure 2 story)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2012)
