#!/usr/bin/env python3
"""The §6 challenge: how does a multi-antenna Eve degrade the protocol?

Eve listens from k cells simultaneously (capturing a packet when any
antenna does).  We sweep k for a fixed n = 6 placement and compare two
defences: the default single-Eve estimator versus the k-collusion
estimator ("pretend every k-subset of terminals together is Eve").

Run:  python examples/multiantenna_eve.py
"""

import numpy as np

from repro import SessionConfig, Testbed, TestbedConfig
from repro.core import CollusionEstimator, LeaveOneOutEstimator, run_experiment
from repro.testbed import Placement


def run_one(testbed, placement, extra_cells, estimator, seed):
    rng = np.random.default_rng(seed)
    medium, names = testbed.build_medium(
        placement, rng, eve_extra_cells=tuple(extra_cells)
    )
    return run_experiment(
        medium, names, estimator, rng,
        config=SessionConfig(n_x_packets=180, payload_bytes=100,
                             secrecy_slack=1),
    )


def main() -> None:
    testbed = Testbed(TestbedConfig(interferer_power_dbm=10.0))
    placement = Placement(eve_cell=4, terminal_cells=(0, 1, 2, 3, 5, 6))
    spare_cells = [7, 8]  # unoccupied cells Eve can also listen from

    print("n = 6 terminals; Eve adds antennas in unoccupied cells\n")
    print(f"{'antennas':>8s} {'estimator':>18s} {'efficiency':>11s} "
          f"{'reliability':>12s}")
    for k in range(0, len(spare_cells) + 1):
        extra = spare_cells[:k]
        for label, estimator in (
            ("leave-one-out", LeaveOneOutEstimator(rate_margin=0.05)),
            (f"collusion(k={k + 1})", CollusionEstimator(k=k + 1,
                                                         rate_margin=0.05)),
        ):
            result = run_one(testbed, placement, extra, estimator,
                             seed=37 + k)
            print(f"{k + 1:>8d} {label:>18s} {result.efficiency:>11.4f} "
                  f"{result.reliability:>12.3f}")
    print("\nMore antennas help Eve; the collusion estimator buys back")
    print("reliability by assuming a stronger adversary (smaller secrets).")


if __name__ == "__main__":
    main()
