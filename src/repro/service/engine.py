"""Sans-io session engines: the protocol as pure state machines.

The service separates *what the protocol does* (this module) from *how
bytes move* (:mod:`repro.service.peer`).  Both engines are event-driven:
``on_frame`` consumes one decoded frame and returns the frames to send,
never blocking and never touching a socket — so one asyncio event loop
can multiplex thousands of sessions, and tests can drive a handshake
frame by frame with no I/O at all.

Session timeline (one round; leader left, follower right)::

    AWAIT_HELLOS  <--------- HELLO ----------  AWAIT_HELLO
                  ---------- HELLO --------->
    (x broadcast) ------ X_PACKET * N ------>  RECV_X   (drops per trace)
                  ---------- X_END --------->
    AWAIT_REPORTS <-------- REPORT* ---------  AWAIT_Y
    (plan round)  ------ Y_DESCRIPTOR* ----->
                  ---- PHASE2_DESCRIPTOR* --->  AWAIT_P2
                  ------- Z_CONTENT** ------->  RECV_Z
                      ... next round, or ...
    AWAIT_CONFIRMS <------- CONFIRM ---------  AWAIT_ACK
                  -------- CONFIRM_ACK ----->
    ESTABLISHED                                ESTABLISHED

Frames marked ``*`` carry a one-time-MAC tag from the pair's bootstrap
pool (:class:`repro.auth.bootstrap.AuthenticatedChannel`); the MAC
sequence is strict, so any control-plane drop / duplicate / reorder
desynchronises the pool and the session aborts — by design, the only
frames allowed to be lossy are the X_PACKETs, which *are* the protocol's
channel model.  No engine ever exposes key material unless it reached
``ESTABLISHED``; every failure path raises a typed
:class:`~repro.service.errors.ServiceError` and clears the keys.

Decoding on the follower side reuses the simulator's pure functions
(:mod:`repro.coding.reconcile`) on plans rebuilt from wire descriptors —
the Cauchy coefficients are deterministic given block shapes, which is
exactly the paper's identities-only broadcast.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.auth.bootstrap import AuthenticatedChannel, BootstrapError
from repro.auth.mac import TAG_SYMBOLS
from repro.coding.privacy import (
    CombinationBlock,
    GroupCodingPlan,
    Phase2Chunk,
    YAllocation,
    build_phase2_matrices,
    plan_y_allocation,
)
from repro.coding.reconcile import (
    assemble_secret,
    decode_y_from_x,
    recover_missing_y,
)
from repro.core.estimator import RoundContext
from repro.core.eve import LeakageReport, round_leakage
from repro.core.messages import ReceptionReport
from repro.gf.linalg import GFMatrix
from repro.gf.matrices import cauchy_matrix
from repro.service.config import FOLLOWER_ROLE, LEADER_ROLE, ServiceConfig
from repro.service.derive import DerivedKeys, LeakageBudget, derive_session_keys
from repro.service.errors import (
    AbortCode,
    AuthenticationError,
    ConfigMismatchError,
    ConfirmationError,
    PoolExhaustedError,
    ProtocolViolation,
    ServiceError,
    SessionAborted,
)
from repro.service.frames import (
    AUTHENTICATED_TYPES,
    Frame,
    FrameType,
    WireAbort,
    WireBlockDescriptor,
    WireConfirm,
    WireHello,
    WirePhase2Descriptor,
    WireXEnd,
    WireXPacket,
    WireZContent,
    pack_report,
    unpack_report,
)

__all__ = [
    "SessionPhase",
    "SessionSnapshot",
    "LeaderEngine",
    "FollowerEngine",
    "leader_y_values",
    "stack_secrets",
    "allocation_from_descriptor",
    "plan_from_descriptor",
]

#: Data-plane frame types: lossy by contract, ignored when stale.
_DATA_PLANE = frozenset({FrameType.X_PACKET, FrameType.X_END})


class SessionPhase(Enum):
    """Where a session engine is in the timeline above."""

    AWAIT_HELLO = "await_hello"  # follower: waiting for the leader's reply
    AWAIT_HELLOS = "await_hellos"  # leader: waiting for all followers
    RECV_X = "recv_x"  # follower: inside an x-burst
    AWAIT_REPORTS = "await_reports"  # leader: waiting for all reports
    AWAIT_Y = "await_y"  # follower: report sent, waiting for y-identities
    AWAIT_P2 = "await_p2"  # follower: waiting for the phase-2 descriptor
    RECV_Z = "recv_z"  # follower: collecting z-contents
    AWAIT_CONFIRMS = "await_confirms"  # leader: waiting for confirm tags
    AWAIT_ACK = "await_ack"  # follower: confirm sent, waiting for ack
    ESTABLISHED = "established"  # keys confirmed on both ends
    FAILED = "failed"  # aborted; keys cleared, engine inert


@dataclass(frozen=True)
class SessionSnapshot:
    """Serialisable per-session state summary.

    This is the "small dataclass advanced by events" contract: drivers
    and the load generator persist/report these, never engine internals.
    """

    role: str
    name: str
    peer: str
    session_id: str
    phase: str
    round_id: int
    n_rounds: int
    frames_in: int
    frames_out: int
    secret_rows: int
    established: bool
    secret_bits: int = 0
    leaked_bits: int = 0
    min_entropy_bits: int = 0
    key_bytes: int = 0

    def to_json(self) -> Dict[str, object]:
        return {
            "role": self.role,
            "name": self.name,
            "peer": self.peer,
            "session_id": self.session_id,
            "phase": self.phase,
            "round_id": self.round_id,
            "n_rounds": self.n_rounds,
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "secret_rows": self.secret_rows,
            "established": self.established,
            "secret_bits": self.secret_bits,
            "leaked_bits": self.leaked_bits,
            "min_entropy_bits": self.min_entropy_bits,
            "key_bytes": self.key_bytes,
        }


# ---------------------------------------------------------------------------
# Shared helpers (also used by the reference-equivalence tests)
# ---------------------------------------------------------------------------


def leader_y_values(allocation: YAllocation, payloads: np.ndarray) -> np.ndarray:
    """All y-payloads, computed directly from the leader's x-payloads.

    Mirrors ``ProtocolSession._leader_y_values`` — the leader knows every
    payload, so no decoding is involved.
    """
    if allocation.total_rows == 0:
        return np.zeros((0, payloads.shape[1]), dtype=np.uint8)
    rows = []
    for block in allocation.blocks:
        rows.append((block.matrix @ GFMatrix(payloads[list(block.support)])).data)
    return np.vstack(rows)


def stack_secrets(pieces: List[np.ndarray]) -> np.ndarray:
    """Concatenate per-round secrets; shape (0, 0) when nothing agreed."""
    real = [np.asarray(p, dtype=np.uint8) for p in pieces if np.asarray(p).size]
    if not real:
        return np.zeros((0, 0), dtype=np.uint8)
    return np.vstack(real)


def allocation_from_descriptor(
    descriptor: WireBlockDescriptor, terminal: str, received_ids: FrozenSet[int]
) -> YAllocation:
    """Rebuild the leader's y-plan from the wire descriptor, locally.

    The Cauchy coefficients are a pure function of (rows, support size),
    so the descriptor's identities suffice.  A block is decodable here
    iff this terminal received its *entire* support — a superset of the
    leader's subset-membership criterion (support ⊆ packets all of the
    subset received), so a subset member always decodes at least what
    the leader counted on, and extra decodable blocks only reduce how
    many z-packets phase 2 must consume.
    """
    blocks = []
    for support, rows in zip(descriptor.supports, descriptor.rows):
        try:
            decodable = set(support) <= set(received_ids)
            blocks.append(
                CombinationBlock(
                    subset=frozenset({terminal}) if decodable else frozenset(),
                    support=tuple(support),
                    matrix=cauchy_matrix(rows, len(support)),
                    certified_budget=rows,
                )
            )
        except ValueError as exc:
            raise ProtocolViolation(f"unbuildable y-descriptor block: {exc}") from None
    return YAllocation(blocks=blocks, receivers=(terminal,))


def plan_from_descriptor(descriptor: WirePhase2Descriptor) -> GroupCodingPlan:
    """Rebuild the phase-2 z/s maps from the wire descriptor.

    Chunks cover consecutive global y-row ranges; each chunk's z-map is
    the first ``n_public`` rows and its s-map the last ``n_secret`` rows
    of the same square Cauchy matrix — matching
    :func:`repro.coding.privacy.build_phase2_matrices` row for row.
    """
    chunks = []
    offset = 0
    for size, n_secret, n_public in zip(
        descriptor.chunk_sizes, descriptor.secret_counts, descriptor.public_counts
    ):
        if size == 0:
            raise ProtocolViolation("phase-2 descriptor contains an empty chunk")
        rows = tuple(range(offset, offset + size))
        offset += size
        try:
            square = cauchy_matrix(size, size)
        except ValueError as exc:
            raise ProtocolViolation(f"unbuildable phase-2 chunk: {exc}") from None
        z_matrix = (
            square.take_rows(range(n_public)) if n_public else GFMatrix.zeros(0, size)
        )
        s_matrix = (
            square.take_rows(range(size - n_secret, size))
            if n_secret
            else GFMatrix.zeros(0, size)
        )
        chunks.append(Phase2Chunk(y_rows=rows, z_matrix=z_matrix, s_matrix=s_matrix))
    return GroupCodingPlan(chunks=chunks)


def _seal(channel: AuthenticatedChannel, ftype: FrameType, inner: bytes) -> Frame:
    """Authenticate ``inner`` under the pair channel; build the frame."""
    try:
        tag = channel.authenticate(bytes([int(ftype)]) + inner)
    except BootstrapError as exc:
        raise PoolExhaustedError(str(exc)) from None
    return Frame(ftype, inner + tag)


def _open(channel: AuthenticatedChannel, frame: Frame) -> bytes:
    """Verify an authenticated frame's tag; return the inner body.

    The channel consumes a one-time key *regardless* of the verdict
    (``verify_next`` semantics), so a single failure permanently
    desynchronises the pair — exactly the strict-sequence behaviour the
    fail-closed contract relies on.
    """
    if frame.type not in AUTHENTICATED_TYPES:
        raise ProtocolViolation(f"frame type {frame.type.name} is not authenticated")
    if len(frame.body) < TAG_SYMBOLS:
        raise AuthenticationError(f"{frame.type.name} frame too short to carry a tag")
    inner, tag = frame.body[: -TAG_SYMBOLS], frame.body[-TAG_SYMBOLS:]
    try:
        ok = channel.verify_next(bytes([int(frame.type)]) + inner, tag)
    except BootstrapError as exc:
        raise PoolExhaustedError(str(exc)) from None
    if not ok:
        raise AuthenticationError(f"one-time MAC failed on {frame.type.name}")
    return inner


def _parse_abort(frame: Frame) -> SessionAborted:
    notice = WireAbort.unpack(frame)
    try:
        code = AbortCode(notice.code)
    except ValueError:
        code = AbortCode.INTERNAL
    return SessionAborted(code, notice.reason)


class _EngineBase:
    """State shared by both engines: counters, fail-closed plumbing."""

    #: Set by subclasses before any round completes.
    config: ServiceConfig

    def __init__(self) -> None:
        self.phase = SessionPhase.FAILED  # subclasses set their start phase
        self.frames_in = 0
        self.frames_out = 0
        self._keys: Optional[DerivedKeys] = None
        self._secrets: List[np.ndarray] = []
        self._leakage: List[LeakageReport] = []

    @property
    def established(self) -> bool:
        return self.phase is SessionPhase.ESTABLISHED

    @property
    def derived_keys(self) -> Optional[DerivedKeys]:
        """The session keys — None unless the handshake fully confirmed.

        This property *is* the fail-closed gate: aborted sessions have
        their keys cleared, unconfirmed sessions never expose them.
        """
        if self.phase is SessionPhase.ESTABLISHED:
            return self._keys
        return None

    @property
    def secret_rows(self) -> int:
        return sum(int(np.asarray(s).shape[0]) for s in self._secrets)

    def leakage_budget(self) -> LeakageBudget:
        """The session's measured secrecy budget so far.

        Per-round :func:`repro.core.eve.round_leakage` accounting summed
        into bits: in oracle mode against Eve's actual capture trace, in
        fraction mode against an Eve who captured no x-packets but sees
        every public z-broadcast (``eve_received = {}``) — the
        structural leakage of the published combinations, matching the
        reference :class:`~repro.core.session.ProtocolSession` without
        an Eve node.  The safety margin is the deployment's stated cover
        for the fraction estimator's channel-capture assumption.
        """
        payload_bits = self.config.payload_bytes * 8
        return LeakageBudget(
            secret_bits=sum(r.secret_dims for r in self._leakage) * payload_bits,
            leaked_bits=sum(r.leaked_dims for r in self._leakage) * payload_bits,
            safety_margin_bits=self.config.secrecy_margin_bits,
        )

    def _secrecy_fields(self) -> Dict[str, int]:
        """Snapshot fields derived from the leakage accounting."""
        budget = self.leakage_budget()
        return {
            "secret_bits": budget.secret_bits,
            "leaked_bits": budget.leaked_bits,
            "min_entropy_bits": budget.min_entropy_bits,
            "key_bytes": len(self._keys.material) if self._keys else 0,
        }

    def _fail(self, exc: ServiceError) -> ServiceError:
        """Enter FAILED: clear all key material, return ``exc`` to raise."""
        self.phase = SessionPhase.FAILED
        self._keys = None
        self._secrets = []
        return exc


# ---------------------------------------------------------------------------
# Follower
# ---------------------------------------------------------------------------


class FollowerEngine(_EngineBase):
    """A terminal's ("Bob's") side of one live session.

    Needs only the shared config, its own name and the leader's name —
    co-followers stay invisible, as on a real wire.  The seeded erasure
    trace from the config decides which X_PACKET frames the engine
    pretends its radio lost; everything else is the paper's algorithm on
    wire-rebuilt plans.
    """

    def __init__(self, config: ServiceConfig, name: str, leader: str) -> None:
        super().__init__()
        self.config = config
        self.name = name
        self.leader = leader
        self.auth = AuthenticatedChannel.from_bootstrap(config.pair_pool(leader, name))
        self.trace = config.erasure_trace(name)
        # Eve's trace is a pure function of the shared config, so the
        # follower accounts the *same* leakage the leader does without
        # any extra wire traffic.
        self._eve_trace = (
            config.eve_trace() if config.estimator_kind == "oracle" else None
        )
        self.session_id = b"\x00" * 16  # assigned by the leader's HELLO
        self.phase = SessionPhase.AWAIT_HELLO
        self.round_id = 0
        self._received: Dict[int, np.ndarray] = {}
        self._allocation: Optional[YAllocation] = None
        self._plan: Optional[GroupCodingPlan] = None
        self._known: Optional[Dict[int, np.ndarray]] = None
        self._z_buf: Dict[int, Dict[int, np.ndarray]] = {}

    def snapshot(self) -> SessionSnapshot:
        return SessionSnapshot(
            role="follower",
            name=self.name,
            peer=self.leader,
            session_id=self.session_id.hex(),
            phase=self.phase.value,
            round_id=self.round_id,
            n_rounds=self.config.n_rounds,
            frames_in=self.frames_in,
            frames_out=self.frames_out,
            secret_rows=self.secret_rows,
            established=self.established,
            **self._secrecy_fields(),
        )

    def start(self) -> List[Frame]:
        """Open the session: the follower speaks first."""
        hello = WireHello(
            role=FOLLOWER_ROLE,
            session_id=b"\x00" * 16,
            config_digest=self.config.digest(),
            name=self.name,
        )
        return self._out([hello.pack()])

    def on_frame(self, frame: Frame) -> List[Frame]:
        """Advance the state machine by one received frame."""
        self.frames_in += 1
        try:
            if frame.type is FrameType.ABORT:
                raise _parse_abort(frame)
            if self.phase is SessionPhase.AWAIT_HELLO:
                return self._out(self._on_hello(frame))
            if self.phase is SessionPhase.RECV_X:
                return self._out(self._on_data(frame))
            if self.phase in (
                SessionPhase.AWAIT_Y,
                SessionPhase.AWAIT_P2,
                SessionPhase.RECV_Z,
            ):
                if frame.type in _DATA_PLANE:
                    return []  # stragglers from the lossy burst: ignore
                return self._out(self._on_control(frame))
            if self.phase is SessionPhase.AWAIT_ACK:
                return self._out(self._on_ack(frame))
            raise ProtocolViolation(
                f"unexpected {frame.type.name} in phase {self.phase.value}"
            )
        except ServiceError as exc:
            raise self._fail(exc)

    def _out(self, frames: List[Frame]) -> List[Frame]:
        self.frames_out += len(frames)
        return frames

    # -- handshake -----------------------------------------------------

    def _on_hello(self, frame: Frame) -> List[Frame]:
        if frame.type is not FrameType.HELLO:
            raise ProtocolViolation(f"expected HELLO, got {frame.type.name}")
        hello = WireHello.unpack(frame)
        if hello.role != LEADER_ROLE:
            raise ProtocolViolation("peer is not a leader")
        if hello.name != self.leader:
            raise ProtocolViolation(
                f"leader identifies as {hello.name!r}, expected {self.leader!r}"
            )
        if hello.config_digest != self.config.digest():
            raise ConfigMismatchError(
                "leader's protocol parameters differ from ours"
            )
        self.session_id = hello.session_id
        self.phase = SessionPhase.RECV_X
        return []

    # -- phase 1: the x-burst ------------------------------------------

    def _on_data(self, frame: Frame) -> List[Frame]:
        cfg = self.config
        if frame.type is FrameType.X_PACKET:
            pkt = WireXPacket.unpack(frame)
            if (
                pkt.round_id != self.round_id
                or not 0 <= pkt.x_id < cfg.n_x_packets
                or len(pkt.payload) != cfg.payload_bytes
            ):
                return []  # stale / malformed data-plane frame: just loss
            if not self.trace[self.round_id, pkt.x_id]:
                self._received[pkt.x_id] = np.frombuffer(
                    pkt.payload, dtype=np.uint8
                ).copy()
            return []
        if frame.type is FrameType.X_END:
            end = WireXEnd.unpack(frame)
            if end.round_id != self.round_id:
                return []
            if end.count != cfg.n_x_packets:
                raise ProtocolViolation(
                    f"leader claims {end.count} x-packets, config says "
                    f"{cfg.n_x_packets}"
                )
            report = ReceptionReport(
                round_id=self.round_id,
                terminal=self.name,
                received_ids=frozenset(self._received),
                n_packets=cfg.n_x_packets,
            )
            self.phase = SessionPhase.AWAIT_Y
            return [_seal(self.auth, FrameType.REPORT, pack_report(report))]
        raise ProtocolViolation(f"unexpected {frame.type.name} during the x-burst")

    # -- phases 1b + 2: descriptors and z-contents ---------------------

    def _on_control(self, frame: Frame) -> List[Frame]:
        inner = _open(self.auth, frame)
        if self.phase is SessionPhase.AWAIT_Y:
            if frame.type is not FrameType.Y_DESCRIPTOR:
                raise ProtocolViolation(f"expected Y_DESCRIPTOR, got {frame.type.name}")
            descriptor = WireBlockDescriptor.unpack(inner)
            if descriptor.round_id != self.round_id:
                raise ProtocolViolation("y-descriptor round mismatch")
            self._allocation = allocation_from_descriptor(
                descriptor, self.name, frozenset(self._received)
            )
            self.phase = SessionPhase.AWAIT_P2
            return []
        if self.phase is SessionPhase.AWAIT_P2:
            if frame.type is not FrameType.PHASE2_DESCRIPTOR:
                raise ProtocolViolation(
                    f"expected PHASE2_DESCRIPTOR, got {frame.type.name}"
                )
            descriptor = WirePhase2Descriptor.unpack(inner)
            if descriptor.round_id != self.round_id:
                raise ProtocolViolation("phase-2 descriptor round mismatch")
            assert self._allocation is not None
            if sum(descriptor.chunk_sizes) != self._allocation.total_rows:
                raise ProtocolViolation(
                    "phase-2 chunks do not cover the y-descriptor's rows"
                )
            self._plan = plan_from_descriptor(descriptor)
            self._known = decode_y_from_x(self._allocation, self.name, self._received)
            self._z_buf = {i: {} for i in range(len(self._plan.chunks))}
            self.phase = SessionPhase.RECV_Z
            return self._finish_round_if_complete()
        # RECV_Z
        if frame.type is not FrameType.Z_CONTENT:
            raise ProtocolViolation(f"expected Z_CONTENT, got {frame.type.name}")
        content = WireZContent.unpack(inner)
        assert self._plan is not None
        if content.round_id != self.round_id:
            raise ProtocolViolation("z-content round mismatch")
        if not 0 <= content.chunk < len(self._plan.chunks):
            raise ProtocolViolation(f"z-content names unknown chunk {content.chunk}")
        chunk = self._plan.chunks[content.chunk]
        if not 0 <= content.row < chunk.n_public:
            raise ProtocolViolation(f"z-content names unknown row {content.row}")
        if content.row in self._z_buf[content.chunk]:
            raise ProtocolViolation("duplicate z-content row")
        if len(content.payload) != self.config.payload_bytes:
            raise ProtocolViolation("z-content payload length mismatch")
        self._z_buf[content.chunk][content.row] = np.frombuffer(
            content.payload, dtype=np.uint8
        ).copy()
        return self._finish_round_if_complete()

    def _finish_round_if_complete(self) -> List[Frame]:
        """Close the round once every expected z-content arrived."""
        assert self._plan is not None and self._known is not None
        for idx, chunk in enumerate(self._plan.chunks):
            if len(self._z_buf[idx]) < chunk.n_public:
                return []
        full: Dict[int, np.ndarray] = {}
        for idx, chunk in enumerate(self._plan.chunks):
            z_payloads = (
                np.vstack([self._z_buf[idx][r] for r in range(chunk.n_public)])
                if chunk.n_public
                else np.zeros((0, self.config.payload_bytes), dtype=np.uint8)
            )
            try:
                full.update(recover_missing_y(chunk, self._known, z_payloads))
            except (ValueError, KeyError) as exc:
                raise ProtocolViolation(f"phase-2 recovery failed: {exc}") from None
        try:
            self._secrets.append(assemble_secret(self._plan, full))
        except KeyError as exc:
            raise ProtocolViolation(f"s-map references unknown y-row: {exc}") from None
        eve_received = (
            frozenset(
                i
                for i in range(self.config.n_x_packets)
                if not self._eve_trace[self.round_id, i]
            )
            if self._eve_trace is not None
            else frozenset()
        )
        self._leakage.append(
            round_leakage(
                self._allocation,
                self._plan,
                eve_received,
                list(range(self.config.n_x_packets)),
            )
        )
        self.round_id += 1
        self._received = {}
        self._allocation = None
        self._plan = None
        self._known = None
        self._z_buf = {}
        if self.round_id < self.config.n_rounds:
            self.phase = SessionPhase.RECV_X
            return []
        self._keys = derive_session_keys(
            stack_secrets(self._secrets),
            session_id=self.session_id,
            config_digest=self.config.digest(),
            leader=self.leader,
            key_bytes=self.config.key_bytes,
            budget=self.leakage_budget(),
        )
        self.phase = SessionPhase.AWAIT_ACK
        tag = self._keys.confirm_tag("follower", self.name)
        return [WireConfirm(tag).pack(ack=False)]

    # -- key confirmation ----------------------------------------------

    def _on_ack(self, frame: Frame) -> List[Frame]:
        if frame.type in _DATA_PLANE:
            return []
        if frame.type is not FrameType.CONFIRM_ACK:
            raise ProtocolViolation(f"expected CONFIRM_ACK, got {frame.type.name}")
        confirm = WireConfirm.unpack(frame)
        assert self._keys is not None
        expected = self._keys.confirm_tag("leader", self.name)
        if not hmac.compare_digest(confirm.tag, expected):
            raise ConfirmationError("leader's confirmation tag does not match")
        self.phase = SessionPhase.ESTABLISHED
        return []


# ---------------------------------------------------------------------------
# Leader
# ---------------------------------------------------------------------------


class LeaderEngine(_EngineBase):
    """The leader's ("Alice's") side of one live session.

    Drives the group: one engine instance serves every follower of the
    session; outputs are ``(follower_name, frame)`` pairs so drivers can
    route them to per-peer transports.  Insertion order of reports
    mirrors :class:`~repro.core.session.ProtocolSession` (follower
    construction order), which is what makes live runs bit-identical to
    the simulator on the same traces.
    """

    def __init__(
        self,
        config: ServiceConfig,
        name: str,
        followers: Tuple[str, ...],
        nonce: int = 0,
    ) -> None:
        super().__init__()
        if not followers:
            raise ValueError("a session needs at least one follower")
        if len(set(followers)) != len(followers) or name in followers:
            raise ValueError("follower names must be unique and exclude the leader")
        self.config = config
        self.name = name
        self.followers = tuple(followers)
        self.session_id = config.session_id(name, self.followers, nonce)
        self.auth = {
            f: AuthenticatedChannel.from_bootstrap(config.pair_pool(name, f))
            for f in self.followers
        }
        self.estimator = config.build_estimator()
        self._rng = np.random.default_rng(config.payload_seed)
        self._eve_trace = (
            config.eve_trace() if config.estimator_kind == "oracle" else None
        )
        self.phase = SessionPhase.AWAIT_HELLOS
        self.round_id = 0
        self._present: Set[str] = set()
        self._payloads: Optional[np.ndarray] = None
        self._reports: Dict[str, Set[int]] = {}
        self._confirmed: Set[str] = set()

    def snapshot(self) -> SessionSnapshot:
        return SessionSnapshot(
            role="leader",
            name=self.name,
            peer=",".join(self.followers),
            session_id=self.session_id.hex(),
            phase=self.phase.value,
            round_id=self.round_id,
            n_rounds=self.config.n_rounds,
            frames_in=self.frames_in,
            frames_out=self.frames_out,
            secret_rows=self.secret_rows,
            established=self.established,
            **self._secrecy_fields(),
        )

    @property
    def secret(self) -> np.ndarray:
        """The stacked multi-round secret (tests only; keys come from
        :attr:`derived_keys`)."""
        return stack_secrets(self._secrets)

    def on_frame(self, peer: str, frame: Frame) -> List[Tuple[str, Frame]]:
        """Advance the group state machine by one frame from ``peer``."""
        self.frames_in += 1
        try:
            if peer not in self.auth:
                raise ProtocolViolation(f"{peer!r} is not part of this session")
            if frame.type is FrameType.ABORT:
                raise _parse_abort(frame)
            if frame.type is FrameType.HELLO:
                return self._out(self._on_hello(peer, frame))
            if self.phase is SessionPhase.AWAIT_REPORTS:
                return self._out(self._on_report(peer, frame))
            if self.phase is SessionPhase.AWAIT_CONFIRMS:
                return self._out(self._on_confirm(peer, frame))
            raise ProtocolViolation(
                f"unexpected {frame.type.name} from {peer} in phase "
                f"{self.phase.value}"
            )
        except ServiceError as exc:
            raise self._fail(exc)

    def _out(self, frames: List[Tuple[str, Frame]]) -> List[Tuple[str, Frame]]:
        self.frames_out += len(frames)
        return frames

    # -- handshake -----------------------------------------------------

    def _on_hello(self, peer: str, frame: Frame) -> List[Tuple[str, Frame]]:
        if self.phase is not SessionPhase.AWAIT_HELLOS:
            raise ProtocolViolation(f"late HELLO from {peer}")
        hello = WireHello.unpack(frame)
        if hello.role != FOLLOWER_ROLE:
            raise ProtocolViolation(f"{peer} did not identify as a follower")
        if hello.name != peer:
            raise ProtocolViolation(
                f"HELLO name {hello.name!r} does not match the connection ({peer!r})"
            )
        if hello.config_digest != self.config.digest():
            raise ConfigMismatchError(
                f"{peer}'s protocol parameters differ from ours"
            )
        if peer in self._present:
            raise ProtocolViolation(f"duplicate HELLO from {peer}")
        self._present.add(peer)
        reply = WireHello(
            role=LEADER_ROLE,
            session_id=self.session_id,
            config_digest=self.config.digest(),
            name=self.name,
        )
        out: List[Tuple[str, Frame]] = [(peer, reply.pack())]
        if len(self._present) == len(self.followers):
            out.extend(self._begin_round())
        return out

    # -- rounds --------------------------------------------------------

    def _begin_round(self) -> List[Tuple[str, Frame]]:
        """Draw this round's payloads and emit the x-burst to everyone."""
        cfg = self.config
        self._payloads = self._rng.integers(
            0, 256, size=(cfg.n_x_packets, cfg.payload_bytes), dtype=np.uint8
        )
        self._reports = {}
        out: List[Tuple[str, Frame]] = []
        for follower in self.followers:
            for x_id in range(cfg.n_x_packets):
                pkt = WireXPacket(
                    self.round_id, x_id, self._payloads[x_id].tobytes()
                )
                out.append((follower, pkt.pack()))
            out.append((follower, WireXEnd(self.round_id, cfg.n_x_packets).pack()))
        self.phase = SessionPhase.AWAIT_REPORTS
        return out

    def _on_report(self, peer: str, frame: Frame) -> List[Tuple[str, Frame]]:
        if frame.type is not FrameType.REPORT:
            raise ProtocolViolation(f"expected REPORT from {peer}, got {frame.type.name}")
        if peer in self._reports:
            raise ProtocolViolation(f"duplicate report from {peer}")
        inner = _open(self.auth[peer], frame)
        report = unpack_report(inner, peer)
        if report.round_id != self.round_id:
            raise ProtocolViolation(f"report from {peer} names the wrong round")
        if report.n_packets != self.config.n_x_packets:
            raise ProtocolViolation(f"report from {peer} sized for a different round")
        self._reports[peer] = set(report.received_ids)
        if len(self._reports) < len(self.followers):
            return []
        return self._plan_round()

    def _plan_round(self) -> List[Tuple[str, Frame]]:
        """Plan y/z/s, emit the control frames, accumulate our secret."""
        cfg = self.config
        assert self._payloads is not None
        # Report insertion order must match ProtocolSession._collect_reports
        # (terminal order) for bit-identical planning.
        reports = {f: self._reports[f] for f in self.followers}
        eve_received = (
            frozenset(
                i
                for i in range(cfg.n_x_packets)
                if not self._eve_trace[self.round_id, i]
            )
            if self._eve_trace is not None
            else frozenset()
        )
        self.estimator.begin_round(
            RoundContext(
                leader=self.name,
                reports=reports,
                n_packets=cfg.n_x_packets,
                eve_received=eve_received,
                x_slots={i: i for i in range(cfg.n_x_packets)},
            )
        )
        allocation = plan_y_allocation(
            reports,
            self.estimator.budget,
            overhead_packets=cfg.n_x_packets,
            max_subset_size=cfg.max_subset_size,
            z_cost_factor=cfg.z_cost_factor,
        )
        plan = build_phase2_matrices(allocation, secrecy_slack=cfg.secrecy_slack)
        y_values = leader_y_values(allocation, self._payloads)

        y_body = WireBlockDescriptor(
            round_id=self.round_id,
            supports=tuple(b.support for b in allocation.blocks),
            rows=tuple(b.rows for b in allocation.blocks),
        ).pack()
        p2_body = WirePhase2Descriptor(
            round_id=self.round_id,
            chunk_sizes=tuple(c.size for c in plan.chunks),
            secret_counts=tuple(c.n_secret for c in plan.chunks),
            public_counts=tuple(c.n_public for c in plan.chunks),
        ).pack()
        z_bodies: List[bytes] = []
        for chunk_idx, chunk in enumerate(plan.chunks):
            if chunk.n_public == 0:
                continue
            z_vals = (chunk.z_matrix @ GFMatrix(y_values[list(chunk.y_rows)])).data
            for row in range(z_vals.shape[0]):
                z_bodies.append(
                    WireZContent(
                        self.round_id, chunk_idx, row, z_vals[row].tobytes()
                    ).pack()
                )

        out: List[Tuple[str, Frame]] = []
        for follower in self.followers:
            channel = self.auth[follower]
            out.append((follower, _seal(channel, FrameType.Y_DESCRIPTOR, y_body)))
            out.append((follower, _seal(channel, FrameType.PHASE2_DESCRIPTOR, p2_body)))
            for body in z_bodies:
                out.append((follower, _seal(channel, FrameType.Z_CONTENT, body)))

        self._secrets.append(
            assemble_secret(
                plan, {g: y_values[g] for g in range(allocation.total_rows)}
            )
        )
        self._leakage.append(
            round_leakage(
                allocation, plan, eve_received, list(range(cfg.n_x_packets))
            )
        )
        self.round_id += 1
        if self.round_id < cfg.n_rounds:
            out.extend(self._begin_round())
            return out
        self._keys = derive_session_keys(
            stack_secrets(self._secrets),
            session_id=self.session_id,
            config_digest=self.config.digest(),
            leader=self.name,
            key_bytes=cfg.key_bytes,
            budget=self.leakage_budget(),
        )
        self._confirmed = set()
        self.phase = SessionPhase.AWAIT_CONFIRMS
        return out

    # -- key confirmation ----------------------------------------------

    def _on_confirm(self, peer: str, frame: Frame) -> List[Tuple[str, Frame]]:
        if frame.type is not FrameType.CONFIRM:
            raise ProtocolViolation(
                f"expected CONFIRM from {peer}, got {frame.type.name}"
            )
        if peer in self._confirmed:
            raise ProtocolViolation(f"duplicate CONFIRM from {peer}")
        confirm = WireConfirm.unpack(frame)
        assert self._keys is not None
        expected = self._keys.confirm_tag("follower", peer)
        if not hmac.compare_digest(confirm.tag, expected):
            raise ConfirmationError(f"{peer}'s confirmation tag does not match")
        self._confirmed.add(peer)
        if len(self._confirmed) < len(self.followers):
            return []
        self.phase = SessionPhase.ESTABLISHED
        return [
            (f, WireConfirm(self._keys.confirm_tag("leader", f)).pack(ack=True))
            for f in self.followers
        ]
