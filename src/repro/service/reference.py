"""Reference runs: the simulator driven by the service's seeded traces.

The deterministic network-test harness rests on one invariant: a live
service session and a :class:`~repro.core.session.ProtocolSession` run
on the *same seeded loss trace* must agree bit for bit — same reception
sets, same allocation, same z-contents, same secret.  This module
builds that reference run:

* :class:`TraceLossModel` replays the config's per-terminal erasure
  traces inside the simulator's medium: X_DATA packet ``(round, x_id)``
  is lost to terminal ``t`` iff ``trace[t][round, x_id]`` — exactly the
  frames the service follower drops locally.  Control packets are
  lossless (the service carries them over TCP).
* :func:`build_reference_session` wires a medium + session whose
  planning inputs (reports, payload rng, estimator) match the
  :class:`~repro.service.engine.LeaderEngine` construction order.

Equivalence holds for slot-agnostic estimators (``fraction`` and
``oracle`` — everything :class:`~repro.service.config.ServiceConfig`
can build): the simulator stamps real medium slots into ``x_slots``
while the service numbers packets 0..N-1, and only schedule-aware
estimators could tell the difference.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.core.session import ProtocolSession, RoundResult, SessionConfig
from repro.net.medium import BroadcastMedium, LossModel
from repro.net.node import Eavesdropper, Node, Terminal
from repro.net.packet import Packet, PacketKind
from repro.service.config import ServiceConfig
from repro.service.derive import DerivedKeys, LeakageBudget, derive_session_keys
from repro.service.engine import stack_secrets

__all__ = [
    "TraceLossModel",
    "build_reference_session",
    "reference_secret",
    "reference_budget",
    "reference_keys",
]

_EVE_NODE = "eve"


class TraceLossModel(LossModel):
    """Scripted per-receiver erasures for X_DATA; everything else lossless.

    Args:
        traces: receiver name -> ``(n_rounds, N)`` boolean array, True
            meaning the packet is lost on that link.  Unlisted receivers
            (and all control traffic) receive everything — matching the
            service, where control frames ride a reliable stream.
    """

    def __init__(self, traces: Mapping[str, np.ndarray]) -> None:
        self.traces = {name: np.asarray(t, dtype=bool) for name, t in traces.items()}

    def lost_at(
        self,
        src: Node,
        position: object,
        dst: Node,
        packet: Packet,
        slot: int,
        rng: np.random.Generator,
    ) -> bool:
        if packet.kind is not PacketKind.X_DATA:
            return False
        trace = self.traces.get(dst.name)
        if trace is None:
            return False
        round_id = int(packet.meta.get("round", 0))
        x_id = packet.meta.get("x_id")
        if x_id is None or round_id >= trace.shape[0] or int(x_id) >= trace.shape[1]:
            return False
        return bool(trace[round_id, int(x_id)])


def build_reference_session(
    config: ServiceConfig, leader: str, followers: Tuple[str, ...]
) -> ProtocolSession:
    """The simulator session equivalent to a live service session.

    Terminal order is ``[leader, *followers]`` — the same report
    insertion order :class:`~repro.service.engine.LeaderEngine` uses, so
    allocation planning sees identical inputs.
    """
    traces = {name: config.erasure_trace(name) for name in followers}
    nodes: List[Node] = [Terminal(name) for name in (leader, *followers)]
    oracle = config.estimator_kind == "oracle"
    if oracle:
        traces[_EVE_NODE] = config.eve_trace()
        nodes.append(Eavesdropper(_EVE_NODE))
    medium = BroadcastMedium(
        nodes=nodes,
        loss_model=TraceLossModel(traces),
        # The trace model never consumes randomness, but the medium
        # requires a generator; seed it fixed so nothing can drift.
        rng=np.random.default_rng(0),
    )
    return ProtocolSession(
        medium=medium,
        terminal_names=[leader, *followers],
        estimator=config.build_estimator(),
        rng=np.random.default_rng(config.payload_seed),
        config=SessionConfig(
            n_x_packets=config.n_x_packets,
            payload_bytes=config.payload_bytes,
            max_subset_size=config.max_subset_size,
            secrecy_slack=config.secrecy_slack,
            z_cost_factor=config.z_cost_factor,
        ),
        eve_name=_EVE_NODE if oracle else None,
    )


def _reference_rounds(
    config: ServiceConfig, leader: str, followers: Tuple[str, ...]
) -> List[RoundResult]:
    session = build_reference_session(config, leader, followers)
    return [
        session.run_round(leader, round_id)
        for round_id in range(config.n_rounds)
    ]


def _budget_of(config: ServiceConfig, rounds: List[RoundResult]) -> LeakageBudget:
    payload_bits = config.payload_bytes * 8
    return LeakageBudget(
        secret_bits=sum(r.leakage.secret_dims for r in rounds) * payload_bits,
        leaked_bits=sum(r.leakage.leaked_dims for r in rounds) * payload_bits,
        safety_margin_bits=config.secrecy_margin_bits,
    )


def reference_secret(
    config: ServiceConfig, leader: str, followers: Tuple[str, ...]
) -> np.ndarray:
    """The stacked multi-round secret the simulator derives on the
    config's traces — what every live peer must reproduce exactly."""
    return stack_secrets(
        [r.secret for r in _reference_rounds(config, leader, followers)]
    )


def reference_budget(
    config: ServiceConfig, leader: str, followers: Tuple[str, ...]
) -> LeakageBudget:
    """The measured secrecy budget the simulator computes on the
    config's traces — what every live engine's
    :meth:`~repro.service.engine._EngineBase.leakage_budget` must
    reproduce bit for bit."""
    return _budget_of(config, _reference_rounds(config, leader, followers))


def reference_keys(
    config: ServiceConfig,
    leader: str,
    followers: Tuple[str, ...],
    nonce: int = 0,
) -> DerivedKeys:
    """Reference-derived session keys (simulator secret through HKDF),
    sized by the same measured budget the live engines apply."""
    rounds = _reference_rounds(config, leader, followers)
    return derive_session_keys(
        stack_secrets([r.secret for r in rounds]),
        session_id=config.session_id(leader, followers, nonce),
        config_digest=config.digest(),
        leader=leader,
        key_bytes=config.key_bytes,
        budget=_budget_of(config, rounds),
    )
