"""Length-prefixed frame codec for the protocol's wire messages.

The simulation's :mod:`repro.core.messages` classes model control
messages for *cost accounting*; this module gives them an actual byte
encoding so real peers can exchange them over a stream transport.

Frame layout (big-endian throughout)::

    +---------+--------+----------------+---------+
    | length  | type   | body           | crc32   |
    | 4 bytes | 1 byte | length-5 bytes | 4 bytes |
    +---------+--------+----------------+---------+

``length`` counts everything after itself (type + body + crc32), so a
decoder can resynchronise only at stream start — any corruption is
terminal for the connection, which is the fail-closed behaviour the
service wants.  The CRC covers type + body; frames whose CRC mismatches
raise :class:`FrameCorrupt` rather than ever yielding bytes to the
session layer.

Authenticated control frames (REPORT, Y_DESCRIPTOR, PHASE2_DESCRIPTOR,
Z_CONTENT) carry a trailing one-time-MAC tag of
:data:`repro.auth.mac.TAG_SYMBOLS` bytes inside the body; the
authenticated content is ``type byte + body-without-tag`` (see
:mod:`repro.service.engine`).
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, List, Sequence, Tuple

from repro.core.messages import ReceptionReport

__all__ = [
    "FrameError",
    "FrameTooLarge",
    "FrameCorrupt",
    "FrameTruncated",
    "FrameType",
    "Frame",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "FrameDecoder",
    "WireHello",
    "WireXPacket",
    "WireXEnd",
    "pack_report",
    "unpack_report",
    "WireBlockDescriptor",
    "WirePhase2Descriptor",
    "WireZContent",
    "WireConfirm",
    "WireAbort",
    "AUTHENTICATED_TYPES",
]

#: Default ceiling on one frame's (type + body + crc) size.  Generous
#: for the protocol's packets (payloads are 100 bytes in the paper) but
#: small enough that a corrupt length prefix cannot balloon memory.
MAX_FRAME_BYTES = 1 << 20

_LEN = struct.Struct(">I")
_CRC = struct.Struct(">I")
_MIN_PAYLOAD = 1 + 4  # type byte + crc32


class FrameError(ValueError):
    """Base class for codec failures (always terminal for the stream)."""


class FrameTooLarge(FrameError):
    """A frame exceeded the configured size ceiling."""


class FrameCorrupt(FrameError):
    """CRC mismatch, unknown type, or a malformed message body."""


class FrameTruncated(FrameError):
    """The stream ended mid-frame (torn write / abrupt close)."""


class FrameType(IntEnum):
    """Every message the service puts on the wire."""

    HELLO = 1
    X_PACKET = 2
    X_END = 3
    REPORT = 4
    Y_DESCRIPTOR = 5
    PHASE2_DESCRIPTOR = 6
    Z_CONTENT = 7
    CONFIRM = 8
    CONFIRM_ACK = 9
    ABORT = 10


#: Control frames that carry (and must pass) a one-time-MAC tag.
AUTHENTICATED_TYPES = frozenset(
    {
        FrameType.REPORT,
        FrameType.Y_DESCRIPTOR,
        FrameType.PHASE2_DESCRIPTOR,
        FrameType.Z_CONTENT,
    }
)


@dataclass(frozen=True)
class Frame:
    """One decoded frame: a type tag and its raw body bytes."""

    type: FrameType
    body: bytes


def encode_frame(frame: Frame, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise ``frame`` with length prefix and CRC trailer."""
    blob = bytes([int(frame.type)]) + frame.body
    payload = blob + _CRC.pack(zlib.crc32(blob) & 0xFFFFFFFF)
    if len(payload) > max_frame_bytes:
        raise FrameTooLarge(
            f"frame of {len(payload)} bytes exceeds cap {max_frame_bytes}"
        )
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental decoder: feed arbitrary chunks, get complete frames.

    Reassembles frames across any chunk boundaries (a TCP stream offers
    no message framing of its own).  All errors are terminal: once a
    feed raises, the decoder refuses further input.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Consume ``data``; return every frame it completes, in order."""
        if self._poisoned:
            raise FrameCorrupt("decoder already failed; stream is dead")
        self._buffer.extend(data)
        frames: List[Frame] = []
        try:
            while True:
                if len(self._buffer) < _LEN.size:
                    break
                (length,) = _LEN.unpack_from(self._buffer)
                if length < _MIN_PAYLOAD:
                    raise FrameCorrupt(f"frame payload of {length} bytes is impossible")
                if length > self.max_frame_bytes:
                    raise FrameTooLarge(
                        f"declared frame of {length} bytes exceeds cap "
                        f"{self.max_frame_bytes}"
                    )
                if len(self._buffer) < _LEN.size + length:
                    break
                payload = bytes(self._buffer[_LEN.size : _LEN.size + length])
                del self._buffer[: _LEN.size + length]
                blob, crc_raw = payload[:-4], payload[-4:]
                if zlib.crc32(blob) & 0xFFFFFFFF != _CRC.unpack(crc_raw)[0]:
                    raise FrameCorrupt("frame CRC mismatch")
                try:
                    ftype = FrameType(blob[0])
                except ValueError:
                    raise FrameCorrupt(f"unknown frame type {blob[0]}") from None
                frames.append(Frame(ftype, blob[1:]))
        except FrameError:
            self._poisoned = True
            raise
        return frames

    def eof(self) -> None:
        """Declare end of stream; raises if a frame was left half-read."""
        if self._buffer:
            self._poisoned = True
            raise FrameTruncated(
                f"stream ended with {len(self._buffer)} bytes of partial frame"
            )


# ---------------------------------------------------------------------------
# Message bodies
# ---------------------------------------------------------------------------

_HELLO = struct.Struct(">B16s16sB")
_ROUND = struct.Struct(">H")
_XPKT = struct.Struct(">HH")
_REPORT_HEAD = struct.Struct(">HH")
_ZHEAD = struct.Struct(">HHH")
_ABORT_HEAD = struct.Struct(">H")


def _need(body: bytes, n: int, what: str) -> None:
    if len(body) < n:
        raise FrameCorrupt(f"{what}: body of {len(body)} bytes is too short")


@dataclass(frozen=True)
class WireHello:
    """Session opener: who is speaking and under which parameters.

    ``config_digest`` pins every wire-relevant protocol parameter (see
    :meth:`repro.service.config.ServiceConfig.digest`); peers with
    different digests abort instead of mis-decoding each other.
    """

    role: int  # 0 = leader, 1 = follower
    session_id: bytes  # 16 bytes (all-zero from a follower: leader assigns)
    config_digest: bytes  # 16 bytes
    name: str

    def pack(self) -> Frame:
        raw = self.name.encode("utf-8")
        if len(raw) > 255:
            raise FrameCorrupt("peer name longer than 255 bytes")
        body = _HELLO.pack(self.role, self.session_id, self.config_digest, len(raw))
        return Frame(FrameType.HELLO, body + raw)

    @classmethod
    def unpack(cls, frame: Frame) -> "WireHello":
        body = frame.body
        _need(body, _HELLO.size, "HELLO")
        role, session_id, digest, name_len = _HELLO.unpack_from(body)
        raw = body[_HELLO.size :]
        if len(raw) != name_len:
            raise FrameCorrupt("HELLO name length mismatch")
        if role not in (0, 1):
            raise FrameCorrupt(f"HELLO role {role} is not leader/follower")
        return cls(role, session_id, digest, raw.decode("utf-8"))


@dataclass(frozen=True)
class WireXPacket:
    """One x-packet of a broadcast round (the lossy data plane)."""

    round_id: int
    x_id: int
    payload: bytes

    def pack(self) -> Frame:
        return Frame(FrameType.X_PACKET, _XPKT.pack(self.round_id, self.x_id) + self.payload)

    @classmethod
    def unpack(cls, frame: Frame) -> "WireXPacket":
        _need(frame.body, _XPKT.size, "X_PACKET")
        round_id, x_id = _XPKT.unpack_from(frame.body)
        return cls(round_id, x_id, frame.body[_XPKT.size :])


@dataclass(frozen=True)
class WireXEnd:
    """End of a round's x-burst: the leader sent ``count`` x-packets."""

    round_id: int
    count: int

    def pack(self) -> Frame:
        return Frame(FrameType.X_END, _XPKT.pack(self.round_id, self.count))

    @classmethod
    def unpack(cls, frame: Frame) -> "WireXEnd":
        if len(frame.body) != _XPKT.size:
            raise FrameCorrupt("X_END body must be exactly 4 bytes")
        return cls(*_XPKT.unpack(frame.body))


def pack_report(report: ReceptionReport) -> bytes:
    """Serialise a :class:`~repro.core.messages.ReceptionReport` body.

    Exactly the format its ``body_bytes`` accounting charges: round id
    (2 B) + packet count (2 B) + a bitmap of received x-ids.
    """
    bitmap = bytearray(math.ceil(report.n_packets / 8))
    for xid in report.received_ids:
        if not 0 <= xid < report.n_packets:
            raise FrameCorrupt(f"x-id {xid} outside round of {report.n_packets}")
        bitmap[xid // 8] |= 1 << (xid % 8)
    return _REPORT_HEAD.pack(report.round_id, report.n_packets) + bytes(bitmap)


def unpack_report(body: bytes, terminal: str) -> ReceptionReport:
    """Parse a REPORT body back into a ReceptionReport for ``terminal``."""
    _need(body, _REPORT_HEAD.size, "REPORT")
    round_id, n_packets = _REPORT_HEAD.unpack_from(body)
    bitmap = body[_REPORT_HEAD.size :]
    if len(bitmap) != math.ceil(n_packets / 8):
        raise FrameCorrupt("REPORT bitmap length mismatch")
    received = frozenset(
        xid
        for xid in range(n_packets)
        if bitmap[xid // 8] & (1 << (xid % 8))
    )
    return ReceptionReport(
        round_id=round_id,
        terminal=terminal,
        received_ids=received,
        n_packets=n_packets,
    )


@dataclass(frozen=True)
class WireBlockDescriptor:
    """Phase-1 y-identities: per block, its row count and x-id support.

    The Cauchy coefficients never travel (deterministic given rows and
    support length — exactly the paper's identities-only broadcast).
    Mirrors :class:`repro.core.messages.BlockDescriptorSet`.
    """

    round_id: int
    supports: Tuple[Tuple[int, ...], ...]
    rows: Tuple[int, ...]

    def pack(self) -> bytes:
        if len(self.supports) != len(self.rows):
            raise FrameCorrupt("descriptor supports/rows length mismatch")
        parts = [_ROUND.pack(self.round_id), _ROUND.pack(len(self.supports))]
        for support, n_rows in zip(self.supports, self.rows):
            if not 0 <= n_rows <= 255:
                raise FrameCorrupt(f"block row count {n_rows} out of range")
            parts.append(struct.pack(">BH", n_rows, len(support)))
            parts.append(struct.pack(f">{len(support)}H", *support))
        return b"".join(parts)

    @classmethod
    def unpack(cls, body: bytes) -> "WireBlockDescriptor":
        _need(body, 4, "Y_DESCRIPTOR")
        (round_id,) = _ROUND.unpack_from(body, 0)
        (n_blocks,) = _ROUND.unpack_from(body, 2)
        offset = 4
        supports: List[Tuple[int, ...]] = []
        rows: List[int] = []
        for _ in range(n_blocks):
            _need(body, offset + 3, "Y_DESCRIPTOR block header")
            n_rows, support_len = struct.unpack_from(">BH", body, offset)
            offset += 3
            _need(body, offset + 2 * support_len, "Y_DESCRIPTOR support")
            support = struct.unpack_from(f">{support_len}H", body, offset)
            offset += 2 * support_len
            supports.append(tuple(support))
            rows.append(n_rows)
        if offset != len(body):
            raise FrameCorrupt("Y_DESCRIPTOR has trailing bytes")
        return cls(round_id, tuple(supports), tuple(rows))


@dataclass(frozen=True)
class WirePhase2Descriptor:
    """Phase-2 chunk structure: sizes, secret counts, public counts.

    Extends :class:`repro.core.messages.Phase2Descriptor` with the
    per-chunk public (z) row count — implicit in the simulator, where
    terminals share the plan object, but required on a real wire so a
    follower can rebuild the z/s Cauchy maps without the leader's
    allocation internals.
    """

    round_id: int
    chunk_sizes: Tuple[int, ...]
    secret_counts: Tuple[int, ...]
    public_counts: Tuple[int, ...]

    def pack(self) -> bytes:
        if not (
            len(self.chunk_sizes) == len(self.secret_counts) == len(self.public_counts)
        ):
            raise FrameCorrupt("phase-2 descriptor column length mismatch")
        parts = [_ROUND.pack(self.round_id), _ROUND.pack(len(self.chunk_sizes))]
        for size, n_secret, n_public in zip(
            self.chunk_sizes, self.secret_counts, self.public_counts
        ):
            parts.append(_ZHEAD.pack(size, n_secret, n_public))
        return b"".join(parts)

    @classmethod
    def unpack(cls, body: bytes) -> "WirePhase2Descriptor":
        _need(body, 4, "PHASE2_DESCRIPTOR")
        (round_id,) = _ROUND.unpack_from(body, 0)
        (n_chunks,) = _ROUND.unpack_from(body, 2)
        if len(body) != 4 + _ZHEAD.size * n_chunks:
            raise FrameCorrupt("PHASE2_DESCRIPTOR length mismatch")
        sizes, secrets, publics = [], [], []
        for i in range(n_chunks):
            size, n_secret, n_public = _ZHEAD.unpack_from(body, 4 + _ZHEAD.size * i)
            if n_secret > size or n_public > size:
                raise FrameCorrupt("PHASE2_DESCRIPTOR counts exceed chunk size")
            sizes.append(size)
            secrets.append(n_secret)
            publics.append(n_public)
        return cls(round_id, tuple(sizes), tuple(secrets), tuple(publics))


@dataclass(frozen=True)
class WireZContent:
    """One public z-packet: its (chunk, row) tag plus the payload.

    The 6-byte head is the wire form of the 4-byte (chunk, row) tag
    :func:`repro.core.messages.z_content_overhead_bytes` charges, plus
    the round id a real multiplexed stream needs.
    """

    round_id: int
    chunk: int
    row: int
    payload: bytes

    def pack(self) -> bytes:
        return _ZHEAD.pack(self.round_id, self.chunk, self.row) + self.payload

    @classmethod
    def unpack(cls, body: bytes) -> "WireZContent":
        _need(body, _ZHEAD.size, "Z_CONTENT")
        round_id, chunk, row = _ZHEAD.unpack_from(body)
        return cls(round_id, chunk, row, body[_ZHEAD.size :])


@dataclass(frozen=True)
class WireConfirm:
    """Key-confirmation tag (HMAC-SHA256 over a role/name label)."""

    tag: bytes  # 32 bytes

    def pack(self, ack: bool = False) -> Frame:
        if len(self.tag) != 32:
            raise FrameCorrupt("confirmation tag must be 32 bytes")
        return Frame(FrameType.CONFIRM_ACK if ack else FrameType.CONFIRM, self.tag)

    @classmethod
    def unpack(cls, frame: Frame) -> "WireConfirm":
        if len(frame.body) != 32:
            raise FrameCorrupt("confirmation tag must be 32 bytes")
        return cls(frame.body)


@dataclass(frozen=True)
class WireAbort:
    """Session teardown notice: a wire code plus a short reason."""

    code: int
    reason: str

    def pack(self) -> Frame:
        raw = self.reason.encode("utf-8")[:512]
        return Frame(FrameType.ABORT, _ABORT_HEAD.pack(self.code) + raw)

    @classmethod
    def unpack(cls, frame: Frame) -> "WireAbort":
        _need(frame.body, _ABORT_HEAD.size, "ABORT")
        (code,) = _ABORT_HEAD.unpack_from(frame.body)
        reason = frame.body[_ABORT_HEAD.size :].decode("utf-8", errors="replace")
        return cls(code, reason)
