"""Typed failure modes of the live key-agreement service.

Every way a session can end short of two confirmed, identical keys maps
to one exception class here.  The fail-closed contract of the service
layer is built on this taxonomy: drivers translate *any* of these into
an ABORT frame to the peer and guarantee that no key material is ever
exposed from a session that raised (see
:attr:`repro.service.engine.SessionPhase.ESTABLISHED`).
"""

from __future__ import annotations

from enum import IntEnum

__all__ = [
    "ServiceError",
    "HandshakeError",
    "ConfigMismatchError",
    "AuthenticationError",
    "PoolExhaustedError",
    "ProtocolViolation",
    "NoSecretError",
    "InsufficientEntropyError",
    "ConfirmationError",
    "SessionAborted",
    "SessionTimeout",
    "TransportClosed",
    "AbortCode",
]


class ServiceError(RuntimeError):
    """Base class: the session ended without an established key."""


class HandshakeError(ServiceError):
    """The HELLO exchange could not complete."""


class ConfigMismatchError(HandshakeError):
    """The peers' protocol parameters disagree (digest mismatch)."""


class AuthenticationError(ServiceError):
    """A control frame's one-time MAC failed to verify.

    Covers forgery, corruption surviving the frame CRC, and any
    desynchronisation of the pair's key-pool consumption (dropped,
    duplicated or reordered control frames all land here, by design:
    the authenticated sequence is strict).
    """


class PoolExhaustedError(ServiceError):
    """The bootstrap key pool ran out mid-handshake.

    Wraps :class:`repro.auth.bootstrap.BootstrapError`: the session is
    aborted — never continued unauthenticated — and no key material is
    derived.
    """


class ProtocolViolation(ServiceError):
    """The peer sent a frame the state machine cannot accept."""


class NoSecretError(ServiceError):
    """The rounds produced an empty secret; nothing to derive keys from."""


class InsufficientEntropyError(ServiceError):
    """The measured secrecy budget cannot support a usable key.

    Raised by the derivation boundary when the session's residual
    min-entropy — secret bits minus Eve's measured leakage minus the
    configured safety margin — falls below the minimum key length.
    Fail-closed twin of :class:`NoSecretError` for sessions that agreed
    *something*, but not enough of it secretly.
    """


class ConfirmationError(ServiceError):
    """Key confirmation failed: the peers derived different keys."""


class SessionAborted(ServiceError):
    """The peer sent an ABORT frame."""

    def __init__(self, code: "AbortCode", reason: str) -> None:
        super().__init__(f"peer aborted ({code.name}): {reason}")
        self.code = code
        self.reason = reason


class SessionTimeout(ServiceError):
    """The session did not finish within the configured deadline."""


class TransportClosed(ServiceError):
    """The underlying transport closed before the session finished."""


class AbortCode(IntEnum):
    """Wire codes for the ABORT frame (mirrors the exception taxonomy)."""

    INTERNAL = 0
    CONFIG_MISMATCH = 1
    AUTH_FAILED = 2
    POOL_EXHAUSTED = 3
    PROTOCOL = 4
    NO_SECRET = 5
    CONFIRM_FAILED = 6
    TIMEOUT = 7
    LOW_ENTROPY = 8


#: Exception class -> wire code, used by drivers when notifying the peer.
ABORT_CODE_OF = {
    ConfigMismatchError: AbortCode.CONFIG_MISMATCH,
    AuthenticationError: AbortCode.AUTH_FAILED,
    PoolExhaustedError: AbortCode.POOL_EXHAUSTED,
    ProtocolViolation: AbortCode.PROTOCOL,
    NoSecretError: AbortCode.NO_SECRET,
    InsufficientEntropyError: AbortCode.LOW_ENTROPY,
    ConfirmationError: AbortCode.CONFIRM_FAILED,
    SessionTimeout: AbortCode.TIMEOUT,
}


def abort_code_for(exc: BaseException) -> AbortCode:
    """The wire code a driver should attach when aborting on ``exc``."""
    for klass, code in ABORT_CODE_OF.items():
        if isinstance(exc, klass):
            return code
    return AbortCode.INTERNAL
