"""Async drivers: pump frames between transports and session engines.

The engines (:mod:`repro.service.engine`) are sans-io; this module is
the io.  Each driver is a small pump — receive a frame, feed the engine,
send whatever it returns — wrapped in the session deadline and the
fail-closed abort protocol (any :class:`ServiceError` is translated to
an ABORT frame for the peer before re-raising locally).  Because the
pumps only await on transport operations, one event loop multiplexes as
many concurrent sessions as memory allows; the load generator below
routinely runs thousands.

Entry points:

* :func:`run_leader` / :func:`run_follower` — one session over caller-
  provided transports.
* :func:`run_memory_group` — a full in-process session over
  :class:`~repro.service.transport.MemoryTransport` pairs, optionally
  perturbed by :class:`~repro.service.transport.FlakyTransport`.
* :class:`TcpLeader` / :func:`connect_follower_tcp` — the same over
  real loopback/remote TCP streams.
* :func:`run_load` — the concurrent-session load generator backing the
  ``service_*`` benchmarks.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.config import ServiceConfig
from repro.service.derive import DerivedKeys
from repro.service.engine import FollowerEngine, LeaderEngine
from repro.service.errors import (
    ProtocolViolation,
    ServiceError,
    SessionTimeout,
    TransportClosed,
    abort_code_for,
)
from repro.service.frames import Frame, FrameError, WireAbort
from repro.service.transport import (
    FaultSpec,
    FlakyTransport,
    FrameTransport,
    MemoryTransport,
    StreamFrameTransport,
)

__all__ = [
    "run_leader",
    "run_follower",
    "run_memory_group",
    "SessionOutcome",
    "run_memory_group_outcome",
    "TcpLeader",
    "connect_follower_tcp",
    "LoadReport",
    "run_load",
]


def _abort_frame(exc: BaseException) -> Frame:
    return WireAbort(int(abort_code_for(exc)), str(exc)[:200]).pack()


async def _notify_abort(transport: FrameTransport, exc: BaseException) -> None:
    """Best-effort ABORT to the peer; never masks the original error."""
    try:
        await transport.send(_abort_frame(exc))
    except Exception:
        pass


async def _recv(transport: FrameTransport) -> Frame:
    """Receive one frame, folding codec failures into the taxonomy."""
    try:
        return await transport.recv()
    except FrameError as exc:
        raise ProtocolViolation(f"frame codec failure: {exc}") from None


# ---------------------------------------------------------------------------
# Single-session drivers
# ---------------------------------------------------------------------------


async def run_follower(
    config: ServiceConfig,
    name: str,
    leader: str,
    transport: FrameTransport,
) -> DerivedKeys:
    """Run one follower session to completion; returns confirmed keys.

    Raises a typed :class:`ServiceError` on any failure, after sending
    an ABORT to the leader; no key material survives a raise.
    """
    engine = FollowerEngine(config, name, leader)
    try:
        async with asyncio.timeout(config.handshake_timeout):
            for frame in engine.start():
                await transport.send(frame)
            while not engine.established:
                for out in engine.on_frame(await _recv(transport)):
                    await transport.send(out)
    except TimeoutError:
        exc = SessionTimeout(f"follower {name} timed out in {engine.phase.value}")
        await _notify_abort(transport, exc)
        raise exc from None
    except ServiceError as exc:
        await _notify_abort(transport, exc)
        raise
    keys = engine.derived_keys
    assert keys is not None  # established implies keys, by construction
    return keys


async def run_leader(
    config: ServiceConfig,
    name: str,
    transports: Dict[str, FrameTransport],
    nonce: int = 0,
) -> DerivedKeys:
    """Run one leader session over per-follower transports.

    ``transports`` maps follower name -> its channel; the session spans
    all of them and establishes only when every follower confirmed.
    """
    engine = LeaderEngine(config, name, tuple(transports), nonce)
    queue: asyncio.Queue = asyncio.Queue()

    async def reader(peer: str, transport: FrameTransport) -> None:
        try:
            while True:
                frame = await _recv(transport)
                await queue.put((peer, frame, None))
        except ServiceError as exc:
            await queue.put((peer, None, exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # defensive: surface, don't hang the session
            await queue.put((peer, None, ProtocolViolation(f"reader failed: {exc}")))

    readers = [
        asyncio.create_task(reader(peer, transport))
        for peer, transport in transports.items()
    ]
    try:
        async with asyncio.timeout(config.handshake_timeout):
            while not engine.established:
                peer, frame, exc = await queue.get()
                if exc is not None:
                    raise exc
                for dst, out in engine.on_frame(peer, frame):
                    await transports[dst].send(out)
    except TimeoutError:
        exc = SessionTimeout(f"leader {name} timed out in {engine.phase.value}")
        for transport in transports.values():
            await _notify_abort(transport, exc)
        raise exc from None
    except ServiceError as exc:
        for transport in transports.values():
            await _notify_abort(transport, exc)
        raise
    finally:
        for task in readers:
            task.cancel()
        await asyncio.gather(*readers, return_exceptions=True)
    keys = engine.derived_keys
    assert keys is not None
    return keys


# ---------------------------------------------------------------------------
# In-memory groups (the deterministic test backbone)
# ---------------------------------------------------------------------------


async def run_memory_group(
    config: ServiceConfig,
    leader: str = "alice",
    followers: Tuple[str, ...] = ("bob",),
    nonce: int = 0,
    fault_spec: Optional[FaultSpec] = None,
    fault_seed: int = 0,
) -> Dict[str, DerivedKeys]:
    """One full in-process session; returns every party's keys by name.

    ``fault_spec`` (if given) perturbs the leader->follower direction of
    each pair through :class:`FlakyTransport`, with a per-pair seed of
    ``fault_seed + index`` — fully reproducible chaos.  Any party's
    failure propagates (after the abort protocol ran), so callers see
    either a complete key map or a typed error — never a partial success.
    """
    leader_ends: Dict[str, FrameTransport] = {}
    follower_ends: Dict[str, FrameTransport] = {}
    for index, follower in enumerate(followers):
        a_end, b_end = MemoryTransport.pair()
        if fault_spec is not None:
            a_end = FlakyTransport(a_end, fault_spec, seed=fault_seed + index)
        leader_ends[follower] = a_end
        follower_ends[follower] = b_end
    try:
        results = await asyncio.gather(
            run_leader(config, leader, leader_ends, nonce),
            *(
                run_follower(config, name, leader, follower_ends[name])
                for name in followers
            ),
        )
    finally:
        for transport in (*leader_ends.values(), *follower_ends.values()):
            await transport.aclose()
    return {leader: results[0], **dict(zip(followers, results[1:]))}


@dataclass
class SessionOutcome:
    """One session's result for fault-injection sweeps and load runs."""

    ok: bool
    keys: Optional[Dict[str, DerivedKeys]]
    error_type: Optional[str]
    error: Optional[str]
    duration_s: float

    @property
    def keys_agree(self) -> bool:
        """True when established *and* every party holds identical material."""
        if not self.ok or not self.keys:
            return False
        materials = {k.material for k in self.keys.values()}
        return len(materials) == 1


async def run_memory_group_outcome(
    config: ServiceConfig,
    leader: str = "alice",
    followers: Tuple[str, ...] = ("bob",),
    nonce: int = 0,
    fault_spec: Optional[FaultSpec] = None,
    fault_seed: int = 0,
) -> SessionOutcome:
    """Like :func:`run_memory_group`, but capture failure instead of raising."""
    loop = asyncio.get_running_loop()
    started = loop.time()
    try:
        keys = await run_memory_group(
            config, leader, followers, nonce, fault_spec, fault_seed
        )
        # Key confirmation makes a mismatched-keys success structurally
        # impossible; verify anyway so a confirmation bug shows up as a
        # loud failure here instead of a silent agreement-rate lie.
        if len({k.material for k in keys.values()}) != 1:
            return SessionOutcome(
                ok=False,
                keys=None,
                error_type="KeyMismatch",
                error="established session holds non-identical key material",
                duration_s=loop.time() - started,
            )
        return SessionOutcome(
            ok=True,
            keys=keys,
            error_type=None,
            error=None,
            duration_s=loop.time() - started,
        )
    except ServiceError as exc:
        return SessionOutcome(
            ok=False,
            keys=None,
            error_type=type(exc).__name__,
            error=str(exc),
            duration_s=loop.time() - started,
        )


# ---------------------------------------------------------------------------
# TCP
# ---------------------------------------------------------------------------


class TcpLeader:
    """A leader listening on TCP for its followers, then running the session.

    Usage::

        leader = TcpLeader(config, "alice", ("bob", "carol"))
        port = await leader.start()        # followers connect to it
        keys = await leader.run()          # blocks until established
        await leader.aclose()

    Followers are identified by their HELLO frame; connections from
    names outside the follower set are refused with an ABORT.
    """

    def __init__(
        self,
        config: ServiceConfig,
        name: str,
        followers: Tuple[str, ...],
        host: str = "127.0.0.1",
        port: int = 0,
        nonce: int = 0,
    ) -> None:
        self.config = config
        self.name = name
        self.followers = tuple(followers)
        self.host = host
        self.port = port
        self.nonce = nonce
        self._server: Optional[asyncio.base_events.Server] = None
        self._transports: Dict[str, FrameTransport] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._conn_tasks: List[asyncio.Task] = []

    async def start(self) -> int:
        """Start listening; returns the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        transport = StreamFrameTransport(reader, writer, self.config.max_frame_bytes)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.append(task)
        peer: Optional[str] = None
        try:
            while True:
                frame = await _recv(transport)
                if peer is None:
                    # First frame must be the HELLO; it names the peer so
                    # the session loop can route replies.
                    from repro.service.frames import FrameType, WireHello

                    if frame.type is not FrameType.HELLO:
                        raise ProtocolViolation("connection must open with HELLO")
                    hello = WireHello.unpack(frame)
                    if hello.name not in self.followers:
                        raise ProtocolViolation(
                            f"{hello.name!r} is not part of this session"
                        )
                    if hello.name in self._transports:
                        raise ProtocolViolation(f"duplicate connection for {hello.name!r}")
                    peer = hello.name
                    self._transports[peer] = transport
                await self._queue.put((peer, frame, None))
        except ServiceError as exc:
            if peer is not None:
                await self._queue.put((peer, None, exc))
            else:
                await _notify_abort(transport, exc)
                await transport.aclose()
        except asyncio.CancelledError:
            pass

    async def run(self) -> DerivedKeys:
        """Run the session to establishment; returns the leader's keys."""
        engine = LeaderEngine(self.config, self.name, self.followers, self.nonce)
        try:
            async with asyncio.timeout(self.config.handshake_timeout):
                while not engine.established:
                    peer, frame, exc = await self._queue.get()
                    if exc is not None:
                        raise exc
                    for dst, out in engine.on_frame(peer, frame):
                        await self._transports[dst].send(out)
        except TimeoutError:
            exc = SessionTimeout(f"leader {self.name} timed out in {engine.phase.value}")
            for transport in self._transports.values():
                await _notify_abort(transport, exc)
            raise exc from None
        except ServiceError as exc:
            for transport in self._transports.values():
                await _notify_abort(transport, exc)
            raise
        keys = engine.derived_keys
        assert keys is not None
        return keys

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._conn_tasks:
            task.cancel()
        await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for transport in self._transports.values():
            await transport.aclose()


async def connect_follower_tcp(
    config: ServiceConfig,
    name: str,
    leader: str,
    host: str,
    port: int,
) -> DerivedKeys:
    """Connect to a :class:`TcpLeader` and run the follower session."""
    reader, writer = await asyncio.open_connection(host, port)
    transport = StreamFrameTransport(reader, writer, config.max_frame_bytes)
    try:
        return await run_follower(config, name, leader, transport)
    finally:
        await transport.aclose()


# ---------------------------------------------------------------------------
# Load generation
# ---------------------------------------------------------------------------


def nearest_rank_ms(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending sample list.

    An exact order statistic with the index clamped into ``[0, n-1]``:
    well defined for any ``n >= 1`` and any ``q`` in ``[0, 100]``.
    Interpolating percentiles (``np.percentile`` default) invent values
    between the two largest samples on small runs — a "p99" latency no
    session actually exhibited, which then jitters the bench trend gate.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0
    idx = min(n - 1, max(0, math.ceil(q / 100.0 * n) - 1))
    return float(sorted_values[idx])


@dataclass
class LoadReport:
    """Throughput/latency summary of a concurrent-session load run.

    ``n_samples`` is the size of the latency population behind the
    percentiles (established sessions only) — always reported, so a
    reader can tell a p99 over 1000 samples from one over 3.
    """

    sessions: int
    established: int
    failed: int
    elapsed_s: float
    sessions_per_sec: float
    p50_ms: float
    p99_ms: float
    n_samples: int = 0
    failure_types: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "sessions": self.sessions,
            "established": self.established,
            "failed": self.failed,
            "elapsed_s": self.elapsed_s,
            "sessions_per_sec": self.sessions_per_sec,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "n_samples": self.n_samples,
            "failure_types": dict(self.failure_types),
        }


async def run_load(
    config: ServiceConfig,
    n_sessions: int,
    concurrency: int = 64,
    fault_spec: Optional[FaultSpec] = None,
) -> LoadReport:
    """Run ``n_sessions`` concurrent in-process sessions; measure.

    Each session is an independent leader/follower pair distinguished by
    its nonce (distinct session ids, hence distinct derived keys) over a
    :class:`MemoryTransport` pair, at most ``concurrency`` in flight.
    Handshake latency is per-session wall time from spawn to confirmed
    keys; the p50/p99 are the ``BENCH_service_*`` numbers.
    """
    if n_sessions < 1:
        raise ValueError("need at least one session")
    gate = asyncio.Semaphore(concurrency)
    loop = asyncio.get_running_loop()

    async def one(nonce: int) -> SessionOutcome:
        async with gate:
            return await run_memory_group_outcome(
                config,
                leader="alice",
                followers=("bob",),
                nonce=nonce,
                fault_spec=fault_spec,
                fault_seed=nonce,
            )

    started = loop.time()
    outcomes = await asyncio.gather(*(one(n) for n in range(n_sessions)))
    elapsed = loop.time() - started

    latencies = sorted(o.duration_s * 1e3 for o in outcomes if o.ok)
    failure_types: Dict[str, int] = {}
    for outcome in outcomes:
        if not outcome.ok and outcome.error_type:
            failure_types[outcome.error_type] = (
                failure_types.get(outcome.error_type, 0) + 1
            )
    established = sum(1 for o in outcomes if o.ok)
    return LoadReport(
        sessions=n_sessions,
        established=established,
        failed=n_sessions - established,
        elapsed_s=elapsed,
        sessions_per_sec=established / elapsed if elapsed > 0 else 0.0,
        p50_ms=nearest_rank_ms(latencies, 50),
        p99_ms=nearest_rank_ms(latencies, 99),
        n_samples=len(latencies),
        failure_types=failure_types,
        latencies_ms=list(latencies),
    )
