"""Frame transports: real sockets, in-memory pairs, and fault injection.

Three implementations of one tiny interface (:class:`FrameTransport`):

* :class:`StreamFrameTransport` — asyncio ``StreamReader``/``Writer``
  (TCP, unix sockets) through the length-prefixed codec.
* :class:`MemoryTransport` — a connected in-process pair over asyncio
  queues; no sockets, no ports, runs thousands per event loop.  The
  deterministic backbone of the network-test harness.
* :class:`FlakyTransport` — a wrapper injecting seeded per-frame faults
  (drop / duplicate / reorder / delay) on the send side, in the same
  spirit as the store layer's fault-injection suite: every network
  behaviour a test wants is reproducible from a seed.

Sessions built on these fail closed by construction: data-plane frames
(X_PACKET) tolerate loss — that *is* the protocol's channel model —
while control-plane faults surface as MAC-sequence failures or
timeouts, never as mismatched keys.
"""

from __future__ import annotations

import abc
import asyncio
import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.service.errors import TransportClosed
from repro.service.frames import (
    MAX_FRAME_BYTES,
    Frame,
    FrameDecoder,
    FrameType,
    encode_frame,
)

__all__ = [
    "FrameTransport",
    "StreamFrameTransport",
    "MemoryTransport",
    "FaultSpec",
    "FlakyTransport",
]


class FrameTransport(abc.ABC):
    """A bidirectional, ordered, frame-oriented channel endpoint."""

    @abc.abstractmethod
    async def send(self, frame: Frame) -> None:
        """Transmit one frame (raises :class:`TransportClosed` if dead)."""

    @abc.abstractmethod
    async def recv(self) -> Frame:
        """Await the next frame (raises :class:`TransportClosed` on EOF)."""

    @abc.abstractmethod
    async def aclose(self) -> None:
        """Close the endpoint; idempotent."""


class StreamFrameTransport(FrameTransport):
    """Frames over an asyncio stream (TCP / unix socket)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame_bytes)
        self._max_frame_bytes = max_frame_bytes
        self._pending: List[Frame] = []
        self._closed = False

    async def send(self, frame: Frame) -> None:
        if self._closed:
            raise TransportClosed("send on a closed stream transport")
        self._writer.write(encode_frame(frame, self._max_frame_bytes))
        await self._writer.drain()

    async def recv(self) -> Frame:
        while not self._pending:
            if self._closed:
                raise TransportClosed("recv on a closed stream transport")
            chunk = await self._reader.read(65536)
            if not chunk:
                self._decoder.eof()  # raises FrameTruncated on torn frame
                raise TransportClosed("peer closed the stream")
            self._pending.extend(self._decoder.feed(chunk))
        return self._pending.pop(0)

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass


class MemoryTransport(FrameTransport):
    """One endpoint of an in-process connected pair.

    Frames pass as objects (the codec has its own exhaustive tests);
    ordering is FIFO per direction, like a TCP stream.  ``close`` wakes
    the peer's pending ``recv`` with :class:`TransportClosed`.
    """

    _CLOSE = object()

    def __init__(self, inbox: asyncio.Queue, outbox: asyncio.Queue) -> None:
        self._inbox = inbox
        self._outbox = outbox
        self._closed = False
        self._peer_closed = False

    @classmethod
    def pair(cls) -> Tuple["MemoryTransport", "MemoryTransport"]:
        """A connected (a, b) endpoint pair."""
        ab: asyncio.Queue = asyncio.Queue()
        ba: asyncio.Queue = asyncio.Queue()
        return cls(inbox=ba, outbox=ab), cls(inbox=ab, outbox=ba)

    async def send(self, frame: Frame) -> None:
        if self._closed:
            raise TransportClosed("send on a closed memory transport")
        await self._outbox.put(frame)

    async def recv(self) -> Frame:
        if self._closed or self._peer_closed:
            raise TransportClosed("recv on a closed memory transport")
        item = await self._inbox.get()
        if item is MemoryTransport._CLOSE:
            self._peer_closed = True
            raise TransportClosed("peer closed the memory transport")
        return item

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self._outbox.put(MemoryTransport._CLOSE)


@dataclass(frozen=True)
class FaultSpec:
    """Seeded per-frame fault probabilities for :class:`FlakyTransport`.

    Attributes:
        drop: probability a frame silently vanishes.
        duplicate: probability a frame is delivered twice.
        reorder: probability a frame is held back and delivered after
            the next frame (adjacent swap — repeated swaps compose into
            arbitrary bounded reordering).
        delay: probability a frame's delivery is delayed in wall time
            (ordering preserved; exercises timeout paths).
        delay_s: maximum injected delay in seconds.
        kinds: frame types the faults apply to, or None for all frames.
            Restricting to ``{FrameType.X_PACKET}`` models a lossy data
            plane over a reliable control plane.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.0
    kinds: Optional[FrozenSet[int]] = None

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")

    @classmethod
    def data_plane(cls, drop: float, duplicate: float = 0.0, reorder: float = 0.0) -> "FaultSpec":
        """Faults confined to X_PACKET frames (the lossy broadcast)."""
        return cls(
            drop=drop,
            duplicate=duplicate,
            reorder=reorder,
            kinds=frozenset({FrameType.X_PACKET}),
        )


class FlakyTransport(FrameTransport):
    """Fault-injecting wrapper around any :class:`FrameTransport`.

    Faults are decided by a private ``random.Random(seed)`` stream in
    send order, so a given (seed, frame sequence) always produces the
    identical fault pattern — CI-runnable network chaos.  Faults apply
    to the *send* side only; wrap both endpoints (with distinct seeds)
    to perturb both directions.
    """

    def __init__(self, inner: FrameTransport, spec: FaultSpec, seed: int = 0) -> None:
        self._inner = inner
        self._spec = spec
        self._rng = random.Random(seed)
        self._held: List[Frame] = []
        #: Counters by fate, for test assertions and load-report stats.
        self.injected = {"drop": 0, "duplicate": 0, "reorder": 0, "delay": 0}

    def _applies(self, frame: Frame) -> bool:
        return self._spec.kinds is None or frame.type in self._spec.kinds

    async def _flush_held(self) -> None:
        while self._held:
            await self._inner.send(self._held.pop(0))

    async def send(self, frame: Frame) -> None:
        if not self._applies(frame):
            await self._inner.send(frame)
            await self._flush_held()
            return
        spec = self._spec
        roll = self._rng.random()
        if roll < spec.drop:
            self.injected["drop"] += 1
            return
        roll -= spec.drop
        if roll < spec.duplicate:
            self.injected["duplicate"] += 1
            await self._inner.send(frame)
            await self._inner.send(frame)
            await self._flush_held()
            return
        roll -= spec.duplicate
        if roll < spec.reorder:
            self.injected["reorder"] += 1
            self._held.append(frame)
            return
        roll -= spec.reorder
        if roll < spec.delay and spec.delay_s > 0:
            self.injected["delay"] += 1
            await asyncio.sleep(self._rng.random() * spec.delay_s)
        await self._inner.send(frame)
        await self._flush_held()

    async def recv(self) -> Frame:
        return await self._inner.recv()

    async def aclose(self) -> None:
        # Held frames die with the connection: a reorder at stream end
        # becomes a tail drop, which sessions already tolerate/abort on.
        self._held.clear()
        await self._inner.aclose()
