"""HKDF-style key derivation: agreed secret -> usable symmetric keys.

The protocol's output is a matrix of secret packets; applications need
fixed-length uniform key material.  This module closes that gap with
the standard extract-then-expand construction (RFC 5869, HMAC-SHA256)
— the same idiom as the RLPx ``derive_rlpx_keys`` handshake step, but
with an information-theoretic secret as input keying material instead
of an ECDH point.

The derivation contract (also documented in docs/architecture.md):

* ``salt  = SHA256("thin-air/service/v1" | session_id | config_digest
  | leader)`` — the session id already binds the full group (it is
  derived from the sorted member list), and a follower does not learn
  its co-followers' names, so the salt stays computable by every party.
* ``prk   = HMAC-SHA256(salt, secret_bytes)``
* ``material     = HKDF-Expand(prk, "key-material", key_bytes)``
* ``confirm_root = HKDF-Expand(prk, "confirm-root", 32)``

Key confirmation tags are ``HMAC-SHA256(confirm_root, label)`` where
the label names the direction (``confirm|<role>|<name>``), so a
follower cannot replay the leader's tag back at it.  An empty secret
derives nothing: :class:`~repro.service.errors.NoSecretError` enforces
the fail-closed contract at the derivation boundary itself.

Privacy amplification sizing (leftover-hash style): when the caller
hands over a measured :class:`LeakageBudget`, the expand step emits at
most ``extractable_bytes`` — the session's residual min-entropy after
Eve's measured observations and the configured safety margin — and a
session whose budget cannot support even :data:`MIN_KEY_BYTES` aborts
with a typed :class:`~repro.service.errors.InsufficientEntropyError`
instead of stretching thin entropy into a full-length key.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.service.errors import InsufficientEntropyError, NoSecretError

__all__ = [
    "hkdf_extract",
    "hkdf_expand",
    "DerivedKeys",
    "LeakageBudget",
    "derive_session_keys",
    "MIN_KEY_BYTES",
]

_HASH_LEN = hashlib.sha256().digest_size

#: Smallest key material the service will ever emit (mirrors the
#: ``ServiceConfig.key_bytes`` floor): a budget that cannot cover this
#: aborts the session rather than shipping a weak key.
MIN_KEY_BYTES = 16


@dataclass(frozen=True)
class LeakageBudget:
    """Measured secrecy budget of one session, in bits.

    Built from the engines' per-round :func:`repro.core.eve.round_leakage`
    accounting: ``secret_bits`` is everything the rounds agreed,
    ``leaked_bits`` the dimensions Eve's observed equations span, and
    ``safety_margin_bits`` the deployment's stated haircut for model
    error (estimator optimism, extractor loss).

    Attributes:
        secret_bits: total agreed secret size across rounds.
        leaked_bits: bits of it Eve's observations determine.
        safety_margin_bits: extra bits withheld on top of the
            measurement before sizing key material.
    """

    secret_bits: int
    leaked_bits: int
    safety_margin_bits: int = 0

    def __post_init__(self) -> None:
        if self.secret_bits < 0 or self.leaked_bits < 0:
            raise ValueError("budget bit counts must be non-negative")
        if self.safety_margin_bits < 0:
            raise ValueError("safety margin must be non-negative")
        if self.leaked_bits > self.secret_bits:
            raise ValueError(
                f"leaked_bits ({self.leaked_bits}) cannot exceed "
                f"secret_bits ({self.secret_bits})"
            )

    @property
    def min_entropy_bits(self) -> int:
        """Residual min-entropy Eve's measured view leaves intact."""
        return self.secret_bits - self.leaked_bits

    @property
    def extractable_bytes(self) -> int:
        """Whole bytes of key material the budget supports."""
        return max(self.min_entropy_bits - self.safety_margin_bits, 0) // 8


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """RFC 5869 extract: concentrate the input keying material."""
    return hmac.new(salt, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """RFC 5869 expand: stretch a PRK to ``length`` output bytes."""
    if length < 0:
        raise ValueError("cannot derive a negative number of bytes")
    if length > 255 * _HASH_LEN:
        raise ValueError(f"HKDF-Expand caps output at {255 * _HASH_LEN} bytes")
    out = bytearray()
    block = b""
    counter = 1
    while len(out) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hashlib.sha256).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


@dataclass(frozen=True)
class DerivedKeys:
    """The service's output: key material of the configured length.

    Attributes:
        material: ``key_bytes`` of uniform key material (the stated
            service contract; split it as the application requires).
        confirm_root: root of the key-confirmation tags — used by the
            handshake itself and never handed to applications.
    """

    material: bytes
    confirm_root: bytes

    def confirm_tag(self, role: str, name: str) -> bytes:
        """Direction-bound confirmation tag for ``role``/``name``."""
        label = b"confirm|" + role.encode("utf-8") + b"|" + name.encode("utf-8")
        return hmac.new(self.confirm_root, label, hashlib.sha256).digest()

    def fingerprint(self) -> str:
        """Short public fingerprint for logs (never the material)."""
        return hashlib.sha256(b"fingerprint|" + self.material).hexdigest()[:16]


def derive_session_keys(
    secret: np.ndarray,
    *,
    session_id: bytes,
    config_digest: bytes,
    leader: str,
    key_bytes: int,
    budget: Optional[LeakageBudget] = None,
) -> DerivedKeys:
    """Turn the agreed secret packets into usable symmetric keys.

    Args:
        budget: the session's measured secrecy budget.  When given, the
            emitted material is ``min(key_bytes, budget.extractable_bytes)``
            — privacy amplification sized by measurement, not by hope.
            When None the caller takes responsibility for sizing
            (legacy contract: emit exactly ``key_bytes``).

    Raises:
        NoSecretError: when the secret is empty — a session that agreed
            nothing must fail closed, not emit keys derived from an
            empty string.
        InsufficientEntropyError: when the measured budget cannot cover
            :data:`MIN_KEY_BYTES` of output.
    """
    arr = np.asarray(secret, dtype=np.uint8)
    if arr.size == 0:
        raise NoSecretError("the rounds produced an empty secret")
    if budget is not None:
        key_bytes = min(key_bytes, budget.extractable_bytes)
        if key_bytes < MIN_KEY_BYTES:
            raise InsufficientEntropyError(
                f"measured budget supports {budget.extractable_bytes} key "
                f"bytes ({budget.min_entropy_bits} residual min-entropy "
                f"bits, margin {budget.safety_margin_bits}); "
                f"need at least {MIN_KEY_BYTES}"
            )
    h = hashlib.sha256()
    h.update(b"thin-air/service/v1|")
    h.update(session_id)
    h.update(config_digest)
    h.update(leader.encode("utf-8"))
    prk = hkdf_extract(h.digest(), arr.tobytes())
    return DerivedKeys(
        material=hkdf_expand(prk, b"key-material", key_bytes),
        confirm_root=hkdf_expand(prk, b"confirm-root", _HASH_LEN),
    )
