"""Shared service-session parameters and their seeded derivations.

One :class:`ServiceConfig` object is the single source of truth both
peers of a session must agree on: the protocol sizing (mirroring
:class:`repro.core.session.SessionConfig`), the bootstrap secret, the
estimator, and — for deterministic testing — the seeded erasure traces
standing in for a lossy radio link.

Everything a peer derives from the config (per-pair bootstrap pools,
per-terminal erasure traces, the session id) is a pure function of the
config bytes and stable names, so two processes constructed from equal
configs derive byte-identical values without further coordination —
and so the deterministic network-test harness can replay any session.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.estimator import (
    EveErasureEstimator,
    FixedFractionEstimator,
    OracleEstimator,
)
from repro.service.derive import hkdf_expand, hkdf_extract

__all__ = ["ServiceConfig", "LEADER_ROLE", "FOLLOWER_ROLE"]

LEADER_ROLE = 0
FOLLOWER_ROLE = 1

#: Demo-only bootstrap secret.  Real deployments provision this out of
#: band (the paper's "fundamentally unavoidable" step); tests override
#: it per scenario.
_DEMO_BOOTSTRAP = b"thin-air-service-demo-bootstrap/not-for-production"


@dataclass(frozen=True)
class ServiceConfig:
    """Parameters of one live key-agreement session.

    Wire-relevant fields (everything that changes how frames are built
    or interpreted) are folded into :meth:`digest`, which HELLO frames
    carry so mismatched peers abort instead of mis-decoding.

    Attributes:
        n_x_packets: N, x-packets broadcast per round.
        payload_bytes: symbols per packet.
        n_rounds: protocol rounds per session; round secrets are
            concatenated before key derivation.
        secrecy_slack: withheld dimensions per phase-2 chunk (see
            :func:`repro.coding.privacy.build_phase2_matrices`).
        z_cost_factor: airtime weight of z-packets in the allocation.
        max_subset_size: cap on block decodable-set size (None = free).
        estimator_kind: ``"fraction"`` (deployable: the artificial-
            interference guarantee) or ``"oracle"`` (testing: ground
            truth from the eve trace).
        estimator_fraction: the fraction for ``"fraction"`` mode.
        key_bytes: *ceiling* on the derived symmetric key material —
            the measured secrecy budget may size the output below it
            (see :class:`repro.service.derive.LeakageBudget`).
        secrecy_margin_bits: safety haircut subtracted from the
            measured residual min-entropy before sizing key material;
            wire-relevant (both peers must size identically), so it is
            folded into :meth:`digest`.
        bootstrap: master bootstrap secret shared by the group.
        pool_bytes_per_peer: per-(leader, follower) one-time-MAC pool
            size expanded from the bootstrap.
        payload_seed: seeds the leader's x-payload generator.
        loss_seed: seeds every per-terminal erasure trace.
        loss_prob: per-packet erasure probability in the traces.
        eve_loss_prob: Eve's per-packet erasure probability (oracle
            mode accounting).
        handshake_timeout: seconds a driver waits before failing closed.
        max_frame_bytes: codec frame-size ceiling.
    """

    n_x_packets: int = 48
    payload_bytes: int = 32
    n_rounds: int = 1
    secrecy_slack: int = 0
    z_cost_factor: float = 2.0
    max_subset_size: Optional[int] = None
    estimator_kind: str = "fraction"
    estimator_fraction: float = 0.25
    key_bytes: int = 64
    secrecy_margin_bits: int = 0
    bootstrap: bytes = _DEMO_BOOTSTRAP
    pool_bytes_per_peer: int = 4096
    payload_seed: int = 7
    loss_seed: int = 11
    loss_prob: float = 0.3
    eve_loss_prob: float = 0.5
    handshake_timeout: float = 30.0
    max_frame_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.n_x_packets < 1 or self.payload_bytes < 1:
            raise ValueError("rounds need at least one non-empty x-packet")
        if self.n_rounds < 1:
            raise ValueError("a session needs at least one round")
        if self.estimator_kind not in ("fraction", "oracle"):
            raise ValueError(f"unknown estimator kind {self.estimator_kind!r}")
        if not 0.0 <= self.loss_prob <= 1.0 or not 0.0 <= self.eve_loss_prob <= 1.0:
            raise ValueError("loss probabilities must be in [0, 1]")
        if self.key_bytes < 16:
            raise ValueError("derived key material must be at least 16 bytes")
        if self.secrecy_margin_bits < 0:
            raise ValueError("secrecy margin must be non-negative")
        if len(self.bootstrap) < 16:
            raise ValueError("bootstrap secret must be at least 16 bytes")

    # -- wire identity -----------------------------------------------------

    def digest(self) -> bytes:
        """16-byte digest of every wire-relevant parameter.

        Deliberately excludes the bootstrap secret (never hashed into
        anything that travels) and the timeout (a local policy).
        """
        doc = json.dumps(
            {
                "v": 1,
                "n_x": self.n_x_packets,
                "payload": self.payload_bytes,
                "rounds": self.n_rounds,
                "slack": self.secrecy_slack,
                "z_cost": self.z_cost_factor,
                "max_subset": self.max_subset_size,
                "estimator": [self.estimator_kind, self.estimator_fraction],
                "key_bytes": self.key_bytes,
                "secrecy_margin": self.secrecy_margin_bits,
                "payload_seed": self.payload_seed,
                "loss_seed": self.loss_seed,
                "loss_prob": self.loss_prob,
                "eve_loss_prob": self.eve_loss_prob,
            },
            sort_keys=True,
        ).encode("utf-8")
        return hashlib.sha256(doc).digest()[:16]

    def session_id(self, leader: str, followers: Tuple[str, ...], nonce: int = 0) -> bytes:
        """Deterministic 16-byte session id (``nonce`` distinguishes
        concurrent sessions of the same group, e.g. in the load
        generator)."""
        h = hashlib.sha256()
        h.update(b"thin-air/session-id|")
        h.update(self.digest())
        h.update(leader.encode("utf-8"))
        for name in sorted(followers):
            h.update(b"|" + name.encode("utf-8"))
        h.update(nonce.to_bytes(8, "big"))
        return h.digest()[:16]

    # -- seeded derivations ------------------------------------------------

    def pair_pool(self, leader: str, follower: str) -> bytes:
        """The (leader, follower) pair's one-time-MAC bootstrap pool.

        Expanded from the master bootstrap with HKDF so each pair
        consumes independent material; both ends compute it locally.
        """
        salt = hashlib.sha256(
            b"thin-air/pair-pool|" + leader.encode() + b"|" + follower.encode()
        ).digest()
        prk = hkdf_extract(salt, self.bootstrap)
        return hkdf_expand(prk, b"bootstrap-pool", self.pool_bytes_per_peer)

    def _trace_rng(self, name: str) -> np.random.Generator:
        tag = int.from_bytes(
            hashlib.sha256(b"thin-air/trace|" + name.encode("utf-8")).digest()[:8],
            "big",
        )
        return np.random.default_rng([self.loss_seed, tag])

    def erasure_trace(self, name: str) -> np.ndarray:
        """Seeded per-terminal loss trace: ``(n_rounds, N)`` booleans.

        True means the x-packet is *lost* on the link to ``name``.  The
        same array drives both the service follower (which drops the
        frames locally, standing in for its radio) and the reference
        :class:`~repro.core.session.ProtocolSession` medium — which is
        what makes live runs reproducible against the simulator.
        """
        rng = self._trace_rng(name)
        return rng.random((self.n_rounds, self.n_x_packets)) < self.loss_prob

    def eve_trace(self) -> np.ndarray:
        """Eve's seeded loss trace (same shape), for oracle accounting."""
        rng = self._trace_rng("@eve")
        return rng.random((self.n_rounds, self.n_x_packets)) < self.eve_loss_prob

    def build_estimator(self) -> EveErasureEstimator:
        """The configured Eve-erasure estimator (leader side)."""
        if self.estimator_kind == "oracle":
            return OracleEstimator()
        return FixedFractionEstimator(self.estimator_fraction)
