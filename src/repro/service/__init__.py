"""Live async key-agreement service.

The production-shaped layer over the reproduction: real peers executing
the paper's protocol end to end over real transports — frame codec,
bootstrap-authenticated control plane, broadcast rounds, reconciliation,
privacy amplification, and HKDF key derivation with confirmation.

Layering (each module imports only downward):

* :mod:`repro.service.errors`    — the typed failure taxonomy.
* :mod:`repro.service.frames`    — length-prefixed wire codec.
* :mod:`repro.service.derive`    — HKDF extract/expand + confirmation.
* :mod:`repro.service.config`    — shared parameters, seeded traces.
* :mod:`repro.service.transport` — TCP / in-memory / fault-injecting.
* :mod:`repro.service.engine`    — sans-io leader/follower state machines.
* :mod:`repro.service.reference` — simulator runs on the same traces.
* :mod:`repro.service.peer`      — asyncio drivers, TCP entry points,
  the load generator.
"""

from repro.service.config import ServiceConfig
from repro.service.derive import (
    DerivedKeys,
    LeakageBudget,
    derive_session_keys,
)
from repro.service.engine import (
    FollowerEngine,
    LeaderEngine,
    SessionPhase,
    SessionSnapshot,
)
from repro.service.errors import (
    AbortCode,
    AuthenticationError,
    ConfigMismatchError,
    ConfirmationError,
    HandshakeError,
    InsufficientEntropyError,
    NoSecretError,
    PoolExhaustedError,
    ProtocolViolation,
    ServiceError,
    SessionAborted,
    SessionTimeout,
    TransportClosed,
)
from repro.service.frames import Frame, FrameDecoder, FrameType, encode_frame
from repro.service.peer import (
    LoadReport,
    SessionOutcome,
    TcpLeader,
    connect_follower_tcp,
    run_follower,
    run_leader,
    run_load,
    run_memory_group,
    run_memory_group_outcome,
)
from repro.service.reference import (
    TraceLossModel,
    build_reference_session,
    reference_budget,
    reference_keys,
    reference_secret,
)
from repro.service.transport import (
    FaultSpec,
    FlakyTransport,
    FrameTransport,
    MemoryTransport,
    StreamFrameTransport,
)

__all__ = [
    "ServiceConfig",
    "DerivedKeys",
    "derive_session_keys",
    "LeakageBudget",
    "FollowerEngine",
    "LeaderEngine",
    "SessionPhase",
    "SessionSnapshot",
    "ServiceError",
    "HandshakeError",
    "ConfigMismatchError",
    "AuthenticationError",
    "PoolExhaustedError",
    "ProtocolViolation",
    "NoSecretError",
    "InsufficientEntropyError",
    "ConfirmationError",
    "SessionAborted",
    "SessionTimeout",
    "TransportClosed",
    "AbortCode",
    "Frame",
    "FrameType",
    "FrameDecoder",
    "encode_frame",
    "FrameTransport",
    "StreamFrameTransport",
    "MemoryTransport",
    "FaultSpec",
    "FlakyTransport",
    "TraceLossModel",
    "build_reference_session",
    "reference_secret",
    "reference_budget",
    "reference_keys",
    "run_leader",
    "run_follower",
    "run_memory_group",
    "run_memory_group_outcome",
    "SessionOutcome",
    "TcpLeader",
    "connect_follower_tcp",
    "LoadReport",
    "run_load",
]
