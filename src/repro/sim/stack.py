"""Cross-cell batched accounting: one stacked kernel pass over many cells.

The per-cell :class:`~repro.sim.engine.BatchedRoundEngine` is already
vectorised *within* a cell, but a campaign grid holds many cells that
differ only along axes the reception tensor never sees (estimator
policy, slack, z-cost).  Cells sharing a **stack signature** —
``(n_terminals, loss model, adversary, n_x_packets)`` — have reception
tensors of identical shape drawn from the same channel law, so their
rounds can be stacked into one ``(sum_of_rounds, r, N)`` tensor and fed
through the pattern-histogram ``bincount`` and the subset-lattice zeta
transforms **once per group** instead of once per cell.

Seed discipline (the bit-identity contract):

* Every cell keeps its private generator, derived exactly as the
  per-cell path derives it (``SeedSequence(entropy=campaign_seed,
  spawn_key=content-hash(cell))``).  The stacked reception tensor is
  **shared storage, not shared randomness**: each cell's block is
  filled by the very same :func:`~repro.sim.reception.sample_receptions`
  call the per-cell engine would make, from the cell's own generator.
* The engine consumes its generator in a fixed order — reception tensor
  first, then one hypergeometric draw per (active subset, contributing
  cell) pair per round — and the stacked path preserves that order
  per cell exactly.

Consequently every stored shard, resumed campaign, and aggregate is
bit-identical between the stacked and per-cell paths; the equivalence
suite (``tests/sim/test_stack.py``) and
``scripts/check_sweep_equivalence.py`` pin this byte-for-byte.

Where the speed comes from:

1. The histogram/zeta kernels amortise their fixed numpy dispatch cost
   over the whole group.
2. The per-round realisation — integerise demand, memoized max-flow,
   hypergeometric sampling, certification, excess-row trim — runs on
   plain Python scalars and lists (:func:`_integerise_fast`,
   :func:`_realise_fast`) instead of length-``2^r`` numpy arrays, whose
   per-op dispatch dominates at subset-lattice sizes.  Each scalar step
   mirrors its array counterpart through exact float identities (sums
   of integral-valued doubles are order-independent; ``math.floor(x +
   1e-9) == np.floor(x + 1e-9)`` for finite x; ``sorted(...,
   key=(-rem, i))`` reproduces ``np.lexsort((arange, -rem))`` because
   ``-0.0 == 0.0`` ties break on the index in both).
3. The memoized flow plans (already shared process-wide through
   :func:`~repro.theory.allocation.realised_support_flow`) are cached
   per cell in list form, skipping repeated array-to-scalar conversion.
"""

from __future__ import annotations

from math import floor as _floor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.privacy import MAX_PHASE2_ROWS
from repro.sim.engine import (
    BatchResult,
    BatchedRoundEngine,
    _superset_sums,
)
from repro.sim.reception import sample_receptions_stacked
from repro.sim.spec import Scenario
from repro.theory.allocation import realised_support_flow
from repro.theory.efficiency import group_allocation_profile

__all__ = ["stack_signature", "group_cells", "run_stacked_batch"]

_INF = float("inf")


def stack_signature(scenario: Scenario) -> tuple:
    """The axes a reception tensor depends on: cells agreeing on these
    may share one stacked draw pass (never random values — each cell
    keeps its content-keyed stream)."""
    return (
        scenario.n_terminals,
        scenario.loss,
        scenario.adversary,
        scenario.n_x_packets,
    )


def group_cells(scenarios: Sequence[Scenario]) -> List[List[int]]:
    """Partition cell indices by :func:`stack_signature`.

    Groups appear in first-occurrence order and preserve cell order
    within each group; grouping affects kernel batching only, never
    results (every cell's generator is content-keyed).
    """
    groups: Dict[tuple, List[int]] = {}
    for index, scenario in enumerate(scenarios):
        groups.setdefault(stack_signature(scenario), []).append(index)
    return list(groups.values())


def run_stacked_batch(
    scenarios: Sequence[Scenario],
    rngs: Sequence[np.random.Generator],
) -> List[BatchResult]:
    """Run one stacked accounting pass over same-signature cells.

    Args:
        scenarios: the cells, all sharing one :func:`stack_signature`.
        rngs: each cell's private generator, consumed exactly as the
            per-cell engine would (reception first, then per-round
            hypergeometric draws).

    Returns:
        One :class:`~repro.sim.engine.BatchResult` per cell, in order,
        bit-identical to ``BatchedRoundEngine(cell, rng=rng).run()``.
    """
    scenarios = list(scenarios)
    rngs = list(rngs)
    if not scenarios:
        return []
    if len(rngs) != len(scenarios):
        raise ValueError("need exactly one generator per scenario")
    signature = stack_signature(scenarios[0])
    for scenario in scenarios[1:]:
        if stack_signature(scenario) != signature:
            raise ValueError(
                "stacked cells must share (n_terminals, loss, adversary, "
                "n_x_packets); group with group_cells() first"
            )
    engines = [
        BatchedRoundEngine(scenario, rng=rng)
        for scenario, rng in zip(scenarios, rngs)
    ]

    # One stacked reception tensor for the whole group (each cell's
    # block from its own generator), then the histogram and both zeta
    # transforms once over every round of every cell.
    batch, segments = sample_receptions_stacked(scenarios, rngs)
    recv = batch.terminals
    b_total, r, n = recv.shape
    n_sub = 1 << r
    weights = (1 << np.arange(r)).astype(np.int64)
    patterns = np.tensordot(recv.astype(np.int64), weights, axes=([1], [0]))
    flat = (np.arange(b_total, dtype=np.int64)[:, None] * n_sub + patterns).ravel()
    counts = (
        np.bincount(flat, minlength=b_total * n_sub)
        .reshape(b_total, n_sub)
        .astype(float)
    )
    eve_miss = ~batch.eve
    miss_counts = np.bincount(
        flat, weights=eve_miss.ravel().astype(float), minlength=b_total * n_sub
    ).reshape(b_total, n_sub)
    pools = _superset_sums(counts)
    eve_pools = _superset_sums(miss_counts)
    miss_rates = (n - recv.sum(axis=2)) / float(n)

    # Subset-lattice geometry is shared by the whole group (same r).
    sizes = [int(x) for x in engines[0]._subset_sizes]
    members_of = [
        tuple(int(i) for i in np.flatnonzero(engines[0]._membership[s]))
        for s in range(n_sub)
    ]

    results = []
    for engine, (start, stop) in zip(engines, segments):
        results.append(
            _account_cell(
                engine,
                counts[start:stop],
                miss_counts[start:stop],
                pools[start:stop],
                eve_pools[start:stop],
                miss_rates[start:stop],
                recv[start:stop],
                batch.eve[start:stop],
                sizes,
                members_of,
            )
        )
    return results


def _account_cell(
    engine: BatchedRoundEngine,
    counts: np.ndarray,
    miss_counts: np.ndarray,
    pools: np.ndarray,
    eve_pools: np.ndarray,
    miss_rates: np.ndarray,
    recv: np.ndarray,
    eve: np.ndarray,
    sizes: List[int],
    members_of: List[tuple],
) -> BatchResult:
    """One cell's accounting on precomputed stacked-kernel slices.

    The vectorised planning prelude is the engine's own
    (:meth:`~repro.sim.engine.BatchedRoundEngine.account`), operating on
    this cell's row range of the stacked arrays — every step is
    row-wise, so the slice view is indistinguishable from a per-cell
    array.  The per-round loop runs the scalar kernels.
    """
    scenario = engine.scenario
    b, r, n = recv.shape
    n_sub = engine._n_subsets

    rates, uses_oracle = engine._certified_rates(
        scenario.estimator, counts, miss_rates
    )
    if rates is not None:
        budgets = np.clip(rates, 0.0, 1.0) * pools
        if uses_oracle:
            budgets = np.minimum(budgets, eve_pools)
    else:
        budgets = eve_pools.copy()
    budgets[:, 0] = 0.0

    planning_loss = scenario.loss.planning_loss(r)
    profile = group_allocation_profile(
        scenario.n_terminals,
        planning_loss,
        z_cost_factor=scenario.z_cost_factor,
        max_level=engine._certifiable_level_cap(scenario.estimator),
        support_feasible=True,
        support_rate=engine._planning_certified_rate(
            scenario.estimator, planning_loss
        ),
    )
    level_rows = np.concatenate(([0.0], np.asarray(profile.level_rows)))
    targets = level_rows[engine._subset_sizes] * n
    demand_rows = np.minimum(targets[None, :], np.minimum(budgets, pools))
    demand_rows = np.maximum(demand_rows, 0.0)

    with np.errstate(divide="ignore", invalid="ignore"):
        pool_rates = np.where(pools > 0, budgets / pools, 0.0)
        id_need = np.where(pool_rates > 1e-12, demand_rows / pool_rates, 0.0)

    sizes_arr = engine._subset_sizes
    for s in range(r, 0, -1):
        family = sizes_arr >= s
        need = id_need[:, family].sum(axis=1)
        cap = counts[:, family].sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(need > cap, cap / np.maximum(need, 1e-12), 1.0)
        if np.any(scale < 1.0):
            id_need[:, family] *= scale[:, None]
            demand_rows[:, family] *= scale[:, None]

    id_need = np.minimum(id_need, pools)
    id_need[np.floor(demand_rows + 1e-9) < 1.0] = 0.0
    id_need[:, 0] = 0.0

    # Scalar form for the per-round loop: exact conversions only.
    counts_list = np.rint(counts).astype(np.int64).tolist()
    miss_list = np.rint(miss_counts).astype(np.int64).tolist()
    id_need_list = id_need.tolist()
    demand_list = demand_rows.tolist()
    rates_list = rates.tolist() if rates is not None else None
    rng = engine.rng
    plan_memo: Dict[tuple, tuple] = {}

    rows_out = np.zeros((b, n_sub))
    deficit = np.zeros(b)
    for bi in range(b):
        id_demand = _integerise_fast(id_need_list[bi], counts_list[bi], sizes, r)
        row, d = _realise_fast(
            counts_list[bi],
            miss_list[bi],
            demand_list[bi],
            id_demand,
            rates_list[bi] if rates_list is not None else None,
            uses_oracle,
            rng,
            r,
            sizes,
            members_of,
            plan_memo,
        )
        rows_out[bi] = row
        deficit[bi] = d

    m_i = rows_out @ engine._membership.astype(float)
    l_cap = m_i.min(axis=1)
    m_total = rows_out.sum(axis=1)
    z_public = m_total - l_cap

    chunks = np.ceil(np.maximum(m_total, 1e-12) / MAX_PHASE2_ROWS)
    slack = scenario.secrecy_slack * chunks
    secret = np.maximum(l_cap - slack, 0.0)
    secret[m_total <= 0] = 0.0

    effective_deficit = np.maximum(deficit - slack, 0.0)
    hidden = np.maximum(secret - effective_deficit, 0.0)
    reliability = np.ones(b)
    positive = secret > 1e-12
    reliability[positive] = hidden[positive] / secret[positive]

    efficiency = secret / (n + z_public)

    # Measured secrecy, same expressions as the engine's epilogue
    # (bit-identity contract: hidden is already shared arithmetic, and
    # the equation count is integer-exact in float64).
    eve_missed_counts = (~eve).sum(axis=1)
    eve_equations = (n - eve_missed_counts) + z_public

    return BatchResult(
        scenario=scenario,
        secret_packets=secret,
        public_packets=z_public,
        total_rows=m_total,
        efficiency=efficiency,
        reliability=reliability,
        eve_missed=eve_missed_counts,
        terminal_receptions=recv.sum(axis=2),
        delivery_rates=recv.mean(axis=(0, 2)),
        hidden_dims=hidden,
        eve_equations=eve_equations,
    )


def _integerise_fast(
    id_need: List[float],
    counts_int: List[int],
    sizes: List[int],
    r: int,
) -> List[int]:
    """Scalar :meth:`~repro.sim.engine.BatchedRoundEngine._integerise_demand`.

    Identical arithmetic on Python floats: the family totals are sums
    of integral-valued doubles (exact in any order), the grant order is
    ``sorted`` on ``(-remainder, index)`` which matches ``np.lexsort``
    tie-for-tie, and each feasibility check compares the same exact
    integral floats the array path compares.
    """
    n_sub = len(id_need)
    # Integral state stays in ints: Python float-vs-int arithmetic and
    # comparison convert the int to an exactly-equal double, so every
    # operation below sees the same values the all-float form saw.
    base = [0] * n_sub
    rem = [0.0] * n_sub
    size_need = [0] * (r + 1)
    size_cap = [0] * (r + 1)
    for i in range(n_sub):
        x = id_need[i]
        floored = _floor(x + 1e-9)
        base[i] = floored
        rem[i] = x - floored
        level = sizes[i]
        size_need[level] += floored
        size_cap[level] += counts_int[i]
    # fam_*[s] = total over subsets of size >= s (nested families).
    fam_need = [0] * (r + 1)
    fam_cap = [0] * (r + 1)
    acc_need = 0
    acc_cap = 0
    for s in range(r, -1, -1):
        acc_need += size_need[s]
        acc_cap += size_cap[s]
        fam_need[s] = acc_need
        fam_cap[s] = acc_cap
    order = sorted(range(n_sub), key=lambda i: (-rem[i], i))
    demand = base
    for i in order:
        if rem[i] <= 1e-9:
            break
        level = sizes[i]
        if level == 0:
            continue
        feasible = True
        for t in range(1, level + 1):
            if fam_need[t] + 1 > fam_cap[t]:
                feasible = False
                break
        if feasible:
            demand[i] += 1
            for t in range(1, level + 1):
                fam_need[t] += 1
    return demand


def _realise_fast(
    counts_int: List[int],
    miss_int: List[int],
    demand_rows: List[float],
    id_demand: List[int],
    rates_row: Optional[List[float]],
    uses_oracle: bool,
    rng: np.random.Generator,
    r: int,
    sizes: List[int],
    members_of: List[tuple],
    plan_memo: Dict[tuple, tuple],
) -> Tuple[List[float], float]:
    """Scalar :meth:`~repro.sim.engine.BatchedRoundEngine._realise_round`.

    Consumes the cell's generator in the exact array-path order (one
    hypergeometric per (subset j, cell k) with flow, ascending), shares
    the same memoized :func:`realised_support_flow` cache keys, and
    keeps every float op bit-identical: rows are integral doubles
    throughout, so the membership sums and the trim's slack arithmetic
    are exact in any order.
    """
    n_sub = len(counts_int)
    rows = [0.0] * n_sub
    active = tuple((s, id_demand[s]) for s in range(n_sub) if id_demand[s])
    if not active:
        return rows, 0.0
    cells = tuple(
        (p, counts_int[p]) for p in range(1, n_sub) if counts_int[p]
    )
    if not cells:
        return rows, 0.0

    plan_parts = plan_memo.get((cells, active))
    if plan_parts is None:
        plan = realised_support_flow(cells, active, top_up=rates_row is None)
        flow = plan.flow.tolist()
        plan_parts = (
            plan.subsets,
            plan.cells,
            flow,
            [sum(frow) for frow in flow],
            plan.scale,
        )
        plan_memo[(cells, active)] = plan_parts
    subsets, plan_cells, flow, assigned, scale = plan_parts
    n_plan = len(subsets)
    n_cells = len(plan_cells)

    # Plan cells are distinct patterns, so positional lists replace the
    # pattern-keyed dicts: same cells, same draw order, no hashing.
    good_left = [miss_int[p] for p in plan_cells]
    total_left = [counts_int[p] for p in plan_cells]
    sampled = [0] * n_plan
    hyper = rng.hypergeometric
    for j in range(n_plan):
        frow = flow[j]
        drawn_total = 0
        for k in range(n_cells):
            take = frow[k]
            if take == 0:
                continue
            good = good_left[k]
            total = total_left[k]
            if good <= 0:
                drawn = 0
            elif take >= total:
                drawn = good
            else:
                drawn = int(hyper(good, total - good, take))
            drawn_total += drawn
            good_left[k] = good - drawn
            total_left[k] = total - take
        sampled[j] = drawn_total

    for j in range(n_plan):
        s = subsets[j]
        cert = _INF
        if uses_oracle:
            cert = float(sampled[j])
        if rates_row is not None:
            rate_cert = rates_row[s] * float(assigned[j])
            if rate_cert < cert:
                cert = rate_cert
        value = float(_floor(scale * demand_rows[s] + 1e-9))
        if cert != _INF:
            ceiling = float(_floor(cert + 1e-9))
            if ceiling < value:
                value = ceiling
        granted_cap = float(assigned[j])
        if granted_cap < value:
            value = granted_cap
        rows[s] = value if value > 0.0 else 0.0

    # Trim rows that cannot raise L = min_i M_i, mirroring the array
    # path's greedy small-subsets-first pass.
    m_i = [0.0] * r
    has_rows = False
    for j in range(n_plan):
        value = rows[subsets[j]]
        if value > 0.0:
            has_rows = True
            for i in members_of[subsets[j]]:
                m_i[i] += value
    if has_rows:
        floor_val = min(m_i)
        order = sorted(
            (s for s in subsets if rows[s] > 0),
            key=lambda s: (sizes[s], s),
        )
        for s in order:
            mem = members_of[s]
            slack = m_i[mem[0]] - floor_val
            for i in mem:
                diff = m_i[i] - floor_val
                if diff < slack:
                    slack = diff
            if slack <= 0.0:
                continue
            cut = rows[s]
            if slack < cut:
                cut = slack
            rows[s] = rows[s] - cut
            for i in mem:
                m_i[i] -= cut

    deficit = 0.0
    for j in range(n_plan):
        shortfall = rows[subsets[j]] - sampled[j]
        if shortfall > 0.0:
            deficit += shortfall
    return rows, deficit
