"""Vectorised reception sampling: B rounds of channel noise at once.

The per-packet simulator draws one uniform per (packet, listener,
antenna) from inside nested Python loops; for campaign-scale statistics
that is the dominant cost.  Here the entire reception tensor of a batch
— every round, every link, every x-packet — is drawn in one vectorised
call per loss model (two for bursty chains, which keep a Markov state
per link and therefore iterate only the packet axis; schedule-driven
specs tile their pattern table across the packet axis instead).

Link order convention: receiver links first (terminal order), then the
adversary's antennas.  Eve's over-the-air reception is the union across
her antennas, exactly like :meth:`repro.net.medium.LossModel.lost`
requiring *every* antenna to miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.sim.spec import IIDLossSpec, Scenario

__all__ = ["ReceptionBatch", "sample_receptions", "sample_receptions_stacked"]


@dataclass
class ReceptionBatch:
    """Raw channel outcome of B simulated rounds.

    Attributes:
        terminals: bool ``(B, n_receivers, N)`` — True where the
            receiver captured the x-packet.
        eve: bool ``(B, N)`` — True where any Eve antenna captured it.
    """

    terminals: np.ndarray
    eve: np.ndarray

    @property
    def rounds(self) -> int:
        return int(self.terminals.shape[0])

    @property
    def n_receivers(self) -> int:
        return int(self.terminals.shape[1])

    @property
    def n_packets(self) -> int:
        return int(self.terminals.shape[2])

    def delivery_rates(self) -> np.ndarray:
        """Empirical per-receiver delivery probability, ``(n_receivers,)``."""
        return self.terminals.mean(axis=(0, 2))

    def eve_missed_counts(self) -> np.ndarray:
        """Per-round count of x-packets Eve missed, ``(B,)``."""
        return (~self.eve).sum(axis=1)


def sample_receptions(
    scenario: Scenario, rounds: int, rng: np.random.Generator
) -> ReceptionBatch:
    """Draw the full reception tensor for ``rounds`` protocol rounds."""
    r = scenario.n_receivers
    k = scenario.adversary.antennas
    n = scenario.n_x_packets
    if scenario.adversary.loss is not None:
        lost_terminals = scenario.loss.sample_losses(rounds, r, n, rng)
        eve_spec = IIDLossSpec(scenario.adversary.loss)
        lost_eve = eve_spec.sample_losses(rounds, k, n, rng)
    else:
        lost = scenario.loss.sample_losses(rounds, r + k, n, rng)
        lost_terminals = lost[:, :r, :]
        lost_eve = lost[:, r:, :]
    return ReceptionBatch(
        terminals=~lost_terminals,
        eve=~np.all(lost_eve, axis=1),
    )


def sample_receptions_stacked(
    scenarios: Sequence[Scenario],
    rngs: Sequence[np.random.Generator],
) -> Tuple[ReceptionBatch, List[Tuple[int, int]]]:
    """Stack many same-shape cells into one reception tensor.

    The stacked tensor is **shared storage, not shared randomness**:
    each cell's block of rounds is filled by the exact
    :func:`sample_receptions` call the per-cell engine makes, from the
    cell's own generator — so per-cell draws (and everything downstream
    of them: stored shards, resume, aggregates) stay bit-identical to
    the unstacked path, while the accounting kernels get one tensor to
    sweep (:mod:`repro.sim.stack`).

    Args:
        scenarios: cells agreeing on ``n_receivers`` and
            ``n_x_packets`` (the tensor's trailing shape).
        rngs: one private generator per cell.

    Returns:
        ``(batch, segments)`` — the stacked batch, and each cell's
        half-open ``(start, stop)`` row range inside it, in cell order.
    """
    scenarios = list(scenarios)
    rngs = list(rngs)
    if not scenarios:
        raise ValueError("need at least one scenario to stack")
    if len(rngs) != len(scenarios):
        raise ValueError("need exactly one generator per scenario")
    r = scenarios[0].n_receivers
    n = scenarios[0].n_x_packets
    total = sum(int(scenario.rounds) for scenario in scenarios)
    terminals = np.empty((total, r, n), dtype=bool)
    eve = np.empty((total, n), dtype=bool)
    segments: List[Tuple[int, int]] = []
    start = 0
    for scenario, rng in zip(scenarios, rngs):
        if scenario.n_receivers != r or scenario.n_x_packets != n:
            raise ValueError(
                "stacked cells must agree on (n_receivers, n_x_packets)"
            )
        rounds = int(scenario.rounds)
        if rounds < 1:
            raise ValueError("need at least one round")
        cell = sample_receptions(scenario, rounds, rng)
        stop = start + rounds
        terminals[start:stop] = cell.terminals
        eve[start:stop] = cell.eve
        segments.append((start, stop))
        start = stop
    return ReceptionBatch(terminals=terminals, eve=eve), segments
