"""Batched Monte-Carlo protocol accounting: B rounds as numpy arrays.

The per-packet :class:`~repro.core.session.ProtocolSession` simulates
every transmission, retry, Cauchy block and GF solve — the ground-truth
oracle.  This engine reproduces the *statistics* the figures need
(delivery rates, secret length, z-overhead, efficiency, reliability)
for B independent rounds simultaneously:

1. **Receptions** — the whole ``(B, links, N)`` loss tensor is drawn in
   one vectorised call per loss model (:mod:`repro.sim.reception`).
2. **Pattern histogram** — each packet's reception pattern (the subset
   of receivers that captured it) is encoded as a bitmask and the per
   round pattern counts are built with one ``bincount``.
3. **Pools** — a superset-sum (zeta) transform over the subset lattice
   turns pattern counts into ``pools[b, T]`` = packets received by all
   of ``T``, and the same transform over Eve-missed packets yields the
   oracle budgets, all as ``(B, 2^r)`` arrays.
4. **Allocation reuse** — the symmetric allocation LP is solved once
   per scenario (memoized in :mod:`repro.theory.efficiency`) and its
   per-level row targets are clamped against each round's realised
   pools and estimator budgets; no per-round LP, flow, or GF algebra.
5. **Accounting** — per-round ``M_i``, ``L = min_i M_i``, z-overhead,
   the Figure-1 efficiency ``L / (N + z)`` and the reliability of the
   resulting secret (estimator over-promises convert into rank deficit
   exactly as in :mod:`repro.core.eve`, block by disjoint block).

The engine is a statistical model, not a bit-exact replay: it keeps
fractional row counts (integrality costs the session O(1/N)), plans
with the scenario-level LP instead of the per-round realised LP, and
applies leave-one-out exclusions at subset granularity using global
miss rates.  The cross-validation suite pins the agreement between the
two under Monte-Carlo tolerance; anything sharper belongs to the
per-packet oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.coding.privacy import MAX_PHASE2_ROWS
from repro.sim.reception import ReceptionBatch, sample_receptions
from repro.sim.spec import (
    CollusionEstimatorSpec,
    CombinedEstimatorSpec,
    EstimatorSpec,
    FixedFractionEstimatorSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    Scenario,
)
from repro.theory.efficiency import group_allocation_profile

__all__ = ["BatchResult", "BatchedRoundEngine", "run_batch"]


def _superset_sums(table: np.ndarray) -> np.ndarray:
    """Zeta transform along axis 1: ``out[:, S] = sum_{P >= S} table[:, P]``
    (P ranges over bitmask supersets of S)."""
    out = table.copy()
    size = table.shape[1]
    idx = np.arange(size)
    bit = 1
    while bit < size:
        lower = idx[(idx & bit) == 0]
        out[:, lower] += out[:, lower | bit]
        bit <<= 1
    return out


def _subset_sums(table: np.ndarray) -> np.ndarray:
    """Zeta transform along axis 1: ``out[:, S] = sum_{P <= S} table[:, P]``."""
    out = table.copy()
    size = table.shape[1]
    idx = np.arange(size)
    bit = 1
    while bit < size:
        upper = idx[(idx & bit) != 0]
        out[:, upper] += out[:, upper ^ bit]
        bit <<= 1
    return out


@dataclass
class BatchResult:
    """Per-round statistics of one simulated batch (arrays of shape (B,)
    unless noted).

    ``secret_packets`` and the derived efficiency keep the engine's
    fractional accounting; :attr:`secret_packets_int` floors to whole
    packets for bit counting.
    """

    scenario: Scenario
    secret_packets: np.ndarray
    public_packets: np.ndarray
    total_rows: np.ndarray
    efficiency: np.ndarray
    reliability: np.ndarray
    eve_missed: np.ndarray
    terminal_receptions: np.ndarray  # (B, n_receivers)
    delivery_rates: np.ndarray  # (n_receivers,)

    @property
    def rounds(self) -> int:
        return int(self.secret_packets.shape[0])

    @property
    def secret_packets_int(self) -> np.ndarray:
        return np.floor(self.secret_packets + 1e-9).astype(np.int64)

    @property
    def secret_bits(self) -> int:
        return int(self.secret_packets_int.sum()) * self.scenario.payload_bytes * 8

    @property
    def mean_efficiency(self) -> float:
        return float(np.mean(self.efficiency))

    @property
    def mean_reliability(self) -> float:
        return float(np.mean(self.reliability))

    @property
    def min_reliability(self) -> float:
        return float(np.min(self.reliability))

    def reliabilities(self) -> list:
        return [float(v) for v in self.reliability]

    def efficiencies(self) -> list:
        return [float(v) for v in self.efficiency]


class BatchedRoundEngine:
    """Simulates batches of protocol rounds for one scenario.

    Args:
        scenario: the cell to simulate.
        seed: seeds a private :class:`numpy.random.Generator`; pass an
            existing generator via ``rng`` instead to share a stream.
        rng: explicit generator (overrides ``seed``).
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if scenario.n_receivers > 16:
            raise ValueError(
                "the subset-lattice accounting is sized for n <= 17 terminals"
            )
        self.scenario = scenario
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        r = scenario.n_receivers
        self._n_subsets = 1 << r
        subsets = np.arange(self._n_subsets)
        #: membership[S, i] — receiver i belongs to subset bitmask S.
        self._membership = (subsets[:, None] >> np.arange(r)[None, :] & 1).astype(
            bool
        )
        self._subset_sizes = self._membership.sum(axis=1)

    # -- budgets ---------------------------------------------------------

    def _certifiable_level_cap(self, spec: EstimatorSpec) -> int:
        """Largest decodable-subset size the estimator can fund at all.

        Leave-one-out needs at least one witness terminal outside the
        subset; k-collusion needs k.  Blocks above the cap would clamp
        to zero rows anyway, so the planning LP must not allocate there
        (mirrors the per-round planner, whose LP sees the zero budgets).
        """
        r = self.scenario.n_receivers
        if isinstance(spec, (OracleEstimatorSpec, FixedFractionEstimatorSpec)):
            cap = r
        elif isinstance(spec, LeaveOneOutEstimatorSpec):
            cap = r - 1
        elif isinstance(spec, CollusionEstimatorSpec):
            cap = r - spec.k
        elif isinstance(spec, CombinedEstimatorSpec):
            cap = min(self._certifiable_level_cap(c) for c in spec.children)
        else:
            raise TypeError(f"unknown estimator spec {spec!r}")
        if self.scenario.max_subset_size is not None:
            cap = min(cap, self.scenario.max_subset_size)
        return cap

    def _budgets(
        self,
        spec: EstimatorSpec,
        pools: np.ndarray,
        eve_pools: np.ndarray,
        counts: np.ndarray,
        miss_rates: np.ndarray,
    ) -> np.ndarray:
        """Certified Eve-miss lower bound per (round, subset) pool."""
        if isinstance(spec, OracleEstimatorSpec):
            return eve_pools.copy()
        if isinstance(spec, FixedFractionEstimatorSpec):
            return spec.fraction * pools
        if isinstance(spec, LeaveOneOutEstimatorSpec):
            rates = self._leave_one_out_rates(miss_rates, spec.rate_margin)
            return rates * pools
        if isinstance(spec, CollusionEstimatorSpec):
            rates = self._collusion_rates(counts, spec)
            return rates * pools
        if isinstance(spec, CombinedEstimatorSpec):
            stacked = [
                self._budgets(child, pools, eve_pools, counts, miss_rates)
                for child in spec.children
            ]
            return np.minimum.reduce(stacked)
        raise TypeError(f"unknown estimator spec {spec!r}")

    def _leave_one_out_rates(
        self, miss_rates: np.ndarray, margin: float
    ) -> np.ndarray:
        """Worst eligible pretend-Eve rate per (round, subset), where a
        block decodable by subset S may only cite receivers outside S."""
        b = miss_rates.shape[0]
        rates = np.zeros((b, self._n_subsets))
        for s in range(self._n_subsets):
            outside = ~self._membership[s]
            if not outside.any():
                continue  # every receiver is inside: nothing certifiable
            rates[:, s] = miss_rates[:, outside].min(axis=1)
        return np.maximum(rates - margin, 0.0)

    def _collusion_rates(
        self, counts: np.ndarray, spec: CollusionEstimatorSpec
    ) -> np.ndarray:
        """Worst union-miss rate over k-subsets of eligible receivers."""
        import itertools

        n = self.scenario.n_x_packets
        r = self.scenario.n_receivers
        full = self._n_subsets - 1
        # missed_by_all[b, C] = packets no member of bitmask C received
        #                     = sum of counts over patterns disjoint from C.
        missed_by_all = _subset_sums(counts)[:, full ^ np.arange(self._n_subsets)]
        b = counts.shape[0]
        rates = np.zeros((b, self._n_subsets))
        for s in range(self._n_subsets):
            eligible = [i for i in range(r) if not self._membership[s, i]]
            if len(eligible) < spec.k:
                continue
            worst = None
            for combo in itertools.combinations(eligible, spec.k):
                mask = 0
                for i in combo:
                    mask |= 1 << i
                rate = missed_by_all[:, mask] / n
                worst = rate if worst is None else np.minimum(worst, rate)
            rates[:, s] = worst
        return np.maximum(rates - spec.rate_margin, 0.0)

    # -- the batch -------------------------------------------------------

    def run(self, rounds: Optional[int] = None) -> BatchResult:
        """Simulate ``rounds`` rounds (default: the scenario's count)."""
        scenario = self.scenario
        b = scenario.rounds if rounds is None else int(rounds)
        if b < 1:
            raise ValueError("need at least one round")
        batch = sample_receptions(scenario, b, self.rng)
        return self.account(batch)

    def account(self, batch: ReceptionBatch) -> BatchResult:
        """Run the protocol accounting on an already-sampled batch."""
        scenario = self.scenario
        recv = batch.terminals
        b, r, n = recv.shape
        if r != scenario.n_receivers or n != scenario.n_x_packets:
            raise ValueError("batch shape does not match the scenario")
        n_sub = self._n_subsets

        # Pattern histogram: one bincount over (round, pattern) pairs.
        weights = (1 << np.arange(r)).astype(np.int64)
        patterns = np.tensordot(recv.astype(np.int64), weights, axes=([1], [0]))
        flat = (np.arange(b, dtype=np.int64)[:, None] * n_sub + patterns).ravel()
        counts = (
            np.bincount(flat, minlength=b * n_sub).reshape(b, n_sub).astype(float)
        )
        eve_miss = ~batch.eve
        miss_counts = (
            np.bincount(flat, weights=eve_miss.ravel().astype(float), minlength=b * n_sub)
            .reshape(b, n_sub)
        )

        pools = _superset_sums(counts)
        eve_pools = _superset_sums(miss_counts)
        miss_rates = 1.0 - recv.mean(axis=2)

        budgets = self._budgets(
            scenario.estimator, pools, eve_pools, counts, miss_rates
        )
        budgets[:, 0] = 0.0

        # Allocation reuse: one memoized LP per scenario, clamped to the
        # realised pools and certified budgets of each round.
        profile = group_allocation_profile(
            scenario.n_terminals,
            scenario.loss.planning_loss(r),
            z_cost_factor=scenario.z_cost_factor,
            max_level=self._certifiable_level_cap(scenario.estimator),
        )
        level_rows = np.concatenate(([0.0], np.asarray(profile.level_rows)))
        targets = level_rows[self._subset_sizes] * n  # (2^r,)
        rows = np.minimum(targets[None, :], np.minimum(budgets, pools))
        rows = np.maximum(rows, 0.0)

        # Disjoint supports: a block of `rows` y-rows at certified rate
        # budget/pool consumes rows * pool / budget support ids; the
        # union of reception sets caps the total (the LP's s = 0 row).
        with np.errstate(divide="ignore", invalid="ignore"):
            support_need = np.where(budgets > 0, rows * pools / budgets, 0.0)
            eve_fraction = np.where(pools > 0, eve_pools / pools, 0.0)
        union = n - counts[:, 0]
        total_support = support_need.sum(axis=1)
        scale = np.ones(b)
        over = total_support > union
        scale[over] = union[over] / total_support[over]
        rows *= scale[:, None]
        support_need *= scale[:, None]

        m_i = rows @ self._membership.astype(float)  # (B, r)
        l_cap = m_i.min(axis=1)
        m_total = rows.sum(axis=1)
        z_public = m_total - l_cap

        # Phase-2 chunking: slack dims withheld per chunk shrink the
        # secret but absorb estimator over-promises first (see
        # repro.coding.privacy.build_phase2_matrices).
        chunks = np.ceil(np.maximum(m_total, 1e-12) / MAX_PHASE2_ROWS)
        slack = scenario.secrecy_slack * chunks
        secret = np.maximum(l_cap - slack, 0.0)
        secret[m_total <= 0] = 0.0

        # Secrecy deficit: inside each block's support, Eve's *actual*
        # misses may fall short of the certified budget; every missing
        # dimension costs one rank of hiddenness (disjoint blocks add).
        eve_in_support = support_need * eve_fraction
        # The 1e-9 floor clips float roundoff (the oracle path computes
        # rows * pools / budgets * budgets / pools); true deficits are
        # whole dimensions.
        deficit = np.maximum(rows - eve_in_support - 1e-9, 0.0).sum(axis=1)
        effective_deficit = np.maximum(deficit - slack, 0.0)
        hidden = np.maximum(secret - effective_deficit, 0.0)
        reliability = np.ones(b)
        positive = secret > 1e-12
        reliability[positive] = hidden[positive] / secret[positive]

        efficiency = secret / (n + z_public)

        return BatchResult(
            scenario=scenario,
            secret_packets=secret,
            public_packets=z_public,
            total_rows=m_total,
            efficiency=efficiency,
            reliability=reliability,
            eve_missed=batch.eve_missed_counts(),
            terminal_receptions=recv.sum(axis=2),
            delivery_rates=batch.delivery_rates(),
        )


def run_batch(
    scenario: Scenario,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> BatchResult:
    """One-call convenience: simulate a scenario's full batch."""
    return BatchedRoundEngine(scenario, seed=seed, rng=rng).run()
