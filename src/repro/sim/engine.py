"""Batched Monte-Carlo protocol accounting: B rounds as numpy arrays.

The per-packet :class:`~repro.core.session.ProtocolSession` simulates
every transmission, retry, Cauchy block and GF solve — the ground-truth
oracle.  This engine reproduces the *statistics* the figures need
(delivery rates, secret length, z-overhead, efficiency, reliability)
for B independent rounds simultaneously:

1. **Receptions** — the whole ``(B, links, N)`` loss tensor is drawn in
   one vectorised call per loss model (:mod:`repro.sim.reception`).
   Eve's reception is the union across her antennas (multi-antenna
   adversaries included) *before* any accounting happens, exactly like
   :meth:`repro.net.medium.LossModel.lost`.
2. **Pattern histogram** — each packet's reception pattern (the subset
   of receivers that captured it) is encoded as a bitmask and the per
   round pattern counts are built with one ``bincount``.
3. **Pools** — a superset-sum (zeta) transform over the subset lattice
   turns pattern counts into ``pools[b, T]`` = packets received by all
   of ``T``, and the same transform over Eve-missed packets yields the
   oracle budgets, all as ``(B, 2^r)`` arrays.
4. **Planning** — the symmetric allocation LP is solved once per
   scenario (memoized in :mod:`repro.theory.efficiency`); its
   per-level row targets, clamped by each round's certified budgets,
   set the *demand* side of the realised assignment.
5. **Realised assignment** — each round's demand is realised by an
   *integral* transportation max-flow on the round's observed pattern
   histogram (:func:`repro.theory.allocation.realised_support_flow`,
   memoized by observed-pattern key, sharing the flow core of
   :func:`repro.coding.privacy.solve_transport_counts` with the
   per-packet session).  Supports are disjoint, rows are whole
   numbers, and shortfalls land exactly where the session's flow
   assignment would put them — no fractional-LP optimism at small N.
6. **Accounting** — Eve's misses *inside each realised support* are
   drawn from the exact multivariate hypergeometric law of the cell
   composition; per-round ``M_i``, ``L = min_i M_i`` (after the
   session-mirroring excess-row trim), z-overhead, the Figure-1
   efficiency ``L / (N + z)`` and the reliability of the resulting
   secret (estimator over-promises convert into rank deficit exactly
   as in :mod:`repro.core.eve`, block by disjoint block).

The engine remains a statistical model, not a bit-exact replay: it
applies leave-one-out exclusions at subset granularity using global
miss rates, and it accounts supports at histogram granularity rather
than packet identity.  The cross-validation suite pins the agreement
with the oracle under Monte-Carlo tolerance; anything sharper belongs
to the per-packet session.

Seed-stream derivation: an engine owns one
:class:`numpy.random.Generator` (constructed from ``seed`` or passed
in via ``rng``) and consumes it in a fixed order per batch — the
reception tensor first, then one hypergeometric draw per (active
subset, contributing cell) pair per round, iterated in ascending mask
order.  Campaign runners derive per-cell/per-experiment generators
from ``SeedSequence`` spawns (:mod:`repro.sim.campaign`,
:func:`repro.analysis.experiments._experiment_seed_sequence`), which is
what makes sharded campaigns bit-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.coding.privacy import MAX_PHASE2_ROWS
from repro.sim.reception import ReceptionBatch, sample_receptions
from repro.sim.spec import (
    CollusionEstimatorSpec,
    CombinedEstimatorSpec,
    EstimatorSpec,
    FixedFractionEstimatorSpec,
    LeaveOneOutEstimatorSpec,
    OracleEstimatorSpec,
    Scenario,
)
from repro.theory.allocation import realised_support_flow
from repro.theory.efficiency import group_allocation_profile

__all__ = ["BatchResult", "BatchedRoundEngine", "run_batch"]


def _superset_sums(table: np.ndarray) -> np.ndarray:
    """Zeta transform along axis 1: ``out[:, S] = sum_{P >= S} table[:, P]``
    (P ranges over bitmask supersets of S)."""
    out = table.copy()
    size = table.shape[1]
    idx = np.arange(size)
    bit = 1
    while bit < size:
        lower = idx[(idx & bit) == 0]
        out[:, lower] += out[:, lower | bit]
        bit <<= 1
    return out


def _subset_sums(table: np.ndarray) -> np.ndarray:
    """Zeta transform along axis 1: ``out[:, S] = sum_{P <= S} table[:, P]``."""
    out = table.copy()
    size = table.shape[1]
    idx = np.arange(size)
    bit = 1
    while bit < size:
        upper = idx[(idx & bit) != 0]
        out[:, upper] += out[:, upper ^ bit]
        bit <<= 1
    return out


@dataclass
class BatchResult:
    """Per-round statistics of one simulated batch (arrays of shape (B,)
    unless noted).

    ``secret_packets`` holds whole packets per round (the realised
    planner allocates integral rows, like the session); the float dtype
    and :attr:`secret_packets_int` survive for API compatibility.

    Leakage accounting (the measured-secrecy contract, mirroring
    :class:`repro.core.eve.LeakageReport` per round):

    * ``hidden_dims`` — packets of the round's secret that stay fully
      unknown to Eve after her sampled misses settle the rank deficit.
    * ``eve_equations`` — linear equations Eve observed about the
      round's x-payloads: her captured x-packets plus every public
      z-row (broadcast reliably, the paper's conservative assumption).

    Records written before these fields existed reconstruct them from
    ``reliability * secret_packets`` (an exact inverse of the engines'
    division whenever the quotient was exact, and within one ulp
    otherwise) — see ``__post_init__``.
    """

    scenario: Scenario
    secret_packets: np.ndarray
    public_packets: np.ndarray
    total_rows: np.ndarray
    efficiency: np.ndarray
    reliability: np.ndarray
    eve_missed: np.ndarray
    terminal_receptions: np.ndarray  # (B, n_receivers)
    delivery_rates: np.ndarray  # (n_receivers,)
    hidden_dims: Optional[np.ndarray] = None
    eve_equations: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.hidden_dims is None:
            secret = np.asarray(self.secret_packets, dtype=np.float64)
            rel = np.asarray(self.reliability, dtype=np.float64)
            self.hidden_dims = np.where(secret > 0.0, rel * secret, 0.0)
        if self.eve_equations is None:
            captured = self.scenario.n_x_packets - np.asarray(
                self.eve_missed, dtype=np.int64
            )
            self.eve_equations = captured + np.asarray(
                self.public_packets, dtype=np.float64
            )

    @property
    def rounds(self) -> int:
        return int(self.secret_packets.shape[0])

    @property
    def leaked_dims(self) -> np.ndarray:
        """Secret packets Eve can compute per round (0 when perfect)."""
        return np.maximum(
            np.asarray(self.secret_packets, dtype=np.float64) - self.hidden_dims,
            0.0,
        )

    @property
    def min_entropy_bits(self) -> np.ndarray:
        """Residual min-entropy of each round's secret, in bits."""
        return self.hidden_dims * (self.scenario.payload_bytes * 8)

    @property
    def total_min_entropy_bits(self) -> float:
        return float(self.min_entropy_bits.sum())

    @property
    def total_leaked_bits(self) -> float:
        return float(self.leaked_dims.sum()) * self.scenario.payload_bytes * 8

    @property
    def secret_packets_int(self) -> np.ndarray:
        return np.floor(self.secret_packets + 1e-9).astype(np.int64)

    @property
    def secret_bits(self) -> int:
        return int(self.secret_packets_int.sum()) * self.scenario.payload_bytes * 8

    @property
    def mean_efficiency(self) -> float:
        return float(np.mean(self.efficiency))

    @property
    def mean_reliability(self) -> float:
        return float(np.mean(self.reliability))

    @property
    def min_reliability(self) -> float:
        return float(np.min(self.reliability))

    def reliabilities(self) -> list:
        return [float(v) for v in self.reliability]

    def efficiencies(self) -> list:
        return [float(v) for v in self.efficiency]


class BatchedRoundEngine:
    """Simulates batches of protocol rounds for one scenario.

    Args:
        scenario: the cell to simulate.
        seed: seeds a private :class:`numpy.random.Generator`; pass an
            existing generator via ``rng`` instead to share a stream.
        rng: explicit generator (overrides ``seed``).
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if scenario.n_receivers > 16:
            raise ValueError(
                "the subset-lattice accounting is sized for n <= 17 terminals"
            )
        self.scenario = scenario
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        r = scenario.n_receivers
        self._n_subsets = 1 << r
        subsets = np.arange(self._n_subsets)
        #: membership[S, i] — receiver i belongs to subset bitmask S.
        self._membership = (subsets[:, None] >> np.arange(r)[None, :] & 1).astype(
            bool
        )
        self._subset_sizes = self._membership.sum(axis=1)

    # -- budgets ---------------------------------------------------------

    def _certifiable_level_cap(self, spec: EstimatorSpec) -> int:
        """Largest decodable-subset size the estimator can fund at all.

        Leave-one-out needs at least one witness terminal outside the
        subset; k-collusion needs k.  Blocks above the cap would clamp
        to zero rows anyway, so the planning LP must not allocate there
        (mirrors the per-round planner, whose LP sees the zero budgets).
        """
        r = self.scenario.n_receivers
        if isinstance(spec, (OracleEstimatorSpec, FixedFractionEstimatorSpec)):
            cap = r
        elif isinstance(spec, LeaveOneOutEstimatorSpec):
            cap = r - 1
        elif isinstance(spec, CollusionEstimatorSpec):
            cap = r - spec.k
        elif isinstance(spec, CombinedEstimatorSpec):
            cap = min(self._certifiable_level_cap(c) for c in spec.children)
        else:
            raise TypeError(f"unknown estimator spec {spec!r}")
        if self.scenario.max_subset_size is not None:
            cap = min(cap, self.scenario.max_subset_size)
        return cap

    def _planning_certified_rate(self, spec: EstimatorSpec, p: float) -> float:
        """Expected certified Eve-miss rate per support packet, used to
        size the planning LP's support-feasibility rows.

        The oracle certifies Eve's true rate ``p``; leave-one-out
        certifies a witness's rate minus its margin (~``p - margin``
        under symmetric channels); k-collusion certifies the union-miss
        rate ``p**k`` minus the margin; a fixed-fraction guarantee
        certifies its fraction.  Weaker rates mean each planned row
        needs proportionally more support packets.
        """
        if isinstance(spec, OracleEstimatorSpec):
            return p
        if isinstance(spec, FixedFractionEstimatorSpec):
            return spec.fraction
        if isinstance(spec, LeaveOneOutEstimatorSpec):
            return max(p - spec.rate_margin, 0.0)
        if isinstance(spec, CollusionEstimatorSpec):
            return max(p**spec.k - spec.rate_margin, 0.0)
        if isinstance(spec, CombinedEstimatorSpec):
            return min(
                self._planning_certified_rate(child, p) for child in spec.children
            )
        raise TypeError(f"unknown estimator spec {spec!r}")

    def _certified_rates(
        self, spec: EstimatorSpec, counts: np.ndarray, miss_rates: np.ndarray
    ) -> Tuple[Optional[np.ndarray], bool]:
        """Rate-based certification per (round, subset), plus oracle flag.

        Returns ``(rates, uses_oracle)``: ``rates`` is the certified
        Eve-miss *rate* a block decodable by each subset may claim on
        any support drawn from its pool (None when the spec has no
        rate-based component), and ``uses_oracle`` says whether the
        estimator also knows Eve's exact misses (the ground-truth
        budget).  Rate evidence scales linearly with support size; the
        oracle is evaluated on the realised support itself.
        """
        if isinstance(spec, OracleEstimatorSpec):
            return None, True
        if isinstance(spec, FixedFractionEstimatorSpec):
            rates = np.full((counts.shape[0], self._n_subsets), spec.fraction)
            return rates, False
        if isinstance(spec, LeaveOneOutEstimatorSpec):
            return self._leave_one_out_rates(miss_rates, spec.rate_margin), False
        if isinstance(spec, CollusionEstimatorSpec):
            return self._collusion_rates(counts, spec), False
        if isinstance(spec, CombinedEstimatorSpec):
            rates: Optional[np.ndarray] = None
            uses_oracle = False
            for child in spec.children:
                child_rates, child_oracle = self._certified_rates(
                    child, counts, miss_rates
                )
                uses_oracle = uses_oracle or child_oracle
                if child_rates is not None:
                    rates = (
                        child_rates
                        if rates is None
                        else np.minimum(rates, child_rates)
                    )
            return rates, uses_oracle
        raise TypeError(f"unknown estimator spec {spec!r}")

    def _leave_one_out_rates(
        self, miss_rates: np.ndarray, margin: float
    ) -> np.ndarray:
        """Worst eligible pretend-Eve rate per (round, subset), where a
        block decodable by subset S may only cite receivers outside S."""
        b = miss_rates.shape[0]
        rates = np.zeros((b, self._n_subsets))
        for s in range(self._n_subsets):
            outside = ~self._membership[s]
            if not outside.any():
                continue  # every receiver is inside: nothing certifiable
            rates[:, s] = miss_rates[:, outside].min(axis=1)
        return np.maximum(rates - margin, 0.0)

    def _collusion_rates(
        self, counts: np.ndarray, spec: CollusionEstimatorSpec
    ) -> np.ndarray:
        """Worst union-miss rate over k-subsets of eligible receivers."""
        import itertools

        n = self.scenario.n_x_packets
        r = self.scenario.n_receivers
        full = self._n_subsets - 1
        # missed_by_all[b, C] = packets no member of bitmask C received
        #                     = sum of counts over patterns disjoint from C.
        missed_by_all = _subset_sums(counts)[:, full ^ np.arange(self._n_subsets)]
        b = counts.shape[0]
        rates = np.zeros((b, self._n_subsets))
        for s in range(self._n_subsets):
            eligible = [i for i in range(r) if not self._membership[s, i]]
            if len(eligible) < spec.k:
                continue
            worst = None
            for combo in itertools.combinations(eligible, spec.k):
                mask = 0
                for i in combo:
                    mask |= 1 << i
                rate = missed_by_all[:, mask] / n
                worst = rate if worst is None else np.minimum(worst, rate)
            rates[:, s] = worst
        return np.maximum(rates - spec.rate_margin, 0.0)

    # -- realised per-round assignment -----------------------------------

    def _integerise_demand(
        self, id_need: np.ndarray, counts_int: np.ndarray
    ) -> np.ndarray:
        """Round one round's fractional support demand to whole packets.

        Largest-remainder rounding, capped by the nested size-family
        capacities: a unit granted to subset ``T`` counts against every
        family ``s <= |T|`` (blocks decodable by >= s receivers draw
        from patterns of size >= s), so a blanket ``ceil`` — which can
        inflate total demand past the realised histogram and push the
        max-flow into starving whole subsets — never happens.  Rounds
        whose demand is family-feasible after this step almost always
        get their full assignment from a single flow solve.
        """
        sizes = self._subset_sizes
        r = self.scenario.n_receivers
        base = np.floor(id_need + 1e-9)
        remainder = id_need - base
        fam_need = np.array(
            [base[sizes >= s].sum() for s in range(r + 1)]
        )
        fam_cap = np.array(
            [counts_int[sizes >= s].sum() for s in range(r + 1)]
        )
        demand = base.copy()
        # Deterministic order: biggest remainder first, mask tie-break.
        order = np.lexsort((np.arange(remainder.size), -remainder))
        for s_idx in order:
            if remainder[s_idx] <= 1e-9:
                break
            level = int(sizes[s_idx])
            if level == 0:
                continue
            if np.all(fam_need[1 : level + 1] + 1 <= fam_cap[1 : level + 1]):
                demand[s_idx] += 1
                fam_need[1 : level + 1] += 1
        return demand.astype(np.int64)

    def _realise_round(
        self,
        counts_int: np.ndarray,
        miss_int: np.ndarray,
        demand_rows: np.ndarray,
        id_demand: np.ndarray,
        rates: Optional[np.ndarray],
        uses_oracle: bool,
    ) -> Tuple[np.ndarray, float]:
        """One round's integral assignment: (rows over 2^r subsets, deficit).

        Draws the round's support assignment from the memoized flow on
        the observed pattern histogram, samples Eve's misses inside
        each realised support (multivariate hypergeometric over the
        support's cell composition), certifies rows per estimator on
        the realised support, trims rows that cannot raise ``L`` (the
        session's :func:`repro.coding.privacy._trim_excess_rows`), and
        sums the rank deficit Eve's actual misses leave behind.
        """
        rows = np.zeros(self._n_subsets)
        active = np.flatnonzero(id_demand)
        if active.size == 0:
            return rows, 0.0
        cell_masks = np.flatnonzero(counts_int)
        cell_masks = cell_masks[cell_masks != 0]
        if cell_masks.size == 0:
            return rows, 0.0
        plan = realised_support_flow(
            tuple((int(p), int(counts_int[p])) for p in cell_masks),
            tuple((int(s), int(id_demand[s])) for s in active),
            top_up=rates is None,
        )
        flow = plan.flow
        assigned = plan.assigned

        # Eve's misses inside each realised support: cells are
        # exchangeable pools, so sequential hypergeometric draws give
        # the exact multivariate law of the disjoint supports.
        good_left = {p: int(miss_int[p]) for p in plan.cells}
        total_left = {p: int(counts_int[p]) for p in plan.cells}
        sampled = np.zeros(len(plan.subsets))
        for j in range(len(plan.subsets)):
            for k, p in enumerate(plan.cells):
                take = int(flow[j, k])
                if take == 0:
                    continue
                good = good_left[p]
                total = total_left[p]
                if good <= 0:
                    drawn = 0
                elif take >= total:
                    drawn = good
                else:
                    drawn = int(self.rng.hypergeometric(good, total - good, take))
                sampled[j] += drawn
                good_left[p] = good - drawn
                total_left[p] = total - take

        # Certified rows per realised support, integral like the
        # session: rate evidence scales linearly with support size (the
        # session's LeaveOneOutEstimator deliberately applies *global*
        # pretend-Eve rates — counting a witness's misses inside a
        # subset pool is circular, the pool is missed wholesale by
        # terminals outside its patterns), while the oracle certifies
        # the support's actual sampled misses.
        for j, s in enumerate(plan.subsets):
            cert = np.inf
            if uses_oracle:
                cert = float(sampled[j])
            if rates is not None:
                cert = min(cert, float(rates[s]) * float(assigned[j]))
            rows[s] = min(
                float(np.floor(plan.scale * demand_rows[s] + 1e-9)),
                float(np.floor(cert + 1e-9)),
                float(assigned[j]),
            )
        rows = np.maximum(rows, 0.0)

        # Trim rows that cannot raise L = min_i M_i (every extra z-packet
        # hands Eve a free equation), mirroring the session's greedy
        # small-subsets-first trim.
        m_i = rows @ self._membership.astype(float)
        if rows.sum() > 0:
            floor_val = m_i.min()
            order = sorted(
                (s for s in plan.subsets if rows[s] > 0),
                key=lambda s: (int(self._subset_sizes[s]), s),
            )
            for s in order:
                members = self._membership[s]
                slack = (m_i[members] - floor_val).min()
                cut = min(rows[s], max(slack, 0.0))
                if cut > 0:
                    rows[s] -= cut
                    m_i[members] -= cut

        deficit = 0.0
        for j, s in enumerate(plan.subsets):
            deficit += max(rows[s] - sampled[j], 0.0)
        return rows, deficit

    # -- the batch -------------------------------------------------------

    def run(self, rounds: Optional[int] = None) -> BatchResult:
        """Simulate ``rounds`` rounds (default: the scenario's count)."""
        scenario = self.scenario
        b = scenario.rounds if rounds is None else int(rounds)
        if b < 1:
            raise ValueError("need at least one round")
        batch = sample_receptions(scenario, b, self.rng)
        return self.account(batch)

    def account(self, batch: ReceptionBatch) -> BatchResult:
        """Run the protocol accounting on an already-sampled batch."""
        scenario = self.scenario
        recv = batch.terminals
        b, r, n = recv.shape
        if r != scenario.n_receivers or n != scenario.n_x_packets:
            raise ValueError("batch shape does not match the scenario")
        n_sub = self._n_subsets

        # Pattern histogram: one bincount over (round, pattern) pairs.
        weights = (1 << np.arange(r)).astype(np.int64)
        patterns = np.tensordot(recv.astype(np.int64), weights, axes=([1], [0]))
        flat = (np.arange(b, dtype=np.int64)[:, None] * n_sub + patterns).ravel()
        counts = (
            np.bincount(flat, minlength=b * n_sub).reshape(b, n_sub).astype(float)
        )
        eve_miss = ~batch.eve
        miss_counts = (
            np.bincount(flat, weights=eve_miss.ravel().astype(float), minlength=b * n_sub)
            .reshape(b, n_sub)
        )

        pools = _superset_sums(counts)
        eve_pools = _superset_sums(miss_counts)
        # Missed-count over n, not 1 - mean(): bitwise-identical to the
        # collusion estimator's missed_by_all / n, so k = 1 collusion
        # and leave-one-out certify the same budgets to the last ulp
        # (the realised planner's integer thresholds amplify ulps).
        miss_rates = (n - recv.sum(axis=2)) / float(n)

        # Certified budgets per (round, subset) pool: rate evidence
        # times pool size, floored by the oracle's exact misses when
        # the estimator knows them.
        rates, uses_oracle = self._certified_rates(
            scenario.estimator, counts, miss_rates
        )
        if rates is not None:
            budgets = np.clip(rates, 0.0, 1.0) * pools
            if uses_oracle:
                budgets = np.minimum(budgets, eve_pools)
        else:
            budgets = eve_pools.copy()
        budgets[:, 0] = 0.0

        # Planning: one memoized LP per scenario sets the per-level row
        # targets; each round's demand is the target clamped by its
        # certified budget and realised pool.
        planning_loss = scenario.loss.planning_loss(r)
        profile = group_allocation_profile(
            scenario.n_terminals,
            planning_loss,
            z_cost_factor=scenario.z_cost_factor,
            max_level=self._certifiable_level_cap(scenario.estimator),
            support_feasible=True,
            support_rate=self._planning_certified_rate(
                scenario.estimator, planning_loss
            ),
        )
        level_rows = np.concatenate(([0.0], np.asarray(profile.level_rows)))
        targets = level_rows[self._subset_sizes] * n  # (2^r,)
        demand_rows = np.minimum(targets[None, :], np.minimum(budgets, pools))
        demand_rows = np.maximum(demand_rows, 0.0)

        # Support demand in packets: rate evidence needs pool/budget
        # packets per certified row.
        with np.errstate(divide="ignore", invalid="ignore"):
            pool_rates = np.where(pools > 0, budgets / pools, 0.0)
            id_need = np.where(
                pool_rates > 1e-12, demand_rows / pool_rates, 0.0
            )

        # Realised feasibility: the planning targets saturate the
        # *expected* support-capacity families, so on a realised
        # histogram roughly half the rounds overshoot them.  Scale each
        # nested size family (blocks decodable by >= s receivers can
        # only draw support from patterns of size >= s — the Hall
        # condition of the transportation flow) down to what the round
        # actually holds, largest s first, so the max-flow distributes
        # demand instead of starving whichever subsets it visits last.
        sizes = self._subset_sizes
        for s in range(r, 0, -1):
            family = sizes >= s
            need = id_need[:, family].sum(axis=1)
            cap = counts[:, family].sum(axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                scale = np.where(need > cap, cap / np.maximum(need, 1e-12), 1.0)
            if np.any(scale < 1.0):
                id_need[:, family] *= scale[:, None]
                demand_rows[:, family] *= scale[:, None]

        # Rounds where the demand floors to zero rows request no
        # support at all (they must not starve other subsets).
        id_need = np.minimum(id_need, pools)
        id_need[np.floor(demand_rows + 1e-9) < 1.0] = 0.0
        id_need[:, 0] = 0.0

        counts_int = np.rint(counts).astype(np.int64)
        miss_int = np.rint(miss_counts).astype(np.int64)
        rows = np.zeros((b, n_sub))
        deficit = np.zeros(b)
        for bi in range(b):
            id_demand = self._integerise_demand(id_need[bi], counts_int[bi])
            rows[bi], deficit[bi] = self._realise_round(
                counts_int[bi],
                miss_int[bi],
                demand_rows[bi],
                id_demand,
                rates[bi] if rates is not None else None,
                uses_oracle,
            )

        m_i = rows @ self._membership.astype(float)  # (B, r)
        l_cap = m_i.min(axis=1)
        m_total = rows.sum(axis=1)
        z_public = m_total - l_cap

        # Phase-2 chunking: slack dims withheld per chunk shrink the
        # secret but absorb estimator over-promises first (see
        # repro.coding.privacy.build_phase2_matrices).
        chunks = np.ceil(np.maximum(m_total, 1e-12) / MAX_PHASE2_ROWS)
        slack = scenario.secrecy_slack * chunks
        secret = np.maximum(l_cap - slack, 0.0)
        secret[m_total <= 0] = 0.0

        # Secrecy deficit: inside each block's realised support, Eve's
        # sampled misses may fall short of the certified rows; every
        # missing dimension costs one rank of hiddenness (disjoint
        # blocks add).  The withheld slack dims absorb deficit first.
        effective_deficit = np.maximum(deficit - slack, 0.0)
        hidden = np.maximum(secret - effective_deficit, 0.0)
        reliability = np.ones(b)
        positive = secret > 1e-12
        reliability[positive] = hidden[positive] / secret[positive]

        efficiency = secret / (n + z_public)

        # Measured secrecy: Eve's equation count (captured x-packets
        # plus every public z-row) and the residual hidden dimensions
        # the deficit accounting leaves her.  Same expressions as the
        # stacked path (`repro.sim.stack._account_cell`) — bit-identity
        # is part of the contract.
        eve_missed_counts = batch.eve_missed_counts()
        eve_equations = (n - eve_missed_counts) + z_public

        return BatchResult(
            scenario=scenario,
            secret_packets=secret,
            public_packets=z_public,
            total_rows=m_total,
            efficiency=efficiency,
            reliability=reliability,
            eve_missed=eve_missed_counts,
            terminal_receptions=recv.sum(axis=2),
            delivery_rates=batch.delivery_rates(),
            hidden_dims=hidden,
            eve_equations=eve_equations,
        )


def run_batch(
    scenario: Scenario,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> BatchResult:
    """One-call convenience: simulate a scenario's full batch."""
    return BatchedRoundEngine(scenario, seed=seed, rng=rng).run()
