"""Campaign sweeps over declarative scenario matrices.

A :class:`ScenarioGrid` is the cartesian product of the axes the paper
sweeps — group size, loss model, adversary shape, estimator policy —
expanded into concrete :class:`~repro.sim.spec.Scenario` cells.  The
:class:`CampaignRunner` executes every cell on the batched engine,
optionally sharding cells across a :class:`concurrent.futures` pool
(the allocation LP and the numpy kernels release the GIL for most of
their runtime, and the memoized LP cache is shared process-wide).

Determinism: each cell's generator derives from the campaign seed via
``SeedSequence.spawn`` keyed by cell index, so results are independent
of worker count and execution order.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.sim.engine import BatchedRoundEngine, BatchResult
from repro.sim.spec import (
    AdversarySpec,
    EstimatorSpec,
    IIDLossSpec,
    LossSpec,
    OracleEstimatorSpec,
    Scenario,
)

__all__ = [
    "shard_map",
    "ShardWorkerError",
    "ScenarioGrid",
    "ScenarioOutcome",
    "SimCampaignResult",
    "CampaignRunner",
    "run_sim_campaign",
]


class ShardWorkerError(RuntimeError):
    """A sharded worker failed; the message names the failing item.

    Raised by :func:`shard_map`'s pooled paths so a campaign abort says
    *which* placement or scenario died — a process-pool worker's
    exception otherwise surfaces as a bare pickled traceback with no
    clue about the cell that produced it.  The original exception is
    chained as ``__cause__``.
    """


def shard_map(
    fn: Callable,
    items: Sequence,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    label: Optional[Callable] = None,
) -> list:
    """Order-preserving map with optional thread/process sharding.

    The shared sharding primitive of every campaign runner: work items
    must be independent (each owning its private RNG stream), so the
    result list is identical to ``[fn(x) for x in items]`` whatever the
    worker count or executor — sharding changes wall-clock only.

    Args:
        fn: the per-item worker.  With ``executor="process"`` it must be
            picklable (a module-level function or :func:`functools.partial`
            over one), as must the items and results.
        items: the work list; results come back in the same order.
        max_workers: None or 1 runs serially in the caller's thread
            (exceptions propagate raw, exactly like a list
            comprehension).
        executor: ``"thread"`` (shared memory, fine for GIL-releasing
            numpy/LP work) or ``"process"`` (sidesteps the GIL for pure
            Python work, at pickling cost).
        label: optional ``item -> str`` naming items in error messages;
            pooled-path worker failures raise :class:`ShardWorkerError`
            carrying that name (campaign runners pass the placement's
            scenario key), with the worker's exception as the cause.
    """
    if executor not in ("thread", "process"):
        raise ValueError(f"unknown executor {executor!r}")
    items = list(items)
    if max_workers is None or max_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    with pool_cls(max_workers=max_workers) as pool:
        futures = [pool.submit(fn, item) for item in items]
        results = []
        for item, future in zip(items, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                for pending in futures:
                    pending.cancel()
                name = label(item) if label is not None else repr(item)
                raise ShardWorkerError(
                    f"shard_map worker failed on {name}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        return results


@dataclass(frozen=True)
class ScenarioGrid:
    """Declarative scenario matrix: one cell per axis combination.

    Attributes:
        group_sizes: the n values to sweep.
        loss_models: loss specs (one axis entry each).
        adversaries: Eve configurations.
        estimators: budget policies.
        rounds: Monte-Carlo rounds per cell.
        n_x_packets / payload_bytes / z_cost_factor / secrecy_slack:
            protocol sizing shared by every cell.
    """

    group_sizes: tuple = (3,)
    loss_models: tuple = (IIDLossSpec(0.5),)
    adversaries: tuple = field(default_factory=lambda: (AdversarySpec(),))
    estimators: tuple = field(default_factory=lambda: (OracleEstimatorSpec(),))
    rounds: int = 100
    n_x_packets: int = 90
    payload_bytes: int = 100
    z_cost_factor: float = 1.0
    secrecy_slack: int = 0
    max_subset_size: Optional[int] = None

    def __post_init__(self) -> None:
        for loss in self.loss_models:
            if not isinstance(loss, LossSpec):
                raise TypeError(f"{loss!r} is not a LossSpec")
        for adversary in self.adversaries:
            if not isinstance(adversary, AdversarySpec):
                raise TypeError(f"{adversary!r} is not an AdversarySpec")
        for estimator in self.estimators:
            if not isinstance(estimator, EstimatorSpec):
                raise TypeError(f"{estimator!r} is not an EstimatorSpec")

    def scenarios(self) -> List[Scenario]:
        """Expand the matrix into concrete cells, in axis order."""
        cells = []
        for n, loss, adversary, estimator in itertools.product(
            self.group_sizes, self.loss_models, self.adversaries, self.estimators
        ):
            cells.append(
                Scenario(
                    n_terminals=n,
                    loss=loss,
                    adversary=adversary,
                    estimator=estimator,
                    n_x_packets=self.n_x_packets,
                    rounds=self.rounds,
                    payload_bytes=self.payload_bytes,
                    z_cost_factor=self.z_cost_factor,
                    secrecy_slack=self.secrecy_slack,
                    max_subset_size=self.max_subset_size,
                )
            )
        return cells

    def size(self) -> int:
        return (
            len(self.group_sizes)
            * len(self.loss_models)
            * len(self.adversaries)
            * len(self.estimators)
        )


@dataclass
class ScenarioOutcome:
    """One cell's batch, with the summary views campaigns consume."""

    scenario: Scenario
    result: BatchResult

    @property
    def n_terminals(self) -> int:
        return self.scenario.n_terminals

    def reliability_summary(self):
        """The Figure-2 order statistics for this cell."""
        from repro.analysis.stats import summarize_reliability

        return summarize_reliability(
            self.scenario.n_terminals, self.result.reliabilities()
        )


@dataclass
class SimCampaignResult:
    """Every cell of a batched campaign."""

    outcomes: list = field(default_factory=list)

    def for_n(self, n: int) -> list:
        return [o for o in self.outcomes if o.n_terminals == n]

    def group_sizes(self) -> list:
        return sorted({o.n_terminals for o in self.outcomes})

    def reliabilities(self, n: int) -> list:
        values: list = []
        for outcome in self.for_n(n):
            values.extend(outcome.result.reliabilities())
        return values

    def efficiencies(self, n: int) -> list:
        values: list = []
        for outcome in self.for_n(n):
            values.extend(outcome.result.efficiencies())
        return values

    @property
    def total_rounds(self) -> int:
        return sum(o.result.rounds for o in self.outcomes)


class CampaignRunner:
    """Runs a scenario grid on the batched engine.

    Args:
        seed: master seed; per-cell generators derive from it.
        max_workers: > 1 shards cells across a thread pool; None or 1
            runs serially (identical results either way).
    """

    def __init__(self, seed: int = 2012, max_workers: Optional[int] = None) -> None:
        self.seed = seed
        self.max_workers = max_workers

    def run(
        self,
        grid,
        progress: Optional[Callable[[Scenario], None]] = None,
    ) -> SimCampaignResult:
        """Execute every cell of ``grid`` (a ScenarioGrid or an iterable
        of Scenarios); returns outcomes in cell order."""
        if isinstance(grid, ScenarioGrid):
            cells: Sequence[Scenario] = grid.scenarios()
        else:
            cells = list(grid)
        if not cells:
            return SimCampaignResult(outcomes=[])
        streams = np.random.SeedSequence(self.seed).spawn(len(cells))

        def run_cell(index: int) -> ScenarioOutcome:
            scenario = cells[index]
            if progress is not None:
                progress(scenario)
            engine = BatchedRoundEngine(
                scenario, rng=np.random.default_rng(streams[index])
            )
            return ScenarioOutcome(scenario=scenario, result=engine.run())

        outcomes = shard_map(
            run_cell, range(len(cells)), max_workers=self.max_workers
        )
        return SimCampaignResult(outcomes=outcomes)


def run_sim_campaign(
    grid,
    seed: int = 2012,
    max_workers: Optional[int] = None,
    progress: Optional[Callable[[Scenario], None]] = None,
) -> SimCampaignResult:
    """Convenience wrapper: ``CampaignRunner(seed, max_workers).run(grid)``."""
    return CampaignRunner(seed=seed, max_workers=max_workers).run(
        grid, progress=progress
    )
