"""Campaign sweeps over declarative scenario matrices.

A :class:`ScenarioGrid` is the cartesian product of the axes the paper
sweeps — group size, loss model, adversary shape, estimator policy —
expanded into concrete :class:`~repro.sim.spec.Scenario` cells.  The
:class:`CampaignRunner` executes every cell on the batched engine,
optionally sharding cells across a :class:`concurrent.futures` pool.
Small grids default to threads (the allocation LP and the numpy
kernels release the GIL for most of their runtime, and the memoized LP
cache is shared process-wide); grids of
:data:`PROCESS_POOL_ITEM_THRESHOLD` cells or more default to a process
pool, which sidesteps the GIL on the pure-Python realised-assignment
loop at the cost of per-worker LP caches.

Determinism: each cell's generator derives from
``SeedSequence(entropy=campaign_seed, spawn_key=content-hash(cell))``
(:func:`repro.store.fingerprint.fingerprint_spawn_key`), so a cell's
results depend only on the campaign seed and the cell's own spec — not
on grid order, worker count, or executor kind.  That content keying is
also what makes the persistent store resumable: a shard written while
sweeping one grid stays valid when the grid later grows.

Checkpoint/resume: pass ``store=`` (a
:class:`repro.store.CampaignStore` or a directory path) and every
completed cell is durably appended to its content-keyed JSONL shard
the moment its worker finishes; a re-run with ``resume=True`` (the
default) loads finished cells instead of recomputing them and ends
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import itertools
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.sim.engine import BatchedRoundEngine, BatchResult
from repro.sim.stack import group_cells, run_stacked_batch
from repro.sim.spec import (
    AdversarySpec,
    EstimatorSpec,
    IIDLossSpec,
    LossSpec,
    OracleEstimatorSpec,
    Scenario,
)
from repro.store.fingerprint import fingerprint, fingerprint_spawn_key

__all__ = [
    "shard_map",
    "ShardWorkerError",
    "PROCESS_POOL_ITEM_THRESHOLD",
    "ScenarioGrid",
    "ScenarioOutcome",
    "SimCampaignResult",
    "CampaignRunner",
    "run_sim_campaign",
]

#: Work-list size at which ``executor="auto"`` switches from a thread
#: pool to a process pool.  Below it the shared LP/flow caches and the
#: GIL-releasing numpy kernels make threads faster; above it the
#: per-item pure-Python accounting dominates and processes win.
PROCESS_POOL_ITEM_THRESHOLD = 64


class ShardWorkerError(RuntimeError):
    """A sharded worker failed; the message names the failing item.

    Raised by :func:`shard_map`'s pooled paths so a campaign abort says
    *which* placement or scenario died — a process-pool worker's
    exception otherwise surfaces as a bare pickled traceback with no
    clue about the cell that produced it.  The original exception is
    chained as ``__cause__``.

    Checkpoint-hook failures get the same treatment on every path
    (serial included): an ``on_result`` callback that raises — a full
    disk mid-append, a store on a vanished mount — re-raises as a
    :class:`ShardWorkerError` naming the item whose checkpoint was
    being written.  ``BaseException`` kills (``KeyboardInterrupt``)
    still propagate raw.
    """


def _checkpoint(on_result, item, result, label) -> None:
    """Invoke the ``on_result`` hook, labelling any failure's item.

    A raising checkpoint hook used to surface as a bare exception with
    no clue which item's persist failed; it now re-raises as
    :class:`ShardWorkerError` carrying the item's label, exactly like
    worker failures.  Only :class:`Exception` is wrapped — a
    ``KeyboardInterrupt`` landing inside a hook is a kill, not a
    checkpoint failure, and must propagate untouched.
    """
    try:
        on_result(item, result)
    except Exception as exc:
        name = label(item) if label is not None else repr(item)
        raise ShardWorkerError(
            f"shard_map on_result hook failed on {name}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def _resolve_executor(executor: str, n_items: int) -> str:
    """Map ``"auto"`` onto a pool kind by work-list size."""
    if executor == "auto":
        return (
            "process" if n_items >= PROCESS_POOL_ITEM_THRESHOLD else "thread"
        )
    if executor not in ("thread", "process"):
        raise ValueError(f"unknown executor {executor!r}")
    return executor


def shard_map(
    fn: Callable,
    items: Sequence,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    label: Optional[Callable] = None,
    on_result: Optional[Callable] = None,
) -> list:
    """Order-preserving map with optional thread/process sharding.

    The shared sharding primitive of every campaign runner: work items
    must be independent (each owning its private RNG stream), so the
    result list is identical to ``[fn(x) for x in items]`` whatever the
    worker count or executor — sharding changes wall-clock only.

    Args:
        fn: the per-item worker.  With ``executor="process"`` it must be
            picklable (a module-level function or :func:`functools.partial`
            over one), as must the items and results.
        items: the work list; results come back in the same order.
        max_workers: None or 1 runs serially in the caller's thread
            (exceptions propagate raw, exactly like a list
            comprehension).
        executor: ``"thread"`` (shared memory, fine for GIL-releasing
            numpy/LP work), ``"process"`` (sidesteps the GIL for pure
            Python work, at pickling cost), or ``"auto"`` (process at or
            above :data:`PROCESS_POOL_ITEM_THRESHOLD` items, thread
            below — callers passing closures must pick explicitly).
        label: optional ``item -> str`` naming items in error messages;
            pooled-path worker failures raise :class:`ShardWorkerError`
            carrying that name (campaign runners pass the placement's
            scenario key), with the worker's exception as the cause.
        on_result: optional ``(item, result) -> None`` checkpoint hook,
            always invoked in the *caller's* process as each item
            completes — in completion order on pooled paths, item order
            serially.  Campaign runners persist results through it, so
            a kill mid-map loses only unfinished items.  A hook that
            raises an :class:`Exception` re-raises as
            :class:`ShardWorkerError` naming the item (on the serial
            path and both pool kinds alike); ``BaseException`` kills
            propagate raw.
    """
    items = list(items)
    executor = _resolve_executor(executor, len(items))
    if max_workers is None or max_workers <= 1 or len(items) <= 1:
        results = []
        for item in items:
            result = fn(item)
            if on_result is not None:
                _checkpoint(on_result, item, result, label)
            results.append(result)
        return results
    pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    with pool_cls(max_workers=max_workers) as pool:
        futures = {
            pool.submit(fn, item): index
            for index, item in enumerate(items)
        }
        results: list = [None] * len(items)
        try:
            for future in as_completed(futures):
                index = futures[future]
                try:
                    results[index] = future.result()
                except Exception as exc:
                    name = (
                        label(items[index])
                        if label is not None
                        else repr(items[index])
                    )
                    raise ShardWorkerError(
                        f"shard_map worker failed on {name}: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                if on_result is not None:
                    _checkpoint(on_result, items[index], results[index], label)
        except BaseException:
            for pending in futures:
                pending.cancel()
            raise
        return results


@dataclass(frozen=True)
class ScenarioGrid:
    """Declarative scenario matrix: one cell per axis combination.

    Attributes:
        group_sizes: the n values to sweep.
        loss_models: loss specs (one axis entry each).
        adversaries: Eve configurations.
        estimators: budget policies.
        rounds: Monte-Carlo rounds per cell.
        n_x_packets / payload_bytes / z_cost_factor / secrecy_slack:
            protocol sizing shared by every cell.
    """

    group_sizes: tuple = (3,)
    loss_models: tuple = (IIDLossSpec(0.5),)
    adversaries: tuple = field(default_factory=lambda: (AdversarySpec(),))
    estimators: tuple = field(default_factory=lambda: (OracleEstimatorSpec(),))
    rounds: int = 100
    n_x_packets: int = 90
    payload_bytes: int = 100
    z_cost_factor: float = 1.0
    secrecy_slack: int = 0
    max_subset_size: Optional[int] = None

    def __post_init__(self) -> None:
        for loss in self.loss_models:
            if not isinstance(loss, LossSpec):
                raise TypeError(f"{loss!r} is not a LossSpec")
        for adversary in self.adversaries:
            if not isinstance(adversary, AdversarySpec):
                raise TypeError(f"{adversary!r} is not an AdversarySpec")
        for estimator in self.estimators:
            if not isinstance(estimator, EstimatorSpec):
                raise TypeError(f"{estimator!r} is not an EstimatorSpec")

    def scenarios(self) -> List[Scenario]:
        """Expand the matrix into concrete cells, in axis order."""
        cells = []
        for n, loss, adversary, estimator in itertools.product(
            self.group_sizes, self.loss_models, self.adversaries, self.estimators
        ):
            cells.append(
                Scenario(
                    n_terminals=n,
                    loss=loss,
                    adversary=adversary,
                    estimator=estimator,
                    n_x_packets=self.n_x_packets,
                    rounds=self.rounds,
                    payload_bytes=self.payload_bytes,
                    z_cost_factor=self.z_cost_factor,
                    secrecy_slack=self.secrecy_slack,
                    max_subset_size=self.max_subset_size,
                )
            )
        return cells

    def size(self) -> int:
        return (
            len(self.group_sizes)
            * len(self.loss_models)
            * len(self.adversaries)
            * len(self.estimators)
        )


@dataclass
class ScenarioOutcome:
    """One cell's batch, with the summary views campaigns consume."""

    scenario: Scenario
    result: BatchResult

    @property
    def n_terminals(self) -> int:
        return self.scenario.n_terminals

    def reliability_summary(self):
        """The Figure-2 order statistics for this cell."""
        from repro.analysis.stats import summarize_reliability

        return summarize_reliability(
            self.scenario.n_terminals, self.result.reliabilities()
        )


@dataclass
class SimCampaignResult:
    """Every cell of a batched campaign."""

    outcomes: list = field(default_factory=list)

    def for_n(self, n: int) -> list:
        return [o for o in self.outcomes if o.n_terminals == n]

    def group_sizes(self) -> list:
        return sorted({o.n_terminals for o in self.outcomes})

    def reliabilities(self, n: int) -> list:
        values: list = []
        for outcome in self.for_n(n):
            values.extend(outcome.result.reliabilities())
        return values

    def efficiencies(self, n: int) -> list:
        values: list = []
        for outcome in self.for_n(n):
            values.extend(outcome.result.efficiencies())
        return values

    @property
    def total_rounds(self) -> int:
        return sum(o.result.rounds for o in self.outcomes)


def _run_scenario_cell(item) -> ScenarioOutcome:
    """Module-level cell worker (process pools must pickle it).

    ``item`` is ``(scenario, campaign_seed, spawn_key)``: the generator
    is rebuilt from raw entropy on the worker side, so the same item
    produces the same batch in any process.
    """
    scenario, entropy, spawn_key = item
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)
    )
    return ScenarioOutcome(
        scenario=scenario, result=BatchedRoundEngine(scenario, rng=rng).run()
    )


def _run_scenario_group(group) -> List[ScenarioOutcome]:
    """Module-level group worker: one stacked pass over a tuple of
    same-signature cell items (process pools must pickle it).

    Each item is the :func:`_run_scenario_cell` triple; generators are
    rebuilt from raw entropy exactly as the per-cell worker rebuilds
    them, so grouping changes kernel batching only — every cell's
    result is bit-identical to its per-cell run.
    """
    scenarios = [item[0] for item in group]
    rngs = [
        np.random.default_rng(
            np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)
        )
        for _, entropy, spawn_key in group
    ]
    results = run_stacked_batch(scenarios, rngs)
    return [
        ScenarioOutcome(scenario=scenario, result=result)
        for scenario, result in zip(scenarios, results)
    ]


def _group_label(group) -> str:
    """Name a stacked group in error messages by its first cell."""
    first = group[0][0].label()
    if len(group) == 1:
        return first
    return f"{first} (+{len(group) - 1} stacked)"


class CampaignRunner:
    """Runs a scenario grid on the batched engine.

    Args:
        seed: master seed; per-cell generators derive from it via
            content-keyed ``SeedSequence`` spawns, so a cell's draws
            depend only on (seed, cell spec) — never on grid order or
            sharding.
        max_workers: > 1 shards cells across a worker pool; None or 1
            runs serially (identical results either way).
        executor: ``"thread"``, ``"process"``, or ``"auto"`` (default:
            process pool at or above
            :data:`PROCESS_POOL_ITEM_THRESHOLD` pending cells).
        store: optional :class:`repro.store.CampaignStore` (or a
            directory path) persisting every completed cell as it
            finishes.
        resume: with a store, load already-completed cells instead of
            recomputing them (default).  ``False`` recomputes every
            cell and supersedes the stored records.
        cell_batching: stack cells sharing a
            :func:`~repro.sim.stack.stack_signature` into one kernel
            pass (default), persisting each group with one durable
            batched append.  ``False`` runs the historical
            one-engine-per-cell path.  Results are bit-identical
            either way — per-cell generators stay content-keyed — so
            this is a throughput knob, not a semantics knob.
    """

    def __init__(
        self,
        seed: int = 2012,
        max_workers: Optional[int] = None,
        executor: str = "auto",
        store=None,
        resume: bool = True,
        cell_batching: bool = True,
    ) -> None:
        self.seed = seed
        self.max_workers = max_workers
        self.executor = executor
        self.store = _as_store(store)
        self.resume = resume
        self.cell_batching = cell_batching

    def cell_key(self, scenario: Scenario) -> str:
        """The cell's store shard key: a content hash of (seed, spec)."""
        return fingerprint(
            {"kind": "sim-cell", "seed": self.seed, "scenario": scenario}
        )

    def cell_seed_sequence(self, scenario: Scenario) -> np.random.SeedSequence:
        """The cell's private RNG root, content-keyed like the shard."""
        return np.random.SeedSequence(
            entropy=self.seed, spawn_key=fingerprint_spawn_key(scenario)
        )

    # -- manifests and the multi-host worker loop -------------------------

    def build_manifest(self, grid, name: str):
        """Describe ``grid`` as a :class:`~repro.store.SweepManifest`.

        One entry per cell, in grid order: the cell's content-hashed
        shard key, its encoded :class:`~repro.sim.spec.Scenario` (so a
        worker can rebuild the cell without the grid code), and its
        label.  The manifest is built, not saved — use
        :meth:`write_manifest` to persist it next to the shards.
        """
        from repro.store.manifest import ManifestEntry, SweepManifest
        from repro.store.records import encode_spec

        if isinstance(grid, ScenarioGrid):
            cells: Sequence[Scenario] = grid.scenarios()
        else:
            cells = list(grid)
        entries = tuple(
            ManifestEntry(
                key=self.cell_key(scenario),
                spec=encode_spec(scenario),
                label=scenario.label(),
            )
            for scenario in cells
        )
        return SweepManifest(
            name=name,
            entries=entries,
            kind="sim-grid",
            meta={"seed": self.seed},
        )

    def write_manifest(self, grid, name: str):
        """Build the grid's manifest and atomically save it to the store.

        Refuses to redefine an existing manifest of the same name with
        different work — concurrent workers must agree on what the
        sweep *is*; pick a new name when the grid genuinely changes.
        """
        if self.store is None:
            raise ValueError("write_manifest needs a store")
        from repro.store.manifest import SweepManifest

        built = self.build_manifest(grid, name)
        existing = SweepManifest.load(self.store, name, missing_ok=True)
        if existing is not None and not existing.content_equal(built):
            raise ValueError(
                f"manifest {name!r} already describes a different sweep "
                f"({len(existing)} item(s), seed "
                f"{existing.meta.get('seed')!r}); use a new name"
            )
        return built.save(self.store)

    def run_worker(
        self,
        manifest,
        progress: Optional[Callable[[Scenario], None]] = None,
        lease_timeout: Optional[float] = None,
        poll_interval: float = 0.05,
        owner: Optional[str] = None,
    ) -> SimCampaignResult:
        """Drain a manifest as one worker of a (possibly multi-host) sweep.

        The worker loop: claim up to ``max_workers`` pending cells via
        the :class:`~repro.store.WorkQueue` (``O_EXCL`` leases; expired
        leases of dead workers are reclaimed), run them through
        :func:`shard_map`, persist each outcome the moment its worker
        finishes (the ``on_result`` hook), release the leases, repeat.
        Cells claimed by live peers are awaited — their records appear
        in the store — so every concurrent caller returns the complete
        :class:`SimCampaignResult`, assembled in manifest order and
        bit-identical to a serial :meth:`run` of the same grid.

        Args:
            manifest: a :class:`~repro.store.SweepManifest` or the name
                of one saved in the store.  Cells are decoded from the
                manifest entries, so a worker process needs nothing but
                the store directory, the manifest name, and the
                campaign seed.
            progress: invoked with each Scenario this worker claims.
            lease_timeout: seconds after which a silent peer's lease is
                reclaimed (default
                :data:`repro.store.queue.DEFAULT_LEASE_TIMEOUT`).
            poll_interval: sleep between drain passes while awaiting
                peers.
            owner: worker identity for lease files (defaults to a
                unique host:pid:nonce id).
        """
        if self.store is None:
            raise ValueError("run_worker needs a store")
        from repro.store.manifest import SweepManifest
        from repro.store.queue import (
            DEFAULT_LEASE_TIMEOUT,
            WorkQueue,
            drain_manifest,
        )
        from repro.store.records import (
            decode_spec,
            scenario_outcome_from_json,
            scenario_outcome_to_json,
        )

        if isinstance(manifest, str):
            manifest = SweepManifest.load(self.store, manifest)
        if manifest.kind != "sim-grid":
            raise ValueError(
                f"manifest {manifest.name!r} holds {manifest.kind!r} work, "
                "not sim-grid cells"
            )
        scenarios: dict = {}
        for entry in manifest:
            scenario = decode_spec(entry.spec)
            if self.cell_key(scenario) != entry.key:
                raise ValueError(
                    f"manifest {manifest.name!r} was built with a different "
                    f"campaign seed or fingerprint scheme (entry "
                    f"{entry.label or entry.key} does not re-key)"
                )
            scenarios[entry.key] = scenario
        # The manifest (validated above) already maps every cell to its
        # shard key; never recompute a fingerprint past this point.
        key_of = {scenario: key for key, scenario in scenarios.items()}

        def persist(item, outcome: ScenarioOutcome) -> None:
            self.store.append(
                key_of[outcome.scenario], scenario_outcome_to_json(outcome)
            )

        def persist_group(item, group_outcomes) -> None:
            # One durable flush per stacked group, not one per cell.
            self.store.append_batch(
                (key_of[outcome.scenario], scenario_outcome_to_json(outcome))
                for outcome in group_outcomes
            )

        def run_keys(keys) -> None:
            items = []
            for key in keys:
                if progress is not None:
                    progress(scenarios[key])
                seq = self.cell_seed_sequence(scenarios[key])
                items.append((scenarios[key], seq.entropy, seq.spawn_key))
            if self.cell_batching:
                group_indices = group_cells([item[0] for item in items])
                shard_map(
                    _run_scenario_group,
                    [tuple(items[i] for i in idxs) for idxs in group_indices],
                    max_workers=self.max_workers,
                    executor=self.executor,
                    label=_group_label,
                    on_result=persist_group,
                )
                return
            shard_map(
                _run_scenario_cell,
                items,
                max_workers=self.max_workers,
                executor=self.executor,
                label=lambda item: item[0].label(),
                on_result=persist,
            )

        queue = WorkQueue(
            self.store,
            manifest,
            owner=owner,
            lease_timeout=(
                DEFAULT_LEASE_TIMEOUT if lease_timeout is None else lease_timeout
            ),
        )
        drain_manifest(
            queue,
            run_keys,
            batch_size=max(1, self.max_workers or 1),
            poll_interval=poll_interval,
        )
        outcomes = []
        for entry in manifest:
            record = self.store.load(entry.key)
            if record is None:  # pragma: no cover - drain guarantees done
                raise RuntimeError(f"drained sweep missing shard {entry.key}")
            outcomes.append(scenario_outcome_from_json(record))
        return SimCampaignResult(outcomes=outcomes)

    def run(
        self,
        grid,
        progress: Optional[Callable[[Scenario], None]] = None,
        manifest: Optional[str] = None,
    ) -> SimCampaignResult:
        """Execute every cell of ``grid`` (a ScenarioGrid or an iterable
        of Scenarios); returns outcomes in cell order.

        With a store, cells already persisted are loaded (when
        ``resume``) and the rest are computed and appended as they
        complete; the outcome list is assembled in cell order from
        both, so an interrupted-then-resumed campaign is bit-identical
        to an uninterrupted one.

        With ``manifest=`` (a name; requires a store), the grid is
        first described as a saved :class:`~repro.store.SweepManifest`
        and then drained through the work queue — any number of
        concurrent callers (other processes, other hosts on a shared
        filesystem) may drain the same manifest, and each returns the
        same result a serial run would.
        """
        if manifest is not None:
            if not self.resume:
                raise ValueError(
                    "manifest mode judges completion by the store's shards "
                    "and cannot re-run finished work; resume=False is "
                    "incompatible (use a new manifest name or delete the "
                    "shards)"
                )
            saved = self.write_manifest(grid, manifest)
            return self.run_worker(saved, progress=progress)
        if isinstance(grid, ScenarioGrid):
            cells: Sequence[Scenario] = grid.scenarios()
        else:
            cells = list(grid)
        if not cells:
            return SimCampaignResult(outcomes=[])

        outcomes: List[Optional[ScenarioOutcome]] = [None] * len(cells)
        pending: List[int] = []
        if self.store is not None and self.resume:
            from repro.store.records import scenario_outcome_from_json

            for index, scenario in enumerate(cells):
                record = self.store.load(self.cell_key(scenario))
                if record is not None:
                    outcomes[index] = scenario_outcome_from_json(record)
                else:
                    pending.append(index)
        else:
            pending = list(range(len(cells)))

        if progress is not None:
            for index in pending:
                progress(cells[index])

        # One seeding recipe: cell_seed_sequence is the authority, and
        # the worker rebuilds the identical sequence from its raw
        # (entropy, spawn_key) parts — the picklable form process pools
        # need.
        items = []
        for index in pending:
            seq = self.cell_seed_sequence(cells[index])
            items.append((cells[index], seq.entropy, seq.spawn_key))

        if self.cell_batching:
            on_group = None
            if self.store is not None:
                from repro.store.records import scenario_outcome_to_json

                def on_group(item, group_outcomes) -> None:
                    # One durable flush per stacked group.
                    self.store.append_batch(
                        (
                            self.cell_key(outcome.scenario),
                            scenario_outcome_to_json(outcome),
                        )
                        for outcome in group_outcomes
                    )

            group_indices = group_cells([item[0] for item in items])
            group_results = shard_map(
                _run_scenario_group,
                [tuple(items[i] for i in idxs) for idxs in group_indices],
                max_workers=self.max_workers,
                executor=self.executor,
                label=_group_label,
                on_result=on_group,
            )
            results: List[Optional[ScenarioOutcome]] = [None] * len(items)
            for idxs, group_outcomes in zip(group_indices, group_results):
                for i, outcome in zip(idxs, group_outcomes):
                    results[i] = outcome
        else:
            on_result = None
            if self.store is not None:
                from repro.store.records import scenario_outcome_to_json

                def on_result(item, outcome) -> None:
                    self.store.append(
                        self.cell_key(outcome.scenario),
                        scenario_outcome_to_json(outcome),
                    )

            results = shard_map(
                _run_scenario_cell,
                items,
                max_workers=self.max_workers,
                executor=self.executor,
                label=lambda item: item[0].label(),
                on_result=on_result,
            )
        for index, outcome in zip(pending, results):
            outcomes[index] = outcome
        return SimCampaignResult(outcomes=outcomes)


def _as_store(store):
    """Accept a CampaignStore, a store URI/path/backend, or None.

    URI strings select a backend by scheme (``file:``, ``sqlite:``,
    ``mem:`` — see :func:`repro.store.backend.open_store`); a bare
    path keeps its historical meaning, a filesystem store directory.
    """
    if store is None:
        return None
    from repro.store.backend import open_store
    from repro.store.store import CampaignStore

    if isinstance(store, CampaignStore):
        return store
    return open_store(store)


def run_sim_campaign(
    grid,
    seed: int = 2012,
    max_workers: Optional[int] = None,
    progress: Optional[Callable[[Scenario], None]] = None,
    executor: str = "auto",
    store=None,
    resume: bool = True,
    manifest: Optional[str] = None,
    cell_batching: bool = True,
) -> SimCampaignResult:
    """Convenience wrapper: ``CampaignRunner(...).run(grid)``."""
    return CampaignRunner(
        seed=seed,
        max_workers=max_workers,
        executor=executor,
        store=store,
        resume=resume,
        cell_batching=cell_batching,
    ).run(grid, progress=progress, manifest=manifest)
