"""repro.sim — batched Monte-Carlo campaign engine.

The paper's claims are statistical: Figure 1's efficiency and Figure
2's reliability only emerge from many protocol rounds across a grid of
``(n, p, loss model, adversary)`` scenarios.  The per-packet simulator
(:class:`repro.core.session.ProtocolSession`) remains the ground-truth
oracle — it executes every transmission, Cauchy block and GF solve —
but at campaign scale it is the dominant cost.  This package trades
bit-exactness for two to three orders of magnitude of throughput by
simulating B independent rounds as numpy arrays.

Design (see :mod:`repro.sim.engine` for the full derivation):

* **One vectorised draw per loss model** — the whole ``(B, links, N)``
  reception tensor comes from a single sampling call (IID and matrix
  models are one comparison; Gilbert-Elliott chains iterate only the
  packet axis; :class:`~repro.sim.spec.ScheduleLossSpec` tiles a
  per-pattern loss table across the packet axis, carrying the
  testbed's rotating-interference burstiness into the accounting).
* **Subset-lattice accounting** — reception patterns become bitmasks,
  pattern counts become one ``bincount``, and a zeta transform yields
  every terminal-subset's support pool and Eve-miss count at once.
* **Allocation reuse** — the symmetric allocation LP is solved once per
  scenario (memoized in :mod:`repro.theory.efficiency`) and clamped
  against each round's realised pools; no per-round LP or max-flow.
* **Declarative campaigns** — :class:`~repro.sim.campaign.ScenarioGrid`
  expands the scenario matrix, and
  :class:`~repro.sim.campaign.CampaignRunner` shards cells across
  thread or process pools (``executor="auto"`` picks by grid size)
  with content-keyed per-cell ``SeedSequence`` determinism, optionally
  checkpointing every completed cell to a
  :class:`repro.store.CampaignStore` for crash-safe resume.

Running a campaign::

    from repro.sim import (
        CampaignRunner, IIDLossSpec, LeaveOneOutEstimatorSpec, ScenarioGrid,
    )

    grid = ScenarioGrid(
        group_sizes=(3, 5, 8),
        loss_models=(IIDLossSpec(0.3), IIDLossSpec(0.5)),
        estimators=(LeaveOneOutEstimatorSpec(rate_margin=0.05),),
        rounds=1000,
        n_x_packets=180,
    )
    result = CampaignRunner(seed=2012, max_workers=4).run(grid)
    for n in result.group_sizes():
        print(n, sum(result.reliabilities(n)) / len(result.reliabilities(n)))

Cross-validation against the per-packet oracle lives in
``tests/sim/test_cross_validation.py`` and the speedup comparison in
``benchmarks/test_sim_campaign.py``.
"""

from repro.sim.campaign import (
    CampaignRunner,
    ScenarioGrid,
    ScenarioOutcome,
    SimCampaignResult,
    run_sim_campaign,
    shard_map,
)
from repro.sim.engine import BatchedRoundEngine, BatchResult, run_batch
from repro.sim.reception import (
    ReceptionBatch,
    sample_receptions,
    sample_receptions_stacked,
)
from repro.sim.stack import group_cells, run_stacked_batch, stack_signature
from repro.sim.spec import (
    AdversarySpec,
    CollusionEstimatorSpec,
    CombinedEstimatorSpec,
    EstimatorSpec,
    FixedFractionEstimatorSpec,
    GilbertElliottLossSpec,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    LossSpec,
    MatrixLossSpec,
    OracleEstimatorSpec,
    Scenario,
    ScheduleLossSpec,
)

__all__ = [
    # specs
    "LossSpec",
    "IIDLossSpec",
    "MatrixLossSpec",
    "ScheduleLossSpec",
    "GilbertElliottLossSpec",
    "AdversarySpec",
    "EstimatorSpec",
    "OracleEstimatorSpec",
    "FixedFractionEstimatorSpec",
    "LeaveOneOutEstimatorSpec",
    "CollusionEstimatorSpec",
    "CombinedEstimatorSpec",
    "Scenario",
    # sampling + engine
    "ReceptionBatch",
    "sample_receptions",
    "sample_receptions_stacked",
    "BatchedRoundEngine",
    "BatchResult",
    "run_batch",
    # cross-cell stacking
    "stack_signature",
    "group_cells",
    "run_stacked_batch",
    # campaigns
    "shard_map",
    "ScenarioGrid",
    "ScenarioOutcome",
    "SimCampaignResult",
    "CampaignRunner",
    "run_sim_campaign",
]
