"""Declarative scenario specifications for the batched engine.

A :class:`Scenario` is pure data: group size, loss process, adversary
shape, estimator policy and protocol sizing.  Scenarios are frozen
dataclasses so they can serve as cache keys, be expanded from a
:class:`~repro.sim.campaign.ScenarioGrid` cartesian product, and be
shipped to worker threads without copying simulator state.

Loss specs own their *sampling law*: each knows how to draw the full
``(rounds, links, packets)`` loss tensor in vectorised numpy and what
its per-link marginal loss probabilities are (the contract the tests
check against the per-packet :class:`repro.net.medium.LossModel`
counterparts).

Invariants every spec upholds (the engine and bridges rely on them):

* **Link order.**  A scenario with ``n`` terminals and an adversary
  with ``k`` antennas has ``(n - 1) + k`` directed links, always in
  the same order: the leader's ``n - 1`` fellow receivers first (in
  placement/name order), then the adversary's antenna columns — her
  primary vantage followed by any extra cells in the order given.
  :func:`repro.sim.reception.sample_receptions` splits the tensor on
  exactly that boundary and unions Eve's trailing ``k`` columns into
  one capture bit per packet.  Specs that carry explicit per-link
  entries (:class:`MatrixLossSpec`, :class:`ScheduleLossSpec`) demand
  an *exact* width match — slicing a wider table would silently hand
  Eve a receiver's probabilities.
* **Loss tensor axes.**  ``sample_losses`` returns bool
  ``(rounds, n_links, n_packets)``, True where the copy is LOST; the
  packet axis is transmission order, which is what lets
  :class:`ScheduleLossSpec` tile its ``(n_patterns, n_links)`` table
  across packets (packet ``j`` airs in slot ``phase + j``; all links
  share a slot's pattern, so jamming hits them simultaneously).
* **Planning marginals.**  ``planning_loss`` feeds the allocation LP
  and averages *receiver* links only — Eve's trailing columns must
  never bias the plan.
* **Seed streams.**  Specs are pure data and never hold generators; a
  spec draws only from the ``rng`` it is handed, in a single
  vectorised pass per batch.  Campaign runners hand each scenario
  cell / experiment its own ``SeedSequence``-spawned generator
  (:mod:`repro.sim.campaign`,
  ``repro.analysis.experiments._experiment_seed_sequence``), which is
  what makes sharded campaigns bit-identical to serial ones.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "LossSpec",
    "IIDLossSpec",
    "MatrixLossSpec",
    "ScheduleLossSpec",
    "GilbertElliottLossSpec",
    "AdversarySpec",
    "EstimatorSpec",
    "OracleEstimatorSpec",
    "FixedFractionEstimatorSpec",
    "LeaveOneOutEstimatorSpec",
    "CollusionEstimatorSpec",
    "CombinedEstimatorSpec",
    "Scenario",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


class LossSpec(abc.ABC):
    """A vectorisable packet-loss law for a set of directed links."""

    @abc.abstractmethod
    def sample_losses(
        self, rounds: int, n_links: int, n_packets: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw the loss tensor: bool ``(rounds, n_links, n_packets)``,
        True where the copy on that link is LOST."""

    @abc.abstractmethod
    def link_loss_probabilities(self, n_links: int) -> np.ndarray:
        """Marginal loss probability per link, shape ``(n_links,)``."""

    def planning_loss(self, n_links: int) -> float:
        """The symmetric erasure probability the allocation LP plans
        for: the mean marginal across links."""
        return float(np.mean(self.link_loss_probabilities(n_links)))


@dataclass(frozen=True)
class IIDLossSpec(LossSpec):
    """Every link loses every packet independently with probability p
    (the batched counterpart of :class:`repro.net.medium.IIDLossModel`)."""

    p: float

    def __post_init__(self) -> None:
        _check_probability("p", self.p)

    def sample_losses(self, rounds, n_links, n_packets, rng) -> np.ndarray:
        return rng.random((rounds, n_links, n_packets)) < self.p

    def link_loss_probabilities(self, n_links: int) -> np.ndarray:
        return np.full(n_links, self.p)


@dataclass(frozen=True)
class MatrixLossSpec(LossSpec):
    """Per-link loss probabilities (counterpart of
    :class:`repro.net.medium.MatrixLossModel`).

    ``probabilities`` is ordered like the engine's link order: the
    ``n - 1`` receiver links first, then the adversary's antennas (when
    the adversary does not override its own loss law).
    """

    probabilities: tuple

    def __post_init__(self) -> None:
        for value in self.probabilities:
            _check_probability("link loss probability", value)

    def sample_losses(self, rounds, n_links, n_packets, rng) -> np.ndarray:
        p = self.link_loss_probabilities(n_links)
        return rng.random((rounds, n_links, n_packets)) < p[None, :, None]

    def link_loss_probabilities(self, n_links: int) -> np.ndarray:
        # Exact match required: the last entry is Eve's antenna, so
        # slicing a longer tuple would silently hand Eve a receiver's
        # probability and drop her real one.
        if len(self.probabilities) != n_links:
            raise ValueError(
                f"spec lists {len(self.probabilities)} link probabilities, "
                f"scenario needs exactly {n_links}"
            )
        return np.asarray(self.probabilities, dtype=float)

    def planning_loss(self, n_links: int) -> float:
        """Mean over the first ``n_links`` entries — the receiver links.

        The engine plans on the terminals' channel quality only; Eve's
        trailing antenna entries must not bias the allocation LP.
        """
        if len(self.probabilities) < n_links:
            raise ValueError(
                f"spec lists {len(self.probabilities)} link probabilities, "
                f"planning needs at least {n_links}"
            )
        return float(np.mean(np.asarray(self.probabilities[:n_links], dtype=float)))


@dataclass(frozen=True)
class ScheduleLossSpec(LossSpec):
    """Slot-aware loss under a rotating interference schedule.

    The testbed's artificial interference cycles through noise patterns,
    each held for ``slots_per_pattern`` transmission slots; a link's loss
    probability depends on which pattern is up when the packet airs.
    This spec carries the full per-pattern per-link table and samples it
    by tiling the pattern axis across the packet axis — packet ``k`` of
    a round airs in slot ``phase + k`` (x-packets go out back-to-back in
    the per-packet engine, so consecutive packets share a dwell), which
    is exactly the slot-level burstiness the pattern-averaged
    :class:`MatrixLossSpec` bridge erased.

    Attributes:
        pattern_probabilities: nested tuple, shape ``(n_patterns,
            n_links)`` — loss probability of each link while each
            pattern is active.  Link order follows the engine
            convention: receiver links first, then Eve's antenna.
        slots_per_pattern: transmission slots per pattern dwell.
        random_phase: when True (default), each round starts at an
            independent uniformly-random point of the schedule period,
            making rounds exchangeable and the per-link marginal exactly
            the pattern-mean; False pins every round to phase 0
            (deterministic tiling, used by unit tests).
    """

    pattern_probabilities: tuple
    slots_per_pattern: int = 1
    random_phase: bool = True

    def __post_init__(self) -> None:
        if self.slots_per_pattern < 1:
            raise ValueError("slots_per_pattern must be at least 1")
        if not self.pattern_probabilities:
            raise ValueError("need at least one pattern")
        width = len(self.pattern_probabilities[0])
        for row in self.pattern_probabilities:
            if len(row) != width:
                raise ValueError("pattern rows must list the same links")
            for value in row:
                _check_probability("pattern loss probability", value)

    @property
    def n_patterns(self) -> int:
        return len(self.pattern_probabilities)

    def table(self) -> np.ndarray:
        """The ``(n_patterns, n_links)`` probability table as an array."""
        return np.asarray(self.pattern_probabilities, dtype=float)

    def _checked_table(self, n_links: int) -> np.ndarray:
        table = self.table()
        # Exact match required, like MatrixLossSpec: the last column is
        # Eve's antenna, so slicing a wider table would silently hand
        # Eve a receiver's probabilities.
        if table.shape[1] != n_links:
            raise ValueError(
                f"spec lists {table.shape[1]} links per pattern, "
                f"scenario needs exactly {n_links}"
            )
        return table

    def sample_losses(self, rounds, n_links, n_packets, rng) -> np.ndarray:
        table = self._checked_table(n_links)
        n_patterns = table.shape[0]
        period = n_patterns * self.slots_per_pattern
        if self.random_phase:
            phase = rng.integers(0, period, size=rounds)
        else:
            phase = np.zeros(rounds, dtype=np.int64)
        slots = phase[:, None] + np.arange(n_packets)[None, :]
        pattern_idx = (slots // self.slots_per_pattern) % n_patterns
        # (rounds, n_packets, n_links) -> engine's (rounds, links, packets).
        # All links share a slot's pattern: jamming hits simultaneously.
        p = np.moveaxis(table[pattern_idx], 2, 1)
        return rng.random((rounds, n_links, n_packets)) < p

    def link_loss_probabilities(self, n_links: int) -> np.ndarray:
        """Pattern-mean marginal per link (exact under ``random_phase``)."""
        return self._checked_table(n_links).mean(axis=0)

    def planning_loss(self, n_links: int) -> float:
        """Pattern-mean over the first ``n_links`` (receiver) columns.

        Like :meth:`MatrixLossSpec.planning_loss`: the allocation LP
        plans on the terminals' channel quality only, so Eve's trailing
        column must not bias it.
        """
        table = self.table()
        if table.shape[1] < n_links:
            raise ValueError(
                f"spec lists {table.shape[1]} links per pattern, "
                f"planning needs at least {n_links}"
            )
        return float(table[:, :n_links].mean())


@dataclass(frozen=True)
class GilbertElliottLossSpec(LossSpec):
    """Two-state bursty erasures, one independent chain per link
    (counterpart of :class:`repro.net.channel.GilbertElliottChannel`
    behind a :class:`repro.net.medium.ChannelLossModel`).

    The chain starts in its stationary distribution so every packet
    position shares the steady-state marginal
    ``(p_b2g p_good + p_g2b p_bad) / (p_g2b + p_b2g)``.
    """

    p_g2b: float
    p_b2g: float
    p_good: float = 0.0
    p_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_g2b", "p_b2g", "p_good", "p_bad"):
            _check_probability(name, getattr(self, name))

    def steady_state_bad(self) -> float:
        total = self.p_g2b + self.p_b2g
        if total == 0.0:
            return 0.0
        return self.p_g2b / total

    def steady_state_loss(self) -> float:
        bad = self.steady_state_bad()
        return bad * self.p_bad + (1.0 - bad) * self.p_good

    def sample_losses(self, rounds, n_links, n_packets, rng) -> np.ndarray:
        # One Markov chain per (round, link); the packet axis is the
        # only sequential dependency, so iterate it on (rounds, links)
        # planes — N steps of vectorised work instead of B*L*N draws.
        bad = rng.random((rounds, n_links)) < self.steady_state_bad()
        lost = np.empty((rounds, n_links, n_packets), dtype=bool)
        for k in range(n_packets):
            p_loss = np.where(bad, self.p_bad, self.p_good)
            lost[:, :, k] = rng.random((rounds, n_links)) < p_loss
            flip = rng.random((rounds, n_links))
            bad = np.where(bad, flip >= self.p_b2g, flip < self.p_g2b)
        return lost

    def link_loss_probabilities(self, n_links: int) -> np.ndarray:
        return np.full(n_links, self.steady_state_loss())


@dataclass(frozen=True)
class AdversarySpec:
    """Eve's shape: how many antennas, and (optionally) her own loss law.

    Attributes:
        antennas: independent receive antennas; Eve captures a packet
            when *any* antenna does (the multi-antenna model of the
            paper's §3.3 sketch and examples/multiantenna_eve.py).
        loss: when set, every antenna loses i.i.d. at this probability
            instead of following the scenario's loss spec — models an
            adversary at a different vantage than the terminals.
    """

    antennas: int = 1
    loss: Optional[float] = None

    def __post_init__(self) -> None:
        if self.antennas < 1:
            raise ValueError("Eve needs at least one antenna")
        if self.loss is not None:
            _check_probability("adversary loss", self.loss)


class EstimatorSpec:
    """Marker base for declarative estimator policies (data only; the
    budget arithmetic lives in :mod:`repro.sim.engine`)."""


@dataclass(frozen=True)
class OracleEstimatorSpec(EstimatorSpec):
    """Ground truth: budgets equal Eve's actual misses per pool."""


@dataclass(frozen=True)
class FixedFractionEstimatorSpec(EstimatorSpec):
    """Artificial-interference guarantee: Eve misses >= ``fraction`` of
    any packet set."""

    fraction: float

    def __post_init__(self) -> None:
        _check_probability("fraction", self.fraction)


@dataclass(frozen=True)
class LeaveOneOutEstimatorSpec(EstimatorSpec):
    """Worst pretend-Eve miss *rate* among terminals outside the block's
    decodable subset, minus a safety margin."""

    rate_margin: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("rate_margin", self.rate_margin)


@dataclass(frozen=True)
class CollusionEstimatorSpec(EstimatorSpec):
    """Every k-subset of eligible terminals jointly plays Eve; budgets
    use the worst union miss rate."""

    k: int
    rate_margin: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        _check_probability("rate_margin", self.rate_margin)


@dataclass(frozen=True)
class CombinedEstimatorSpec(EstimatorSpec):
    """Most conservative answer across child policies (the deployment
    pairing: interference guarantee + leave-one-out)."""

    children: tuple

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("need at least one child estimator")
        for child in self.children:
            if not isinstance(child, EstimatorSpec):
                raise TypeError(f"{child!r} is not an EstimatorSpec")


@dataclass(frozen=True)
class Scenario:
    """One cell of a campaign matrix: everything a batch needs.

    Attributes:
        n_terminals: group size n (leader + n-1 receivers).
        loss: the packet-loss law for the broadcast links.
        adversary: Eve's antenna count / vantage.
        estimator: the budget policy (mirrors repro.core.estimator).
        n_x_packets: N, x-packets per round.
        rounds: Monte-Carlo rounds to simulate for this cell.
        payload_bytes: symbols per packet (bit accounting only).
        z_cost_factor: z-packet airtime weight in the allocation LP.
        secrecy_slack: withheld dimensions per phase-2 chunk.
        max_subset_size: cap on decodable-set size, mirroring
            SessionConfig.max_subset_size; None = unrestricted.
        name: optional label for reports.
    """

    n_terminals: int
    loss: LossSpec
    adversary: AdversarySpec = field(default_factory=AdversarySpec)
    estimator: EstimatorSpec = field(default_factory=OracleEstimatorSpec)
    n_x_packets: int = 90
    rounds: int = 100
    payload_bytes: int = 100
    z_cost_factor: float = 1.0
    secrecy_slack: int = 0
    max_subset_size: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.n_terminals < 2:
            raise ValueError("need at least two terminals")
        if self.n_x_packets < 1:
            raise ValueError("need at least one x-packet")
        if self.rounds < 1:
            raise ValueError("need at least one round")
        if self.payload_bytes < 1:
            raise ValueError("payloads must be non-empty")
        if self.z_cost_factor <= 0:
            raise ValueError("z_cost_factor must be positive")
        if self.secrecy_slack < 0:
            raise ValueError("secrecy_slack must be non-negative")
        if self.max_subset_size is not None and self.max_subset_size < 1:
            raise ValueError("max_subset_size must be positive (or None)")

    @property
    def n_receivers(self) -> int:
        return self.n_terminals - 1

    def label(self) -> str:
        if self.name:
            return self.name
        return (
            f"n={self.n_terminals} loss={self.loss!r} "
            f"est={type(self.estimator).__name__}"
        )
