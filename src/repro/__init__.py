"""repro — reproduction of "Creating Shared Secrets out of Thin Air"
(Safaka, Fragouli, Argyraki, Diggavi — HotNets 2012).

A group of wireless terminals agrees on a shared secret over a lossy
broadcast network such that a passive eavesdropper learns (almost)
nothing — security from *limited network presence*, not computational
hardness.

Quickstart::

    import numpy as np
    from repro import (
        BroadcastMedium, IIDLossModel, Terminal, Eavesdropper,
        OracleEstimator, SessionConfig, run_experiment,
    )

    rng = np.random.default_rng(0)
    nodes = [Terminal(name=f"T{i}") for i in range(3)]
    nodes.append(Eavesdropper(name="eve"))
    medium = BroadcastMedium(nodes, IIDLossModel(0.4), rng)
    result = run_experiment(
        medium, ["T0", "T1", "T2"], OracleEstimator(), rng,
        config=SessionConfig(n_x_packets=60, payload_bytes=100),
    )
    assert result.reliability == 1.0   # Eve knows nothing
    key = result.group_secret          # shared by all three terminals

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.gf` — GF(2^8) arithmetic and linear algebra.
- :mod:`repro.coding` — MDS secrecy codes: y/z/s constructions.
- :mod:`repro.net` — broadcast medium, channels, PHY, bit accounting.
- :mod:`repro.testbed` — the paper's 14 m² interference testbed.
- :mod:`repro.core` — the protocol: sessions, estimators, metrics, Eve.
- :mod:`repro.theory` — Figure-1 efficiency curves and capacity bounds.
- :mod:`repro.analysis` — campaign runner and figure rendering.
- :mod:`repro.sim` — batched Monte-Carlo campaign engine (vectorised
  scenario sweeps; the per-packet session stays the ground truth).
- :mod:`repro.store` — persistent campaign store: content-hashed JSONL
  shards, checkpoint/resume for both campaign runners.
- :mod:`repro.auth` — active-adversary extension (one-time MACs).
"""

from repro.coding import SystematicMDSCode
from repro.core import (
    CollusionEstimator,
    CombinedEstimator,
    EveErasureEstimator,
    ExperimentMetrics,
    ExperimentResult,
    FixedFractionEstimator,
    GroupSecret,
    LeakageReport,
    LeaveOneOutEstimator,
    OracleEstimator,
    ProtocolSession,
    RoundResult,
    SecretPool,
    SessionConfig,
    run_experiment,
)
from repro.net import (
    BroadcastMedium,
    Eavesdropper,
    GilbertElliottChannel,
    IIDErasureChannel,
    IIDLossModel,
    MatrixLossModel,
    Packet,
    PacketKind,
    Terminal,
    TransmissionLedger,
)
from repro.sim import (
    AdversarySpec,
    BatchedRoundEngine,
    BatchResult,
    CampaignRunner,
    CollusionEstimatorSpec,
    CombinedEstimatorSpec,
    FixedFractionEstimatorSpec,
    GilbertElliottLossSpec,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    MatrixLossSpec,
    OracleEstimatorSpec,
    Scenario,
    ScenarioGrid,
    run_sim_campaign,
)
from repro.store import CampaignStore
from repro.testbed import (
    Placement,
    Testbed,
    TestbedConfig,
    TestbedGeometry,
    enumerate_placements,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # protocol
    "ProtocolSession",
    "SessionConfig",
    "RoundResult",
    "run_experiment",
    "ExperimentResult",
    "ExperimentMetrics",
    "LeakageReport",
    "GroupSecret",
    "SecretPool",
    # estimators
    "EveErasureEstimator",
    "OracleEstimator",
    "FixedFractionEstimator",
    "LeaveOneOutEstimator",
    "CollusionEstimator",
    "CombinedEstimator",
    # network
    "BroadcastMedium",
    "IIDLossModel",
    "MatrixLossModel",
    "IIDErasureChannel",
    "GilbertElliottChannel",
    "Terminal",
    "Eavesdropper",
    "Packet",
    "PacketKind",
    "TransmissionLedger",
    # testbed
    "Testbed",
    "TestbedConfig",
    "TestbedGeometry",
    "Placement",
    "enumerate_placements",
    # batched simulation
    "Scenario",
    "ScenarioGrid",
    "BatchedRoundEngine",
    "BatchResult",
    "CampaignRunner",
    "run_sim_campaign",
    "CampaignStore",
    "IIDLossSpec",
    "MatrixLossSpec",
    "GilbertElliottLossSpec",
    "AdversarySpec",
    "OracleEstimatorSpec",
    "FixedFractionEstimatorSpec",
    "LeaveOneOutEstimatorSpec",
    "CollusionEstimatorSpec",
    "CombinedEstimatorSpec",
    # substrates
    "SystematicMDSCode",
]
