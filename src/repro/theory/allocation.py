"""Per-round realised support assignment for the batched engine.

The scenario-level allocation LP (:mod:`repro.theory.efficiency`) is a
*fractional bound*: it plans y-row targets against expected pool sizes.
What a protocol round can actually deliver is an *integral* assignment
of the realised reception outcome — the distinction between achievable
rates and fractional planning bounds that Zimand's "no prior
information" construction makes precise, and the one the per-packet
session pays on every round through its max-flow support assignment
(:func:`repro.coding.privacy._assign_ids_by_flow`).

This module gives the batched engine the same honesty at histogram
granularity.  A round's channel outcome is summarised by its
reception-pattern histogram (``pattern bitmask -> packet count``); the
planner's id demands per terminal subset come from the memoized
scenario LP.  :func:`realised_support_flow` solves the integral
transportation max-flow between the two — subset ``T`` may only draw
support packets from pattern cells ``P >= T`` — reusing the exact flow
core the session uses (:func:`repro.coding.privacy.solve_transport_counts`).

Solves are memoized on the observed ``(histogram, demands)`` key:
within a scenario many rounds realise the same histogram (small ``N``
especially, which is also where integrality bites hardest), so the
cache amortises like the allocation-LP cache does.  The cached
:class:`RealisedPlan` is immutable and shared — callers must treat the
flow table as read-only (the array is marked unwriteable).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.coding.privacy import solve_transport_counts

__all__ = [
    "RealisedPlan",
    "realised_support_flow",
    "realised_flow_cache_info",
    "clear_realised_flow_cache",
]


@dataclass(frozen=True, eq=False)
class RealisedPlan:
    """One integral support assignment on a realised pattern histogram.

    Attributes:
        subsets: terminal-subset bitmasks with positive id demand, in
            key order (ascending mask).
        cells: reception-pattern bitmasks with at least one packet, in
            key order (ascending mask); the empty pattern is excluded
            (packets nobody received cannot support any block).
        flow: read-only int64 array ``(len(subsets), len(cells))`` —
            how many support packets each subset draws from each cell
            under a maximum flow.  Supports are disjoint by
            construction (each packet funds one subset).
    """

    subsets: tuple
    cells: tuple
    flow: np.ndarray
    #: Uniform demand fraction the histogram could fully satisfy (1.0
    #: when every subset got its whole demand).  Row targets scale by
    #: this, so scarce rounds keep every block *demand*-bound — the
    #: certified-rate ceiling stays strictly above the granted rows,
    #: preserving the session's rounding buffer against Eve.
    scale: float = 1.0

    @property
    def assigned(self) -> np.ndarray:
        """Support packets each subset actually obtained, ``(len(subsets),)``."""
        return self.flow.sum(axis=1)


@functools.lru_cache(maxsize=1 << 16)
def realised_support_flow(
    cell_counts: tuple, subset_demands: tuple, top_up: bool = False
) -> RealisedPlan:
    """Memoized integral support assignment for one observed round.

    Args:
        cell_counts: ``((pattern_mask, packet_count), ...)`` — the
            round's reception-pattern histogram, nonzero non-empty
            patterns only, ascending mask order.
        subset_demands: ``((subset_mask, id_demand), ...)`` — how many
            support packets each active terminal subset wants, ascending
            mask order.  A subset may draw only from pattern cells that
            contain it (``subset & pattern == subset``).
        top_up: after the balanced scale-down of an infeasible round,
            grant leftover capacity opportunistically.  Right when
            certification is support-exact (the oracle counts Eve's
            actual misses, so a partially-filled block can never
            over-promise); wrong for rate-certified estimators, whose
            partially-filled blocks would sit at their certified
            ceiling with no rounding buffer.

    Returns:
        The cached :class:`RealisedPlan`.  Identical keys return the
        *identical object* (``is``-equal), which is what lets thousands
        of rounds share one max-flow solve.
    """
    cells = tuple(p for p, _ in cell_counts)
    subsets = tuple(s for s, _ in subset_demands)
    demands = [int(d) for _, d in subset_demands]
    capacities = [int(c) for _, c in cell_counts]
    allowed = [[(s & p) == s for p in cells] for s in subsets]
    flow = solve_transport_counts(demands, capacities, allowed)
    scale = 1.0
    if flow.sum() < sum(demands):
        # Infeasible round: a maximum flow meets the total but may
        # starve individual subsets entirely (max-flow optimises the
        # sum, not the spread), and a starved subset drags the secret
        # cap L = min_i M_i down for every terminal it served.  Scale
        # the demand vector down uniformly to the largest fraction the
        # histogram can fully satisfy (binary search — demand
        # satisfaction is monotone in the scale), which spreads the
        # shortfall evenly like the fractional planner would.  No
        # opportunistic top-up: partially-filled blocks would sit
        # exactly at their certified-rate ceiling with no rounding
        # buffer, precisely the blocks whose secrecy deficits the
        # session never produces.
        lo = 0.0
        hi = 1.0
        best = np.zeros_like(flow)
        for _ in range(6):
            mid = (lo + hi) / 2.0
            scaled = [int(np.floor(mid * d)) for d in demands]
            candidate = solve_transport_counts(scaled, capacities, allowed)
            if candidate.sum() >= sum(scaled):
                lo = mid
                best = candidate
            else:
                hi = mid
        if top_up:
            residual_demands = [
                int(d) - int(best[j].sum()) for j, d in enumerate(demands)
            ]
            residual_caps = [
                int(c) - int(best[:, k].sum()) for k, c in enumerate(capacities)
            ]
            extra = solve_transport_counts(residual_demands, residual_caps, allowed)
            flow = best + extra
            scale = 1.0  # demand caps stay unscaled; exact budgets bind instead
        else:
            flow = best
            scale = lo
    flow.setflags(write=False)
    return RealisedPlan(subsets=subsets, cells=cells, flow=flow, scale=scale)


def realised_flow_cache_info():
    """Hit/miss statistics of the realised-flow memo (tests use this)."""
    return realised_support_flow.cache_info()


def clear_realised_flow_cache() -> None:
    """Drop every memoized realised flow (tests use this for isolation)."""
    realised_support_flow.cache_clear()
