"""Secrecy capacity bounds for broadcast erasure networks.

These are the information-theoretic ceilings the protocol operates
under; tests verify the implementation never exceeds them (a protocol
"beating" capacity is measuring leakage wrong).

With one-way discussion over a broadcast erasure network (the paper's
setting, building on Wyner [2] and Maurer [3]):

* **Pair-wise**: per x-packet, Alice-Bob can distil secrecy exactly when
  Bob received it and Eve missed it: ``C = (1-p_B) * p_E`` packets of
  secret per transmitted packet.
* **Group**: the group secret is capped by the weakest terminal's
  pair-wise capacity — redistribution cannot create new secrecy (phase 2
  "does not increase the amount of secret information shared by Alice
  with each terminal", §3.2).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["pairwise_secrecy_capacity", "group_secret_upper_bound"]


def pairwise_secrecy_capacity(p_terminal: float, p_eve: float) -> float:
    """Secret packets per transmitted packet for one Alice-terminal pair.

    Args:
        p_terminal: erasure probability Alice -> terminal.
        p_eve: erasure probability Alice -> Eve.
    """
    for name, value in (("p_terminal", p_terminal), ("p_eve", p_eve)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]")
    return (1.0 - p_terminal) * p_eve


def group_secret_upper_bound(
    p_terminals: Sequence[float], p_eve: float, n_packets: int
) -> float:
    """Upper bound on group-secret packets from one leader round.

    The group secret cannot exceed any single terminal's pair-wise
    distillable secrecy with the leader.
    """
    if n_packets < 0:
        raise ValueError("n_packets must be non-negative")
    if not p_terminals:
        return 0.0
    return n_packets * min(
        pairwise_secrecy_capacity(p_t, p_eve) for p_t in p_terminals
    )
