"""Analytic results: the efficiency curves behind Figure 1 and secrecy
capacity bounds for erasure broadcast networks.

See DESIGN.md §7 for the derivation the LP implements.
"""

from repro.theory.bounds import (
    group_secret_upper_bound,
    pairwise_secrecy_capacity,
)
from repro.theory.efficiency import (
    AllocationProfile,
    clear_efficiency_cache,
    efficiency_cache_info,
    group_allocation_profile,
    group_efficiency,
    group_efficiency_infinite,
    group_efficiency_lp,
    unicast_efficiency,
)

__all__ = [
    "unicast_efficiency",
    "group_efficiency",
    "group_efficiency_lp",
    "group_efficiency_infinite",
    "AllocationProfile",
    "group_allocation_profile",
    "efficiency_cache_info",
    "clear_efficiency_cache",
    "pairwise_secrecy_capacity",
    "group_secret_upper_bound",
]
