"""Analytic results: the efficiency curves behind Figure 1 and secrecy
capacity bounds for erasure broadcast networks.

See DESIGN.md §7 for the derivation the LP implements.

:mod:`repro.theory.allocation` complements the fractional LP with the
*realised* side: memoized integral support flows on observed
reception-pattern histograms, which the batched engine uses for honest
per-round accounting.
"""

from repro.theory.allocation import (
    RealisedPlan,
    clear_realised_flow_cache,
    realised_flow_cache_info,
    realised_support_flow,
)
from repro.theory.bounds import (
    group_secret_upper_bound,
    pairwise_secrecy_capacity,
)
from repro.theory.efficiency import (
    AllocationProfile,
    clear_efficiency_cache,
    efficiency_cache_info,
    group_allocation_profile,
    group_efficiency,
    group_efficiency_infinite,
    group_efficiency_lp,
    unicast_efficiency,
)

__all__ = [
    "unicast_efficiency",
    "group_efficiency",
    "group_efficiency_lp",
    "group_efficiency_infinite",
    "AllocationProfile",
    "group_allocation_profile",
    "efficiency_cache_info",
    "clear_efficiency_cache",
    "RealisedPlan",
    "realised_support_flow",
    "realised_flow_cache_info",
    "clear_realised_flow_cache",
    "pairwise_secrecy_capacity",
    "group_secret_upper_bound",
]
