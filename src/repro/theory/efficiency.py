"""Maximum efficiency of group secret agreement (the paper's Figure 1).

Setting: symmetric i.i.d. erasures — Alice transmits N x-packets, each
reaching every terminal and Eve independently with probability ``1-p``.
Efficiency is secret packets divided by transmitted packets, in the
idealised accounting of the figure (x-packets and z-contents count;
identity/feedback control traffic is negligible against 800-bit
payloads).

**Unicast algorithm** (dashed lines): Alice builds a pair-wise secret
with each terminal from the same N x-packets (rate ``p(1-p)`` per
packet), then one-time-pads the ``L``-packet group secret to each of the
``n-1`` terminals separately::

    eff_unicast(n, p) = p(1-p) / (1 + (n-1) p(1-p))  -->  0  as n grows.

**Group algorithm** (solid lines): y-packets decodable by a terminal
subset ``T`` must be supported on packets all of ``T`` received, whose
expected fraction is ``(1-p)^{|T|}``; Eve misses ``p`` of any of them.
Writing ``a_t`` for the number of y-packets allocated to *each* size-t
subset, the secrecy budget inside the intersection of any ``s``
reception sets bounds every allocation that fits inside it::

    sum_t C(n-1-s, t-s) a_t <= p (1-p)^s N          (s = 1..n-1)
    sum_t C(n-1,   t)   a_t <= p (1-p^{n-1}) N      (s = 0: union bound)

Each terminal decodes ``M_i = sum_t C(n-2, t-1) a_t`` y-packets, the
group secret has ``L = min_i M_i`` packets, and phase 2 broadcasts
``M - L`` z-contents, so efficiency is ``L / (N + M - L)`` — a linear
fractional program solved by Dinkelbach iteration over an LP.

Closed forms: ``n = 2`` gives ``p(1-p)`` (no redistribution needed);
as ``n → ∞`` the optimal allocation concentrates at level
``t ≈ (1-p)(n-1)`` and efficiency tends to ``p(1-p) / (1 + p²)`` —
bounded away from zero, the paper's headline contrast with unicast.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import linprog

__all__ = [
    "unicast_efficiency",
    "group_efficiency_lp",
    "group_efficiency_infinite",
    "group_efficiency",
    "AllocationProfile",
    "group_allocation_profile",
    "efficiency_cache_info",
    "clear_efficiency_cache",
]


def _validate(n: int, p: float) -> None:
    if n < 2:
        raise ValueError("need at least two terminals")
    if not 0.0 <= p <= 1.0:
        raise ValueError("erasure probability must be in [0, 1]")


def unicast_efficiency(n: int, p: float) -> float:
    """Efficiency of the unicast strawman (dashed curves in Figure 1)."""
    _validate(n, p)
    rate = p * (1.0 - p)
    return rate / (1.0 + (n - 1) * rate)


def group_efficiency_infinite(p: float) -> float:
    """n -> infinity limit of the group algorithm: ``p(1-p)/(1+p^2)``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("erasure probability must be in [0, 1]")
    return p * (1.0 - p) / (1.0 + p * p)


@dataclass(frozen=True)
class AllocationProfile:
    """The symmetric LP's optimal allocation, normalised per x-packet.

    ``level_rows[t - 1]`` is the number of y-rows allocated to *each*
    terminal subset of size ``t`` (t = 1..n-1), per transmitted
    x-packet.  The batched simulation engine scales these by N and
    clamps them against realised reception pools, reusing one LP solve
    across every round of a scenario (see :mod:`repro.sim`).

    Attributes:
        n: group size (terminals including the leader).
        p: the erasure probability the LP was solved for.
        z_cost_factor: airtime weight of one z-packet in the objective
            denominator (1.0 reproduces the Figure-1 accounting).
        level_rows: per-subset y-rows at each level, per x-packet.
        l_per_packet: L / N at the optimum.
        m_per_packet: M / N at the optimum.
        efficiency: the optimal value ``L / (N + z_cost (M - L))``.
    """

    n: int
    p: float
    z_cost_factor: float
    level_rows: tuple
    l_per_packet: float
    m_per_packet: float
    efficiency: float


@functools.lru_cache(maxsize=4096)
def _solve_group_lp(
    n: int,
    p: float,
    z_cost_factor: float,
    max_iterations: int,
    tol: float,
    max_level: Optional[int] = None,
    support_feasible: bool = False,
    support_rate: Optional[float] = None,
) -> AllocationProfile:
    """Dinkelbach iteration over the level-variable LP (memoized).

    Campaigns evaluate the same ``(n, p)`` grid cells thousands of
    times (allocation planning, figure regeneration, batched scenario
    sweeps), so the solve is cached on its full argument tuple.

    ``max_level`` restricts the allocation to subsets of at most that
    size: estimators with structural blind spots (leave-one-out needs a
    witness outside the subset, k-collusion needs k) cannot certify
    high-level blocks, and planning rows there would waste the budget.

    ``support_feasible`` adds the aggregate disjoint-support
    constraints (see :func:`group_allocation_profile`): the Figure-1
    bound leaves them out, a planner that must *realise* its targets
    needs them.  ``support_rate`` is the certified Eve-miss rate one
    support packet funds under the planned estimator (default ``p``,
    the oracle's rate); weaker estimators certify fewer rows per
    packet, so their allocations need proportionally more support.
    """
    r = n - 1  # receivers
    level_cap = r if max_level is None else min(max_level, r)
    levels = list(range(1, level_cap + 1))
    n_vars = len(levels) + 1
    l_idx = len(levels)

    a_ub = []
    b_ub = []
    # s = 0: all y-packets live inside the union of reception sets.
    row = np.zeros(n_vars)
    for j, t in enumerate(levels):
        row[j] = math.comb(r, t)
    a_ub.append(row)
    b_ub.append(p * (1.0 - p**r))
    # s = 1..r: allocations inside the intersection of s reception sets.
    for s in range(1, r + 1):
        row = np.zeros(n_vars)
        for j, t in enumerate(levels):
            if t >= s:
                row[j] = math.comb(r - s, t - s)
        a_ub.append(row)
        b_ub.append(p * (1.0 - p) ** s)
    if support_feasible:
        # Aggregate support capacity, s = 1..r: every block decodable
        # by >= s receivers draws its (disjoint) support from packets
        # whose reception pattern has size >= s, and each certified row
        # consumes 1/support_rate support packets (the s = 0 union row
        # above is this family's s = 1 member at the oracle's rate p).
        # Without these rows the symmetric optimum can demand more
        # level-t support than the realised pattern histogram holds
        # (Hall's condition for the transportation flow), which is
        # exactly the fractional-LP optimism the realised planner
        # exists to remove.
        rate = p if support_rate is None else support_rate
        for s in range(1, r + 1):
            row = np.zeros(n_vars)
            hit = False
            for j, t in enumerate(levels):
                if t >= s:
                    row[j] = math.comb(r, t)
                    hit = True
            if not hit:
                continue
            mass = sum(
                math.comb(r, k) * (1.0 - p) ** k * p ** (r - k)
                for k in range(s, r + 1)
            )
            a_ub.append(row)
            b_ub.append(rate * mass)
    # Coverage: L <= M_i (symmetric, one row suffices).
    row = np.zeros(n_vars)
    row[l_idx] = 1.0
    for j, t in enumerate(levels):
        row[j] = -math.comb(r - 1, t - 1)
    a_ub.append(row)
    b_ub.append(0.0)
    a_ub = np.array(a_ub)
    b_ub = np.array(b_ub)

    def m_total(a_values: np.ndarray) -> float:
        return float(
            sum(math.comb(r, t) * a_values[j] for j, t in enumerate(levels))
        )

    zc = z_cost_factor
    theta = 0.0
    best_eff = 0.0
    best_x = np.zeros(n_vars)
    for _ in range(max_iterations):
        # maximise L - theta (1 + z_cost (M - L))
        c = np.zeros(n_vars)
        for j, t in enumerate(levels):
            c[j] = theta * zc * math.comb(r, t)
        c[l_idx] = -(1.0 + theta * zc)
        res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
        if not res.success:  # pragma: no cover — always feasible (all-zero)
            break
        l_val = float(res.x[l_idx])
        m_val = m_total(res.x[:l_idx])
        denom = 1.0 + zc * (m_val - l_val)
        eff = 0.0 if denom <= 0 else l_val / denom
        if eff > best_eff:
            best_eff = eff
            best_x = res.x
        if abs(eff - theta) < tol:
            break
        theta = eff
    # Pad the level vector to r entries so consumers can index by subset
    # size regardless of the cap.
    level_rows = [float(v) for v in best_x[:l_idx]] + [0.0] * (r - level_cap)
    return AllocationProfile(
        n=n,
        p=p,
        z_cost_factor=zc,
        level_rows=tuple(level_rows),
        l_per_packet=float(best_x[l_idx]),
        m_per_packet=m_total(best_x[:l_idx]),
        efficiency=best_eff,
    )


def group_allocation_profile(
    n: int,
    p: float,
    z_cost_factor: float = 1.0,
    max_level: Optional[int] = None,
    support_feasible: bool = False,
    support_rate: Optional[float] = None,
) -> AllocationProfile:
    """Optimal symmetric allocation for ``(n, p)`` (memoized LP solve).

    ``max_level`` caps the decodable-subset size the plan may use (see
    :func:`_solve_group_lp`); ``None`` leaves it unrestricted.

    ``support_feasible`` additionally requires the allocation to be
    *realisable with disjoint supports* on a typical reception
    histogram: for every s, blocks decodable by >= s receivers must fit
    (at ``1/support_rate`` support packets per row — ``support_rate``
    defaults to ``p``, the oracle's certified Eve-miss rate) inside the
    expected mass of reception patterns of size >= s.  The Figure-1
    bound omits these rows — Eve's secrecy budget does not need them —
    but a planner whose targets feed an integral support assignment
    does (:mod:`repro.sim.engine` plans with them; the unconstrained
    profile would demand more high-level support than realised rounds
    hold and starve the max-flow).
    """
    _validate(n, p)
    if not z_cost_factor > 0:
        raise ValueError("z_cost_factor must be positive")
    if support_rate is not None and not 0.0 <= support_rate <= 1.0:
        raise ValueError("support_rate must be in [0, 1]")
    degenerate = (
        p in (0.0, 1.0)
        or (max_level is not None and max_level < 1)
        or (support_feasible and support_rate is not None and support_rate <= 0.0)
    )
    if degenerate:
        return AllocationProfile(
            n=n,
            p=p,
            z_cost_factor=z_cost_factor,
            level_rows=tuple(0.0 for _ in range(n - 1)),
            l_per_packet=0.0,
            m_per_packet=0.0,
            efficiency=0.0,
        )
    if max_level is not None and max_level >= n - 1:
        max_level = None  # unrestricted: share the cache entry
    if not support_feasible or (support_rate is not None and support_rate >= p):
        support_rate = None  # oracle-rate planning: share the cache entry
    return _solve_group_lp(
        n, float(p), float(z_cost_factor), 25, 1e-10, max_level,
        bool(support_feasible),
        None if support_rate is None else float(support_rate),
    )


def group_efficiency_lp(
    n: int, p: float, max_iterations: int = 25, tol: float = 1e-10
) -> float:
    """Maximum efficiency of the group algorithm for finite ``n``.

    Solves the linear fractional program described in the module
    docstring via Dinkelbach iteration (each step one LP in the ``n-1``
    level variables plus ``L``).  Solves are memoized on ``(n, p,
    max_iterations, tol)``; see :func:`efficiency_cache_info`.
    """
    _validate(n, p)
    if p in (0.0, 1.0):
        return 0.0
    # Pass max_level positionally: lru_cache keys distinguish omitted
    # defaults from explicit ones, and both entry points must share hits.
    return _solve_group_lp(n, float(p), 1.0, max_iterations, tol, None).efficiency


def efficiency_cache_info():
    """Hit/miss statistics of the memoized efficiency LP solver."""
    return _solve_group_lp.cache_info()


def clear_efficiency_cache() -> None:
    """Drop every memoized LP solve (tests use this for isolation)."""
    _solve_group_lp.cache_clear()


def group_efficiency(n, p: float) -> float:
    """Group-algorithm efficiency; ``n`` may be an int or ``math.inf``."""
    if n == math.inf:
        return group_efficiency_infinite(p)
    n = int(n)
    _validate(n, p)
    if n == 2:
        # Single receiver: its pair-wise secret is the group secret.
        return p * (1.0 - p)
    return group_efficiency_lp(n, p)
