"""Command-line entry point: regenerate the paper's results.

Usage::

    python -m repro.cli figure1
    python -m repro.cli figure2  [--per-n 9] [--full]
    python -m repro.cli headline
    python -m repro.cli quickstart

Each subcommand prints the corresponding table from EXPERIMENTS.md.
The heavy campaigns accept ``--per-n`` to trade completeness for time;
``--full`` runs the paper's entire placement population.
"""

from __future__ import annotations

import argparse
import math
import sys

import numpy as np


def _figure1(args) -> int:
    from repro.analysis import render_figure1_table
    from repro.theory import (
        group_efficiency,
        group_efficiency_infinite,
        unicast_efficiency,
    )

    probs = [round(0.1 * k, 1) for k in range(1, 10)]
    ns = [2, 3, 6, 10]
    group_curves = {n: [group_efficiency(n, p) for p in probs] for n in ns}
    group_curves[math.inf] = [group_efficiency_infinite(p) for p in probs]
    unicast_curves = {n: [unicast_efficiency(n, p) for p in probs] for n in ns}
    print(render_figure1_table(probs, group_curves, unicast_curves))
    return 0


def _campaign(args, group_sizes):
    from repro import SessionConfig, Testbed, TestbedConfig
    from repro.analysis import CampaignConfig, run_campaign
    from repro.core import CombinedEstimator, LeaveOneOutEstimator
    from repro.testbed.estimator import (
        InterferenceAwareEstimator,
        calibrate_min_jam_loss,
    )

    testbed = Testbed(TestbedConfig(interferer_power_dbm=10.0))
    rng = np.random.default_rng(args.seed)
    min_jam_loss = calibrate_min_jam_loss(testbed, rng, trials=150)

    def factory(tb, placement):
        ia = InterferenceAwareEstimator(
            tb.interference,
            tb.config.geometry,
            min_jam_loss,
            candidate_cells=tb.eve_candidate_cells(placement),
        )
        return CombinedEstimator([ia, LeaveOneOutEstimator(rate_margin=0.02)])

    config = CampaignConfig(
        session=SessionConfig(
            n_x_packets=270, payload_bytes=100, secrecy_slack=1,
            z_cost_factor=2.5,
        ),
        seed=args.seed,
        max_placements_per_n=None if args.full else args.per_n,
        group_sizes=group_sizes,
    )
    return run_campaign(testbed, factory, config)


def _figure2(args) -> int:
    from repro.analysis import (
        render_figure2_table,
        render_secrecy_table,
        summarize_reliability,
    )

    result = _campaign(args, tuple(range(3, 9)))
    summaries = [
        summarize_reliability(n, result.reliabilities(n))
        for n in result.group_sizes()
    ]
    print(render_figure2_table(summaries))
    print()
    print(
        render_secrecy_table(
            [result.secrecy_summary(n) for n in result.group_sizes()]
        )
    )
    return 0


def _headline(args) -> int:
    from repro.analysis import render_headline_table

    args.full = True  # only nine placements at n = 8; always run them all
    result = _campaign(args, (8,))
    print(render_headline_table(result.for_n(8)))
    return 0


def _quickstart(args) -> int:
    from repro import (
        BroadcastMedium,
        Eavesdropper,
        IIDLossModel,
        OracleEstimator,
        SessionConfig,
        Terminal,
        run_experiment,
    )

    rng = np.random.default_rng(args.seed)
    names = ["alice", "bob", "calvin"]
    nodes = [Terminal(name=n) for n in names] + [Eavesdropper(name="eve")]
    medium = BroadcastMedium(nodes, IIDLossModel(0.4), rng)
    result = run_experiment(
        medium, names, OracleEstimator(), rng,
        config=SessionConfig(n_x_packets=90, payload_bytes=100),
    )
    print(f"secret: {result.group_secret.shape[0]} packets "
          f"({result.secret_bits} bits)")
    print(f"efficiency {result.efficiency:.4f}, "
          f"reliability {result.reliability:.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seed", type=int, default=2012)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("figure1", help="analytic efficiency curves")
    fig2 = sub.add_parser("figure2", help="testbed reliability campaign")
    fig2.add_argument("--per-n", type=int, default=9)
    fig2.add_argument("--full", action="store_true")
    head = sub.add_parser("headline", help="n=8 efficiency table")
    head.add_argument("--per-n", type=int, default=9)
    head.add_argument("--full", action="store_true")
    sub.add_parser("quickstart", help="minimal three-terminal run")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figure1": _figure1,
        "figure2": _figure2,
        "headline": _headline,
        "quickstart": _quickstart,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
