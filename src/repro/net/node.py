"""Nodes: terminals and eavesdroppers.

A :class:`Node` is a named radio at a position.  :class:`Terminal` keeps
the reception log the protocol feeds on (x-id -> payload per round);
:class:`Eavesdropper` does the same but may listen through *multiple
antennas* (positions) — the paper's §6 threat model — receiving a packet
when any antenna captures it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["Node", "Terminal", "Eavesdropper"]


@dataclass
class Node:
    """A named radio at a 2-D position (metres)."""

    name: str
    position: tuple = (0.0, 0.0)

    def distance_to(self, other_position: tuple) -> float:
        dx = self.position[0] - other_position[0]
        dy = self.position[1] - other_position[1]
        return float(np.hypot(dx, dy))

    def antenna_positions(self) -> list:
        """Positions this node listens from (one, for plain nodes)."""
        return [self.position]


@dataclass
class Terminal(Node):
    """A protocol participant.

    ``received`` maps round id -> {x-id: payload} and is filled in by the
    medium on successful deliveries of X_DATA packets.
    """

    received: dict = field(default_factory=dict)

    def record(self, round_id: int, x_id: int, payload: np.ndarray) -> None:
        self.received.setdefault(round_id, {})[x_id] = payload

    def received_ids(self, round_id: int) -> set:
        return set(self.received.get(round_id, {}))

    def received_payloads(self, round_id: int) -> dict:
        return dict(self.received.get(round_id, {}))

    def clear(self) -> None:
        self.received.clear()


@dataclass
class Eavesdropper(Node):
    """Eve: a passive adversary, possibly with several antennas.

    ``extra_antennas`` lists additional listening positions; a packet is
    captured when *any* antenna receives it.  ``received`` mirrors the
    Terminal log so the exact-leakage engine can consume it.
    """

    extra_antennas: list = field(default_factory=list)
    received: dict = field(default_factory=dict)

    def antenna_positions(self) -> list:
        return [self.position] + list(self.extra_antennas)

    def record(self, round_id: int, x_id: int, payload: Optional[np.ndarray]) -> None:
        self.received.setdefault(round_id, {})[x_id] = payload

    def received_ids(self, round_id: int) -> set:
        return set(self.received.get(round_id, {}))

    def clear(self) -> None:
        self.received.clear()
