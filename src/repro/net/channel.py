"""Per-link packet-erasure processes.

The protocol's behaviour is fully determined by *which packets each
receiver missed*, so channels are modelled at erasure granularity.
Three families cover the evaluation needs:

* :class:`IIDErasureChannel` — the memoryless model used by the paper's
  Figure-1 analysis (every packet lost independently with probability p).
* :class:`GilbertElliottChannel` — two-state bursty losses, used by
  robustness tests: the construction's guarantees are pattern-oblivious,
  so burstiness must not break secrecy (only rates).
* :class:`DeterministicChannel` — scripted loss patterns for exact unit
  tests (e.g. reproducing the paper's worked example verbatim).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

__all__ = [
    "ErasureChannel",
    "IIDErasureChannel",
    "GilbertElliottChannel",
    "DeterministicChannel",
    "PerfectChannel",
]


class ErasureChannel(abc.ABC):
    """A one-way packet-erasure process.

    Instances are stateful (bursty models advance an internal chain), so
    each directed link owns its own channel object.
    """

    @abc.abstractmethod
    def erased(self, rng: np.random.Generator) -> bool:
        """Sample whether the next packet on this link is lost."""

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``count`` successive erasure indicators (True = lost)."""
        return np.array([self.erased(rng) for _ in range(count)], dtype=bool)

    def reset(self) -> None:
        """Return the channel to its initial state (no-op by default)."""


class IIDErasureChannel(ErasureChannel):
    """Memoryless erasures: every packet lost with probability ``p``."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("erasure probability must be in [0, 1]")
        self.p = p

    def erased(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.p)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.random(count) < self.p

    def __repr__(self) -> str:
        return f"IIDErasureChannel(p={self.p})"


class PerfectChannel(IIDErasureChannel):
    """A lossless link (erasure probability zero)."""

    def __init__(self) -> None:
        super().__init__(0.0)

    def __repr__(self) -> str:
        return "PerfectChannel()"


class GilbertElliottChannel(ErasureChannel):
    """Two-state Markov (Gilbert-Elliott) bursty erasure channel.

    The chain alternates between a good state with loss ``p_good`` and a
    bad state with loss ``p_bad``; ``p_g2b``/``p_b2g`` are the per-packet
    transition probabilities.  Steady-state loss rate is
    ``(p_b2g*p_good + p_g2b*p_bad) / (p_g2b + p_b2g)``.
    """

    def __init__(
        self,
        p_g2b: float,
        p_b2g: float,
        p_good: float = 0.0,
        p_bad: float = 1.0,
    ) -> None:
        for name, value in (
            ("p_g2b", p_g2b),
            ("p_b2g", p_b2g),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if p_g2b + p_b2g <= 0:
            raise ValueError("the chain must be able to move between states")
        self.p_g2b = p_g2b
        self.p_b2g = p_b2g
        self.p_good = p_good
        self.p_bad = p_bad
        self._bad = False

    def steady_state_loss(self) -> float:
        denom = self.p_g2b + self.p_b2g
        pi_bad = self.p_g2b / denom
        return pi_bad * self.p_bad + (1 - pi_bad) * self.p_good

    def erased(self, rng: np.random.Generator) -> bool:
        if self._bad:
            if rng.random() < self.p_b2g:
                self._bad = False
        else:
            if rng.random() < self.p_g2b:
                self._bad = True
        p = self.p_bad if self._bad else self.p_good
        return bool(rng.random() < p)

    def reset(self) -> None:
        self._bad = False

    def __repr__(self) -> str:
        return (
            f"GilbertElliottChannel(g2b={self.p_g2b}, b2g={self.p_b2g}, "
            f"p_good={self.p_good}, p_bad={self.p_bad})"
        )


class DeterministicChannel(ErasureChannel):
    """Scripted erasures: packet ``k`` is lost iff ``pattern[k % len]``.

    Unit tests use this to reproduce the paper's worked examples with
    exact reception sets.
    """

    def __init__(self, pattern: Sequence[bool]) -> None:
        if len(pattern) == 0:
            raise ValueError("pattern must be non-empty")
        self.pattern = [bool(b) for b in pattern]
        self._idx = 0

    def erased(self, rng: np.random.Generator) -> bool:  # rng unused, scripted
        result = self.pattern[self._idx % len(self.pattern)]
        self._idx += 1
        return result

    def reset(self) -> None:
        self._idx = 0

    def __repr__(self) -> str:
        return f"DeterministicChannel(len={len(self.pattern)})"
