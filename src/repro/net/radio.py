"""Physical-layer model: path loss, fading, SINR and packet error rate.

The testbed of §4 of the paper runs 802.11g radios at 1 Mbps (the DSSS
DBPSK base rate) over ~4 m line-of-sight links, with WARP interferers
raising the noise floor of jammed cells.  This module reproduces that
stack with textbook models:

* **Log-distance path loss** anchored at the free-space loss of the
  carrier frequency at 1 m; LOS indoor exponent defaults to 2.0.
* **Per-packet Rayleigh fading** (exponential power gain) plus optional
  log-normal shadowing — this is what turns the sharp DSSS waterfall
  curve into the smooth partial-loss regime the protocol feeds on.
* **DBPSK + DSSS error rate**: bit error ``0.5*exp(-PG*sinr)`` with the
  11-chip Barker processing gain, then ``PER = 1-(1-BER)^bits``.

Numbers are deliberately conservative approximations — DESIGN.md §2
records why only the *shape* of the induced erasure processes matters to
the protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RadioConfig",
    "free_space_loss_db",
    "path_loss_db",
    "received_power_dbm",
    "sinr_db",
    "ber_dbpsk",
    "per_from_sinr_db",
    "per_from_sinr_db_array",
    "expected_packet_loss",
    "sample_packet_loss",
]

SPEED_OF_LIGHT = 299_792_458.0


@dataclass(frozen=True)
class RadioConfig:
    """Static PHY parameters shared by every node of a deployment.

    Defaults mirror the paper's testbed: 2.472 GHz (channel 13), 3 dBm
    transmit power, 1 Mbps DSSS, 100-byte protocol payloads.
    """

    frequency_hz: float = 2.472e9
    tx_power_dbm: float = 3.0
    noise_floor_dbm: float = -95.0
    path_loss_exponent: float = 2.0
    reference_distance_m: float = 1.0
    processing_gain: float = 11.0
    bitrate_bps: float = 1e6
    shadowing_sigma_db: float = 2.0
    rayleigh_fading: bool = True
    min_distance_m: float = 0.1

    def reference_loss_db(self) -> float:
        """Free-space loss at the reference distance for this carrier."""
        return free_space_loss_db(self.reference_distance_m, self.frequency_hz)


def free_space_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Friis free-space path loss in dB (distance clamped to 1 cm)."""
    distance_m = max(distance_m, 0.01)
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


def path_loss_db(distance_m: float, config: RadioConfig) -> float:
    """Log-distance path loss: free space to ``d0``, exponent beyond."""
    distance_m = max(distance_m, config.min_distance_m)
    ref = config.reference_loss_db()
    return ref + 10.0 * config.path_loss_exponent * math.log10(
        max(distance_m / config.reference_distance_m, 1e-9)
    )


def received_power_dbm(
    tx_power_dbm: float, distance_m: float, config: RadioConfig
) -> float:
    """Mean received power before fading."""
    return tx_power_dbm - path_loss_db(distance_m, config)


def sinr_db(
    signal_dbm: float, interference_dbm_values, noise_floor_dbm: float
) -> float:
    """Signal over (noise + sum of interference powers), in dB."""
    noise_mw = 10.0 ** (noise_floor_dbm / 10.0)
    interference_mw = sum(10.0 ** (p / 10.0) for p in interference_dbm_values)
    return signal_dbm - 10.0 * math.log10(noise_mw + interference_mw)


def ber_dbpsk(sinr_linear: float, processing_gain: float) -> float:
    """DBPSK bit error rate with DSSS despreading gain."""
    gamma = max(sinr_linear, 0.0) * processing_gain
    return 0.5 * math.exp(-min(gamma, 700.0))


def per_from_sinr_db(
    sinr_value_db: float, packet_bits: int, processing_gain: float = 11.0
) -> float:
    """Packet error rate at a given (post-fading) SINR."""
    sinr_linear = 10.0 ** (sinr_value_db / 10.0)
    ber = ber_dbpsk(sinr_linear, processing_gain)
    if ber <= 0.0:
        return 0.0
    # log1p formulation stays accurate for tiny BER.
    log_success = packet_bits * math.log1p(-min(ber, 1.0 - 1e-15))
    return 1.0 - math.exp(log_success)


def per_from_sinr_db_array(
    sinr_values_db: np.ndarray, packet_bits: int, processing_gain: float = 11.0
) -> np.ndarray:
    """Vectorised :func:`per_from_sinr_db` over an array of SINRs."""
    sinr_linear = 10.0 ** (np.asarray(sinr_values_db, dtype=float) / 10.0)
    gamma = np.minimum(np.maximum(sinr_linear, 0.0) * processing_gain, 700.0)
    ber = 0.5 * np.exp(-gamma)
    log_success = packet_bits * np.log1p(-np.minimum(ber, 1.0 - 1e-15))
    return -np.expm1(log_success)


def expected_packet_loss(
    mean_sinr_db,
    packet_bits: int,
    config: RadioConfig,
    n_fading: int = 256,
    n_shadowing: int = 15,
) -> np.ndarray:
    """Expectation of :func:`sample_packet_loss` by fixed quadrature.

    Integrates the PER waterfall over per-packet Rayleigh fading
    (inverse-CDF midpoint rule on the exponential power gain) and
    log-normal shadowing (Gauss-Hermite), so per-link loss probabilities
    come out analytically instead of by Monte-Carlo link probing.  For a
    monotone integrand bounded by 1 the midpoint rule error is below
    ``1/(2 n_fading)`` — far inside campaign Monte-Carlo noise.

    Args:
        mean_sinr_db: scalar or array of pre-fading mean SINRs.
        packet_bits: bits per packet (PER exponent).
        config: PHY parameters (fading/shadowing switches included).
        n_fading: Rayleigh quadrature nodes (ignored when fading is off).
        n_shadowing: Gauss-Hermite nodes (ignored when sigma is 0).

    Returns:
        Array of expected loss probabilities, shaped like the input.
    """
    offsets = np.zeros(1)
    weights = np.ones(1)
    if config.rayleigh_fading:
        u = (np.arange(n_fading) + 0.5) / n_fading
        gain = -np.log1p(-u)
        offsets = 10.0 * np.log10(np.maximum(gain, 1e-12))
        weights = np.full(n_fading, 1.0 / n_fading)
    if config.shadowing_sigma_db > 0:
        nodes, hermite_w = np.polynomial.hermite.hermgauss(n_shadowing)
        shadow_db = math.sqrt(2.0) * config.shadowing_sigma_db * nodes
        shadow_w = hermite_w / math.sqrt(math.pi)
        offsets = (offsets[:, None] + shadow_db[None, :]).ravel()
        weights = (weights[:, None] * shadow_w[None, :]).ravel()
    sinr = np.asarray(mean_sinr_db, dtype=float)
    faded = sinr[..., None] + offsets
    per = per_from_sinr_db_array(faded, packet_bits, config.processing_gain)
    return per @ weights


def sample_packet_loss(
    mean_sinr_db: float,
    packet_bits: int,
    config: RadioConfig,
    rng: np.random.Generator,
) -> bool:
    """Sample one packet's fate on a link with the given mean SINR.

    Applies per-packet Rayleigh fading (exponential power gain, mean 1)
    and log-normal shadowing to the *signal* term, then flips a coin at
    the resulting PER.  Returns True when the packet is LOST.
    """
    faded_db = mean_sinr_db
    if config.rayleigh_fading:
        gain = rng.exponential(1.0)
        faded_db += 10.0 * math.log10(max(gain, 1e-12))
    if config.shadowing_sigma_db > 0:
        faded_db += rng.normal(0.0, config.shadowing_sigma_db)
    per = per_from_sinr_db(faded_db, packet_bits, config.processing_gain)
    return bool(rng.random() < per)
