"""Packets and their on-air cost model.

Every transmission in the protocol is a :class:`Packet`.  Payload-bearing
packets (x-packets, z-packets) carry a numpy payload; control packets
(feedback reports, combination descriptors, ACKs) carry none but still
cost bits, captured by :attr:`Packet.wire_bytes`.

The paper's efficiency metric divides secret bits by *total bits the
terminals transmitted*, so the cost model matters: we charge every packet
a configurable link-layer header (default 28 bytes: a 24-byte 802.11
MAC header plus a 4-byte FCS; the PLCP preamble is charged by the medium
per transmission attempt) plus its payload or control body.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["PacketKind", "Packet", "DEFAULT_HEADER_BYTES"]

#: 802.11 MAC header + FCS, charged on every packet.
DEFAULT_HEADER_BYTES = 28

_packet_counter = itertools.count()


class PacketKind(enum.Enum):
    """Role of a packet inside the protocol."""

    #: Phase-1 source packet (random payload) — the paper's x-packet.
    X_DATA = "x"
    #: Reception report: bitmap of received x-ids (reliable broadcast).
    FEEDBACK = "feedback"
    #: Combination descriptor: identities only, never contents.
    DESCRIPTOR = "descriptor"
    #: Phase-2 public packet whose *contents* travel — the z-packet.
    Z_CONTENT = "z"
    #: Link-layer acknowledgement for reliable broadcasts.
    ACK = "ack"
    #: Application payload (used by examples, not by the protocol core).
    APP_DATA = "app"


@dataclass
class Packet:
    """One unit of transmission.

    Attributes:
        kind: protocol role, drives accounting breakdowns.
        src: sender node name.
        payload: field-symbol payload for payload-bearing kinds.
        control_bytes: body size for control packets (reports and
            descriptors encode their real serialised size here).
        seq: per-process unique id (monotone), handy for tracing.
        meta: free-form annotations (x-id, round number, ...).
    """

    kind: PacketKind
    src: str
    payload: Optional[np.ndarray] = None
    control_bytes: int = 0
    header_bytes: int = DEFAULT_HEADER_BYTES
    seq: int = field(default_factory=lambda: next(_packet_counter))
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.payload is not None:
            self.payload = np.asarray(self.payload, dtype=np.uint8)
            if self.payload.ndim != 1:
                raise ValueError("packet payloads are 1-D symbol vectors")
        if self.control_bytes < 0 or self.header_bytes < 0:
            raise ValueError("sizes must be non-negative")

    @property
    def body_bytes(self) -> int:
        """Payload or control body size in bytes."""
        if self.payload is not None:
            return int(self.payload.size)
        return self.control_bytes

    @property
    def wire_bytes(self) -> int:
        """Total bytes this packet occupies on the air per attempt."""
        return self.body_bytes + self.header_bytes

    @property
    def wire_bits(self) -> int:
        return 8 * self.wire_bytes

    def __repr__(self) -> str:
        return (
            f"Packet(kind={self.kind.value}, src={self.src!r}, "
            f"bytes={self.wire_bytes}, seq={self.seq})"
        )
