"""Wireless broadcast-network substrate.

The protocol consumes a single abstraction: *a broadcast medium with
per-receiver erasures*.  This package provides it at two fidelity levels:

* **Abstract** — i.i.d. or bursty (Gilbert-Elliott) per-link erasure
  processes (:mod:`repro.net.channel`), used by unit tests, examples and
  the Figure-1 validation runs.
* **Physical** — an SINR-driven model (:mod:`repro.net.radio`) with
  log-distance path loss, per-packet Rayleigh fading and external
  interference, used by the testbed deployment of
  :mod:`repro.testbed` to reproduce Figure 2.

:class:`repro.net.medium.BroadcastMedium` delivers packets from one node
to every other node according to the configured loss model, while
:class:`repro.net.trace.TransmissionLedger` accounts every bit that goes
on the air — the denominator of the paper's efficiency metric.
"""

from repro.net.channel import (
    DeterministicChannel,
    ErasureChannel,
    GilbertElliottChannel,
    IIDErasureChannel,
    PerfectChannel,
)
from repro.net.medium import BroadcastMedium, IIDLossModel, LossModel, MatrixLossModel
from repro.net.node import Eavesdropper, Node, Terminal
from repro.net.packet import Packet, PacketKind
from repro.net.radio import RadioConfig, path_loss_db, per_from_sinr_db, sinr_db
from repro.net.reliable import ReliableBroadcastResult, reliable_broadcast
from repro.net.trace import TransmissionLedger

__all__ = [
    "ErasureChannel",
    "IIDErasureChannel",
    "GilbertElliottChannel",
    "DeterministicChannel",
    "PerfectChannel",
    "BroadcastMedium",
    "LossModel",
    "IIDLossModel",
    "MatrixLossModel",
    "Node",
    "Terminal",
    "Eavesdropper",
    "Packet",
    "PacketKind",
    "RadioConfig",
    "path_loss_db",
    "sinr_db",
    "per_from_sinr_db",
    "reliable_broadcast",
    "ReliableBroadcastResult",
    "TransmissionLedger",
]
