"""The broadcast medium: one transmission, many receivers.

:class:`BroadcastMedium` owns the node set, a :class:`LossModel`, the
shared RNG and the :class:`~repro.net.trace.TransmissionLedger`.  A call
to :meth:`BroadcastMedium.transmit` charges the ledger once and samples,
independently per listener (and per eavesdropper antenna), whether the
packet arrived — the defining property of a wireless broadcast channel
that the whole protocol exploits.

Loss models are strategies so the same medium drives both the abstract
(i.i.d. links) and the physical (SINR + interference) deployments.
"""

from __future__ import annotations

import abc
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.net.channel import ErasureChannel
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.trace import TransmissionLedger

__all__ = ["LossModel", "IIDLossModel", "MatrixLossModel", "ChannelLossModel", "BroadcastMedium"]


class LossModel(abc.ABC):
    """Decides the fate of a packet on a directed (src, antenna) link."""

    @abc.abstractmethod
    def lost_at(
        self,
        src: Node,
        position: tuple,
        dst: Node,
        packet: Packet,
        slot: int,
        rng: np.random.Generator,
    ) -> bool:
        """True when the copy aimed at ``position`` of ``dst`` is lost."""

    def lost(
        self, src: Node, dst: Node, packet: Packet, slot: int, rng: np.random.Generator
    ) -> bool:
        """True when *no* antenna of ``dst`` captures the packet."""
        return all(
            self.lost_at(src, pos, dst, packet, slot, rng)
            for pos in dst.antenna_positions()
        )


class IIDLossModel(LossModel):
    """Every link loses every packet independently with probability p."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        self.p = p

    def lost_at(self, src, position, dst, packet, slot, rng) -> bool:
        return bool(rng.random() < self.p)


class MatrixLossModel(LossModel):
    """Per-directed-link loss probabilities with a default fallback.

    Args:
        probabilities: mapping (src_name, dst_name) -> loss probability.
        default: probability for unlisted links.
    """

    def __init__(self, probabilities: Mapping, default: float = 0.0) -> None:
        for value in list(probabilities.values()) + [default]:
            if not 0.0 <= value <= 1.0:
                raise ValueError("loss probabilities must be in [0, 1]")
        self.probabilities = dict(probabilities)
        self.default = default

    def lost_at(self, src, position, dst, packet, slot, rng) -> bool:
        p = self.probabilities.get((src.name, dst.name), self.default)
        return bool(rng.random() < p)


class ChannelLossModel(LossModel):
    """Per-directed-link stateful erasure channels (e.g. Gilbert-Elliott).

    Args:
        channels: mapping (src_name, dst_name) -> ErasureChannel.
        default_factory: builds a channel for unlisted links on demand.
    """

    def __init__(self, channels: Mapping, default_factory=None) -> None:
        self.channels = dict(channels)
        self.default_factory = default_factory

    def lost_at(self, src, position, dst, packet, slot, rng) -> bool:
        key = (src.name, dst.name)
        channel: Optional[ErasureChannel] = self.channels.get(key)
        if channel is None:
            if self.default_factory is None:
                return False
            channel = self.default_factory()
            self.channels[key] = channel
        return channel.erased(rng)


class BroadcastMedium:
    """A shared wireless broadcast domain.

    Args:
        nodes: every radio in the domain (terminals and eavesdroppers).
        loss_model: the erasure strategy.
        rng: source of all randomness (inject for reproducibility).
        ledger: transmission accounting; a fresh one is created if absent.
    """

    def __init__(
        self,
        nodes: Iterable[Node],
        loss_model: LossModel,
        rng: np.random.Generator,
        ledger: Optional[TransmissionLedger] = None,
    ) -> None:
        self.nodes: dict = {}
        for node in nodes:
            if node.name in self.nodes:
                raise ValueError(f"duplicate node name {node.name!r}")
            self.nodes[node.name] = node
        self.loss_model = loss_model
        self.rng = rng
        self.ledger = ledger if ledger is not None else TransmissionLedger()
        #: Monotone transmission counter; loss models with time-varying
        #: state (rotating interference patterns) key off it.
        self.time = 0

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def advance(self, slots: int) -> None:
        """Let time pass without transmitting (backoff, idle waiting).

        Only transmitted bits cost anything in the paper's efficiency
        metric, so waiting out an interference dwell before a retry is
        free — exactly what a CSMA backoff would do.
        """
        if slots < 0:
            raise ValueError("cannot advance time backwards")
        self.time += slots

    def transmit(
        self,
        src_name: str,
        packet: Packet,
        slot: Optional[int] = None,
        round_id: int = 0,
        charge: bool = True,
    ) -> set:
        """Broadcast one packet; returns the names of nodes that got it.

        Reception is sampled independently for every other node (per
        antenna for multi-antenna eavesdroppers).  ``slot`` overrides the
        medium's internal clock (tests use this); by default the clock
        advances by one per transmission attempt, which is what rotates
        the interference schedule.  ``charge=False`` lets callers model
        free retransmissions in what-if analyses; normal protocol code
        always charges.
        """
        if src_name not in self.nodes:
            raise KeyError(f"unknown transmitter {src_name!r}")
        src = self.nodes[src_name]
        effective_slot = self.time if slot is None else slot
        if slot is None:
            self.time += 1
        if charge:
            self.ledger.charge(packet, round_id=round_id)
        received = set()
        for name, node in self.nodes.items():
            if name == src_name:
                continue
            if not self.loss_model.lost(src, node, packet, effective_slot, self.rng):
                received.add(name)
        return received

    def delivery_probability_estimate(
        self, src_name: str, dst_name: str, packet: Packet, slot: int, trials: int = 200
    ) -> float:
        """Monte-Carlo estimate of one link's delivery rate (diagnostics).

        Uses a forked RNG so it never perturbs the simulation stream.
        """
        src = self.nodes[src_name]
        dst = self.nodes[dst_name]
        probe_rng = np.random.default_rng(self.rng.integers(0, 2**63))
        hits = sum(
            0 if self.loss_model.lost(src, dst, packet, slot, probe_rng) else 1
            for _ in range(trials)
        )
        return hits / trials
