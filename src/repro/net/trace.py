"""Exact accounting of every bit the terminals put on the air.

The paper's efficiency metric is ``secret bits / transmitted bits``, so
the denominator must include *everything*: x-packets, feedback reports,
combination descriptors, z-contents, every retransmission of a reliable
broadcast, and the ACKs that drive those retransmissions.

:class:`TransmissionLedger` records one entry per transmission *attempt*
and offers per-kind and per-node breakdowns that the benchmarks print.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.net.packet import Packet, PacketKind

__all__ = ["LedgerEntry", "TransmissionLedger"]

#: PLCP preamble + header transmitted at the base rate before every
#: attempt (long preamble: 144 + 48 bits).
PLCP_OVERHEAD_BITS = 192


@dataclass(frozen=True)
class LedgerEntry:
    """One transmission attempt."""

    src: str
    kind: PacketKind
    bits: int
    round_id: int


@dataclass
class TransmissionLedger:
    """Accumulates transmission attempts and summarises them.

    Args:
        count_plcp: include the PLCP preamble bits per attempt (defaults
            to True — the paper's 1 Mbps airtime includes it).
    """

    count_plcp: bool = True
    entries: list = field(default_factory=list)

    def charge(self, packet: Packet, round_id: int = 0) -> int:
        """Record one attempt of ``packet``; returns bits charged."""
        bits = packet.wire_bits + (PLCP_OVERHEAD_BITS if self.count_plcp else 0)
        self.entries.append(
            LedgerEntry(src=packet.src, kind=packet.kind, bits=bits, round_id=round_id)
        )
        return bits

    # -- summaries -----------------------------------------------------

    @property
    def total_bits(self) -> int:
        return sum(e.bits for e in self.entries)

    @property
    def total_attempts(self) -> int:
        return len(self.entries)

    def bits_by_kind(self) -> dict:
        out: dict = defaultdict(int)
        for e in self.entries:
            out[e.kind] += e.bits
        return dict(out)

    def bits_by_node(self) -> dict:
        out: dict = defaultdict(int)
        for e in self.entries:
            out[e.src] += e.bits
        return dict(out)

    def bits_by_round(self) -> dict:
        out: dict = defaultdict(int)
        for e in self.entries:
            out[e.round_id] += e.bits
        return dict(out)

    def airtime_seconds(self, bitrate_bps: float) -> float:
        """Wall-clock airtime at a fixed bitrate (1 Mbps in the paper)."""
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        return self.total_bits / bitrate_bps

    def merge(self, other: "TransmissionLedger") -> None:
        """Fold another ledger's entries into this one."""
        self.entries.extend(other.entries)

    def reset(self) -> None:
        self.entries.clear()
