"""Reliable broadcast: retransmit until every target acknowledges.

The paper distinguishes plain transmissions (broadcast once, lossy) from
*reliable* broadcasts ("it ensures that all other terminals receive it,
e.g., through acknowledgments and retransmissions").  Every control
message — feedback reports, combination descriptors, z-contents — is
reliably broadcast, and the paper conservatively assumes Eve hears all of
them; callers enforce that assumption at the protocol layer.

Cost model: each attempt is a full transmission (charged to the ledger);
each *newly satisfied* target sends one ACK (charged).  ACKs themselves
are assumed delivered — they are short and 802.11 protects them with the
most robust modulation; the retry loop therefore terminates exactly when
every target has a copy.  A ``max_attempts`` guard turns pathological
channels (a target with loss probability 1) into a clean error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.net.medium import BroadcastMedium
from repro.net.packet import Packet, PacketKind

__all__ = ["ReliableBroadcastResult", "reliable_broadcast", "ACK_BODY_BYTES"]

#: 802.11 ACK frame body (14 bytes) — charged per successful target.
ACK_BODY_BYTES = 14


class ReliableBroadcastError(RuntimeError):
    """Raised when a target stays unreachable within ``max_attempts``."""


@dataclass(frozen=True)
class ReliableBroadcastResult:
    """Outcome of one reliable broadcast.

    Attributes:
        attempts: number of transmissions of the packet itself.
        receivers_per_attempt: every node (including eavesdroppers) that
            captured each attempt, in order — the protocol layer uses
            this to update Eve's log faithfully rather than assuming.
        satisfied: the target set, all of which now hold the packet.
    """

    attempts: int
    receivers_per_attempt: tuple
    satisfied: frozenset


def reliable_broadcast(
    medium: BroadcastMedium,
    src_name: str,
    packet: Packet,
    targets: Iterable[str],
    slot_of_attempt: Optional[Callable[[int], int]] = None,
    round_id: int = 0,
    max_attempts: int = 200,
    backoff_slots: int = 0,
) -> ReliableBroadcastResult:
    """Broadcast ``packet`` until every node in ``targets`` has received it.

    Args:
        medium: the broadcast domain.
        src_name: transmitting node.
        packet: the packet (charged once per attempt).
        targets: node names that must receive the packet (Eve is never a
            target but may overhear any attempt).
        slot_of_attempt: maps attempt index (0-based) to the interference
            slot in force.  By default the medium's own clock is used, so
            time advances and the noise pattern rotates across retries.
        round_id: ledger annotation.
        max_attempts: safety bound.
        backoff_slots: idle slots inserted before each retry.  Under a
            rotating interference schedule, retrying into the same dwell
            is wasted airtime; backing off (free in the bit-count
            efficiency metric, like a CSMA backoff) lets the noise
            pattern move on.  Ignored when ``slot_of_attempt`` is given.

    Returns:
        :class:`ReliableBroadcastResult`.

    Raises:
        ReliableBroadcastError: when targets remain after max_attempts.
    """
    pending = set(targets)
    pending.discard(src_name)
    receivers_log = []
    attempts = 0
    all_targets = frozenset(t for t in targets if t != src_name)
    while pending:
        if attempts >= max_attempts:
            raise ReliableBroadcastError(
                f"{sorted(pending)} unreachable after {max_attempts} attempts"
            )
        if attempts > 0 and backoff_slots > 0 and slot_of_attempt is None:
            medium.advance(backoff_slots)
        slot = slot_of_attempt(attempts) if slot_of_attempt else None
        got = medium.transmit(src_name, packet, slot=slot, round_id=round_id)
        receivers_log.append(frozenset(got))
        newly = pending & got
        for name in newly:
            ack = Packet(
                kind=PacketKind.ACK,
                src=name,
                control_bytes=ACK_BODY_BYTES,
                header_bytes=0,
            )
            medium.ledger.charge(ack, round_id=round_id)
        pending -= newly
        attempts += 1
    return ReliableBroadcastResult(
        attempts=attempts,
        receivers_per_attempt=tuple(receivers_log),
        satisfied=all_targets,
    )
