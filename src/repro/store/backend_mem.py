"""The in-memory backend: an object store with conditional puts.

This backend models the cloud object store (S3 / GCS / MinIO) a
no-shared-filesystem fleet would actually run on, using the only two
coordination primitives such stores offer:

* ``If-None-Match: *`` — create the object only if it does not exist
  (the test-and-set behind lease *acquisition*);
* ``If-Match: <etag>`` — replace/delete only if the object is still the
  exact version previously read (the compare-and-swap behind heartbeat,
  release, and expiry *break*).

Everything else is built on those two: a shard append is a
read-modify-``If-Match``-put retry loop; breaking an expired lease
reads the lease, judges its age, and deletes **conditionally on the
etag it read** — so a lease heartbeated between the observation and the
delete has a new etag and the break fails, exactly the guarantee the
filesystem backend needs a breaker-lock dance to approximate.

**Clock domain.**  The store carries its own clock — monotonic, plus an
offset that tests move with :meth:`MemoryObjectStore.advance` — and
heartbeats are stamped when the *store* executes the put (after any
injected latency), not when the worker sent it.  Workers' wall clocks
never appear, so the conformance suite's clock-skew clauses hold by
construction, and expiry scenarios are driven by advancing the store's
clock instead of sleeping.

**Fault hooks.**  ``latency`` delays every operation (widening race
windows the conformance races probe); ``before_op`` sees every
``(op, path)`` before it executes and may raise to simulate an outage
or kill a request mid-flight.  Both are per-store and injectable at any
point in a test.

Stores live in a process-global registry keyed by name (``mem:ci``
opens the same store everywhere in the process), because URI round-trips
through runner plumbing must land on the same object graph.  The
registry — like the store — does not survive the process: ``mem:`` is
for tests, drills, and ephemeral fleets that export durable results via
:func:`repro.store.backend.copy_store`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.store.backend import (
    LeaseBackend,
    LeaseView,
    StoreBackend,
    check_key,
    check_name,
)
from repro.store.codec import check_codec, decode_frames, encode_frames, scan_frames

__all__ = ["MemoryLeaseBackend", "MemoryObjectStore", "MemoryStoreBackend"]

_REGISTRY: Dict[str, "MemoryStoreBackend"] = {}
_REGISTRY_LOCK = threading.Lock()


@dataclass(frozen=True)
class _Object:
    etag: str
    payload: str


class PreconditionFailed(Exception):
    """A conditional put/delete lost its race (stale etag or existing
    object); the caller re-reads and retries or gives up, S3-style."""


class MemoryObjectStore:
    """Versioned string objects with conditional puts, under one lock.

    The lock makes each *single* operation atomic — the store is linear-
    izable, like the real thing.  It deliberately does **not** make
    read-modify-write sequences atomic; callers get no more than etags
    give them, which is the point of the emulation.
    """

    def __init__(self) -> None:
        self._objects: Dict[str, _Object] = {}
        self._lock = threading.RLock()
        self._etag_counter = 0
        self._clock_offset = 0.0
        #: Seconds of simulated service latency per operation.
        self.latency = 0.0
        #: Fault hook: called with (op, path) before each operation;
        #: raise to simulate an outage / dropped request.
        self.before_op: Optional[Callable[[str, str], None]] = None

    # -- clock -------------------------------------------------------------

    def now(self) -> float:
        """The store's clock: monotonic + test-controlled offset."""
        with self._lock:
            return time.monotonic() + self._clock_offset

    def advance(self, seconds: float) -> None:
        """Advance the store's clock (expiry tests, no sleeping)."""
        if seconds < 0:
            raise ValueError("the store clock never runs backwards")
        with self._lock:
            self._clock_offset += seconds

    # -- primitives --------------------------------------------------------

    def _enter(self, op: str, path: str) -> None:
        if self.latency > 0:
            time.sleep(self.latency)
        if self.before_op is not None:
            self.before_op(op, path)

    def get(self, path: str) -> Optional[Tuple[str, str]]:
        """(etag, payload) of the object, or None when absent."""
        self._enter("get", path)
        with self._lock:
            obj = self._objects.get(path)
            return None if obj is None else (obj.etag, obj.payload)

    def list_prefix(self, prefix: str) -> List[str]:
        self._enter("list", prefix)
        with self._lock:
            return sorted(p for p in self._objects if p.startswith(prefix))

    def put(
        self,
        path: str,
        payload: str,
        if_match: Optional[str] = None,
        if_none_match: bool = False,
    ) -> str:
        """Write the object; returns its new etag.

        ``if_none_match=True`` → create-only (fails if the object
        exists); ``if_match=etag`` → replace-only-if-unchanged.  A
        failed precondition raises :class:`PreconditionFailed` without
        touching the object.
        """
        self._enter("put", path)
        with self._lock:
            current = self._objects.get(path)
            if if_none_match and current is not None:
                raise PreconditionFailed(f"object exists: {path}")
            if if_match is not None and (
                current is None or current.etag != if_match
            ):
                raise PreconditionFailed(f"etag mismatch: {path}")
            self._etag_counter += 1
            etag = f"v{self._etag_counter:x}"
            self._objects[path] = _Object(etag=etag, payload=payload)
            return etag

    def delete(self, path: str, if_match: Optional[str] = None) -> bool:
        """Remove the object; True iff something was removed.

        With ``if_match``, removal happens only while the object still
        carries that etag (:class:`PreconditionFailed` otherwise) — the
        compare-and-swap the lease break is built on.
        """
        self._enter("delete", path)
        with self._lock:
            current = self._objects.get(path)
            if current is None:
                return False
            if if_match is not None and current.etag != if_match:
                raise PreconditionFailed(f"etag mismatch: {path}")
            del self._objects[path]
            return True


class MemoryStoreBackend(StoreBackend):
    """Records, documents, and leases over a :class:`MemoryObjectStore`.

    ``codec`` picks the record layout of *new* shard objects: ``jsonl``
    (newline-terminated lines, the historical form) or ``binary`` (the
    length-prefixed CRC frames of :mod:`repro.store.codec`).  Object
    bodies here are strings, so a binary shard's frame bytes ride as
    their latin-1 text — the lossless bytes↔str carrier — emulating
    the byte bodies a real object store holds.  Reads sniff each
    shard's layout from its leading magic (a JSON record line can
    never start with the frame magic), so shards of both layouts
    coexist and reopen under any codec.
    """

    scheme = "mem"

    def __init__(self, name: str = "default", codec: str = "jsonl") -> None:
        self.name = check_name(name)
        self.codec = check_codec(codec)
        self.objects = MemoryObjectStore()
        self._leases = MemoryLeaseBackend(self.objects)

    @classmethod
    def named(
        cls,
        name: str,
        create: bool = True,
        codec: Optional[str] = None,
    ) -> "MemoryStoreBackend":
        """The process-global store registered under ``name``.

        ``mem:`` URIs resolve here, so every component of a drill that
        opens ``mem:ci`` shares one object graph.  ``create=False``
        requires the name to be registered already (read-only status
        views must not conjure empty stores).  An explicit ``codec``
        on an already-registered name must agree with the registered
        store's — the name denotes *one* store, and silently handing
        back a different write layout would make ``?codec=`` a no-op.
        """
        name = check_name(name or "default")
        with _REGISTRY_LOCK:
            backend = _REGISTRY.get(name)
            if backend is None:
                if not create:
                    raise FileNotFoundError(f"no mem: store named {name!r}")
                backend = cls(name, codec=codec or "jsonl")
                _REGISTRY[name] = backend
            elif codec is not None and codec != backend.codec:
                raise ValueError(
                    f"mem: store {name!r} is registered with codec "
                    f"{backend.codec!r}; reopen without ?codec= or "
                    "discard it first"
                )
            return backend

    @classmethod
    def discard(cls, name: str) -> None:
        """Drop a registered store (test isolation between cases)."""
        with _REGISTRY_LOCK:
            _REGISTRY.pop(name, None)

    @property
    def uri(self) -> str:
        if self.codec != "jsonl":
            return f"mem:{self.name}?codec={self.codec}"
        return f"mem:{self.name}"

    # -- records -----------------------------------------------------------

    #: Binary shards are sniffed by the frame magic riding as latin-1
    #: text; a JSONL shard's first byte is always ``{`` (strict-JSON
    #: object records), so the prefix is unambiguous.
    _BINARY_PREFIX = "RB"

    def _shard(self, key: str) -> str:
        return f"records/{check_key(key)}"

    def _extended(self, payload: Optional[str], lines: Sequence[str]) -> str:
        """The shard body with ``lines`` appended in its own layout.

        An existing shard keeps its layout (sealing any torn trailer
        first — an injected fault may have left a partial line or a
        half frame); a fresh shard uses the store codec.
        """
        if payload is None:
            binary = self.codec == "binary"
            payload = ""
        else:
            binary = payload.startswith(self._BINARY_PREFIX)
        if binary:
            buf = payload.encode("latin-1")
            _, good = scan_frames(buf)
            return (buf[:good] + encode_frames(lines)).decode("latin-1")
        if payload and not payload.endswith("\n"):
            payload += "\n"
        return payload + "".join(line + "\n" for line in lines)

    def _append_lines(self, key: str, lines: Sequence[str]) -> None:
        """Read-modify-conditional-put append; retries lost races.

        The retry loop is what an S3 "append" actually is: read the
        shard (noting its etag), add the lines, put back with
        ``If-Match``.  A concurrent appender changes the etag and this
        writer simply re-reads — no line is ever lost or doubled.
        """
        path = self._shard(key)
        while True:
            current = self.objects.get(path)
            try:
                if current is None:
                    self.objects.put(
                        path, self._extended(None, lines), if_none_match=True
                    )
                else:
                    etag, payload = current
                    self.objects.put(
                        path, self._extended(payload, lines), if_match=etag
                    )
            except PreconditionFailed:
                continue
            return

    def append_record(self, key: str, line: str) -> None:
        self._append_lines(key, [line])

    def append_batch(self, items: Sequence[Tuple[str, str]]) -> None:
        """One conditional put per shard instead of one per record."""
        grouped: Dict[str, List[str]] = {}
        for key, line in items:
            grouped.setdefault(key, []).append(line)
        for key, lines in grouped.items():
            self._append_lines(key, lines)

    def read_records(self, key: str) -> List[str]:
        found = self.objects.get(self._shard(key))
        if found is None:
            return []
        _, payload = found
        if payload.startswith(self._BINARY_PREFIX):
            return [
                line
                for line in decode_frames(payload.encode("latin-1"))
                if line.strip()
            ]
        lines: List[str] = []
        for raw in payload.splitlines(keepends=True):
            if not raw.endswith("\n"):
                break  # torn trailer: the write never completed
            raw = raw.strip()
            if raw:
                lines.append(raw)
        return lines

    def record_keys(self) -> List[str]:
        prefix = "records/"
        return [p[len(prefix):] for p in self.objects.list_prefix(prefix)]

    # -- documents ---------------------------------------------------------

    def put_doc(self, name: str, payload: str) -> None:
        # An unconditional put is already atomic whole-object
        # replacement — the manifest save's temp+rename, for free.
        self.objects.put(f"docs/{check_name(name)}", payload)

    def get_doc(self, name: str) -> Optional[str]:
        found = self.objects.get(f"docs/{check_name(name)}")
        return None if found is None else found[1]

    def list_docs(self) -> List[str]:
        prefix = "docs/"
        return [p[len(prefix):] for p in self.objects.list_prefix(prefix)]

    # -- leases ------------------------------------------------------------

    @property
    def leases(self) -> "MemoryLeaseBackend":
        return self._leases


class MemoryLeaseBackend(LeaseBackend):
    """Leases as etag-versioned objects; every mutation is a CAS."""

    def __init__(self, objects: MemoryObjectStore) -> None:
        self.objects = objects

    def _path(self, namespace: str, key: str) -> str:
        return f"leases/{check_name(namespace)}/{check_key(key)}"

    def _payload(self, owner: str) -> str:
        return json.dumps(
            {"owner": owner, "heartbeat": self.objects.now()},
            separators=(",", ":"),
        )

    def _parse(self, payload: str) -> LeaseView:
        try:
            data = json.loads(payload)
            return LeaseView(
                owner=str(data["owner"]), heartbeat=float(data["heartbeat"])
            )
        except (ValueError, KeyError, TypeError):
            # Unreadable lease (fault-injected garbage): held by an
            # unknown peer as of "now" — never treated as free.
            return LeaseView(owner=None, heartbeat=self.objects.now())

    def now(self) -> float:
        return self.objects.now()

    def acquire(self, namespace: str, key: str, owner: str) -> bool:
        try:
            self.objects.put(
                self._path(namespace, key),
                self._payload(owner),
                if_none_match=True,
            )
        except PreconditionFailed:
            return False
        return True

    def get(self, namespace: str, key: str) -> Optional[LeaseView]:
        found = self.objects.get(self._path(namespace, key))
        return None if found is None else self._parse(found[1])

    def heartbeat(self, namespace: str, key: str, owner: str) -> bool:
        path = self._path(namespace, key)
        found = self.objects.get(path)
        if found is None:
            return False
        etag, payload = found
        if self._parse(payload).owner != owner:
            return False
        try:
            self.objects.put(path, self._payload(owner), if_match=etag)
        except PreconditionFailed:
            return False  # broken and possibly re-claimed under us
        return True

    def release(self, namespace: str, key: str, owner: str) -> bool:
        path = self._path(namespace, key)
        found = self.objects.get(path)
        if found is None:
            return False
        etag, payload = found
        if self._parse(payload).owner != owner:
            return False
        try:
            return self.objects.delete(path, if_match=etag)
        except PreconditionFailed:
            return False

    def break_expired(self, namespace: str, key: str, timeout: float) -> bool:
        path = self._path(namespace, key)
        found = self.objects.get(path)
        if found is None:
            return False
        etag, payload = found
        if self.objects.now() - self._parse(payload).heartbeat < timeout:
            return False
        try:
            # Conditional on the etag whose age was judged: a heartbeat
            # landing in between gives the lease a new etag and this
            # delete fails instead of killing a live lease.
            return self.objects.delete(path, if_match=etag)
        except PreconditionFailed:
            return False

    def age_lease(self, namespace: str, key: str, seconds: float) -> bool:
        path = self._path(namespace, key)
        while True:
            found = self.objects.get(path)
            if found is None:
                return False
            etag, payload = found
            view = self._parse(payload)
            if view.owner is None:
                return False
            aged = json.dumps(
                {"owner": view.owner, "heartbeat": view.heartbeat - seconds},
                separators=(",", ":"),
            )
            try:
                self.objects.put(path, aged, if_match=etag)
            except PreconditionFailed:
                continue  # concurrent heartbeat: re-read and re-age
            return True
