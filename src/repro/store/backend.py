"""Pluggable storage backends: the interface the store contract rides on.

PR 4/5 built the campaign store and work queue directly on a shared
POSIX filesystem (fsynced JSONL shards, ``O_EXCL`` lease files).  This
module extracts the *contract* those mechanisms implement into two
small abstract interfaces, so a fleet can run with no shared
filesystem at all:

* :class:`StoreBackend` — durable record/document storage: append-only
  record lines per shard key (the completion marker), atomic
  whole-document replacement (sweep manifests), key listing.
* :class:`LeaseBackend` — the work queue's claim primitive: atomic
  test-and-set acquisition, owner-guarded heartbeat/release, and an
  expiry *break* that re-judges lease age at removal time so a stale
  observation can never kill a live peer's lease.

Three implementations ship (one module each):

=========  =======================  ==========================================
scheme     module                   mechanism
=========  =======================  ==========================================
``file:``  ``repro.store.backend_fs``      fsynced JSONL shards + ``O_EXCL``
                                           lease files (the PR 4/5 layout,
                                           byte-identical)
``sqlite:`` ``repro.store.backend_sqlite`` one transactional database file;
                                           leases are compare-and-swap rows
``mem:``   ``repro.store.backend_mem``     in-process object store emulating
                                           S3-style conditional puts
                                           (ETag / if-match), with injectable
                                           latency and fault hooks
=========  =======================  ==========================================

Backends are selected by URI via :func:`open_store` (``file:/dir``,
``sqlite:/path.db``, ``mem:name``; a bare path means ``file:``).  The
semantics every backend must honour — torn-write tolerance,
last-record-wins dedupe, single-winner claims, expiry judged only in
the backend's **own clock domain** — are pinned by the parametrized
conformance suite in ``tests/store/conformance/``: a new backend is
"implement these two interfaces and go green", not re-derive the
crash-safety argument.
"""

from __future__ import annotations

import os
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union

from repro.store.codec import check_codec

if TYPE_CHECKING:
    from repro.store.store import CampaignStore

__all__ = [
    "LeaseBackend",
    "LeaseView",
    "StoreBackend",
    "copy_store",
    "open_backend",
    "open_store",
]

#: Shard keys are content-hash hex digests (see repro.store.fingerprint);
#: every backend validates against this before touching storage, so a
#: malformed key can never escape into a path, SQL value, or object name.
KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")

#: Lease namespaces and document names share the manifest-name alphabet.
NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,100}$")

_URI_RE = re.compile(r"^([A-Za-z][A-Za-z0-9+.-]*):(.*)$", re.DOTALL)


def check_key(key: str) -> str:
    if not KEY_RE.match(key):
        raise ValueError(f"malformed shard key {key!r}")
    return key


def check_name(name: str) -> str:
    if not NAME_RE.match(name):
        raise ValueError(f"malformed document/namespace name {name!r}")
    return name


@dataclass(frozen=True)
class LeaseView:
    """A point-in-time read of one lease, in the backend's clock domain.

    Attributes:
        owner: the claiming worker's id, or None when the record was
            unreadable (a torn mid-write observation — treated as
            *held* by an unknown peer, never as free).
        heartbeat: the last heartbeat instant, stamped by the
            **backend's** clock (filesystem mtime, SQL clock, memory
            clock) — compare only against :meth:`LeaseBackend.now`,
            never against this process's wall clock.
    """

    owner: Optional[str]
    heartbeat: float


class LeaseBackend(ABC):
    """Atomic lease claim/heartbeat/release/break over (namespace, key).

    The conformance clauses (``tests/store/conformance/``):

    * :meth:`acquire` is a test-and-set — exactly one of any number of
      racers wins a free key, and acquiring a held key fails without
      touching it.
    * :meth:`heartbeat` and :meth:`release` succeed only for the
      current owner (a reborn worker with a recycled identity must use
      a fresh nonce — see :func:`repro.store.queue.default_owner`).
    * :meth:`break_expired` removes the lease only if its age —
      *re-judged atomically at removal time, in the backend's own clock
      domain* — has reached ``timeout``.  A lease refreshed between an
      expiry observation and the break must survive.
    * :meth:`now` and :data:`LeaseView.heartbeat` live in one clock
      domain; the caller's wall clock never enters expiry arithmetic.
    """

    @abstractmethod
    def now(self) -> float:
        """The current instant in the same clock domain as heartbeats."""

    @abstractmethod
    def acquire(self, namespace: str, key: str, owner: str) -> bool:
        """Atomically claim a free key; True iff this call took it."""

    @abstractmethod
    def get(self, namespace: str, key: str) -> Optional[LeaseView]:
        """The key's current lease, or None when unleased."""

    @abstractmethod
    def heartbeat(self, namespace: str, key: str, owner: str) -> bool:
        """Refresh the lease's heartbeat iff ``owner`` still holds it."""

    @abstractmethod
    def release(self, namespace: str, key: str, owner: str) -> bool:
        """Drop the lease iff ``owner`` still holds it."""

    @abstractmethod
    def break_expired(self, namespace: str, key: str, timeout: float) -> bool:
        """Remove the lease iff it has gone ``timeout`` without a beat.

        Expiry is re-verified atomically with the removal (compare-and-
        swap, transaction, or breaker lock — the backend's choice), so
        a stale earlier observation can never kill a live lease.
        Returns True iff this call removed an expired lease.
        """

    @abstractmethod
    def age_lease(self, namespace: str, key: str, seconds: float) -> bool:
        """Backdate the lease's heartbeat by ``seconds``.

        The expiry fixture of the conformance suite, and the
        operational "nuke a wedged lease" tool: ageing past the sweep's
        timeout makes the lease immediately breakable.  Returns False
        when no lease exists.
        """

    def cleanup(self, namespace: str, timeout: float) -> None:
        """Drop this worker's advisory clutter for a finished sweep.

        Called by drained workers on the way out.  Backends with no
        per-worker residue (rows, objects) inherit this no-op; the
        filesystem backend removes its clock-probe file, sweeps
        breaker locks and probes older than ``timeout``, and prunes
        the namespace directory once empty — so a fully drained
        manifest leaves an empty ``leases/`` tree behind.
        """


class StoreBackend(ABC):
    """Durable record and document storage behind :class:`CampaignStore`.

    Records: per-key append-only lines.  ``append_record`` must be
    durable on return (a crash after the call cannot lose the line) and
    atomic in effect (``read_records`` yields only lines whose write
    completed — a torn write surfaces as *no* line, never a mangled
    one).  Documents: whole-payload atomic replacement (readers see the
    old or the new payload, nothing in between).
    """

    #: URI scheme this backend answers to (``file``, ``sqlite``, ``mem``).
    scheme: str = ""

    @property
    @abstractmethod
    def uri(self) -> str:
        """Canonical URI re-opening this same storage (``scheme:rest``)."""

    # -- records ----------------------------------------------------------

    @abstractmethod
    def append_record(self, key: str, line: str) -> None:
        """Durably append one complete record line to the key's shard."""

    def append_batch(self, items: Sequence[Tuple[str, str]]) -> None:
        """Durably append many ``(key, line)`` records in one flush.

        Same durability contract as :meth:`append_record` — when this
        returns, every line survives a crash; until it does, a crash
        loses at most lines of this batch (each surfacing as *absent*,
        never mangled).  Backends override this to amortise the sync
        cost over the whole batch (one ``os.sync``, one transaction,
        one conditional put per shard); the fallback is a per-record
        loop, so callers may always batch.  In-batch order is
        preserved per key (last line wins on read, as ever).
        """
        for key, line in items:
            self.append_record(key, line)

    @abstractmethod
    def read_records(self, key: str) -> List[str]:
        """Every *completely written* line of the shard, in append order."""

    @abstractmethod
    def record_keys(self) -> List[str]:
        """Every shard key present, sorted."""

    def count_keys(self) -> int:
        return len(self.record_keys())

    # -- documents --------------------------------------------------------

    @abstractmethod
    def put_doc(self, name: str, payload: str) -> None:
        """Atomically replace the named document with ``payload``."""

    @abstractmethod
    def get_doc(self, name: str) -> Optional[str]:
        """The named document's payload, or None when absent."""

    @abstractmethod
    def list_docs(self) -> List[str]:
        """Every document name present, sorted."""

    # -- leases -----------------------------------------------------------

    @property
    @abstractmethod
    def leases(self) -> LeaseBackend:
        """The lease backend sharing this storage (and its clock domain)."""


def _parse_codec_query(spec: str, rest: str) -> Tuple[str, Optional[str]]:
    """Split a ``?codec=NAME`` query off a URI's scheme-specific part.

    Only ``codec`` is a known query key; anything else is an error so a
    typo (``?codek=binary``) cannot silently open a default-codec
    store.  Bare paths never reach here — a literal ``?`` in a
    directory name stays a path character when no scheme was given.
    """
    if "?" not in rest:
        return rest, None
    rest, query = rest.split("?", 1)
    codec: Optional[str] = None
    for pair in query.split("&"):
        if not pair:
            continue
        name, _, value = pair.partition("=")
        if name != "codec":
            raise ValueError(f"unknown store URI query {name!r} in {spec!r}")
        codec = check_codec(value)
    return rest, codec


def open_backend(
    target: Union[str, "os.PathLike[str]", StoreBackend],
    create: bool = True,
    codec: Optional[str] = None,
) -> StoreBackend:
    """Resolve a store URI (or bare path, or backend) to a backend.

    ``file:/dir`` (or any plain path) → the filesystem backend;
    ``sqlite:/path.db`` → the single-file sqlite backend; ``mem:name``
    → the named in-process object store.  With ``create=False`` the
    backing storage must already exist (read-only status views must
    not create stores as a side effect) — :class:`FileNotFoundError`
    otherwise.

    ``codec`` selects the record codec new shards are written with
    (``jsonl``, the default, or the length-prefixed ``binary`` framing
    of :mod:`repro.store.codec`); a ``?codec=NAME`` query on the URI
    means the same and wins over the keyword.  Reads understand both
    layouts regardless, so a store written under one codec reopens
    under any.
    """
    if isinstance(target, StoreBackend):
        return target
    spec = os.fspath(target)
    match = _URI_RE.match(spec)
    if match is None:
        scheme, rest = "file", spec
    else:
        scheme, rest = match.group(1).lower(), match.group(2)
        if scheme not in ("file", "sqlite", "mem"):
            raise ValueError(
                f"unknown store scheme {scheme!r} in {spec!r} "
                "(known: file:, sqlite:, mem:)"
            )
        rest, uri_codec = _parse_codec_query(spec, rest)
        if uri_codec is not None:
            codec = uri_codec
    if codec is not None:
        check_codec(codec)
    # file://host/path is out of scope; strip the empty-authority form.
    if rest.startswith("//"):
        rest = rest[2:]
        slash = rest.find("/")
        rest = rest[slash:] if slash >= 0 else ""
    if scheme == "file":
        from repro.store.backend_fs import FilesystemStoreBackend

        return FilesystemStoreBackend(
            rest, create=create, codec=codec or "jsonl"
        )
    if scheme == "sqlite":
        from repro.store.backend_sqlite import SqliteStoreBackend

        return SqliteStoreBackend(rest, create=create, codec=codec or "jsonl")
    from repro.store.backend_mem import MemoryStoreBackend

    return MemoryStoreBackend.named(rest, create=create, codec=codec)


def open_store(
    target: Union[str, "os.PathLike[str]", StoreBackend],
    create: bool = True,
    codec: Optional[str] = None,
) -> "CampaignStore":
    """Open a :class:`~repro.store.store.CampaignStore` by URI.

    The one entry point runners and scripts route ``--store URI``
    through; see :func:`open_backend` for the scheme table and the
    ``?codec=binary`` record-layout query.
    """
    from repro.store.store import CampaignStore

    return CampaignStore(open_backend(target, create=create, codec=codec))


def copy_store(
    src: "CampaignStore",
    dst: "CampaignStore",
    keys: Optional[Iterable[str]] = None,
) -> int:
    """Replicate ``src`` into ``dst`` line for line; returns shard count.

    Every shard's *complete record history* is re-appended verbatim
    (raw lines, so the copy is byte-identical under
    ``scripts/check_sweep_equivalence.py``), and every manifest
    document is carried over.  This is how a volatile ``mem:`` fleet
    store is exported to a durable one at the end of a drill, and the
    seed of the cross-store fleet aggregation the roadmap names.

    Records cross the interface as complete lines — the codec-neutral
    form — so copying between stores of different record codecs
    (``file:A`` → ``file:B?codec=binary`` and back) is a lossless
    transcode: the destination's backend lays the same lines out in
    its own codec.  Each shard lands in one batched append.
    """
    copied = 0
    for key in src.backend.record_keys() if keys is None else keys:
        lines = src.backend.read_records(key)
        if not lines:
            continue
        dst.backend.append_batch([(key, line) for line in lines])
        copied += 1
    for name in src.backend.list_docs():
        payload = src.backend.get_doc(name)
        if payload is not None:
            dst.backend.put_doc(name, payload)
    return copied
