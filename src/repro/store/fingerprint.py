"""Content-hashed scenario fingerprints: the store's shard keys.

A fingerprint is a stable hex digest of a work item's *content* — the
``(n, loss, adversary, estimator, seed)`` spec for a sim cell, the
``(testbed, session, placement, engine, estimator, seed)`` tuple for a
testbed experiment — so that

* rerunning the same campaign maps every item onto the same JSONL
  shard (reruns dedupe instead of double-counting),
* growing a grid (new n values, new loss models) leaves previously
  completed cells' shards valid, and
* two *different* specs can never silently share a shard.

Canonicalisation rules: dataclasses serialise as ``{"__dataclass__":
ClassName, fields...}``, mappings sort their keys, tuples and lists
flatten to JSON arrays, numpy scalars collapse to their Python
spellings, non-finite floats become tagged sentinels
(strict JSON has no ``NaN``), and callables — estimator factories —
serialise as their dotted qualname plus their instance attributes
(a factory's behaviour lives in its code identity and configuration,
not its memory address).  The digest is SHA-256, so fingerprints are
independent of ``PYTHONHASHSEED``, process, and platform.

The same canonical bytes also seed the campaign runners' per-cell RNG
streams (:func:`fingerprint_spawn_key`): a cell's random draw is a pure
function of (campaign seed, cell content), independent of its position
in the grid — which is exactly what lets a store shard written by one
grid be resumed by a larger one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any, Tuple

import numpy as np

__all__ = ["canonical_json", "fingerprint", "fingerprint_spawn_key"]


def _encode(obj: Any) -> Any:
    """Map an arbitrary spec object onto canonical JSON-able data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _encode(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, **fields}
    if isinstance(obj, dict):
        return {str(k): _encode(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_encode(v) for v in obj]
    # Numpy scalar spellings of a value fingerprint like the Python
    # spelling: a spec built with np.int64 group sizes or np.float32
    # loss rates is the *same spec* (the float32 case still hashes the
    # exact float64 value it widens to — a genuinely different number
    # stays a different key).
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        obj = float(obj)
    if isinstance(obj, float):
        if math.isnan(obj):
            return {"__float__": "nan"}
        if math.isinf(obj):
            return {"__float__": "inf" if obj > 0 else "-inf"}
        return obj
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if callable(obj):
        # Functions/classes carry their own qualname; a configured
        # factory *instance* is identified by its class plus state.
        target = obj if hasattr(obj, "__qualname__") else type(obj)
        state = getattr(obj, "__dict__", None)
        return {
            "__callable__": f"{target.__module__}.{target.__qualname__}",
            "state": _encode(dict(state)) if state else {},
        }
    raise TypeError(f"cannot fingerprint {type(obj).__name__}: {obj!r}")


def canonical_json(obj: Any) -> str:
    """The canonical serialisation the digest is computed over."""
    return json.dumps(
        _encode(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint(obj: Any, length: int = 20) -> str:
    """Stable hex key for a work item (default 80 bits of SHA-256)."""
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
    return digest[:length]


def fingerprint_spawn_key(obj: Any, words: int = 4) -> Tuple[int, ...]:
    """The first ``words`` uint32s of the digest, for ``SeedSequence``.

    ``SeedSequence(entropy=campaign_seed, spawn_key=...)`` with this key
    gives every scenario a private RNG stream that depends only on the
    campaign seed and the cell's content — not on grid order, worker
    count, or interpreter hash seed.
    """
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).digest()
    return tuple(
        int.from_bytes(digest[4 * i : 4 * i + 4], "big") for i in range(words)
    )
