"""The filesystem backend: PR 4/5's shared-directory mechanics, extracted.

Layout (byte-identical to what :class:`~repro.store.store.CampaignStore`
wrote before backends existed — existing stores open unchanged):

.. code-block:: text

    store-root/
        3f9c2a41d0b8e7665f21.jsonl     # one shard per record key
        9b01d4c7aa35e2f08c44.rbin      # ...binary-codec shards (?codec=binary)
        nightly-ref.manifest.json      # documents (sweep manifests)
        leases/
            .clock.<worker-token>      # clock-domain probe files
            <namespace>/
                <key>.lease            # O_EXCL claim, mtime = heartbeat
                <key>.lease.break      # transient breaker lock

Records are fsynced JSONL appends with torn-trailer sealing; documents
are same-directory temp + fsync + :func:`os.replace`; leases are
``O_CREAT | O_EXCL`` files whose mtime is the heartbeat, aged against
the *filesystem's* clock via a freshly touched probe file (mtimes are
stamped by the filesystem host — think NFS server — so expiry judged
against this worker's wall clock would mis-age leases under skew).
The rationale for each mechanism lives with the contract it satisfies:
:mod:`repro.store.store` (write/read path), :mod:`repro.store.queue`
(claim/break lifecycle), :mod:`repro.store.manifest` (atomic docs).
"""

from __future__ import annotations

import json
import os
import re
import socket
import time
import uuid
from pathlib import Path
from typing import IO, Dict, List, Optional, Sequence, Union

from repro.store.backend import (
    LeaseBackend,
    LeaseView,
    StoreBackend,
    check_key,
    check_name,
)
from repro.store.codec import (
    BINARY_EXTENSION,
    check_codec,
    decode_frames,
    encode_frames,
    scan_frames,
)

__all__ = ["FilesystemLeaseBackend", "FilesystemStoreBackend"]


def _worker_token() -> str:
    """A filename-safe unique token for this backend instance's probe.

    Mirrors :func:`repro.store.queue.default_owner` (host, pid, nonce —
    the nonce so a reborn worker never adopts its predecessor's probe),
    sanitised to the portable filename alphabet.
    """
    raw = f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"
    return re.sub(r"[^A-Za-z0-9._-]", "-", raw)


class FilesystemLeaseBackend(LeaseBackend):
    """``O_EXCL`` lease files with heartbeat mtimes under ``leases/``.

    The lease tree is advisory state: deleting it entirely merely
    forgets in-flight claims (finished work lives in the shards), so no
    fsync discipline is needed here — only atomicity of creation
    (``O_EXCL``) and of the breaker dance.
    """

    _PROBE_PREFIX = ".clock."
    _BREAK_SUFFIX = ".break"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._probe_name = f"{self._PROBE_PREFIX}{_worker_token()}"

    # -- paths -------------------------------------------------------------

    def lease_path(self, namespace: str, key: str) -> Path:
        return self.root / check_name(namespace) / f"{check_key(key)}.lease"

    def _read_owner(self, path: Path) -> Optional[str]:
        """The lease's owner, or None when unreadable (torn mid-write)."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return str(data["owner"])
        except (OSError, ValueError, KeyError):
            return None

    # -- clock domain ------------------------------------------------------

    def now(self) -> float:
        """'Now' in the clock domain that stamps lease mtimes.

        Lease age is mtime arithmetic, and mtimes are set by the
        filesystem host — on a shared filesystem, *its* clock, not this
        worker's.  Touching a probe file and reading its mtime back
        yields a "now" in that same domain, so expiry judgements are
        immune to skew between the worker's wall clock and the
        filesystem's (and the worker's wall clock never enters
        duration math at all).

        When the probe cannot be written (a read-only status view of a
        foreign store, or a lease tree that does not exist yet), the
        host wall clock is the best remaining approximation; a
        mis-judged expiry there is harmless because breaking re-verifies
        under the breaker lock and completion is idempotent.
        """
        probe = self.root / self._probe_name
        try:
            fd = os.open(probe, os.O_CREAT | os.O_WRONLY, 0o644)
            os.close(fd)
            os.utime(probe)
            return probe.stat().st_mtime
        except OSError:
            return time.time()

    # -- claim / heartbeat / release ---------------------------------------

    def acquire(self, namespace: str, key: str, owner: str) -> bool:
        path = self.lease_path(namespace, key)
        # Created on first claim, not at construction: read-only views
        # (status reports on a finished or foreign store) must never
        # mutate the store directory.
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            # claimed_at is wall-clock *metadata* for humans reading the
            # lease file; expiry arithmetic only ever uses the mtime.
            {"owner": owner, "claimed_at": time.time()},
            separators=(",", ":"),
        ).encode("utf-8")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        return True

    def get(self, namespace: str, key: str) -> Optional[LeaseView]:
        path = self.lease_path(namespace, key)
        try:
            st = path.stat()
        except FileNotFoundError:
            return None
        return LeaseView(owner=self._read_owner(path), heartbeat=st.st_mtime)

    def heartbeat(self, namespace: str, key: str, owner: str) -> bool:
        path = self.lease_path(namespace, key)
        if self._read_owner(path) != owner:
            return False
        try:
            os.utime(path)
        except FileNotFoundError:
            return False
        return True

    def release(self, namespace: str, key: str, owner: str) -> bool:
        path = self.lease_path(namespace, key)
        if self._read_owner(path) != owner:
            return False
        path.unlink(missing_ok=True)
        return True

    # -- expiry ------------------------------------------------------------

    def _expired(self, st: os.stat_result, timeout: float) -> bool:
        return self.now() - st.st_mtime >= timeout

    def break_expired(self, namespace: str, key: str, timeout: float) -> bool:
        """Unlink an expired lease under the key's breaker lock.

        The lock closes the ordinary stat-then-act race: between
        *observing* an expired lease and *removing* it, another racer
        may have already broken it and a third may hold a fresh claim
        at the same path — so expiry is re-verified while holding the
        ``O_EXCL`` breaker lock, and a fresh lease is left alone.

        A breaker lock whose holder died mid-break is itself expired
        state; it is swept after a fresh re-stat immediately before the
        unlink.  That sweep is advisory, not watertight: filesystem
        path locks cannot compare-and-swap on identity, so a sweeper
        stalled between its stat and its unlink can, in a pathological
        interleaving, remove a just-created breaker and briefly let two
        breakers coexist.  The system's *correctness* never rests on
        breaker exclusivity — the worst outcome is a duplicated,
        idempotent item run (see :mod:`repro.store.queue`) —
        exclusivity here only keeps the common paths from duplicating
        work.
        """
        path = self.lease_path(namespace, key)
        brk = path.with_name(f"{path.name}{self._BREAK_SUFFIX}")
        try:
            fd = os.open(brk, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            try:
                # An orphan is at least lease_timeout old, a live
                # breaker microseconds old — stat right before acting.
                if self._expired(brk.stat(), timeout):
                    brk.unlink(missing_ok=True)
            except FileNotFoundError:
                pass
            return False
        except FileNotFoundError:
            return False  # namespace dir gone: nothing left to break
        os.close(fd)
        try:
            try:
                st = path.stat()
            except FileNotFoundError:
                return False  # released or already broken
            if self._expired(st, timeout):
                path.unlink(missing_ok=True)
                return True
            return False
        finally:
            brk.unlink(missing_ok=True)

    def age_lease(self, namespace: str, key: str, seconds: float) -> bool:
        path = self.lease_path(namespace, key)
        try:
            st = path.stat()
            os.utime(path, (st.st_atime, st.st_mtime - seconds))
        except FileNotFoundError:
            return False
        return True

    # -- cleanup -----------------------------------------------------------

    def cleanup(self, namespace: str, timeout: float) -> None:
        """Sweep this worker's probe and any stale breaker debris.

        A drained sweep should leave ``leases/`` *empty*: leases were
        all released, but clock probes (one per worker) and orphaned
        breaker locks (a breaker SIGKILLed mid-dance) otherwise linger
        forever.  Own probe goes unconditionally; foreign probes and
        breaker locks only once older than ``timeout`` (a younger one
        may belong to a live worker mid-operation).  Empty directories
        are pruned last; every step tolerates concurrent peers doing
        the same sweep.
        """
        now = self.now()

        def stale(p: Path) -> bool:
            try:
                return now - p.stat().st_mtime >= timeout
            except OSError:
                return False  # vanished under us: a peer's sweep won

        ns_dir = self.root / check_name(namespace)
        try:
            entries = list(ns_dir.iterdir())
        except OSError:
            entries = []
        for p in entries:
            name = p.name
            if name.endswith(self._BREAK_SUFFIX) and stale(p):
                p.unlink(missing_ok=True)
            elif name.startswith(self._PROBE_PREFIX) and stale(p):
                p.unlink(missing_ok=True)
        try:
            own = self.root / self._probe_name
            own.unlink(missing_ok=True)
        except OSError:
            pass
        for p in self.root.glob(f"{self._PROBE_PREFIX}*"):
            if stale(p):
                p.unlink(missing_ok=True)
        for d in (ns_dir, self.root):
            try:
                d.rmdir()  # only succeeds once genuinely empty
            except OSError:
                pass


class FilesystemStoreBackend(StoreBackend):
    """One directory of record shards, manifest documents, and leases.

    ``codec`` selects the layout *new* shards are written with:
    ``jsonl`` (the historical fsynced-lines format, byte-identical to
    what PR 4/5 wrote) or ``binary`` (the length-prefixed CRC frames
    of :mod:`repro.store.codec`, as ``.rbin`` files).  Reads dispatch
    on each shard file's extension, and appends stick to an existing
    shard's on-disk layout — so a store written under one codec
    reopens, resumes, and appends correctly under any, and a single
    directory may hold both layouts side by side (e.g. after a
    partial transcode).
    """

    scheme = "file"

    def __init__(
        self,
        root: Union[str, "os.PathLike[str]"],
        create: bool = True,
        codec: str = "jsonl",
    ) -> None:
        self.root = Path(root)
        self.codec = check_codec(codec)
        if create:
            # Eagerly, so ``--store DIR`` fails fast on an unwritable
            # path rather than mid-campaign.
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise FileNotFoundError(f"no store directory at {self.root}")
        self._leases = FilesystemLeaseBackend(self.root / "leases")

    @property
    def uri(self) -> str:
        if self.codec != "jsonl":
            return f"file:{self.root}?codec={self.codec}"
        return f"file:{self.root}"

    # -- records -----------------------------------------------------------

    def shard_path(self, key: str) -> Path:
        """The key's shard file: the existing *non-empty* one, else the
        codec's.

        An existing shard keeps its layout whatever codec the store was
        opened with (appends must extend what is on disk); a fresh key
        gets the store codec's extension.  ``.jsonl`` wins the
        pathological both-non-empty case deterministically.

        Only a shard that actually holds bytes is layout-sticky: a
        zero-length file commits to no layout (no line, no frame), and
        letting it pin one would shadow a populated sibling — an empty
        ``key.jsonl`` left by a crashed writer would hide every record
        in ``key.rbin`` from reads and route appends to the wrong
        layout.  Empty debris is simply ignored; the codec's extension
        decides, exactly as for a fresh key.
        """
        check_key(key)
        for ext in (".jsonl", BINARY_EXTENSION):
            path = self.root / f"{key}{ext}"
            try:
                if path.stat().st_size > 0:
                    return path
            except OSError:
                continue
        ext = BINARY_EXTENSION if self.codec == "binary" else ".jsonl"
        return self.root / f"{key}{ext}"

    @staticmethod
    def _seal_jsonl(f: IO[bytes]) -> None:
        """Terminate a torn JSONL trailer so the next record starts clean.

        A previous crash may have left an unterminated fragment; sealed
        with ``\\n`` it parses as one dead line instead of swallowing
        the record about to be appended.
        """
        if f.tell() > 0:
            f.seek(-1, os.SEEK_END)
            if f.read(1) != b"\n":
                f.write(b"\n")

    @staticmethod
    def _seal_binary(f: IO[bytes]) -> None:
        """Truncate crash debris after the last complete binary frame.

        Frames carry no terminator, so a torn trailer would otherwise
        hide every frame appended after it from the scan.  Binary
        shards are small (a handful of records), so re-scanning the
        file on append is cheap certainty.
        """
        if f.tell() > 0:
            f.seek(0)
            _, consumed = scan_frames(f.read())
            f.truncate(consumed)

    def _write_records(self, f: IO[bytes], path: Path, lines: Sequence[str]) -> None:
        """Seal the shard and buffer ``lines`` in its on-disk layout."""
        if path.suffix == BINARY_EXTENSION:
            self._seal_binary(f)
            f.write(encode_frames(lines))
        else:
            self._seal_jsonl(f)
            f.write(
                b"".join(line.encode("utf-8") + b"\n" for line in lines)
            )

    def append_record(self, key: str, line: str) -> None:
        path = self.shard_path(key)
        try:
            f = open(path, "a+b")
        except FileNotFoundError:
            # The shard directory was removed between sweep definition
            # and this write (an operator pruned a store mid-campaign);
            # losing an acknowledged record to that would break the
            # resume contract, so recreate and retry once.
            self.root.mkdir(parents=True, exist_ok=True)
            f = open(path, "a+b")
        with f:
            self._write_records(f, path, [line])
            f.flush()
            os.fsync(f.fileno())

    def append_batch(self, items: Sequence[Tuple[str, str]]) -> None:
        """Batched appends: buffered writes, then **one** ``os.sync``.

        Per-record ``fsync`` dominates campaign persistence (one disk
        round-trip per cell); a flush of G records pays it once.
        ``os.sync`` commits *every* dirty buffer on the host — on
        Linux it returns only after the writeback completes — so when
        this returns, the whole batch is as durable as G fsynced
        appends, at roughly 1/G of the sync cost.  A crash mid-batch
        leaves torn trailers the readers and sealers already handle.
        """
        grouped: Dict[str, List[str]] = {}
        for key, line in items:
            grouped.setdefault(key, []).append(line)
        if not grouped:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        for key, lines in grouped.items():
            path = self.shard_path(key)
            with open(path, "a+b") as f:
                self._write_records(f, path, lines)
                f.flush()
        os.sync()

    def read_records(self, key: str) -> List[str]:
        """The shard's complete record lines, torn trailer excluded.

        A record only counts once its write completed — the crash
        signature (an unterminated JSONL line; a short or CRC-failing
        binary frame) ends the scan, so a torn write surfaces as *no*
        line, never a mangled one.
        """
        path = self.shard_path(key)
        lines: List[str] = []
        if path.suffix == BINARY_EXTENSION:
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                return lines
            return [line for line in decode_frames(data) if line.strip()]
        try:
            f = open(path, "r", encoding="utf-8")
        except FileNotFoundError:
            return lines
        with f:
            for raw in f:
                if not raw.endswith("\n"):
                    break  # torn trailer: the write never completed
                raw = raw.strip()
                if raw:
                    lines.append(raw)
        return lines

    def record_keys(self) -> List[str]:
        return sorted(
            {p.stem for p in self.root.glob("*.jsonl")}
            | {p.stem for p in self.root.glob(f"*{BINARY_EXTENSION}")}
        )

    def count_keys(self) -> int:
        return len(self.record_keys())

    # -- documents ---------------------------------------------------------

    def put_doc(self, name: str, payload: str) -> None:
        path = self.root / check_name(name)
        tmp = self.root / f".{name}.tmp.{os.getpid()}"
        with open(tmp, "wb") as f:
            f.write(payload.encode("utf-8"))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        # Durably record the rename itself (the document is already
        # durable; this pins the directory entry).
        dir_fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def get_doc(self, name: str) -> Optional[str]:
        path = self.root / check_name(name)
        try:
            return path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None

    def list_docs(self) -> List[str]:
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_file()
            and not p.name.startswith(".")
            and not p.name.endswith(".jsonl")
            and not p.name.endswith(BINARY_EXTENSION)
        )

    # -- leases ------------------------------------------------------------

    @property
    def leases(self) -> FilesystemLeaseBackend:
        return self._leases
