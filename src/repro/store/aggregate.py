"""Streaming aggregation over a campaign store.

Reads a :class:`~repro.store.store.CampaignStore` one record at a time
and folds each into the merge-able accumulators of
:mod:`repro.analysis.stats` — the campaign never materialises in
memory, however many shards the sweep wrote.  Both record flavours
fold into the same per-group-size aggregates:

* ``"experiment"`` records contribute one (reliability, efficiency)
  observation per placement experiment;
* ``"sim-cell"`` records contribute one observation per simulated
  round (the cell's per-round arrays).

The campaign-record NaN convention carries through: a zero-secret
experiment's NaN reliability is *excluded* from the reliability
population (tracked by
:attr:`~repro.analysis.stats.ReliabilityAccumulator.n_excluded`), the
same rule the in-memory
:meth:`~repro.analysis.experiments.CampaignResult.reliabilities` view
applies — stored NaNs can never poison merged aggregates.

This module is deliberately *not* re-exported from ``repro.store``'s
package root: it imports :mod:`repro.analysis`, which imports the
campaign runners, which import the store — fine at call sites, a cycle
if wired into the package ``__init__``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Union

if TYPE_CHECKING:
    from repro.store.manifest import SweepManifest

from repro.analysis.stats import (
    ReliabilityAccumulator,
    ReliabilitySummary,
    ValueCountAccumulator,
)
from repro.store.backend import open_store
from repro.store.manifest import SweepManifest
from repro.store.records import decode_value
from repro.store.store import CampaignStore

__all__ = ["GroupAggregates", "stream_aggregates"]


@dataclass
class GroupAggregates:
    """One group size's streamed campaign aggregates."""

    n_terminals: int
    reliability: ReliabilityAccumulator = field(
        default_factory=ReliabilityAccumulator
    )
    efficiency: ValueCountAccumulator = field(
        default_factory=ValueCountAccumulator
    )

    def reliability_summary(self) -> ReliabilitySummary:
        """The Figure-2 series for this group size."""
        return self.reliability.summary(self.n_terminals)

    def merge(self, other: "GroupAggregates") -> None:
        if other.n_terminals != self.n_terminals:
            raise ValueError("cannot merge aggregates across group sizes")
        self.reliability.merge(other.reliability)
        self.efficiency.merge(other.efficiency)


def _fold_record(record: Dict[str, Any], groups: Dict[int, GroupAggregates]) -> None:
    kind = record.get("kind")
    if kind == "experiment":
        n = int(record["n_terminals"])
        agg = groups.setdefault(n, GroupAggregates(n_terminals=n))
        agg.reliability.add(float(decode_value(record["reliability"])))
        agg.efficiency.add(float(decode_value(record["efficiency"])))
    elif kind == "sim-cell":
        n = int(record["scenario"]["n_terminals"])
        agg = groups.setdefault(n, GroupAggregates(n_terminals=n))
        agg.reliability.extend(
            float(v) for v in decode_value(record["reliability"])
        )
        agg.efficiency.extend(
            float(v) for v in decode_value(record["efficiency"])
        )
    else:
        raise ValueError(f"unknown record kind {kind!r}")


def stream_aggregates(
    store: Union[CampaignStore, str, "os.PathLike[str]"],
    keys: Optional[Iterable[str]] = None,
    manifest: Optional[Union["SweepManifest", str]] = None,
) -> Dict[int, GroupAggregates]:
    """Fold a store's records into per-group-size aggregates.

    Args:
        store: the campaign store to read — a
            :class:`~repro.store.store.CampaignStore`, or a store URI /
            path (``file:``/``sqlite:``/``mem:``, resolved by
            :func:`repro.store.backend.open_store`; reading never
            creates a store).
        keys: shard keys to aggregate over — pass the campaign's own
            key list to scope a shared store to one sweep; defaults to
            every shard.
        manifest: a :class:`~repro.store.manifest.SweepManifest` (or
            the name of one saved in the store) whose key list scopes
            the aggregation — the manifest already carries every shard
            key, so no fingerprint is recomputed from specs.  Mutually
            exclusive with ``keys``.

    Returns:
        ``{n_terminals: GroupAggregates}``, computed one record at a
        time.  Because the accumulators are order-independent
        multisets, the result is bit-identical however the campaign
        was produced — serial, sharded, interrupted-and-resumed, or
        drained by many queue workers.
    """
    if not isinstance(store, CampaignStore):
        store = open_store(store, create=False)
    if manifest is not None:
        if keys is not None:
            raise ValueError("pass keys or manifest, not both")
        if isinstance(manifest, str):
            manifest = SweepManifest.load(store, manifest)
        keys = manifest.keys()
    groups: Dict[int, GroupAggregates] = {}
    for record in store.stream(keys):
        _fold_record(record, groups)
    return groups
