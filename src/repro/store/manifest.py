"""Sweep manifests: a named, versioned key list living next to the shards.

A :class:`SweepManifest` is the store-side description of one sweep: a
JSON document listing every work item's declarative spec together with
the content-hashed shard key the item persists under.  It answers the
two questions a multi-host sweep keeps asking:

* *What work exists?*  Worker processes that were not present when the
  sweep was defined load the manifest and drain it — they never need
  the grid-expansion code path that produced it
  (:meth:`repro.sim.campaign.CampaignRunner.run_worker` decodes the
  scenarios straight from the manifest entries).
* *Which shards belong to this sweep?*  Aggregation scopes a shared
  store to one sweep by the manifest's key list
  (:func:`repro.store.aggregate.stream_aggregates` accepts a manifest
  directly), without recomputing fingerprints from specs.

The document is written **atomically** next to the shards it indexes,
through the store backend's document primitive (filesystem backend:
``store-root/<name>.manifest.json`` via temp file + fsync +
:func:`os.replace`; sqlite: a transactional upsert; object store: a
whole-object put), so a reader never observes a half-written manifest
and a crash mid-save leaves the previous version intact.  Re-saving identical content is a
no-op; saving changed content bumps ``version`` — workers can detect a
redefined sweep instead of silently draining a stale key list.

Manifests are *immutable descriptions*, not progress state: claim and
completion live in the lease files (:mod:`repro.store.queue`) and the
shards themselves, so the manifest never needs rewriting while a sweep
runs.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from repro.store.store import CampaignStore

__all__ = ["ManifestEntry", "SweepManifest", "list_manifests"]

#: The document format tag; bump only on incompatible layout changes.
MANIFEST_FORMAT = "repro-sweep-manifest/1"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,100}$")
_SUFFIX = ".manifest.json"


def _doc_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"malformed manifest name {name!r}")
    return f"{name}{_SUFFIX}"


@dataclass(frozen=True)
class ManifestEntry:
    """One work item of a sweep.

    Attributes:
        key: the item's content-hashed shard key (where its record
            lands in the store, and what the work queue leases).
        spec: the item's declarative spec in its encoded JSON form
            (``repro.store.records.encode_spec`` output) — enough for a
            worker to rebuild and run the item without the code that
            enumerated the sweep.
        label: short human-readable name, used in error messages and
            status listings.
    """

    key: str
    spec: Any
    label: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {"key": self.key, "spec": self.spec, "label": self.label}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ManifestEntry":
        return cls(
            key=str(data["key"]),
            spec=data["spec"],
            label=str(data.get("label", "")),
        )


@dataclass(frozen=True)
class SweepManifest:
    """A named, versioned list of (shard key, spec) work items.

    Attributes:
        name: filesystem-safe sweep name (the document is stored as
            ``<name>.manifest.json`` in the store root).
        entries: the work items, in sweep order (result assembly and
            drain order follow it).
        kind: which runner the specs belong to (``"sim-grid"`` or
            ``"testbed-campaign"``); workers refuse manifests of the
            wrong kind instead of mis-decoding specs.
        meta: opaque sweep-level parameters (campaign seed, engine,
            session sizing ...) recorded for provenance and mismatch
            detection.
        version: monotonically increasing revision of this name's
            document; bumped by :meth:`save` whenever the content
            changes.
    """

    name: str
    entries: Tuple[ManifestEntry, ...]
    kind: str = "sim-grid"
    meta: Dict[str, Any] = field(default_factory=dict)
    version: int = 1

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(f"malformed manifest name {self.name!r}")
        object.__setattr__(self, "entries", tuple(self.entries))
        keys = [entry.key for entry in self.entries]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate shard keys in manifest: {dupes}")

    # -- views -------------------------------------------------------------

    def keys(self) -> List[str]:
        """Every entry's shard key, in sweep order."""
        return [entry.key for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ManifestEntry]:
        return iter(self.entries)

    def content_equal(self, other: "SweepManifest") -> bool:
        """True when the sweeps describe the same work (version aside)."""
        return (
            self.name == other.name
            and self.kind == other.kind
            and self.entries == other.entries
            and self.meta == other.meta
        )

    # -- persistence -------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "kind": self.kind,
            "version": self.version,
            "meta": self.meta,
            "entries": [entry.to_json() for entry in self.entries],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SweepManifest":
        if data.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"not a sweep manifest (format={data.get('format')!r})"
            )
        return cls(
            name=str(data["name"]),
            entries=tuple(
                ManifestEntry.from_json(e) for e in data["entries"]
            ),
            kind=str(data.get("kind", "sim-grid")),
            meta=dict(data.get("meta", {})),
            version=int(data.get("version", 1)),
        )

    def save(self, store: "CampaignStore") -> "SweepManifest":
        """Atomically write this manifest next to the store's shards.

        Idempotent-by-content: when the stored document already
        describes the same work, nothing is written and the stored
        version is returned; when the content differs, the document is
        replaced with ``version = stored + 1``.  The write itself is
        the backend's atomic document replacement (filesystem: a
        same-directory temp file + fsync + :func:`os.replace`; sqlite:
        a row upsert; object store: a whole-object put), so readers
        only ever see a complete document and a crash mid-save cannot
        corrupt the previous one.
        """
        existing = self.load(store, self.name, missing_ok=True)
        if existing is not None:
            if existing.content_equal(self):
                return existing
            revised = SweepManifest(
                name=self.name,
                entries=self.entries,
                kind=self.kind,
                meta=self.meta,
                version=existing.version + 1,
            )
        else:
            revised = self
        payload = json.dumps(
            revised.to_json(), separators=(",", ":"), allow_nan=False
        )
        store.backend.put_doc(_doc_name(self.name), payload)
        return revised

    @classmethod
    def load(
        cls, store: "CampaignStore", name: str, missing_ok: bool = False
    ) -> Optional["SweepManifest"]:
        """Read the named manifest from the store."""
        payload = store.backend.get_doc(_doc_name(name))
        if payload is None:
            if missing_ok:
                return None
            raise FileNotFoundError(
                f"no manifest {name!r} in {store.uri}"
            )
        return cls.from_json(json.loads(payload))


def list_manifests(store: "CampaignStore") -> List[str]:
    """Every manifest name present in the store, sorted."""
    return sorted(
        name[: -len(_SUFFIX)]
        for name in store.backend.list_docs()
        if name.endswith(_SUFFIX) and not name.startswith(".")
    )
