"""repro.store — persistent, resumable campaign results.

The campaign runners (:class:`repro.sim.campaign.CampaignRunner`,
:func:`repro.analysis.experiments.run_campaign`) hold every result in
memory and restart from zero when interrupted — fine for unit-test
grids, a ceiling for the ROADMAP's production-scale sweeps.  This
package removes that ceiling with three small pieces:

* :mod:`repro.store.fingerprint` — content-hashed shard keys: a stable
  SHA-256 digest of the ``(n, loss, adversary, estimator, seed)`` spec,
  so reruns dedupe and grown grids keep their finished cells.
* :mod:`repro.store.store` — :class:`CampaignStore`: one append-only
  JSONL shard per fingerprint, fsync-on-append, torn-line-tolerant
  reads, last-record-wins dedupe.
* :mod:`repro.store.records` — bit-exact JSON codecs for the two record
  flavours (testbed :class:`~repro.analysis.experiments.ExperimentRecord`
  lines and sim :class:`~repro.sim.campaign.ScenarioOutcome` lines),
  including the NaN-reliability convention for zero-secret experiments.
* :mod:`repro.store.manifest` — :class:`SweepManifest`: a named,
  versioned, atomically-written document listing every work item of a
  sweep with its shard key, so workers and aggregators can scope a
  shared store to one sweep without recomputing fingerprints.
* :mod:`repro.store.queue` — :class:`WorkQueue`: atomic leases with
  heartbeats and expiry-based reclaim, so any number of worker
  processes drain the same manifest concurrently and crash-safely.
* :mod:`repro.store.backend` — the pluggable backend layer beneath all
  of the above: :class:`StoreBackend`/:class:`LeaseBackend` interfaces
  with three implementations (``file:`` shared-filesystem JSONL +
  ``O_EXCL`` leases, ``sqlite:`` one transactional database file,
  ``mem:`` an in-process S3-style object store with conditional-put
  leases), selected by URI via :func:`open_store`.  The backend
  conformance suite (``tests/store/conformance``) pins the contract
  every implementation must satisfy.

Checkpoint/resume contract: runners compute each work item's
fingerprint up front, skip items whose shard already holds a complete
record, persist each new result the moment its worker completes, and
assemble the final result in grid order from loaded + fresh records —
so an interrupted campaign resumed with ``--store DIR --resume`` ends
bit-identical to an uninterrupted run.
"""

from repro.store.backend import (
    LeaseBackend,
    LeaseView,
    StoreBackend,
    copy_store,
    open_backend,
    open_store,
)
from repro.store.fingerprint import (
    canonical_json,
    fingerprint,
    fingerprint_spawn_key,
)
from repro.store.manifest import (
    ManifestEntry,
    SweepManifest,
    list_manifests,
)
from repro.store.queue import (
    LeaseInfo,
    QueueStatus,
    WorkQueue,
    default_owner,
)
from repro.store.records import (
    decode_spec,
    decode_value,
    encode_spec,
    encode_value,
    experiment_record_from_json,
    experiment_record_to_json,
    scenario_outcome_from_json,
    scenario_outcome_to_json,
)
from repro.store.store import CampaignStore

__all__ = [
    "CampaignStore",
    "LeaseBackend",
    "LeaseView",
    "StoreBackend",
    "copy_store",
    "open_backend",
    "open_store",
    "canonical_json",
    "fingerprint",
    "fingerprint_spawn_key",
    "ManifestEntry",
    "SweepManifest",
    "list_manifests",
    "LeaseInfo",
    "QueueStatus",
    "WorkQueue",
    "default_owner",
    "encode_value",
    "decode_value",
    "encode_spec",
    "decode_spec",
    "experiment_record_to_json",
    "experiment_record_from_json",
    "scenario_outcome_to_json",
    "scenario_outcome_from_json",
]
