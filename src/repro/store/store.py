"""Append-only, crash-safe campaign result store.

One append-only record shard per scenario fingerprint, living in
whatever :class:`~repro.store.backend.StoreBackend` the store was
opened on — a directory of JSONL files (``file:``, the default), a
single sqlite database (``sqlite:``), or an in-process object store
(``mem:``); see :func:`repro.store.backend.open_store` for the URI
forms.  With the default filesystem backend the layout is:

.. code-block:: text

    store-root/
        3f9c2a41d0b8e7665f21.jsonl   # one scenario's records
        9b01d4c7aa35e2f08c44.jsonl
        ...

Write path (:meth:`CampaignStore.append`): the record is serialised to
one strict-JSON line and handed to the backend, which must make it
durable before returning — a killed campaign loses at most the line
being written, never a previously acknowledged one.  Because a record
only becomes visible once its write *completed* (a ``\\n``-terminated
line, a committed row), *line present* is the completion marker; no
separate checkpoint file can go stale.

Read path (:meth:`CampaignStore.load` / :meth:`records`): the backend
yields only completely written lines (a torn final line — the crash
signature — never surfaces); this layer parses them, skips corrupt
JSON, and dedupes duplicate lines for the same shard by keeping the
**last** complete record — so re-running a scenario simply supersedes
its earlier result instead of double counting it in aggregates.

The store never holds more than one record in memory per read step,
which is what lets the streaming accumulators in
:mod:`repro.analysis.stats` aggregate arbitrarily large campaigns
without materialising them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.store.backend import StoreBackend

__all__ = ["CampaignStore"]


class CampaignStore:
    """Per-scenario record shards over a pluggable backend.

    Args:
        root: a shard directory (created eagerly, so ``--store DIR``
            fails fast on an unwritable path rather than mid-campaign)
            — or any already-opened
            :class:`~repro.store.backend.StoreBackend`.  For URI
            strings (``sqlite:...``, ``mem:...``) use
            :func:`repro.store.backend.open_store`.
    """

    def __init__(
        self, root: Union[str, "os.PathLike[str]", StoreBackend]
    ) -> None:
        if isinstance(root, StoreBackend):
            self.backend = root
        else:
            from repro.store.backend_fs import FilesystemStoreBackend

            self.backend = FilesystemStoreBackend(root, create=True)

    @property
    def uri(self) -> str:
        """The URI that re-opens this store (``file:``/``sqlite:``/``mem:``)."""
        return self.backend.uri

    # -- paths ------------------------------------------------------------

    @property
    def root(self) -> Path:
        """The shard directory — filesystem-backed stores only."""
        root = getattr(self.backend, "root", None)
        if not isinstance(root, Path):
            raise TypeError(
                f"{self.backend.scheme}: stores have no filesystem root"
            )
        return root

    def shard_path(self, key: str) -> Path:
        """The key's shard file — filesystem-backed stores only."""
        from repro.store.backend_fs import FilesystemStoreBackend

        if not isinstance(self.backend, FilesystemStoreBackend):
            raise TypeError(
                f"{self.backend.scheme}: stores have no shard files"
            )
        return self.backend.shard_path(key)

    def keys(self) -> List[str]:
        """Every shard key present, sorted (deterministic scan order)."""
        return self.backend.record_keys()

    def __contains__(self, key: str) -> bool:
        return self.load(key) is not None

    def __len__(self) -> int:
        return self.backend.count_keys()

    # -- writes -----------------------------------------------------------

    def append(self, key: str, record: Dict[str, Any]) -> None:
        """Durably append one record line to the key's shard.

        The line is written whole and made durable before this
        returns: once :meth:`append` acknowledges, a crash cannot lose
        the record; until it does, a crash leaves at most a torn final
        line that every reader skips.
        """
        line = json.dumps(record, separators=(",", ":"), allow_nan=False)
        self.backend.append_record(key, line)

    def append_batch(
        self, items: Iterable[Tuple[str, Dict[str, Any]]]
    ) -> None:
        """Durably append many ``(key, record)`` pairs in one flush.

        One sync however many records the batch holds (one ``os.sync``
        on the filesystem backend, one transaction on sqlite, one
        conditional put per shard on ``mem:``) — the write-side half
        of the cross-cell batched campaign.  Durability on return is
        the same as a sequence of :meth:`append` calls; a crash
        mid-batch loses at most lines of this batch.
        """
        self.backend.append_batch(
            [
                (key, json.dumps(record, separators=(",", ":"), allow_nan=False))
                for key, record in items
            ]
        )

    # -- reads ------------------------------------------------------------

    def _iter_lines(self, key: str) -> Iterator[Dict[str, Any]]:
        """Parse the shard's complete lines, skipping corrupt ones.

        The backend already withholds lines whose write never completed
        (fs: unterminated trailer; sqlite: uncommitted row); anything
        that still fails to parse (bit rot, an injected fault) is
        ignored rather than poisoning the resume.
        """
        for raw in self.backend.read_records(key):
            try:
                yield json.loads(raw)
            except json.JSONDecodeError:
                continue  # corrupt line: treat as never written

    def records(self, key: str) -> List[Dict[str, Any]]:
        """All complete records of a shard, in append order."""
        return list(self._iter_lines(key))

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The shard's effective record: the *last* complete line.

        Reruns of a scenario append rather than rewrite, so the newest
        complete record supersedes the rest (dedupe-by-recency); None
        means the scenario never completed.
        """
        latest: Optional[Dict[str, Any]] = None
        for record in self._iter_lines(key):
            latest = record
        return latest

    def stream(
        self, keys: Optional[Iterable[str]] = None
    ) -> Iterator[Dict[str, Any]]:
        """Yield every shard's effective record, one at a time.

        Args:
            keys: shard keys to read, in the order given; defaults to
                every shard in sorted-key order.  Missing shards are
                skipped (a half-finished campaign streams what it has).
        """
        for key in self.keys() if keys is None else keys:
            record = self.load(key)
            if record is not None:
                yield record
