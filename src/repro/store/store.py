"""Append-only, crash-safe campaign result store.

One JSONL shard per scenario fingerprint under a root directory:

.. code-block:: text

    store-root/
        3f9c2a41d0b8e7665f21.jsonl   # one scenario's records
        9b01d4c7aa35e2f08c44.jsonl
        ...

Write path (:meth:`CampaignStore.append`): the record is serialised to
one strict-JSON line, appended with a single ``write`` call, then
flushed and ``fsync``-ed before :meth:`append` returns — a killed
campaign loses at most the line being written, never a previously
acknowledged one.  Because a record only becomes visible as a complete
``\\n``-terminated line, *line present* is the completion marker; no
separate checkpoint file can go stale.

Read path (:meth:`CampaignStore.load` / :meth:`records`): lines are
parsed one by one; a torn final line (the crash signature: truncated
JSON, no terminator) is skipped, and duplicate lines for the same shard
dedupe by keeping the **last** complete record — so re-running a
scenario simply supersedes its earlier result instead of double
counting it in aggregates.

The store never holds more than one line in memory per read step, which
is what lets the streaming accumulators in :mod:`repro.analysis.stats`
aggregate arbitrarily large campaigns without materialising them.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

__all__ = ["CampaignStore"]

_KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")


class CampaignStore:
    """A directory of per-scenario JSONL shards.

    Args:
        root: shard directory; created on first write (and eagerly at
            construction, so ``--store DIR`` fails fast on an
            unwritable path rather than mid-campaign).
    """

    def __init__(self, root: Union[str, "os.PathLike[str]"]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ------------------------------------------------------------

    def shard_path(self, key: str) -> Path:
        if not _KEY_RE.match(key):
            raise ValueError(f"malformed shard key {key!r}")
        return self.root / f"{key}.jsonl"

    def keys(self) -> List[str]:
        """Every shard key present, sorted (deterministic scan order)."""
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    def __contains__(self, key: str) -> bool:
        return self.shard_path(key).exists() and self.load(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.jsonl"))

    # -- writes -----------------------------------------------------------

    def append(self, key: str, record: Dict[str, Any]) -> None:
        """Durably append one record line to the key's shard.

        The line is written whole, flushed, and fsynced before this
        returns: once :meth:`append` acknowledges, a crash cannot lose
        the record; until it does, a crash leaves at most a torn final
        line that every reader skips.
        """
        line = json.dumps(record, separators=(",", ":"), allow_nan=False)
        path = self.shard_path(key)
        with open(path, "a+b") as f:
            if f.tell() > 0:
                # A previous crash may have left a torn trailer; seal it
                # with a terminator so this record starts on its own
                # line (the fragment then parses as one dead line
                # instead of swallowing the new record).
                f.seek(-1, os.SEEK_END)
                if f.read(1) != b"\n":
                    f.write(b"\n")
            f.write(line.encode("utf-8") + b"\n")
            f.flush()
            os.fsync(f.fileno())

    # -- reads ------------------------------------------------------------

    def _iter_lines(self, key: str) -> Iterator[Dict[str, Any]]:
        """Parse the shard's complete lines, skipping torn trailers.

        A record is *complete* iff its line is newline-terminated and
        parses as JSON; anything else (crash mid-write, disk-full
        truncation) is ignored rather than poisoning the resume.
        """
        path = self.shard_path(key)
        if not path.exists():
            return
        with open(path, "r", encoding="utf-8") as f:
            for raw in f:
                if not raw.endswith("\n"):
                    return  # torn trailer: the write never completed
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    yield json.loads(raw)
                except json.JSONDecodeError:
                    continue  # corrupt line: treat as never written

    def records(self, key: str) -> List[Dict[str, Any]]:
        """All complete records of a shard, in append order."""
        return list(self._iter_lines(key))

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The shard's effective record: the *last* complete line.

        Reruns of a scenario append rather than rewrite, so the newest
        complete record supersedes the rest (dedupe-by-recency); None
        means the scenario never completed.
        """
        latest: Optional[Dict[str, Any]] = None
        for record in self._iter_lines(key):
            latest = record
        return latest

    def stream(
        self, keys: Optional[Iterable[str]] = None
    ) -> Iterator[Dict[str, Any]]:
        """Yield every shard's effective record, one at a time.

        Args:
            keys: shard keys to read, in the order given; defaults to
                every shard in sorted-key order.  Missing shards are
                skipped (a half-finished campaign streams what it has).
        """
        for key in self.keys() if keys is None else keys:
            record = self.load(key)
            if record is not None:
                yield record
