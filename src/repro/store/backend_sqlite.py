"""The sqlite backend: one transactional database file per store.

Where the filesystem backend needs three mechanisms (fsynced appends,
temp+rename documents, ``O_EXCL`` + breaker-lock leases), sqlite gives
all three as transactions:

* **Records** are rows in an append-only table ordered by a rowid
  sequence; a committed ``INSERT`` is the completion marker, so a torn
  write is literally impossible to observe — the transaction either
  committed (line present, whole) or it didn't (no line).  With
  ``synchronous=FULL`` a commit is fsynced before it returns, matching
  the filesystem backend's durability contract.
* **Documents** are single-row upserts — readers see the old payload or
  the new one, never a half-replaced hybrid.
* **Leases** are rows under a ``(namespace, key)`` primary key.
  Claiming is ``INSERT OR IGNORE`` (the database serialises racers —
  exactly one insert wins); heartbeat/release are owner-guarded
  ``UPDATE``/``DELETE``; and breaking an expired lease is one
  conditional ``DELETE`` whose WHERE clause re-judges the age *inside*
  the statement — the compare-and-swap the filesystem needed a breaker
  lock to approximate.

**Clock domain.**  Heartbeats are stamped with sqlite's own clock
(``julianday('now')``, converted to Unix seconds) and expiry is decided
by the same expression inside the conditional ``DELETE`` — worker wall
clocks never enter the arithmetic, so a worker with a skewed clock can
neither hold a lease immortal nor break a live peer's.  (For a local
database file that clock *is* the host's, but the discipline keeps the
judgement in one domain, same as the filesystem backend's mtime probe.)

**Process/thread hygiene.**  sqlite connections must not cross ``fork``
boundaries and are single-thread by default, while ``drain_manifest``
heartbeats from a background thread and the fault suite forks workers —
so connections are made lazily per (pid, thread) and never shared.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.store.backend import (
    LeaseBackend,
    LeaseView,
    StoreBackend,
    check_key,
    check_name,
)
from repro.store.codec import check_codec

__all__ = ["SqliteLeaseBackend", "SqliteStoreBackend"]

#: sqlite's clock in Unix seconds: julianday('now') is days since the
#: Julian epoch; 2440587.5 is the Unix epoch in those days.
_SQL_NOW = "(julianday('now') - 2440587.5) * 86400.0"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    seq  INTEGER PRIMARY KEY AUTOINCREMENT,
    key  TEXT NOT NULL,
    line TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS records_by_key ON records (key, seq);
CREATE TABLE IF NOT EXISTS docs (
    name    TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    ns           TEXT NOT NULL,
    key          TEXT NOT NULL,
    owner        TEXT NOT NULL,
    heartbeat_at REAL NOT NULL,
    claimed_at   REAL NOT NULL,
    PRIMARY KEY (ns, key)
);
"""


class SqliteStoreBackend(StoreBackend):
    """Records, documents, and leases in one sqlite database file.

    ``codec`` picks how record lines rest in the ``records`` table:
    ``jsonl`` stores them as TEXT (the historical layout), ``binary``
    as raw UTF-8 BLOBs.  Rows are already length-delimited and
    transactional, so sqlite needs no framing; the BLOB form is the
    codec's meaning here — binary-safe storage with no text-affinity
    coercion.  Reads dispatch per row (sqlite is dynamically typed),
    so databases written under either codec — or a mix — reopen under
    any.
    """

    scheme = "sqlite"

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        create: bool = True,
        codec: str = "jsonl",
    ) -> None:
        self.path = Path(path)
        self.codec = check_codec(codec)
        if not create and not self.path.is_file():
            raise FileNotFoundError(f"no store database at {self.path}")
        if create:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tlocal = threading.local()
        # Eagerly, so ``--store sqlite:PATH`` fails fast on an
        # unwritable path rather than mid-campaign.
        self._conn().execute("SELECT 1")
        self._leases = SqliteLeaseBackend(self)

    @property
    def uri(self) -> str:
        if self.codec != "jsonl":
            return f"sqlite:{self.path}?codec={self.codec}"
        return f"sqlite:{self.path}"

    # -- connections -------------------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        """This (pid, thread)'s connection, created on first use.

        A connection inherited across ``fork`` shares file descriptors
        and in-flight state with the parent — corruption territory — and
        sqlite objects are not thread-safe by default, so each process
        *and* each thread (``drain_manifest``'s heartbeat thread!) gets
        its own.
        """
        pid = os.getpid()
        cached: Optional[Tuple[int, sqlite3.Connection]] = getattr(
            self._tlocal, "conn", None
        )
        if cached is not None and cached[0] == pid:
            return cached[1]
        conn = sqlite3.connect(self.path, isolation_level=None, timeout=30.0)
        # FULL, not the WAL default NORMAL: append_record must be as
        # durable on return as the filesystem backend's fsync.
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=FULL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.executescript(_SCHEMA)
        self._tlocal.conn = (pid, conn)
        return conn

    def _one(self, sql: str, params: Tuple[Any, ...] = ()) -> Optional[Tuple[Any, ...]]:
        cur = self._conn().execute(sql, params)
        row: Optional[Tuple[Any, ...]] = cur.fetchone()
        return row

    # -- records -----------------------------------------------------------

    def _stored_line(self, line: str) -> Union[str, bytes]:
        """The line as it rests in the row: TEXT, or a BLOB when binary."""
        if self.codec == "binary":
            return line.encode("utf-8")
        return line

    def append_record(self, key: str, line: str) -> None:
        self._conn().execute(
            "INSERT INTO records (key, line) VALUES (?, ?)",
            (check_key(key), self._stored_line(line)),
        )

    def append_batch(self, items: Sequence[Tuple[str, str]]) -> None:
        """All lines in one transaction: one COMMIT, hence one fsync.

        ``synchronous=FULL`` syncs per COMMIT, so per-record appends
        pay one disk round-trip each; a batch inside ``BEGIN
        IMMEDIATE`` pays it once and is exactly as durable — the
        transaction either committed whole or never happened.
        """
        if not items:
            return
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.executemany(
                "INSERT INTO records (key, line) VALUES (?, ?)",
                [
                    (check_key(key), self._stored_line(line))
                    for key, line in items
                ],
            )
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def read_records(self, key: str) -> List[str]:
        cur = self._conn().execute(
            "SELECT line FROM records WHERE key = ? ORDER BY seq",
            (check_key(key),),
        )
        return [
            row[0].decode("utf-8") if isinstance(row[0], bytes) else str(row[0])
            for row in cur
        ]

    def record_keys(self) -> List[str]:
        cur = self._conn().execute(
            "SELECT DISTINCT key FROM records ORDER BY key"
        )
        return [row[0] for row in cur]

    def count_keys(self) -> int:
        row = self._one("SELECT COUNT(DISTINCT key) FROM records")
        assert row is not None
        return int(row[0])

    # -- documents ---------------------------------------------------------

    def put_doc(self, name: str, payload: str) -> None:
        self._conn().execute(
            "INSERT INTO docs (name, payload) VALUES (?, ?) "
            "ON CONFLICT (name) DO UPDATE SET payload = excluded.payload",
            (check_name(name), payload),
        )

    def get_doc(self, name: str) -> Optional[str]:
        row = self._one(
            "SELECT payload FROM docs WHERE name = ?", (check_name(name),)
        )
        return None if row is None else str(row[0])

    def list_docs(self) -> List[str]:
        cur = self._conn().execute("SELECT name FROM docs ORDER BY name")
        return [row[0] for row in cur]

    # -- leases ------------------------------------------------------------

    @property
    def leases(self) -> "SqliteLeaseBackend":
        return self._leases


class SqliteLeaseBackend(LeaseBackend):
    """Compare-and-swap lease rows; expiry judged inside the statement."""

    def __init__(self, store: SqliteStoreBackend) -> None:
        self._store = store

    def now(self) -> float:
        row = self._store._one(f"SELECT {_SQL_NOW}")
        assert row is not None
        return float(row[0])

    def acquire(self, namespace: str, key: str, owner: str) -> bool:
        cur = self._store._conn().execute(
            "INSERT OR IGNORE INTO leases "
            "(ns, key, owner, heartbeat_at, claimed_at) "
            f"VALUES (?, ?, ?, {_SQL_NOW}, {_SQL_NOW})",
            (check_name(namespace), check_key(key), owner),
        )
        return cur.rowcount == 1

    def get(self, namespace: str, key: str) -> Optional[LeaseView]:
        row = self._store._one(
            "SELECT owner, heartbeat_at FROM leases WHERE ns = ? AND key = ?",
            (check_name(namespace), check_key(key)),
        )
        if row is None:
            return None
        return LeaseView(owner=str(row[0]), heartbeat=float(row[1]))

    def heartbeat(self, namespace: str, key: str, owner: str) -> bool:
        cur = self._store._conn().execute(
            f"UPDATE leases SET heartbeat_at = {_SQL_NOW} "
            "WHERE ns = ? AND key = ? AND owner = ?",
            (check_name(namespace), check_key(key), owner),
        )
        return cur.rowcount == 1

    def release(self, namespace: str, key: str, owner: str) -> bool:
        cur = self._store._conn().execute(
            "DELETE FROM leases WHERE ns = ? AND key = ? AND owner = ?",
            (check_name(namespace), check_key(key), owner),
        )
        return cur.rowcount == 1

    def break_expired(self, namespace: str, key: str, timeout: float) -> bool:
        # Expiry is re-judged by the database, atomically with the
        # removal: a lease heartbeated after any earlier observation
        # simply fails the WHERE clause and survives.
        cur = self._store._conn().execute(
            "DELETE FROM leases WHERE ns = ? AND key = ? "
            f"AND {_SQL_NOW} - heartbeat_at >= ?",
            (check_name(namespace), check_key(key), float(timeout)),
        )
        return cur.rowcount == 1

    def age_lease(self, namespace: str, key: str, seconds: float) -> bool:
        cur = self._store._conn().execute(
            "UPDATE leases SET heartbeat_at = heartbeat_at - ? "
            "WHERE ns = ? AND key = ?",
            (float(seconds), check_name(namespace), check_key(key)),
        )
        return cur.rowcount == 1
